"""Figure 6 — strong scaling, LT model, both frameworks, all 8 datasets.

Regenerates the speedup-vs-threads series normalised to Ripples at 1
thread.  Shape assertions: EfficientIMM's best time beats Ripples' best on
every dataset and keeps scaling to higher thread counts.
"""

import pytest

from repro.bench.experiments import experiment_fig6
from repro.graph.datasets import dataset_names

from conftest import print_table


@pytest.fixture(scope="module")
def fig6():
    return experiment_fig6()


def test_fig6_lt_scaling(benchmark, fig6):
    data = fig6.data
    benchmark(lambda: data[("amazon", "EfficientIMM")].saturation_threads())

    print_table(fig6)
    for name in dataset_names():
        rip = data[(name, "Ripples")]
        eimm = data[(name, "EfficientIMM")]
        assert eimm.best_time < rip.best_time, name
        assert eimm.saturation_threads() >= rip.saturation_threads(), name
        # EfficientIMM at its best is faster than Ripples at *every* p.
        assert eimm.best_time < min(rip.times_s), name
