"""Table IV — simulated L1+L2 cache misses in Find_Most_Influential_Set.

Both selection kernels are replayed as per-thread address streams through
set-associative LRU L1/L2 simulators with the EPYC-7763 geometry; the table
reports total misses and the reduction factor.  Shape assertions: large
(>=10x) reductions on every dataset, with web-Google the smallest reduction
as in the paper.
"""

import pytest

from repro.bench.experiments import PAPER_TABLE4, experiment_table4
from repro.simmachine.instrumented import trace_efficient_selection
from repro.simmachine.topology import perlmutter

from conftest import print_table


@pytest.fixture(scope="module")
def table4():
    return experiment_table4(theta=200, k=10, num_threads=4, seed=3)


def test_table4_cache_misses(benchmark, table4, amazon_store):
    topo = perlmutter()
    benchmark.pedantic(
        lambda: trace_efficient_selection(amazon_store.store, 3, 2, topo),
        rounds=3, iterations=1,
    )

    print_table(table4)
    reductions = {}
    for name, (rip, eimm, reduction) in table4.data.items():
        assert rip > eimm, name
        assert reduction > 10.0, name
        reductions[name] = reduction

    # The paper's ordering extremes: web-Google shows the smallest
    # reduction (22.4x) of the five datasets.
    assert reductions["google"] == min(reductions.values())
    # All reductions within two orders of the paper's (22x - 357x).
    for name, r in reductions.items():
        assert 10.0 < r < 3600.0, (name, r, PAPER_TABLE4[name])


def test_table4_direction_holds_under_lt(benchmark):
    """The paper measures Table IV under IC; the traversal asymmetry is
    model-independent, so the reduction must also hold for LT's tiny-set
    stores (smaller in magnitude: fewer entries to re-traverse)."""
    from repro.core.sampling import RRRSampler, SamplingConfig
    from repro.diffusion.base import get_model
    from repro.graph.datasets import load_dataset
    from repro.simmachine.instrumented import (
        trace_efficient_selection,
        trace_ripples_selection,
    )

    topo = perlmutter()
    g = load_dataset("amazon", model="LT", seed=0)
    sampler = RRRSampler(
        get_model("LT", g), SamplingConfig.efficientimm(num_threads=1), seed=3
    )
    sampler.extend(3000)
    store = sampler.store
    rip = benchmark.pedantic(
        lambda: trace_ripples_selection(store, 10, 4, topo),
        rounds=1, iterations=1,
    )
    eimm = trace_efficient_selection(store, 10, 4, topo)
    reduction = rip.total_misses / max(eimm.total_misses, 1)
    print(f"\nLT cache-miss reduction (amazon, theta=3000): {reduction:.1f}x")
    assert reduction > 2.0
