"""Batched kernel throughput: sets/s and edges/s versus the scalar path.

The batched kernel's win is in the *dispatch-bound* regime: on a medium
Erdos-Renyi graph (shallow, near-uniform RRR sets) the per-root reference
pays full numpy call overhead for every tiny frontier, while the batched
kernel amortises it across B sets per pass.  On heavy-tailed R-MAT hub
graphs both kernels converge to edge-bound throughput (big frontiers keep
numpy busy either way), so the ER graph here is the honest showcase *and*
the guard: the batched kernel must clear >= 3x scalar sets/s at batch 64
under IC (docs/performance.md records the measured numbers).

Both kernels draw byte-identical sets (asserted here too — a throughput
win that changed the bytes would be a bug, not a speedup).

``REPRO_BENCH_SMOKE=1`` shrinks the graph and set counts so the CI
benchmark-smoke job finishes quickly.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.bench.report import Table
from repro.diffusion.base import get_model
from repro.graph.builder import from_edge_array
from repro.graph.generators import erdos_renyi
from repro.graph.weights import assign_ic_weights, assign_lt_weights
from repro.kernels import KernelSampler

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N_VERTICES = 8_192 if SMOKE else 32_768
N_EDGES = 32_768 if SMOKE else 131_072
NUM_SETS = 1_024 if SMOKE else 4_096
IC_SCALE = 0.15
SEED = 5
BATCHES = (8, 32, 64, 256)
MIN_IC_SPEEDUP = 3.0
MIN_LT_SPEEDUP = 1.5


def _graph(model: str):
    src, dst = erdos_renyi(N_VERTICES, N_EDGES, seed=SEED)
    g = from_edge_array(src, dst, num_vertices=N_VERTICES)
    if model == "IC":
        return assign_ic_weights(g, scheme="uniform", seed=1, scale=IC_SCALE)
    return assign_lt_weights(g, seed=1)


@pytest.fixture(scope="module", params=("IC", "LT"))
def workload(request):
    model_name = request.param
    return model_name, get_model(model_name, _graph(model_name))


def _throughput(model, kernel: str, batch: int, num_sets: int = NUM_SETS):
    """Best-of-3 sets/s and edges/s for one kernel configuration."""
    sampler = KernelSampler(model, kernel, batch)
    sampler.sample_indexed(SEED, 0, min(num_sets, 256))  # warm scratch
    best = None
    for _ in range(3):
        t0 = time.perf_counter()
        flat, sizes, edges = sampler.sample_indexed(SEED, 0, num_sets)
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, flat, sizes, edges)
    dt, flat, sizes, edges = best
    return {
        "sets_per_s": num_sets / dt,
        "edges_per_s": float(edges.sum()) / dt,
        "seconds": dt,
        "fingerprint": (flat.tobytes(), sizes.tobytes()),
    }


def test_wallclock_batched_kernel(benchmark, workload):
    _, model = workload
    sampler = KernelSampler(model, "batched", 64)
    sampler.sample_indexed(SEED, 0, 256)
    out = benchmark.pedantic(
        lambda: sampler.sample_indexed(SEED, 0, NUM_SETS),
        rounds=3, iterations=1,
    )
    assert out[1].size == NUM_SETS


def test_wallclock_scalar_kernel(benchmark, workload):
    _, model = workload
    sampler = KernelSampler(model, "scalar", 1)
    out = benchmark.pedantic(
        lambda: sampler.sample_indexed(SEED, 0, NUM_SETS),
        rounds=3, iterations=1,
    )
    assert out[1].size == NUM_SETS


def test_kernel_speedup(benchmark, workload, bench_record):
    model_name, model = workload
    benchmark.pedantic(
        lambda: KernelSampler(model, "batched", 64).sample_indexed(
            SEED, 0, 256
        ),
        rounds=1, iterations=1,
    )
    scalar = _throughput(model, "scalar", 1)
    rows = []
    speedup_at = {}
    for batch in BATCHES:
        batched = _throughput(model, "batched", batch)
        assert batched["fingerprint"] == scalar["fingerprint"]
        speedup = batched["sets_per_s"] / scalar["sets_per_s"]
        speedup_at[batch] = speedup
        rows.append(
            (
                batch,
                round(batched["sets_per_s"]),
                round(batched["edges_per_s"]),
                f"{speedup:.2f}x",
            )
        )
    table = Table(
        title=f"batched kernel vs scalar [{model_name}] "
        f"(ER n={N_VERTICES} m={N_EDGES}, {NUM_SETS} sets, "
        f"scalar {round(scalar['sets_per_s'])} sets/s)",
        columns=("batch", "sets/s", "edges/s", "speedup"),
        rows=rows,
    )
    print("\n" + table.render())
    bench_record(
        f"kernels_{model_name.lower()}",
        table=table,
        model=model_name,
        num_vertices=N_VERTICES,
        num_edges=N_EDGES,
        num_sets=NUM_SETS,
        scalar_sets_per_s=scalar["sets_per_s"],
        speedup_batch_64=speedup_at[64],
        smoke=SMOKE,
    )
    floor = MIN_IC_SPEEDUP if model_name == "IC" else MIN_LT_SPEEDUP
    assert speedup_at[64] >= floor, (
        f"batched kernel speedup {speedup_at[64]:.2f}x at batch 64 "
        f"below the {floor}x floor"
    )
