"""Table II — NUMA-aware data placement: visited-bitmap core-time share.

Regenerates the original-vs-NUMA-aware comparison for the five datasets the
paper profiles.  Probe statistics are measured by really sampling RRR sets
on the replicas; the placement arms differ only in the home latency /
contention of bitmap cache misses and the cache level of bitmap hits
(the paper's own variables).
"""

import pytest

from repro.bench.experiments import PAPER_TABLE2, experiment_table2
from repro.simmachine.instrumented import bitmap_check_shares
from repro.simmachine.topology import perlmutter

from conftest import print_table


@pytest.fixture(scope="module")
def table2():
    return experiment_table2()


def test_table2_numa_placement(benchmark, table2):
    topo = perlmutter()
    benchmark(lambda: bitmap_check_shares(8000.0, 2000.0, topo))

    print_table(table2)
    for name, (orig, aware, improvement) in table2.data.items():
        p_orig, p_aware = PAPER_TABLE2[name]
        # NUMA-aware placement must always help, substantially.
        assert aware < orig, name
        assert 0.25 < improvement < 0.80, name
        # Shares in the paper's neighbourhood (its range: 29-46% / 14-24%).
        assert 0.20 < orig < 0.60, name
        assert 0.08 < aware < 0.35, name
        # Within 15 percentage points of the paper's original-arm share.
        assert abs(orig - p_orig) < 0.15, name
