"""Solution-quality bench (our addition): IMM vs CELF greedy vs random.

The paper inherits IMM's ``(1 - 1/e - eps)`` guarantee and asserts
"without sacrificing accuracy"; this bench validates it empirically: on a
small graph where Monte-Carlo greedy is tractable, EfficientIMM's seeds
achieve a spread close to CELF's and far above random seeds.
"""

import numpy as np
import pytest

from repro.core import EfficientIMM, IMMParams, celf_greedy
from repro.diffusion.base import get_model
from repro.diffusion.spread import estimate_spread
from repro.graph.builder import from_edge_array
from repro.graph.generators import barabasi_albert
from repro.graph.weights import assign_ic_weights


@pytest.fixture(scope="module")
def quality_setup():
    src, dst = barabasi_albert(120, 2, seed=21)
    g = assign_ic_weights(
        from_edge_array(src, dst, num_vertices=120, make_undirected=True),
        seed=21, scale=0.3,
    )
    model = get_model("IC", g)
    k = 5
    imm = EfficientIMM(g).run(IMMParams(k=k, epsilon=0.5, seed=3, theta_cap=6000))
    greedy = celf_greedy(model, k, num_samples=60, seed=3)
    return g, model, k, imm, greedy


def test_quality_vs_greedy(benchmark, quality_setup):
    g, model, k, imm, greedy = quality_setup
    imm_spread = benchmark.pedantic(
        lambda: estimate_spread(model, imm.seeds, num_samples=250, seed=9).mean,
        rounds=1, iterations=1,
    )
    greedy_spread = estimate_spread(
        model, greedy.seeds, num_samples=250, seed=9
    ).mean
    print(
        f"\nIMM spread {imm_spread:.1f} vs greedy {greedy_spread:.1f} "
        f"({imm_spread / greedy_spread:.2%} of greedy)"
    )
    assert imm_spread >= 0.8 * greedy_spread


def test_quality_vs_random(benchmark, quality_setup):
    g, model, k, imm, _ = quality_setup
    rng = np.random.default_rng(11)
    imm_spread = benchmark.pedantic(
        lambda: estimate_spread(model, imm.seeds, num_samples=200, seed=9).mean,
        rounds=1, iterations=1,
    )
    random_spread = np.mean([
        estimate_spread(
            model, rng.choice(g.num_vertices, k, replace=False),
            num_samples=80, seed=13,
        ).mean
        for _ in range(6)
    ])
    print(f"\nIMM {imm_spread:.1f} vs random {random_spread:.1f}")
    assert imm_spread > 1.3 * random_spread


def test_internal_estimate_consistent(benchmark, quality_setup):
    # IMM's own n*F(S) estimate must agree with forward Monte-Carlo within
    # statistical tolerance (the martingale unbiasedness property).
    g, model, _, imm, _ = quality_setup
    mc = benchmark.pedantic(
        lambda: estimate_spread(model, imm.seeds, num_samples=300, seed=17),
        rounds=1, iterations=1,
    )
    assert abs(imm.spread_estimate - mc.mean) < max(8 * mc.stderr, 0.12 * mc.mean)
