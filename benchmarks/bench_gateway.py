"""Gateway overload bench (our addition): capacity, then load at multiples.

The gateway's claim is not raw speed — the engines below it own that — but
a *latency contract under overload*: with a bounded admission queue and a
queue deadline, offered load beyond capacity is shed with structured
``"overloaded"`` responses while the p99 of the queries that ARE accepted
stays bounded by ``queue_deadline_s`` plus service time.  Without
admission control the same overload turns into unbounded queueing, where
every response is technically "ok" and practically useless.

Protocol:

1. **closed loop** against a warm engine measures capacity C (offered
   load adapts to completions, so this is the sustainable ok-throughput);
2. **open loop** offers ~0.5 x C (light) and ~4 x C (overload) at a
   deliberately tiny queue (depth 2, 0.5 s queue deadline).  Light load
   should mostly pass; overload must shed, keep answering, and keep the
   accepted-query p99 under the deadline-derived bound.

Both loops use the zipf-skewed k mix, so the engine's fingerprint
batching is exercised the way real traffic would.  ``REPRO_BENCH_SMOKE=1``
shrinks sketch size and durations for the CI benchmark-smoke job.
"""

from __future__ import annotations

import os

from repro.bench.report import Table
from repro.gateway import GatewayConfig, LoadGenConfig, run_loadgen, serve_in_thread
from repro.service import EngineConfig, IMQuery, QueryEngine

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
THETA = 300 if SMOKE else 1000
DURATION_S = 1.0 if SMOKE else 3.0
K_CHOICES = (3, 5, 8, 13)
QUEUE_DEADLINE_S = 0.5
#: Allowance on top of the queue deadline for one engine pass + transport.
SERVICE_ALLOWANCE_S = 0.5
SEED = 7


def _loadcfg(**kw) -> LoadGenConfig:
    kw.setdefault("k_choices", K_CHOICES)
    kw.setdefault("theta_cap", THETA)
    kw.setdefault("sketch_seed", SEED)
    kw.setdefault("seed", SEED)
    return LoadGenConfig(**kw)


def test_gateway_capacity_and_overload(bench_record):
    with QueryEngine(config=EngineConfig(default_theta=THETA)) as engine:
        # One cold pass at k_max warms the sketch every later query reuses
        # (greedy prefixes are consistent, so all k in the mix are warm).
        engine.execute(
            [IMQuery(dataset="amazon", k=max(K_CHOICES), theta_cap=THETA, seed=SEED)]
        )

        with serve_in_thread(
            engine, config=GatewayConfig(queue_deadline_s=QUEUE_DEADLINE_S)
        ) as srv:
            closed = run_loadgen(
                srv.host, srv.port,
                _loadcfg(mode="closed", duration_s=DURATION_S, concurrency=4),
            )
        capacity_qps = max(closed["throughput_qps"], 10.0)

        tight = GatewayConfig(
            queue_depth=2, batch_max=1, batch_window_s=0.0,
            queue_deadline_s=QUEUE_DEADLINE_S,
        )

        def open_run(rate_qps: float) -> dict:
            n = int(max(40, min(400, rate_qps * DURATION_S)))
            with serve_in_thread(engine, config=tight) as srv:
                return run_loadgen(
                    srv.host, srv.port,
                    _loadcfg(
                        mode="open", rate_per_s=rate_qps, total_requests=n,
                        concurrency=8,
                    ),
                )

        light = open_run(0.5 * capacity_qps)
        overload = open_run(4.0 * capacity_qps)

    table = Table(
        "Gateway under offered load (tiny queue, 0.5s queue deadline)",
        ["phase", "offered", "ok", "shed", "shed rate", "p50 ms", "p99 ms"],
    )
    for phase, s in (("0.5x capacity", light), ("4x capacity", overload)):
        table.add_row(
            phase, s["offered"], s["ok"], s["shed"],
            f"{s['shed_rate']:.2f}", f"{s['p50_ms']:.1f}", f"{s['p99_ms']:.1f}",
        )
    print(table.render())

    # The contract: past capacity the gateway answers every request (shed
    # or served, never a hang or a bare error) and accepted queries stay
    # inside the queue-deadline-derived latency bound.
    assert overload["shed"] > 0, overload
    assert overload["ok"] >= 1, overload
    assert overload["error"] == 0, overload
    assert overload["completed"] + overload["transport_errors"] == overload["offered"]
    p99_bound_ms = (QUEUE_DEADLINE_S + SERVICE_ALLOWANCE_S) * 1e3
    assert overload["p99_ms"] <= p99_bound_ms, overload
    # Light load passes mostly untouched even at queue depth 2.
    assert light["shed_rate"] <= overload["shed_rate"], (light, overload)

    bench_record(
        "gateway_overload",
        capacity_qps=capacity_qps,
        queue_deadline_s=QUEUE_DEADLINE_S,
        p99_bound_ms=p99_bound_ms,
        closed_p50_ms=closed["p50_ms"],
        closed_p99_ms=closed["p99_ms"],
        light_shed_rate=light["shed_rate"],
        light_p99_ms=light["p99_ms"],
        overload_shed_rate=overload["shed_rate"],
        overload_ok=overload["ok"],
        overload_p99_ms=overload["p99_ms"],
        smoke=SMOKE,
    )


def test_gateway_coalescing_amortizes_selection(bench_record):
    """Concurrent same-sketch clients should land in shared batches: the
    per-query cost of a coalesced burst must undercut serial round-trips."""
    import time

    from repro.gateway import GatewayClient

    with QueryEngine(config=EngineConfig(default_theta=THETA)) as engine:
        engine.execute(
            [IMQuery(dataset="amazon", k=max(K_CHOICES), theta_cap=THETA, seed=SEED)]
        )
        with serve_in_thread(
            engine, config=GatewayConfig(batch_window_s=0.01, batch_max=64)
        ) as srv:
            queries = [
                IMQuery(dataset="amazon", k=K_CHOICES[i % len(K_CHOICES)],
                        theta_cap=THETA, seed=SEED, id=f"b{i}")
                for i in range(32)
            ]
            with GatewayClient(srv.host, srv.port) as client:
                t0 = time.perf_counter()
                batched = client.execute(queries)
                batched_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                for q in queries:
                    assert client.query(q).ok
                serial_s = time.perf_counter() - t0
            batches = srv.stats.batches
    assert all(r.ok for r in batched)
    # 32 pipelined queries must not cost 32 separate engine batches.
    assert batches < 2 * len(queries), batches
    bench_record(
        "gateway_coalescing",
        queries=len(queries),
        batched_s=batched_s,
        serial_s=serial_s,
        per_query_batched_ms=batched_s / len(queries) * 1e3,
        per_query_serial_ms=serial_s / len(queries) * 1e3,
        smoke=SMOKE,
    )
