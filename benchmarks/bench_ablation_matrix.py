"""Ablation matrix: each EfficientIMM design choice priced one at a time.

The paper presents four optimisations as a package (§IV): kernel fusion,
adaptive counter update, adaptive RRR representation, and dynamic job
balancing.  This bench isolates each one's contribution — it disables the
optimisations one at a time and all at once, re-measures the real kernels,
and prices the workload at 128 modelled threads.

Shape assertions: every single ablation costs something on at least one
axis (time or memory), seeds never change, and the all-off configuration
is the slowest.
"""

import numpy as np
import pytest

from repro.core import EfficientIMM, IMMParams
from repro.core.sampling import charge_per_set
from repro.core.selection import efficient_select
from repro.graph.datasets import load_dataset
from repro.simmachine.cost import CostModel, KernelCost, RunProfile
from repro.simmachine.topology import perlmutter
from repro.sketch.rrr import AdaptivePolicy

from conftest import print_table


K = 50
THREADS = 128


@pytest.fixture(scope="module")
def workload():
    """One shared sampling pass on the amazon replica."""
    from repro.core.sampling import RRRSampler, SamplingConfig
    from repro.diffusion.base import get_model

    graph = load_dataset("amazon", model="IC", seed=0)
    sampler = RRRSampler(
        get_model("IC", graph), SamplingConfig.efficientimm(num_threads=1),
        seed=0,
    )
    sampler.extend(1000)
    return graph, sampler


def _price(graph, sampler, *, fused, adaptive_update, adaptive_repr, dynamic):
    """Model the full-run time at 128 threads for one toggle combination."""
    cm = CostModel(perlmutter())
    store = sampler.store
    edges = np.asarray(sampler.per_set_edges, dtype=np.float64)
    sizes = store.sizes().astype(np.float64)
    policy = AdaptivePolicy() if adaptive_repr else None
    costs = charge_per_set(
        edges, sizes, graph.num_vertices, policy, fused=fused
    )

    totals = {}
    atomics = 0.0
    rounds = 0
    for p in (1, 2):
        sel = efficient_select(
            store, K, p,
            initial_counter=sampler.counter if fused else None,
            adaptive_update=adaptive_update,
            adaptive_policy=policy or AdaptivePolicy(1.0),
        )
        totals[p] = float(sel.stats.per_thread_ops().sum())
        atomics = float(sel.stats.atomics.sum())
        rounds = sel.num_rounds
        seeds = sel.seeds
    kc = KernelCost.from_two_runs(
        totals[1], totals[2], atomic_ops=atomics,
        serial_ops_per_round=1.0, rounds=rounds,
    )
    prof = RunProfile(
        framework="EfficientIMM", dataset="amazon", model="IC",
        n=graph.num_vertices, num_sets=len(store),
        total_entries=store.total_entries, per_set_costs=costs,
        sampling_schedule="dynamic" if dynamic else "static",
        numa_aware=True, selection=kc,
    )
    stages = cm.total_time_s(prof, THREADS)
    from repro.core.sampling import modelled_store_bytes

    return stages["Total"], modelled_store_bytes(
        store.sizes(), graph.num_vertices, policy
    ), seeds


def test_ablation_matrix(benchmark, workload):
    graph, sampler = workload
    benchmark.pedantic(
        lambda: efficient_select(
            sampler.store, 10, 2, initial_counter=sampler.counter
        ),
        rounds=3, iterations=1,
    )

    configs = {
        "full EfficientIMM": dict(
            fused=True, adaptive_update=True, adaptive_repr=True, dynamic=True
        ),
        "- kernel fusion": dict(
            fused=False, adaptive_update=True, adaptive_repr=True, dynamic=True
        ),
        "- adaptive update": dict(
            fused=True, adaptive_update=False, adaptive_repr=True, dynamic=True
        ),
        "- adaptive representation": dict(
            fused=True, adaptive_update=True, adaptive_repr=False, dynamic=True
        ),
        "- dynamic balancing": dict(
            fused=True, adaptive_update=True, adaptive_repr=True, dynamic=False
        ),
        "all optimisations off": dict(
            fused=False, adaptive_update=False, adaptive_repr=False,
            dynamic=False,
        ),
    }

    from repro.bench.report import Table

    table = Table(
        f"Ablation — EfficientIMM design choices at {THREADS} modelled threads",
        ["configuration", "time (ms)", "vs full", "store bytes"],
    )
    results = {}
    base_seeds = None
    for name, cfg in configs.items():
        t, nbytes, seeds = _price(graph, sampler, **cfg)
        results[name] = (t, nbytes)
        if base_seeds is None:
            base_seeds = seeds
        else:
            assert np.array_equal(seeds, base_seeds), name  # semantics fixed
        table.add_row(
            name, f"{t * 1e3:.3f}",
            f"{t / results['full EfficientIMM'][0]:.2f}x",
            f"{nbytes:,}",
        )
    print_table(table)

    full_t, full_b = results["full EfficientIMM"]
    # Every ablation hurts on some axis.
    assert results["- kernel fusion"][0] > full_t
    assert results["- adaptive update"][0] > 5.0 * full_t  # the big one
    assert results["- adaptive representation"][1] > 2.0 * full_b  # memory
    assert results["- dynamic balancing"][0] >= full_t * 0.99
    # And stacking all regressions is the worst configuration.
    assert results["all optimisations off"][0] == max(
        t for t, _ in results.values()
    )
