"""Shared benchmark fixtures.

Every paper experiment is executed once per pytest session (module-level
caches inside :mod:`repro.bench.experiments`); the ``benchmark`` fixture then
times a representative kernel so ``pytest-benchmark`` reports something
meaningful without re-running multi-second experiments dozens of times.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sampling import RRRSampler, SamplingConfig
from repro.diffusion.base import get_model
from repro.graph.datasets import load_dataset


@pytest.fixture(scope="session")
def amazon_ic_graph():
    return load_dataset("amazon", model="IC", seed=0)


@pytest.fixture(scope="session")
def amazon_store(amazon_ic_graph):
    """A 300-set RRR store on the amazon replica (shared kernel workload)."""
    sampler = RRRSampler(
        get_model("IC", amazon_ic_graph),
        SamplingConfig.efficientimm(num_threads=1),
        seed=0,
    )
    sampler.extend(300)
    return sampler


def print_table(table) -> None:
    """Print an experiment table so ``pytest -s`` / captured output shows
    the regenerated rows (mirrors the CLI output)."""
    print(table.render())
