"""Shared benchmark fixtures.

Every paper experiment is executed once per pytest session (module-level
caches inside :mod:`repro.bench.experiments`); the ``benchmark`` fixture then
times a representative kernel so ``pytest-benchmark`` reports something
meaningful without re-running multi-second experiments dozens of times.

Perf trajectory: benchmarks emit machine-diffable records in the unified
``repro-bench/1`` schema (see :func:`repro.bench.report.write_bench_record`)
via the ``bench_record`` fixture.  Set ``REPRO_BENCH_OUT=<dir>`` to write
one ``BENCH_<name>.json`` per recording benchmark; unset, records are
validated but not persisted, so plain test runs stay side-effect free.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.bench.report import write_bench_record
from repro.core.sampling import RRRSampler, SamplingConfig
from repro.diffusion.base import get_model
from repro.graph.datasets import load_dataset


@pytest.fixture(scope="session")
def amazon_ic_graph():
    return load_dataset("amazon", model="IC", seed=0)


@pytest.fixture(scope="session")
def amazon_store(amazon_ic_graph):
    """A 300-set RRR store on the amazon replica (shared kernel workload)."""
    sampler = RRRSampler(
        get_model("IC", amazon_ic_graph),
        SamplingConfig.efficientimm(num_threads=1),
        seed=0,
    )
    sampler.extend(300)
    return sampler


@pytest.fixture(scope="session")
def bench_out_dir() -> Path | None:
    """Where BENCH_*.json records go; ``None`` disables persistence."""
    out = os.environ.get("REPRO_BENCH_OUT")
    return Path(out) if out else None


@pytest.fixture
def bench_record(bench_out_dir, tmp_path):
    """Emit one unified bench record: ``bench_record(name, table=, **fields)``.

    Always writes (to ``tmp_path`` when ``REPRO_BENCH_OUT`` is unset) so the
    schema path is exercised on every run; returns the written path.
    """

    def _record(name: str, *, table=None, **fields) -> Path:
        out_dir = bench_out_dir if bench_out_dir is not None else tmp_path
        return write_bench_record(
            out_dir / f"BENCH_{name}.json", name, table=table, fields=fields
        )

    return _record


def print_table(table) -> None:
    """Print an experiment table so ``pytest -s`` / captured output shows
    the regenerated rows (mirrors the CLI output)."""
    print(table.render())
