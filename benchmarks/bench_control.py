"""Control-plane bench (our addition): reconcile-tick latency and
time-to-recover.

The control plane's overhead claim is that the probe → policy → apply
loop is cheap relative to the serving work it supervises: a reconcile
tick over a live cluster is sub-millisecond-ish (probing is stats-surface
reads plus one telemetry snapshot diff; policies are pure arithmetic), so
running it every second costs the data plane nothing measurable.  Its
recovery claim is that a killed replica is detected and re-warmed within
one tick — time-to-recover is bounded by the tick interval, not by a
cold rebuild.

Recorded:

- ``tick_p50_ms`` / ``tick_p99_ms`` — reconcile latency over a healthy
  cluster (no actions proposed: the steady-state cost);
- ``recover_ms`` — median wall-clock of kill → tick → revived-and-warm,
  i.e. the controller's detection + re-warm cost with the interval
  removed (ticks are driven back-to-back here);
- ``recover_speedup_vs_cold`` — the same recovery measured against a
  cold streaming rebuild of the shard's sub-sketch, the cost the re-warm
  path avoids.

``REPRO_BENCH_SMOKE=1`` shrinks the sketch so the CI benchmark-smoke job
finishes quickly.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import telemetry
from repro.bench.report import Table
from repro.control import (
    AutoscaleConfig,
    AutoscalePolicy,
    Controller,
    HealthProbe,
    SelfHealConfig,
    SelfHealPolicy,
)
from repro.graph.datasets import load_dataset
from repro.service import IMQuery
from repro.shard import ShardCluster, ShardPlan, SketchSpec

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
THETA = 300 if SMOKE else 2000
TICKS = 20 if SMOKE else 100
KILLS = 5 if SMOKE else 20
DATASET = "amazon"
SEED = 7


def _make_cluster():
    plan = ShardPlan(num_shards=2, replication=2)
    cluster = ShardCluster(plan)
    graph = load_dataset(DATASET, model="IC", seed=SEED)
    cluster.install_graph(DATASET, graph)
    cluster.build(
        SketchSpec(dataset=DATASET, model="IC", seed=SEED, num_sets=THETA)
    )
    return cluster


def _make_controller(cluster):
    return Controller(
        HealthProbe(cluster=cluster),
        # The cluster's shape is the fixed workload here: pin the
        # autoscaler to replication 2 so only the self-heal path fires.
        # The repeated deliberate kills below must not look like flapping.
        [
            SelfHealPolicy(SelfHealConfig(flap_threshold=KILLS + 1)),
            AutoscalePolicy(
                AutoscaleConfig(min_replicas=2, max_replicas=2)
            ),
        ],
        cluster=cluster,
        sleep=lambda _s: None,
    )


def test_control_tick_and_recovery(bench_record):
    query = IMQuery(
        dataset=DATASET, model="IC", k=10, seed=SEED, theta_cap=THETA
    )
    with telemetry.session(), _make_cluster() as cluster:
        controller = _make_controller(cluster)
        expected = cluster.query(query)
        assert expected.ok and not expected.degraded

        # Steady state: reconcile over a healthy cluster, no actions.
        tick_s = []
        for _ in range(TICKS):
            t0 = time.perf_counter()
            report = controller.tick()
            tick_s.append(time.perf_counter() - t0)
            assert report.outcomes == []

        # Recovery: kill + drop cache, one tick revives and re-warms.
        recover_s = []
        victim = cluster.worker(0, 1)
        for _ in range(KILLS):
            cluster.kill(0, 1)
            victim.engine.cache.clear()
            t0 = time.perf_counter()
            report = controller.tick()
            recover_s.append(time.perf_counter() - t0)
            assert [a["kind"] for a in report.outcomes] == ["revive"]
            assert not victim.dead
        assert victim.stats.cold_builds == 0
        resp = cluster.query(query)
        assert resp.seeds == expected.seeds and not resp.degraded

        # The avoided cost: a cold streaming rebuild of the same slice.
        victim.engine.cache.clear()
        t0 = time.perf_counter()
        victim.session_open("bench", SketchSpec(
            dataset=DATASET, model="IC", seed=SEED, num_sets=THETA
        ))
        cold_s = time.perf_counter() - t0
        assert victim.stats.cold_builds == 1

    tick_p50_ms = float(np.percentile(tick_s, 50) * 1e3)
    tick_p99_ms = float(np.percentile(tick_s, 99) * 1e3)
    recover_ms = float(np.median(recover_s) * 1e3)
    speedup = float(cold_s / np.median(recover_s))

    print(
        f"\ntick p50 {tick_p50_ms:.3f} ms  p99 {tick_p99_ms:.3f} ms  "
        f"recover {recover_ms:.3f} ms  cold rebuild {cold_s * 1e3:.1f} ms "
        f"({speedup:.1f}x)"
    )

    table = Table(
        title="Control-plane reconcile cost",
        columns=["metric", "value_ms"],
    )
    table.add_row("tick_p50", tick_p50_ms)
    table.add_row("tick_p99", tick_p99_ms)
    table.add_row("recover_median", recover_ms)
    table.add_row("cold_rebuild", cold_s * 1e3)
    bench_record(
        "control_reconcile",
        theta=THETA, ticks=TICKS, kills=KILLS,
        tick_p50_ms=tick_p50_ms, tick_p99_ms=tick_p99_ms,
        recover_ms=recover_ms, cold_rebuild_ms=cold_s * 1e3,
        recover_speedup_vs_cold=speedup,
        table=table,
    )

    # Recovery must beat the cold rebuild it replaces.
    assert np.median(recover_s) < cold_s
