"""Figure 1 — Ripples strong scaling saturates early (LT before IC).

Regenerates the motivation figure: Ripples' speedup-over-1-thread for the
LT and IC models on the web-Google replica.  Shape assertions: scaling
saturates well below the 128-core machine and the LT model saturates no
later than IC (the paper observes ~4 threads for LT vs ~32 for IC).
"""

import pytest

from repro.bench.experiments import experiment_fig1, get_profiles
from repro.simmachine.cost import CostModel
from repro.simmachine.topology import perlmutter

from conftest import print_table


@pytest.fixture(scope="module")
def fig1():
    return experiment_fig1("google")


def test_fig1_ripples_saturation(benchmark, fig1):
    cm = CostModel(perlmutter())
    prof = get_profiles("google", "IC")["Ripples"]
    benchmark(lambda: cm.total_time_s(prof, 32))

    print_table(fig1)
    curves = fig1.data
    for model in ("IC", "LT"):
        sat = curves[model].saturation_threads()
        assert sat <= 64, (model, sat)  # saturates below the machine size
    # LT's tiny-set workload stops scaling no later than IC's.
    assert curves["LT"].saturation_threads() <= curves["IC"].saturation_threads()
    # Speedup at 128 threads is far below ideal for both models.
    for model in ("IC", "LT"):
        c = curves[model]
        s128 = c.times_s[0] / c.times_s[-1]
        assert s128 < 40.0, (model, s128)
