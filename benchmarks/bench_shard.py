"""Sharded-serving bench (our addition): 1 -> 8 shard scaling curve.

The shard layer's claim is that partitioning the RRR sketch across
workers (a) shrinks the per-worker memory footprint — the HBMax-style
memory-per-shard curve — and (b) buys selection throughput once each
shard runs on its own host.  The cluster here is in-process and serves a
scatter sequentially, so raw wall-clock *cannot* show the parallel gain;
following the simmachine philosophy we price the measured per-entry
selection cost into a modeled parallel latency instead:

    modeled_latency(S) = cost_per_entry * max_entries(S)

where ``cost_per_entry`` is the warm selection busy-time of the 1-shard
cluster divided by total sketch entries, and ``max_entries(S)`` is the
heaviest shard under the S-way consistent-hash plan (the straggler that
bounds a parallel scatter-gather round).  Both inputs are deterministic
under a fixed seed, so the recorded throughput curve is too.

Also recorded, without scaling assertions: the measured sequential
query throughput and p99 latency of the in-process cluster (the price
of routing itself), and the gather fan-in.

``REPRO_BENCH_SMOKE=1`` shrinks the sketch so the CI benchmark-smoke job
finishes quickly.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.bench.report import Table
from repro.service import IMQuery
from repro.shard import ShardCluster, ShardPlan, SketchSpec

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
THETA = 300 if SMOKE else 2000
REPEATS = 3 if SMOKE else 10
SHAPES = (1, 2, 4, 8)
K = 10
SEED = 7

SESSION_OPS = ("session_open", "session_cover", "session_counts")


def _instrument(cluster, busy):
    """Wrap every worker's session ops to accumulate per-worker busy time."""
    for w in cluster.workers:
        busy[w.name] = 0.0
        for op in SESSION_OPS:
            original = getattr(w, op)

            def timed(*a, _orig=original, _name=w.name, **kw):
                t0 = time.perf_counter()
                try:
                    return _orig(*a, **kw)
                finally:
                    busy[_name] += time.perf_counter() - t0

            setattr(w, op, timed)


def _measure_shape(num_shards):
    q = IMQuery(dataset="amazon", k=K, theta_cap=THETA, seed=SEED)
    busy = {}
    with ShardCluster(ShardPlan(num_shards=num_shards)) as cluster:
        _instrument(cluster, busy)
        cold = cluster.query(q)
        assert cold.status == "ok" and not cold.degraded

        spec = SketchSpec.from_query(q, THETA)
        entries, bytes_per_shard = [], []
        for shard in range(num_shards):
            w = cluster.worker(shard, 0)
            info = w.session_open("bench-probe", spec)
            store = w.engine.cache.get(info.shard_fingerprint).store
            entries.append(int(store.total_entries))
            bytes_per_shard.append(int(info.sketch_bytes))
            w.session_close("bench-probe")

        latencies, max_busies = [], []
        for _ in range(REPEATS):
            for name in busy:
                busy[name] = 0.0
            t0 = time.perf_counter()
            resp = cluster.query(q)
            latencies.append(time.perf_counter() - t0)
            assert resp.status == "ok" and resp.cached
            assert resp.seeds == cold.seeds
            max_busies.append(max(busy.values()))

    return {
        "num_shards": num_shards,
        "total_entries": int(sum(entries)),
        "max_entries": int(max(entries)),
        "peak_sketch_bytes": int(max(bytes_per_shard)),
        "max_busy_s": float(min(max_busies)),
        "measured_qps": float(1.0 / np.median(latencies)),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
    }


def test_shard_scaling_curve(bench_record):
    rows = [_measure_shape(s) for s in SHAPES]

    # Price the 1-shard selection cost per entry into each shape's
    # heaviest shard: the modeled parallel latency of one query round-set.
    base = rows[0]
    cost_per_entry = base["max_busy_s"] / base["total_entries"]
    for row in rows:
        row["modeled_latency_s"] = cost_per_entry * row["max_entries"]
        row["modeled_qps"] = 1.0 / row["modeled_latency_s"]

    print(f"\n{'shards':>6} {'max_entries':>11} {'peak_bytes':>10} "
          f"{'modeled_qps':>11} {'measured_qps':>12} {'p99_ms':>8}")
    for r in rows:
        print(f"{r['num_shards']:>6} {r['max_entries']:>11} "
              f"{r['peak_sketch_bytes']:>10} {r['modeled_qps']:>11.1f} "
              f"{r['measured_qps']:>12.1f} {r['p99_ms']:>8.2f}")

    columns = [
        "num_shards", "max_entries", "peak_sketch_bytes",
        "modeled_qps", "measured_qps", "p99_ms",
    ]
    table = Table(title="Shard scaling 1 -> 8", columns=columns)
    for r in rows:
        table.add_row(*(r[c] for c in columns))
    bench_record(
        "shard_scaling",
        theta=THETA, k=K, repeats=REPEATS,
        cost_per_entry_s=cost_per_entry,
        table=table,
    )

    # Monotone modeled throughput gain 1 -> 8 shards: the heaviest shard
    # shrinks, so the parallel round-set it bounds gets faster.
    qps = [r["modeled_qps"] for r in rows]
    assert all(b >= a for a, b in zip(qps, qps[1:])), qps
    assert qps[-1] > qps[0]

    # Falling per-worker memory: each worker holds only its shard.
    peak = [r["peak_sketch_bytes"] for r in rows]
    assert all(b < a for a, b in zip(peak, peak[1:])), peak
    assert rows[-1]["peak_sketch_bytes"] * 4 < rows[0]["peak_sketch_bytes"]
