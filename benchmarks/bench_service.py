"""Serving-layer bench (our addition): warm vs cold query latency.

The serving layer's claim is architectural, not algorithmic: once a
sketch is cached, a query pays only graph-free incremental selection —
no sampling, no graph load.  This bench measures the cold/warm latency
gap and the cache hit rate on a mixed 20-query workload, and emits both
as a ``repro-bench/1`` record.
"""

import time

import numpy as np

from repro.service import EngineConfig, IMQuery, QueryEngine

THETA = 2000


def _q(dataset, k, **kw):
    return IMQuery(dataset=dataset, k=k, theta_cap=THETA, **kw)


def test_warm_vs_cold_latency(benchmark, bench_record):
    with QueryEngine(config=EngineConfig(default_theta=THETA)) as eng:
        cold = eng.query(_q("amazon", 10))
        warm = benchmark.pedantic(
            lambda: eng.query(_q("amazon", 10)), rounds=3, iterations=1
        )
        assert cold.ok and not cold.cached
        assert warm.ok and warm.cached
        assert warm.seeds == cold.seeds

        # A mixed workload over two datasets: 2 cold passes serve 20 queries.
        rng = np.random.default_rng(11)
        t0 = time.perf_counter()
        responses = [
            eng.query(_q(["amazon", "dblp"][i % 2], int(rng.integers(1, 25))))
            for i in range(20)
        ]
        mixed_s = time.perf_counter() - t0
        assert all(r.ok for r in responses)
        hit_rate = eng.cache.stats.hit_rate

    speedup = cold.latency_s / warm.latency_s if warm.latency_s else float("inf")
    print(
        f"\ncold {cold.latency_s * 1e3:.1f} ms -> warm {warm.latency_s * 1e3:.1f} ms "
        f"({speedup:.0f}x); 20-query mixed workload {mixed_s:.2f}s, "
        f"hit rate {hit_rate:.2f}"
    )
    bench_record(
        "service_warm_vs_cold",
        theta=THETA, k=10,
        cold_latency_s=cold.latency_s,
        warm_latency_s=warm.latency_s,
        warm_speedup=speedup,
        mixed_queries=20,
        mixed_workload_s=mixed_s,
        cache_hit_rate=hit_rate,
        cold_samples=eng.stats.cold_samples,
    )
    assert warm.latency_s < cold.latency_s
    assert hit_rate > 0.5
    assert eng.stats.cold_samples == 2
