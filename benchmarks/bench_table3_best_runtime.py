"""Table III — best runtime, EfficientIMM vs Ripples, IC and LT, 8 datasets.

Each (dataset, model) workload is really sampled and really selected (at
p=1, 2); the simulated Perlmutter node prices both frameworks across
1..128 threads and the best time per framework is reported — the paper's
"best execution time" methodology.  The Twitter7-IC Ripples cell reproduces
the paper's OOM via the paper-scale footprint projection.

Shape assertions: EfficientIMM wins on every workload; the aggregate mean
speedup falls in the paper's 1.2x-12.1x band neighbourhood; Ripples OOMs on
Twitter7-IC while EfficientIMM fits.
"""

import math

import numpy as np
import pytest

from repro.bench.experiments import (
    PAPER_TABLE3,
    experiment_table3,
    get_profiles,
    oom_projection,
)
from repro.simmachine.cost import CostModel
from repro.simmachine.topology import perlmutter

from conftest import print_table


@pytest.fixture(scope="module")
def table3():
    return experiment_table3()


def test_table3_best_runtime(benchmark, table3):
    # Benchmark the pricing kernel: one full scaling curve evaluation.
    cm = CostModel(perlmutter())
    prof = get_profiles("amazon", "IC")["EfficientIMM"]
    benchmark(lambda: cm.scaling_curve(prof))

    print_table(table3)
    speedups = []
    deeper_scaling = 0
    for (name, model), row in table3.data.items():
        rip, eimm = row["Ripples"], row["EfficientIMM"]
        assert eimm.best_time_s < rip.best_time_s, (name, model)
        speedups.append(rip.best_time_s / eimm.best_time_s)
        deeper_scaling += eimm.best_threads >= rip.best_threads
    # EfficientIMM's best thread count is at least Ripples' on nearly all
    # workloads (the paper itself notes small datasets lose parallelisation
    # opportunity at 128 threads, so we allow a couple of exceptions).
    assert deeper_scaling >= len(table3.data) - 2

    mean_speedup = float(np.mean(speedups))
    # Paper: 1.6x-12.1x per dataset, 5.9x average.  Same universe required
    # (the floor allows the tightly capped Twitter7-IC workload, whose paper
    # cell is OOM rather than a ratio).
    assert 1.05 < min(speedups)
    assert 2.0 < mean_speedup < 25.0
    print(f"\nmean best-vs-best speedup: {mean_speedup:.1f}x (paper avg 5.9x)")


def test_table3_twitter7_oom(benchmark):
    proj = benchmark(lambda: oom_projection("twitter7", "IC"))
    # Ripples' sorted-vector store exceeds the 512 GB node at paper scale;
    # EfficientIMM's adaptive bitmaps fit with a wide margin.
    assert proj["ripples_oom"]
    assert not proj["efficientimm_oom"]
    assert proj["efficientimm_bytes"] < 0.25 * proj["ripples_bytes"]
    print(
        f"\ntwitter7 projection: theta={proj['theta']:.0f}, "
        f"Ripples {proj['ripples_bytes'] / 2**30:.0f} GiB vs "
        f"EfficientIMM {proj['efficientimm_bytes'] / 2**30:.0f} GiB "
        f"(budget {proj['budget_bytes'] / 2**30:.0f} GiB)"
    )


def test_table3_speedup_band_per_model(benchmark, table3):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # LT and IC each show wins (the paper's two sub-tables).
    for model in ("IC", "LT"):
        s = [
            row["Ripples"].best_time_s / row["EfficientIMM"].best_time_s
            for (name, m), row in table3.data.items()
            if m == model
        ]
        assert min(s) > 1.0, model
        assert max(s) > 2.0, model


def test_table3_paper_reference_complete(benchmark, table3):
    benchmark.pedantic(lambda: dict(PAPER_TABLE3), rounds=1, iterations=1)
    # Every (dataset, model) cell has a paper reference value recorded.
    for key in table3.data:
        assert key in PAPER_TABLE3
        rip_paper, eimm_paper = PAPER_TABLE3[key]
        assert eimm_paper > 0
        assert math.isnan(rip_paper) or rip_paper > 0
