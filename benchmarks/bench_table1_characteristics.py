"""Table I — graph and RRR-set characteristics (all 8 replica datasets).

Regenerates the paper's Table I: per dataset, the node/edge counts and the
average/maximum RRR coverage under the IC model with uniform edge weights.
Assertions pin the qualitative signature: coverage within a factor-2 band of
the paper's measurement, and as-Skitter as the ~1% outlier.
"""

import pytest

from repro.bench.experiments import experiment_table1
from repro.graph.datasets import DATASETS

from conftest import print_table


@pytest.fixture(scope="module")
def table1():
    return experiment_table1(num_samples=50, seed=1)


def test_table1_characteristics(benchmark, table1):
    # Benchmark the measurement primitive: coverage statistics of one store.
    from repro.core.sampling import RRRSampler, SamplingConfig
    from repro.diffusion.base import get_model
    from repro.graph.datasets import load_dataset
    from repro.sketch.stats import coverage_stats

    g = load_dataset("dblp", model="IC")
    sampler = RRRSampler(
        get_model("IC", g), SamplingConfig.efficientimm(), seed=0
    )
    sampler.extend(40)
    benchmark(lambda: coverage_stats(sampler.store))

    print_table(table1)
    data = table1.data
    for name, spec in DATASETS.items():
        cs = data[name]
        assert spec.paper_avg_coverage / 2.2 < cs.avg_coverage < (
            spec.paper_avg_coverage * 2.2
        ), name
        assert cs.max_coverage >= cs.avg_coverage

    # The discriminating structure of Table I: skitter is the outlier.
    assert data["skitter"].avg_coverage < 0.05
    for dense in ("amazon", "livejournal", "pokec", "twitter7"):
        assert data[dense].avg_coverage > 0.4, dense
