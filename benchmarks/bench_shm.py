"""Shared-memory sketch plane bench: handoff bytes, startup, private RSS.

The :mod:`repro.shm` plane's claim is that moving a sketch or graph to
another process costs a :class:`~repro.shm.SegmentHandle` (a few hundred
bytes), not a pickle of the payload, and that N attached consumers share
one copy of the bytes.  Three measurements, all deterministic under a
fixed seed:

- **handoff** — ``pickle.dumps(store)`` versus ``pickle.dumps(handle)``;
  the redesign's headline number, asserted at >= 5x smaller (in practice
  it is orders of magnitude);
- **startup** — wall-clock of spawn-mode ``parallel_generate`` whose
  workers unpickle the graph versus workers that attach the published
  segment, byte-identical results required;
- **private RSS** — a forked consumer that unpickles its own copy of the
  store versus one that attaches the segment, comparing the *private*
  resident growth each pays (``/proc/self/smaps_rollup``; recorded as -1
  where the kernel lacks it).  The attacher's pages stay shared with the
  publisher, so its private growth is header-sized, not payload-sized.

Every segment is reclaimed before the bench exits; the zero-leak
assertion is part of the bench, not just the tests.

``REPRO_BENCH_SMOKE=1`` shrinks the synthetic sketch so the CI
benchmark-smoke job finishes quickly.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from pathlib import Path

import numpy as np

from repro import shm
from repro.bench.report import Table
from repro.core.parallel_sampling import _init_worker, parallel_generate
from repro.graph.datasets import load_dataset
from repro.runtime.backends import MultiprocessBackend
from repro.sketch.protocol import make_store

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
NUM_SETS = 60_000 if SMOKE else 240_000
AVG_SET = 50
N_VERTICES = 50_000
SPAWN_SETS = 40 if SMOKE else 200
SEED = 17


def _synthetic_store():
    """A flat store with ~NUM_SETS * AVG_SET entries (payload in the MBs)."""
    rng = np.random.default_rng(SEED)
    sizes = rng.integers(AVG_SET // 2, AVG_SET * 2, size=NUM_SETS)
    offsets = np.zeros(NUM_SETS + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    vertices = rng.integers(0, N_VERTICES, size=int(offsets[-1])).astype(np.int32)
    return make_store(
        "flat", num_vertices=N_VERTICES, offsets=offsets, vertices=vertices
    )


def _private_kb() -> int | None:
    """This process's private resident memory in KiB (Linux), else None."""
    try:
        text = Path("/proc/self/smaps_rollup").read_text()
    except OSError:  # pragma: no cover - non-Linux / old kernel
        return None
    kb = 0
    for line in text.splitlines():
        if line.startswith(("Private_Clean:", "Private_Dirty:")):
            kb += int(line.split()[1])
    return kb


def _warm_child() -> None:
    """Pre-fault the shared code paths so the measured delta is the payload,
    not copy-on-write page faults from first touching the inherited heap."""
    tiny = make_store("flat", num_vertices=4)
    tiny.append(np.array([1, 2], dtype=np.int32))
    int(pickle.loads(pickle.dumps(tiny)).vertices.sum())


def _consume_pickled(blob, queue):
    """Fork child: unpickle a private copy of the store and touch it."""
    _warm_child()
    before = _private_kb()
    store = pickle.loads(blob)
    int(store.vertices.sum())  # touch every page, no payload-sized temps
    after = _private_kb()
    queue.put(-1 if before is None else max(0, after - before))


def _consume_shared(name, queue):
    """Fork child: attach the published segment and touch it."""
    _warm_child()
    before = _private_kb()
    view = shm.attach_store(name)
    int(view.vertices.sum())  # touch every page — stays shared with the publisher
    after = _private_kb()
    queue.put(-1 if before is None else max(0, after - before))
    view.detach()


def _child_private_kb(target, arg) -> int:
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    p = ctx.Process(target=target, args=(arg, queue))
    p.start()
    result = queue.get(timeout=120)
    p.join(timeout=30)
    return int(result)


def test_shm_handoff_and_rss(bench_record):
    store = _synthetic_store()
    pickled_bytes = len(pickle.dumps(store))

    with shm.SegmentManager(prefix="bshm") as mgr:
        handle = mgr.publish_store(store)
        handle_bytes = len(pickle.dumps(handle))
        ratio = pickled_bytes / handle_bytes

        # Attach cost is a header parse, independent of payload size.
        t0 = time.perf_counter()
        view = mgr.attach_store(handle)
        attach_s = time.perf_counter() - t0
        assert view.fingerprint() == store.fingerprint()
        view.detach()

        pickled_kb = _child_private_kb(_consume_pickled, pickle.dumps(store))
        shared_kb = _child_private_kb(_consume_shared, handle.name)
        assert mgr.leaked() == []
    assert shm.list_segments("bshm") == []  # zero leaked segments

    payload_mb = handle.payload_bytes / 2**20
    print(f"\npayload            {payload_mb:10.1f} MiB")
    print(f"pickled handoff    {pickled_bytes:>12,} B")
    print(f"segment handle     {handle_bytes:>12,} B   ({ratio:,.0f}x smaller)")
    print(f"attach latency     {attach_s * 1e3:10.3f} ms")
    print(f"consumer private RSS: pickled {pickled_kb:,} KiB, "
          f"shared {shared_kb:,} KiB")

    table = Table(
        title="Shared-memory handoff vs pickling",
        columns=["metric", "pickled", "shared"],
    )
    table.add_row("handoff_bytes", pickled_bytes, handle_bytes)
    table.add_row("consumer_private_rss_kb", pickled_kb, shared_kb)
    bench_record(
        "shm_handoff",
        payload_bytes=int(handle.payload_bytes),
        handoff_ratio=float(ratio),
        attach_s=float(attach_s),
        table=table,
    )

    # The redesign's headline: the handle is >= 5x smaller than the pickle.
    assert ratio >= 5, (pickled_bytes, handle_bytes)
    if pickled_kb >= 0 and shared_kb >= 0:
        # The attacher's private growth must undercut a private unpickled
        # copy of a multi-MB payload by at least half.
        assert shared_kb * 2 < pickled_kb, (shared_kb, pickled_kb)


def test_shm_spawn_startup(bench_record):
    graph = load_dataset("amazon", model="IC", seed=0)

    # Baseline: spawn workers that receive the graph as a pickle.
    t0 = time.perf_counter()
    backend = MultiprocessBackend(
        2,
        initializer=_init_worker,
        initargs=(graph, "IC"),
        start_method="spawn",
    )
    try:
        pickled_store = parallel_generate(
            graph, "IC", SPAWN_SETS, num_workers=2, seed=SEED, backend=backend
        )
    finally:
        backend.close()
    pickled_s = time.perf_counter() - t0

    # Shared: spawn workers that attach the published graph segment.
    t0 = time.perf_counter()
    shared_store = parallel_generate(
        graph, "IC", SPAWN_SETS, num_workers=2, seed=SEED, start_method="spawn"
    )
    shared_s = time.perf_counter() - t0

    assert shared_store.fingerprint() == pickled_store.fingerprint()
    assert shm.list_segments() == []  # the call unlinked its graph segment

    print(f"\nspawn startup+run: pickled graph {pickled_s:.2f}s, "
          f"shared segment {shared_s:.2f}s")
    table = Table(
        title="Spawn-mode sampling handoff",
        columns=["mode", "wall_s"],
    )
    table.add_row("pickled_graph", round(pickled_s, 4))
    table.add_row("shared_segment", round(shared_s, 4))
    bench_record(
        "shm_spawn_startup",
        num_sets=SPAWN_SETS,
        pickled_s=float(pickled_s),
        shared_s=float(shared_s),
        table=table,
    )
