"""Testbed contrast (our addition): why the problem was invisible in 2019.

The paper's motivation (§I) notes that the original Ripples evaluation ran
on a 10-core single-NUMA node, where its vertex-partitioned design was
adequate; the pathology appears on modern multi-NUMA many-core machines.
This bench prices the *same measured workload* on both machines:

- on the 2019 10-core testbed the EfficientIMM-over-Ripples advantage is
  modest (little parallelism to waste, uniform memory);
- on the 128-core Perlmutter node the gap opens to the paper's multiples.

This is the cleanest falsifiable statement of the paper's thesis — the
win comes from the machine change, not from a weak baseline.
"""

import pytest

from repro.bench.experiments import get_profiles
from repro.simmachine.cost import CostModel
from repro.simmachine.topology import perlmutter, ripples_testbed


@pytest.fixture(scope="module")
def profiles():
    return get_profiles("google", "IC")


def test_testbed_contrast(benchmark, profiles):
    old = CostModel(ripples_testbed())
    new = CostModel(perlmutter())
    benchmark(lambda: old.scaling_curve(profiles["Ripples"], [1, 2, 4, 8, 10]))

    def best_speedup(cm, threads):
        rip = cm.scaling_curve(profiles["Ripples"], threads).best_time
        eimm = cm.scaling_curve(profiles["EfficientIMM"], threads).best_time
        return rip / eimm

    gap_2019 = best_speedup(old, [1, 2, 4, 8, 10])
    gap_2024 = best_speedup(new, [1, 2, 4, 8, 16, 32, 64, 128])
    print(
        f"\nEfficientIMM best-vs-best advantage: "
        f"{gap_2019:.1f}x on the 2019 10-core testbed, "
        f"{gap_2024:.1f}x on the 128-core Perlmutter node"
    )
    # The paper's thesis: the multi-NUMA machine at least doubles the gap.
    assert gap_2024 > 2.0 * gap_2019
    assert gap_2019 > 1.0  # work-efficiency helps a little everywhere


def test_ripples_scaled_fine_in_2019(benchmark, profiles):
    """On its original testbed Ripples kept scaling to all 10 cores."""
    cm = CostModel(ripples_testbed())
    curve = benchmark.pedantic(
        lambda: cm.scaling_curve(profiles["Ripples"], [1, 2, 4, 8, 10]),
        rounds=1, iterations=1,
    )
    # Monotone improvement through the whole 2019 machine.
    assert curve.best_threads >= 8
    assert curve.times_s[-1] < 0.6 * curve.times_s[0]
