"""Figure 2 — Ripples runtime breakdown on web-Google (IC and LT).

Regenerates the kernel-share bars: Generate_RRRsets and
Find_Most_Influential_Set dominate at every core count, and the selection
kernel's share *grows* with cores — the scalability killer the paper
identifies.
"""

import pytest

from repro.bench.experiments import experiment_fig2, get_profiles
from repro.simmachine.cost import CostModel
from repro.simmachine.topology import perlmutter

from conftest import print_table


@pytest.fixture(scope="module")
def fig2():
    return experiment_fig2("google")


def test_fig2_breakdown(benchmark, fig2):
    cm = CostModel(perlmutter())
    prof = get_profiles("google", "IC")["Ripples"]
    benchmark(lambda: [cm.total_time_s(prof, p) for p in (1, 16, 128)])

    print_table(fig2)
    data = fig2.data
    for model in ("IC", "LT"):
        # The two key kernels dominate everywhere (>= 80% of runtime).
        for p in (1, 4, 16, 64, 128):
            st = data[(model, p)]
            dominant = (
                st["Generate_RRRsets"] + st["Find_Most_Influential_Set"]
            ) / st["Total"]
            assert dominant > 0.8, (model, p, dominant)
        # Selection's share grows with cores (Figure 2's message).
        share_1 = (
            data[(model, 1)]["Find_Most_Influential_Set"]
            / data[(model, 1)]["Total"]
        )
        share_128 = (
            data[(model, 128)]["Find_Most_Influential_Set"]
            / data[(model, 128)]["Total"]
        )
        assert share_128 > share_1, model
