"""Figure 7 — strong scaling, IC model, both frameworks, all 8 datasets.

The IC companion of Figure 6; same normalisation and shape assertions, plus
the IC-specific observation that Ripples manages some scaling before
saturating (unlike LT's early collapse).
"""

import numpy as np
import pytest

from repro.bench.experiments import experiment_fig7
from repro.graph.datasets import dataset_names

from conftest import print_table


@pytest.fixture(scope="module")
def fig7():
    return experiment_fig7()


def test_fig7_ic_scaling(benchmark, fig7):
    data = fig7.data
    benchmark(lambda: data[("google", "EfficientIMM")].speedup_vs(1.0))

    print_table(fig7)
    deeper = 0
    for name in dataset_names():
        rip = data[(name, "Ripples")]
        eimm = data[(name, "EfficientIMM")]
        assert eimm.best_time < rip.best_time, name
        deeper += eimm.saturation_threads() >= rip.saturation_threads()
    # Deeper scaling on nearly all datasets (small capped workloads may
    # saturate early, as the paper notes for its smallest graphs).
    assert deeper >= len(dataset_names()) - 1


def test_fig7_speedup_band(benchmark, fig7):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    data = fig7.data
    speedups = [
        data[(n, "Ripples")].best_time / data[(n, "EfficientIMM")].best_time
        for n in dataset_names()
    ]
    # Paper's IC range is ~1.2x-12x across datasets.
    assert min(speedups) > 1.0
    assert float(np.mean(speedups)) > 2.0
