"""Microbench (our addition): inverted index vs linear scan in the store.

``FlatRRRStore.sets_containing()`` is the provenance query the incremental
maintainer issues once per perturbed endpoint per update batch.  The
linear scan re-reads the whole flat vertex array every call; the lazily
built inverted index pays one ``argsort`` after a mutation and then
answers each query in O(hits).  This bench measures both on a
maintainer-shaped workload — many queries against one frozen store — and
asserts they agree exactly.

``REPRO_BENCH_SMOKE=1`` shrinks the store so the CI benchmark-smoke job
finishes in well under a second.
"""

import os
import time

import numpy as np

from repro.sketch.store import FlatRRRStore

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
NUM_VERTICES = 1000 if SMOKE else 4000
NUM_SETS = 400 if SMOKE else 2000
NUM_QUERIES = 50 if SMOKE else 500


def build_store(seed=0):
    rng = np.random.default_rng(seed)
    s = FlatRRRStore(NUM_VERTICES, sort_sets=True)
    for _ in range(NUM_SETS):
        size = int(rng.integers(1, 60))
        s.append(rng.choice(NUM_VERTICES, size=size, replace=False))
    return s.trim()


def test_index_vs_linear_scan(bench_record):
    store = build_store()
    rng = np.random.default_rng(1)
    queries = rng.integers(0, NUM_VERTICES, size=NUM_QUERIES)

    t0 = time.perf_counter()
    scan = [store.sets_containing(int(v), use_index=False) for v in queries]
    scan_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    indexed = [store.sets_containing(int(v)) for v in queries]
    indexed_s = time.perf_counter() - t0  # includes the one-off build

    t0 = time.perf_counter()
    warm = [store.sets_containing(int(v)) for v in queries]
    warm_s = time.perf_counter() - t0

    for a, b, c in zip(scan, indexed, warm):
        assert np.array_equal(a, b) and np.array_equal(a, c)

    speedup_cold = scan_s / indexed_s if indexed_s else float("inf")
    speedup_warm = scan_s / warm_s if warm_s else float("inf")
    print(
        f"\n{NUM_QUERIES} queries over {NUM_SETS} sets: linear {scan_s:.4f}s, "
        f"index {indexed_s:.4f}s incl. build ({speedup_cold:.1f}x), "
        f"warm {warm_s:.4f}s ({speedup_warm:.1f}x)"
    )
    bench_record(
        "store_inverted_index",
        num_vertices=NUM_VERTICES,
        num_sets=NUM_SETS,
        num_queries=NUM_QUERIES,
        smoke=SMOKE,
        linear_scan_s=scan_s,
        indexed_incl_build_s=indexed_s,
        indexed_warm_s=warm_s,
        speedup_incl_build=speedup_cold,
        speedup_warm=speedup_warm,
    )
    # The index must win on a maintainer-shaped workload even paying for
    # its own build; a tie here means the cache is pointless.
    assert indexed_s < scan_s
    assert warm_s < scan_s
