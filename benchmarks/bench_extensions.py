"""Extension benches (beyond the paper's tables): the §VI related-work and
future-work systems, made measurable.

- **OPIM vs IMM** — the online algorithm certifies its seed set with far
  fewer RRR samples when epsilon is loose (Tang et al.'s early
  termination, cited in §VI).
- **HBMax-style compression** — space saved vs codec time on a real RRR
  workload (the paper's argument for adaptive plain representations).
- **Forward sketches (PacIM-style)** — the forward-direction baseline
  reaches comparable seed quality.
- **Distributed IMM** — the paper's future-work MPI extension on the
  simulated cluster: sampling scales with nodes until the per-round
  allreduce dominates.
"""

import numpy as np
import pytest

from repro.core import EfficientIMM, IMMParams
from repro.core.fis import fis_select
from repro.core.opim import run_opim
from repro.core.params import IMMParams as P
from repro.distributed import DistributedIMM, perlmutter_cluster
from repro.graph.datasets import load_dataset
from repro.sketch.compressed_store import CompressedRRRStore


@pytest.fixture(scope="module")
def amazon_ic_g():
    return load_dataset("amazon", model="IC", seed=0)


def test_opim_early_termination(benchmark, amazon_ic_g):
    params = IMMParams(k=10, epsilon=0.5, seed=1, theta_cap=4000)
    opim = benchmark.pedantic(
        lambda: run_opim(amazon_ic_g, params), rounds=1, iterations=1
    )
    imm = EfficientIMM(amazon_ic_g).run(params)
    print(
        f"\nOPIM: {opim.num_rrrsets} sets ({opim.iterations} iters, "
        f"ratio {opim.approx_guarantee:.3f}) vs IMM: {imm.num_rrrsets} sets"
    )
    assert opim.certified
    assert opim.num_rrrsets < 0.75 * imm.num_rrrsets


def test_compression_tradeoff(benchmark, amazon_store):
    """HBMax's trade: real space saved, real codec time paid."""
    sets = [amazon_store.store.get(i) for i in range(120)]
    n = amazon_store.store.num_vertices

    def build():
        store = CompressedRRRStore(n, codec="huffman", training_sets=24)
        for s in sets:
            store.append(s)
        store.finalize()
        return store

    store = benchmark.pedantic(build, rounds=1, iterations=1)
    raw_bytes = 4 * int(store.sizes().sum())
    print(
        f"\nhuffman: {store.nbytes():,} B vs raw {raw_bytes:,} B "
        f"(ratio {store.compression_ratio:.2f}x), "
        f"encode {store.encode_seconds * 1e3:.1f}ms"
    )
    assert store.compression_ratio > 1.2  # space is genuinely saved
    assert store.encode_seconds > 0.0  # ...and codec time genuinely paid


def test_forward_sketches_quality(benchmark, amazon_ic_g):
    from repro.diffusion import estimate_spread, get_model

    fis = benchmark.pedantic(
        lambda: fis_select(
            amazon_ic_g, 8, num_samples=6, num_hashes=32, seed=2
        ),
        rounds=1, iterations=1,
    )
    imm = EfficientIMM(amazon_ic_g).run(P(k=8, theta_cap=800, seed=2))
    model = get_model("IC", amazon_ic_g)
    s_fis = estimate_spread(model, fis.seeds, num_samples=60, seed=3).mean
    s_imm = estimate_spread(model, imm.seeds, num_samples=60, seed=3).mean
    print(f"\nFIS spread {s_fis:,.0f} vs IMM {s_imm:,.0f}")
    assert s_fis >= 0.8 * s_imm


def test_distributed_scaling(benchmark):
    graph = load_dataset("skitter", model="IC", seed=0)
    params = P(k=10, theta_cap=3000, seed=3)

    def run(nodes):
        return DistributedIMM(
            graph, perlmutter_cluster(nodes), threads_per_rank=16
        ).run(params)

    results = {nodes: run(nodes) for nodes in (1, 2, 4, 8, 16)}
    benchmark.pedantic(lambda: run(4), rounds=1, iterations=1)

    print()
    for nodes, res in results.items():
        print(f"  {nodes:2d} nodes: {res.summary()}")
    # Sampling compute shrinks with nodes; communication grows; total
    # improves initially then saturates — the classic distributed IMM shape.
    assert results[4].sampling_time_s < results[1].sampling_time_s
    assert results[16].comm.comm_time_s > results[2].comm.comm_time_s
    assert min(r.total_time_s for r in results.values()) < results[1].total_time_s
    # All node counts produce seed sets of identical size and same quality
    # class (the collectives are exact; only set partitioning differs).
    for res in results.values():
        assert res.seeds.size == params.k
