"""Shared-counter coherence ablation (§IV-A): what the atomics really cost.

EfficientIMM's global counter takes fine-grained 64-bit atomic adds from
every thread.  This bench replays *real* counter-update traffic (the
update streams of an actual selection workload on the amazon replica,
where ~60% coverage makes every set hit the same hub counters) through the
coherence tracker and prices three sharing disciplines:

- **shared counter + atomics** (the paper's design): updates ride the
  cache-coherence protocol; cost = line-ownership transfers x transfer
  latency.  On this workload the counter lines ping-pong on ~17% of
  updates — real but bounded contention.
- **shared counter + one global lock** (the naive alternative): every
  update serialises; cost = every update x transfer latency.
- **private per-thread counters + merge** (Ripples' discipline): zero
  sharing during counting, paid for with a p-way merge of n counters at
  the end — cheap here, but it is exactly the design that forces Ripples'
  selection to re-traverse all sets per thread (the paper's Challenge 1),
  so its "win" on this metric is bought with the p-fold traffic Table IV
  measures.

Assertions: atomics beat the global lock by >3x; the private-counter merge
is cheapest on this metric alone (which is the point — the trade-off lives
elsewhere).
"""

import numpy as np
import pytest

from repro.runtime.partition import block_partition
from repro.simmachine.coherence import CoherenceTracker
from repro.simmachine.topology import perlmutter

from conftest import print_table

THREADS = 8
CHUNK = 64  # updates per scheduling quantum in the interleaved replay


@pytest.fixture(scope="module")
def update_streams(amazon_store):
    """Per-thread counter-update address streams from a real selection:
    each thread decrements the vertices of its own partition's sets."""
    store = amazon_store.store
    bounds = block_partition(len(store), THREADS)
    streams = []
    for lo, hi in bounds:
        arr = np.concatenate(
            [store.get(i).astype(np.int64) * 8 for i in range(lo, hi)]
        )
        streams.append(arr)
    return streams


def _interleaved_transfers(streams, chunk=CHUNK):
    """Round-robin the per-thread streams in ``chunk``-sized quanta
    (modelling concurrent execution) and count line-ownership transfers."""
    tracker = CoherenceTracker(THREADS, line_bytes=64)
    pos = [0] * THREADS
    progressed = True
    while progressed:
        progressed = False
        for w, arr in enumerate(streams):
            if pos[w] < arr.size:
                tracker.write(w, arr[pos[w] : pos[w] + chunk])
                pos[w] += chunk
                progressed = True
    return tracker.stats.invalidations, tracker.stats.writes


def test_shared_counter_coherence(benchmark, update_streams, amazon_store):
    topo = perlmutter()
    transfers, writes = benchmark.pedantic(
        lambda: _interleaved_transfers(update_streams),
        rounds=1, iterations=1,
    )
    n = amazon_store.store.num_vertices

    atomics_ns = transfers * topo.atomic_conflict_ns
    global_lock_ns = writes * topo.atomic_conflict_ns  # full serialisation
    # Private counters: no transfers while counting; the merge moves
    # (p-1) private vectors of n int64 counters, 8 per line.
    merge_transfers = (THREADS - 1) * (n * 8 // 64)
    private_ns = merge_transfers * topo.atomic_conflict_ns

    from repro.bench.report import Table

    table = Table(
        f"Shared-counter coherence — {writes:,} real updates, "
        f"{THREADS} threads",
        ["discipline", "transfers", "per update", "modelled cost"],
    )
    for name, tr, ns in (
        ("shared + 64-bit atomics (paper)", transfers, atomics_ns),
        ("shared + global lock", writes, global_lock_ns),
        ("private + merge (Ripples)", merge_transfers, private_ns),
    ):
        table.add_row(name, tr, f"{tr / writes:.4f}", f"{ns * 1e-6:.2f} ms")
    print_table(table)

    # Atomics are far cheaper than lock-based sharing...
    assert atomics_ns < global_lock_ns / 3.0
    # ...but the hub-heavy workload does ping-pong a real fraction of lines,
    assert 0.02 < transfers / writes < 0.6
    # ...and the private-counter discipline wins this metric in isolation —
    # its cost lives in the p-fold set traversal instead (Table IV).
    assert private_ns < atomics_ns
