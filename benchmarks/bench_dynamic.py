"""Dynamic-maintenance bench (our addition): repair vs full recompute.

The claim behind ``repro.dynamic``: after a small update batch, patching
the sketch (provenance invalidation + resample + insert extension) beats
rebuilding it, while the repaired sketch's seeds stay within tolerance of
a full recompute.  This bench sweeps update-batch sizes around the 1%
acceptance point on the skitter replica with a realistic insert-heavy mix
(94% insert / 3% delete / 3% reweight), and records:

- repair vs full-rebuild wall time (the speedup),
- the invalidated fraction (the < 25% resample bound at 1%),
- a quality gate — simulated spread of the repaired sketch's seeds within
  2% of a freshly built sketch's seeds on the updated graph,
- byte-identical determinism of the repair under a fixed seed.

``REPRO_BENCH_SMOKE=1`` shrinks the sketch and skips the sweep so the CI
benchmark-smoke job can execute the full code path in seconds.
"""

import os
import time

import numpy as np
import pytest

from repro.diffusion.base import get_model
from repro.diffusion.spread import estimate_spread
from repro.dynamic import DeltaGraph, IncrementalMaintainer
from repro.graph.datasets import load_dataset

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
NUM_SETS = 300 if SMOKE else 2000
K = 10
EVAL_SAMPLES = 50 if SMOKE else 200
BATCH_FRACTIONS = (0.01,) if SMOKE else (0.005, 0.01, 0.02)
SEED = 1


@pytest.fixture(scope="module")
def skitter():
    return load_dataset("skitter", model="IC", seed=0)


def make_batch(delta, fraction, rng):
    """Stage a 94/3/3 insert/delete/reweight batch of ``fraction * m``.

    Inserted and reweighted edges get weak probabilities (0.01-0.1): new
    ties in a stream are weak, and the skitter replica's existing IC
    weights are heavy (median 0.5), so strong synthetic inserts would make
    every extension BFS as expensive as a fresh sample and say nothing
    about the realistic regime."""
    n = delta.num_vertices
    src, dst, _ = delta.compact().edge_array()
    size = max(1, int(round(fraction * src.size)))
    n_ins = int(round(0.94 * size))
    n_del = int(round(0.03 * size))
    n_rew = size - n_ins - n_del
    staged = 0
    while staged < n_ins:
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u == v or delta.has_edge(u, v):
            continue
        delta.insert(u, v, float(rng.uniform(0.01, 0.1)))
        staged += 1
    existing = rng.choice(src.size, size=n_del + n_rew, replace=False)
    for j in existing[:n_del]:
        delta.delete(int(src[j]), int(dst[j]))
    for j in existing[n_del:]:
        delta.reweight(int(src[j]), int(dst[j]), float(rng.uniform(0.01, 0.1)))
    return delta.commit()


def repair_once(graph, fraction, *, seed=SEED, batch_seed=7):
    """One build → batch → repair cycle; returns (maintainer, report)."""
    delta = DeltaGraph(graph)
    m = IncrementalMaintainer(delta, num_sets=NUM_SETS, seed=seed)
    commit = make_batch(delta, fraction, np.random.default_rng(batch_seed))
    report = m.apply(commit)
    return m, report


def test_repair_speedup_and_quality(skitter, bench_record):
    rows = []
    for fraction in BATCH_FRACTIONS:
        m, report = repair_once(skitter, fraction)

        # Full recompute on the updated graph: a fresh maintainer at the
        # committed epoch (same sketch shape, its own root draws).
        t0 = time.perf_counter()
        fresh = IncrementalMaintainer(m.delta, num_sets=NUM_SETS, seed=SEED + 1)
        full_s = time.perf_counter() - t0
        speedup = full_s / report.elapsed_s if report.elapsed_s else float("inf")

        rows.append(
            {
                "batch_fraction": fraction,
                "updates": report.inserted + report.deleted + report.reweighted,
                "mode": report.mode,
                "invalidated_fraction": round(report.invalidated_fraction, 4),
                "extended": report.extended,
                "repair_s": round(report.elapsed_s, 4),
                "full_rebuild_s": round(full_s, 4),
                "speedup": round(speedup, 2),
            }
        )

        if fraction == 0.01:
            # Acceptance gates at the 1% point.
            assert report.mode == "repair"
            assert report.invalidated_fraction < 0.25
            assert report.elapsed_s < full_s

            # Quality: repaired seeds vs freshly-built seeds on the updated
            # graph, simulated with a common evaluation stream.
            model = get_model("IC", m.delta.compact())
            repaired = estimate_spread(
                model, m.select(K).seeds, num_samples=EVAL_SAMPLES, seed=123
            )
            rebuilt = estimate_spread(
                model, fresh.select(K).seeds, num_samples=EVAL_SAMPLES, seed=123
            )
            rel = repaired.mean / rebuilt.mean
            rows[-1]["repaired_spread"] = round(repaired.mean, 1)
            rows[-1]["rebuilt_spread"] = round(rebuilt.mean, 1)
            rows[-1]["spread_ratio"] = round(rel, 4)
            assert rel >= 0.98, (
                f"repaired spread {repaired.mean:.1f} more than 2% below "
                f"full recompute {rebuilt.mean:.1f}"
            )

    for r in rows:
        print(
            f"\nbatch {r['batch_fraction']:.1%}: repair {r['repair_s']}s vs "
            f"rebuild {r['full_rebuild_s']}s ({r['speedup']}x), "
            f"invalidated {r['invalidated_fraction']:.1%}"
        )
    bench_record(
        "dynamic_repair_speedup",
        num_sets=NUM_SETS,
        dataset="skitter",
        mix="94/3/3 insert/delete/reweight",
        k=K,
        smoke=SMOKE,
        rows=rows,
    )


def test_repair_deterministic(skitter):
    """Same seed + same update stream -> byte-identical repaired store."""
    a, _ = repair_once(skitter, 0.01)
    b, _ = repair_once(skitter, 0.01)
    assert np.array_equal(a.store.vertices, b.store.vertices)
    assert np.array_equal(a.store.offsets, b.store.offsets)
    assert np.array_equal(a.counter, b.counter)
    assert np.array_equal(a.roots, b.roots)
