"""Figure 5 — adaptive vertex-occurrence counter update at 128 cores.

Regenerates the w/-vs-w/o comparison on four skewed datasets.  The w/o arm
re-derives the counter every round (re-count all sets + re-subtract every
covered set — see ``efficient_select``'s docstring for why this is the
reading consistent with the paper's magnitudes); the w/ arm is §IV-C's
incremental decrement-or-rebuild.  Paper: 11.6x-60.9x; we assert large
same-universe speedups and identical seeds.
"""

import pytest

from repro.bench.experiments import experiment_fig5
from repro.core.selection import efficient_select

from conftest import print_table


@pytest.fixture(scope="module")
def fig5():
    return experiment_fig5()


def test_fig5_adaptive_update(benchmark, fig5, amazon_store):
    benchmark.pedantic(
        lambda: efficient_select(
            amazon_store.store, 10, 4, initial_counter=amazon_store.counter
        ),
        rounds=3, iterations=1,
    )

    print_table(fig5)
    for name, (t_without, t_with, speedup) in fig5.data.items():
        assert t_with < t_without, name
        # Paper band is 11.6x-60.9x; require the same decade.
        assert 5.0 < speedup < 250.0, (name, speedup)


def test_fig5_seeds_identical(benchmark, amazon_store):
    on = benchmark.pedantic(
        lambda: efficient_select(amazon_store.store, 10, adaptive_update=True),
        rounds=1, iterations=1,
    )
    off = efficient_select(amazon_store.store, 10, adaptive_update=False)
    assert on.seeds.tolist() == off.seeds.tolist()
