"""Resilience clean-path overhead (our addition): what does it cost to run
with checkpointing, a retry policy, and a fault plan armed when nothing
actually fails?

Two measurements, one `repro-bench/1` record each:

- the full IMM run with per-batch checkpointing and a never-matching fault
  plan vs a plain run (the `repro run --checkpoint` clean path);
- backend `run_tasks` with retry + faults attached but idle vs the plain
  fast path (the per-task `take()`/classification cost).

Both interleave repetitions and take the minimum, so the reported overhead
is the machinery's, not the scheduler's.  Target: <5% on the clean path;
measured ~3-4% here (per-batch uncompressed snapshot writes dominate the
checkpointed-run number).  The hard assertion sits at 10% — a regression
bound wide enough to absorb the ±3% wall-clock noise of a shared host
while still catching a real clean-path slowdown; the record carries the
measured value and the target for trend tracking.
"""

import time

from repro.core import EfficientIMM, IMMParams
from repro.core.parallel_sampling import parallel_generate
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    SamplingCheckpointer,
    run_key,
)
from repro.runtime.backends import SerialBackend

REPEATS = 5


def _never_matching_plan() -> FaultPlan:
    # Scoped to an index no run reaches, so take() is consulted and misses.
    return FaultPlan([FaultSpec(kind="crash", index=999_999, scope="batch")])


def _interleaved_min(fn_a, fn_b, repeats=REPEATS):
    """min-of-N for two thunks, alternating so drift hits both equally."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def test_checkpointed_run_overhead(amazon_ic_graph, bench_record, tmp_path):
    params = IMMParams(k=3, theta_cap=2000, seed=0)
    ck = SamplingCheckpointer(
        tmp_path, run_key(amazon_ic_graph, params, framework="EfficientIMM")
    )
    plan = _never_matching_plan()

    def plain():
        return EfficientIMM(amazon_ic_graph).run(params)

    def armed():
        return EfficientIMM(amazon_ic_graph).run(
            params, checkpointer=ck, fault_plan=plan
        )

    base = plain()  # warm-up + reference result
    plain_s, armed_s = _interleaved_min(plain, armed)
    overhead_pct = (armed_s / plain_s - 1.0) * 100.0

    resumed = EfficientIMM(amazon_ic_graph).run(
        params, checkpointer=ck, resume=True
    )
    assert (resumed.seeds == base.seeds).all()  # armed path changes nothing
    assert plan.injected == 0  # the plan really was idle
    assert ck.saves >= REPEATS  # checkpoints really were written

    print(
        f"\nplain {plain_s * 1e3:.0f} ms -> checkpointed+fault-armed "
        f"{armed_s * 1e3:.0f} ms ({overhead_pct:+.1f}%), "
        f"{ck.saves} checkpoints written"
    )
    bench_record(
        "resilience_checkpoint_overhead",
        k=params.k, theta_cap=params.theta_cap,
        plain_s=plain_s, armed_s=armed_s,
        overhead_pct=overhead_pct,
        target_pct=5.0,
        checkpoints_written=ck.saves,
    )
    assert overhead_pct < 10.0, (
        f"clean-path overhead {overhead_pct:.1f}% blew the regression bound"
    )


def test_backend_resilience_overhead(amazon_ic_graph, bench_record):
    count, workers = 600, 4

    def plain():
        return parallel_generate(
            amazon_ic_graph, "IC", count, num_workers=workers,
            seed=0, backend=SerialBackend(),
        )

    def armed():
        b = SerialBackend()
        b.retry_policy = RetryPolicy(max_attempts=3)
        b.fault_plan = FaultPlan(
            [FaultSpec(kind="crash", index=999_999, scope="task")]
        )
        return parallel_generate(
            amazon_ic_graph, "IC", count, num_workers=workers,
            seed=0, backend=b,
        )

    base = plain()  # warm-up
    plain_s, armed_s = _interleaved_min(plain, armed)
    overhead_pct = (armed_s / plain_s - 1.0) * 100.0

    assert len(armed()) == len(base)  # armed path yields the same sketch

    print(
        f"\nplain sampling {plain_s * 1e3:.0f} ms -> retry+fault-armed "
        f"{armed_s * 1e3:.0f} ms ({overhead_pct:+.1f}%)"
    )
    bench_record(
        "resilience_backend_overhead",
        num_sets=count, num_workers=workers,
        plain_s=plain_s, armed_s=armed_s,
        overhead_pct=overhead_pct,
        target_pct=5.0,
    )
    assert overhead_pct < 10.0, (
        f"clean-path overhead {overhead_pct:.1f}% blew the regression bound"
    )
