"""Real wall-clock kernel comparison (our addition, beyond the paper).

The simulated machine produces the paper's thread-sweep figures; this bench
checks the *in-process* reality on the host: at the same emulated thread
count, EfficientIMM's selection kernel does physically less work than
Ripples' (whose redundant per-thread passes are really executed), so its
wall-clock is lower.  This keeps the cost model honest — who-wins is
visible without any model.
"""

import pytest

from repro.core.selection import efficient_select, ripples_select


THREADS = 8
K = 10


def test_wallclock_efficient_selection(benchmark, amazon_store):
    res = benchmark.pedantic(
        lambda: efficient_select(
            amazon_store.store, K, THREADS,
            initial_counter=amazon_store.counter,
        ),
        rounds=5, iterations=1,
    )
    assert res.seeds.size == K


def test_wallclock_ripples_selection(benchmark, amazon_store):
    res = benchmark.pedantic(
        lambda: ripples_select(amazon_store.store, K, THREADS),
        rounds=5, iterations=1,
    )
    assert res.seeds.size == K


def test_wallclock_ordering(benchmark, amazon_store, bench_record):
    import time

    def timed(fn):
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    benchmark.pedantic(
        lambda: amazon_store.store.vertex_counts(), rounds=3, iterations=1
    )
    # Warm up once each, then measure best-of-3.
    timed(lambda: efficient_select(
        amazon_store.store, K, THREADS, initial_counter=amazon_store.counter
    ))
    timed(lambda: ripples_select(amazon_store.store, K, THREADS))
    t_eimm = min(
        timed(lambda: efficient_select(
            amazon_store.store, K, THREADS,
            initial_counter=amazon_store.counter,
        ))
        for _ in range(3)
    )
    t_rip = min(
        timed(lambda: ripples_select(amazon_store.store, K, THREADS))
        for _ in range(3)
    )
    print(f"\nwall-clock @p={THREADS}: EfficientIMM {t_eimm:.4f}s, "
          f"Ripples {t_rip:.4f}s ({t_rip / t_eimm:.1f}x)")
    bench_record(
        "wallclock_selection",
        threads=THREADS, k=K,
        efficientimm_s=t_eimm, ripples_s=t_rip, speedup=t_rip / t_eimm,
    )
    assert t_eimm < t_rip
