#!/usr/bin/env python3
"""Scaling study: sweep 1..128 simulated threads on a chosen dataset.

Reproduces the paper's strong-scaling methodology interactively: profile a
real workload (sampling + both selection kernels), then price it on the
simulated Perlmutter node (2x EPYC 7763, 8 NUMA nodes) across thread
counts, printing the per-kernel breakdown and the speedup curves — the raw
material of the paper's Figures 1, 2, 6, 7.

Run:  python examples/scaling_study.py [dataset] [model]
      python examples/scaling_study.py google IC
"""

import sys

from repro.graph.datasets import load_dataset
from repro.simmachine.cost import CostModel, profile_pair
from repro.simmachine.topology import perlmutter, ripples_testbed


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "google"
    model = (sys.argv[2] if len(sys.argv) > 2 else "IC").upper()
    theta_cap = 1000 if model == "IC" else 16000

    graph = load_dataset(dataset, model=model, seed=0)
    print(
        f"profiling {dataset} [{model}]: {graph.num_vertices:,} vertices, "
        f"{graph.num_edges:,} edges (theta capped at {theta_cap:,})\n"
    )
    profiles = profile_pair(
        graph, dataset, model, k=50, theta_cap=theta_cap, seed=0
    )

    cm = CostModel(perlmutter())
    threads = [1, 2, 4, 8, 16, 32, 64, 128]

    for fw in ("Ripples", "EfficientIMM"):
        prof = profiles[fw]
        print(f"--- {fw} (modelled on {cm.topology.name}) ---")
        print(f"{'p':>4s} {'Generate':>10s} {'Find':>10s} {'Other':>8s} "
              f"{'Total':>10s} {'speedup':>8s}")
        base = None
        for p in threads:
            st = cm.total_time_s(prof, p)
            base = base or st["Total"]
            print(
                f"{p:4d} {st['Generate_RRRsets'] * 1e3:9.2f}m "
                f"{st['Find_Most_Influential_Set'] * 1e3:9.2f}m "
                f"{st['Other'] * 1e3:7.2f}m {st['Total'] * 1e3:9.2f}m "
                f"{base / st['Total']:7.2f}x"
            )
        curve = cm.scaling_curve(prof, threads)
        print(
            f"  best {curve.best_time * 1e3:.2f}ms at p={curve.best_threads}; "
            f"scaling saturates at p={curve.saturation_threads()}\n"
        )

    rip = cm.scaling_curve(profiles["Ripples"], threads)
    eimm = cm.scaling_curve(profiles["EfficientIMM"], threads)
    print(
        f"best-vs-best speedup (the paper's Table III metric): "
        f"{rip.best_time / eimm.best_time:.1f}x"
    )

    # Bonus: the same workload on the original Ripples-paper 10-core node,
    # where the vertex-partitioned design was adequate — the paper's point
    # is that multi-NUMA machines changed the trade-off.
    cm10 = CostModel(ripples_testbed())
    rip10 = cm10.scaling_curve(profiles["Ripples"], [1, 2, 4, 8, 10])
    eimm10 = cm10.scaling_curve(profiles["EfficientIMM"], [1, 2, 4, 8, 10])
    print(
        f"on the 2019 10-core testbed the gap narrows: "
        f"{rip10.best_time / eimm10.best_time:.1f}x"
    )


if __name__ == "__main__":
    main()
