#!/usr/bin/env python3
"""Sensitivity study: how epsilon and k drive IMM's cost and quality.

Two sweeps on the com-DBLP replica, IC model:

1. **epsilon sweep** — theta (and thus memory and work) scales like
   ``1/eps^2``: halving epsilon roughly quadruples the samples, while the
   achieved spread barely moves — the practical reason the paper (and
   everyone else) benchmarks at eps = 0.5;
2. **k sweep** — marginal spread per extra seed decays (submodularity),
   visible directly in IMM's own F(S) estimates.

Run:  python examples/sensitivity_study.py
"""

from repro import EfficientIMM, IMMParams, estimate_spread, get_model, load_dataset
from repro.bench.figures import ascii_chart


def main() -> None:
    graph = load_dataset("dblp", model="IC", seed=0)
    model = get_model("IC", graph)
    print(
        f"com-DBLP replica: {graph.num_vertices:,} vertices, "
        f"{graph.num_edges:,} edges\n"
    )

    # ---- epsilon sweep ------------------------------------------------
    print("epsilon sweep (k=10):")
    print(f"{'eps':>6s} {'theta':>9s} {'RRR sets':>9s} {'MC spread':>10s}")
    eps_points, theta_points = [], []
    for eps in (0.9, 0.7, 0.5, 0.35, 0.25):
        res = EfficientIMM(graph).run(
            IMMParams(k=10, epsilon=eps, seed=1, theta_cap=200_000)
        )
        spread = estimate_spread(model, res.seeds, num_samples=60, seed=2).mean
        print(
            f"{eps:6.2f} {res.theta:9,d} {res.num_rrrsets:9,d} "
            f"{spread:10,.0f}"
        )
        eps_points.append(eps)
        theta_points.append(float(res.theta))
    ratio = theta_points[-1] / theta_points[0]
    predicted = (eps_points[0] / eps_points[-1]) ** 2
    print(
        f"  theta grew {ratio:.1f}x from eps={eps_points[0]} to "
        f"{eps_points[-1]} (the 1/eps^2 law predicts ~{predicted:.1f}x)\n"
    )

    # ---- k sweep --------------------------------------------------------
    print("k sweep (eps=0.5):")
    ks = [1, 2, 5, 10, 20, 40]
    spreads = []
    for k in ks:
        res = EfficientIMM(graph).run(
            IMMParams(k=k, epsilon=0.5, seed=1, theta_cap=4000)
        )
        spreads.append(res.spread_estimate)
        print(f"  k={k:3d}  sigma~= {res.spread_estimate:8,.0f}")
    print()
    print(ascii_chart(
        {"sigma(S_k)": ([float(k) for k in ks], spreads)},
        log_x=True, title="diminishing returns of the seed budget",
        y_label="spread", width=50, height=10,
    ))
    # Submodularity: the first seed is worth more than seeds 21..40 combined
    # contribute.
    first = spreads[0]
    tail = spreads[-1] - spreads[-2]
    print(
        f"\nfirst seed adds {first:,.0f} vertices; "
        f"seeds 21-40 together add {tail:,.0f} — diminishing returns, "
        f"the submodularity that makes the greedy (1 - 1/e)-good."
    )


if __name__ == "__main__":
    main()
