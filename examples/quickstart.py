#!/usr/bin/env python3
"""Quickstart: find the 20 most influential vertices of a social network.

Runs EfficientIMM on the com-YouTube replica under the Independent Cascade
model, prints the seed set, and validates its influence with a forward
Monte-Carlo simulation.

Run:  python examples/quickstart.py
"""

from repro import EfficientIMM, IMMParams, estimate_spread, get_model, load_dataset


def main() -> None:
    # 1. Load a dataset with IC edge probabilities (uniform [0, 1], as in
    #    the paper's evaluation).  Any SNAP-replica name works; see
    #    `python -m repro datasets` for the inventory.
    graph = load_dataset("youtube", model="IC", seed=0)
    print(f"graph: {graph.num_vertices:,} vertices, {graph.num_edges:,} edges")

    # 2. Configure the run.  k is the seed budget, epsilon the accuracy
    #    knob (smaller = more RRR samples = tighter guarantee).  theta_cap
    #    bounds the sample count so the demo finishes in seconds; drop it
    #    for the full (1 - 1/e - eps)-guaranteed run.
    params = IMMParams(k=20, epsilon=0.5, model="IC", seed=42, theta_cap=2000)

    # 3. Run EfficientIMM.
    result = EfficientIMM(graph).run(params)
    print(result.summary())
    print("seeds:", result.seeds.tolist())
    for stage, seconds in result.times.stages.items():
        print(f"  {stage:28s} {seconds:.3f}s")

    # 4. Validate: simulate cascades from the chosen seeds and compare the
    #    measured spread with IMM's internal estimate n * F(S).
    model = get_model("IC", graph)
    est = estimate_spread(model, result.seeds, num_samples=120, seed=7)
    lo, hi = est.confidence_interval()
    print(
        f"Monte-Carlo spread: {est.mean:,.0f} vertices "
        f"(95% CI [{lo:,.0f}, {hi:,.0f}]); "
        f"IMM's own estimate: {result.spread_estimate:,.0f}"
    )


if __name__ == "__main__":
    main()
