#!/usr/bin/env python3
"""Outbreak detection: place monitors where an epidemic is seen earliest.

The public-health framing of influence maximization (Leskovec et al.'s
outbreak detection, cited in the paper's introduction): on a contact
network, the k most *influential* nodes are also the best monitoring sites —
a cascade starting anywhere is most likely to pass through them.

This example builds a spatial contact network (random geometric graph — the
same topology class as the as-Skitter replica), assigns contagion
probabilities, selects monitor locations with EfficientIMM under both
diffusion models, and measures detection rates with forward simulations.

Run:  python examples/outbreak_detection.py
"""

import numpy as np

from repro import EfficientIMM, IMMParams, get_model
from repro.graph.builder import from_edge_array
from repro.graph.generators import random_geometric
from repro.graph.weights import assign_ic_weights, assign_lt_weights


def detection_rate(model, monitors: set[int], num_outbreaks: int, rng) -> float:
    """Fraction of simulated outbreaks that reach at least one monitor."""
    n = model.graph.num_vertices
    hits = 0
    for _ in range(num_outbreaks):
        origin = int(rng.integers(0, n))
        infected = model.forward_sample(np.array([origin]), rng)
        if monitors & set(infected.tolist()):
            hits += 1
    return hits / num_outbreaks


def main() -> None:
    n, k = 2500, 12
    src, dst = random_geometric(n, radius=2.2 / np.sqrt(n), seed=9)
    contact = from_edge_array(src, dst, num_vertices=n)
    print(f"contact network: {n:,} people, {contact.num_edges:,} contacts\n")

    rng = np.random.default_rng(17)
    for model_name, weigh in (
        ("IC", lambda g: assign_ic_weights(g, seed=1, scale=0.6)),
        ("LT", lambda g: assign_lt_weights(g, seed=1)),
    ):
        weighted = weigh(contact)
        params = IMMParams(
            k=k, epsilon=0.5, model=model_name, seed=2, theta_cap=4000
        )
        result = EfficientIMM(weighted).run(params)
        model = get_model(model_name, weighted)
        monitors = set(result.seeds.tolist())

        rate_imm = detection_rate(model, monitors, 300, rng)
        random_monitors = set(
            rng.choice(n, size=k, replace=False).tolist()
        )
        rate_rand = detection_rate(model, random_monitors, 300, rng)

        print(
            f"[{model_name}] monitors={sorted(monitors)[:6]}... "
            f"detection rate: IMM {rate_imm:.1%} vs random {rate_rand:.1%} "
            f"({result.times.total:.2f}s to select)"
        )
        assert rate_imm >= rate_rand, "IMM monitors must not lose to random"

    print(
        "\nIMM-chosen monitors intercept more outbreaks than random ones "
        "under both diffusion models."
    )


if __name__ == "__main__":
    main()
