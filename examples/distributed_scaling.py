#!/usr/bin/env python3
"""Distributed IMM: the paper's future-work MPI extension, explored.

The paper closes by proposing an MPI extension of EfficientIMM, arguing it
adds no communication beyond Ripples' MPI design.  This example runs the
distributed algorithm on a simulated Perlmutter cluster (alpha-beta
interconnect) and shows the classic distributed-IM scaling story:

- per-node sampling work shrinks with the node count,
- each selection round costs one counter-sized allreduce, so the wire time
  grows with nodes and eventually dominates,
- the sweet spot sits where those curves cross.

Run:  python examples/distributed_scaling.py [dataset]
"""

import sys

from repro.core.params import IMMParams
from repro.distributed import DistributedIMM, perlmutter_cluster
from repro.graph.datasets import load_dataset


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "skitter"
    graph = load_dataset(dataset, model="IC", seed=0)
    params = IMMParams(k=20, theta_cap=4000, seed=5)
    print(
        f"{dataset}: {graph.num_vertices:,} vertices, "
        f"{graph.num_edges:,} edges; k={params.k}, "
        f"theta capped at {params.theta_cap:,}\n"
    )
    print(f"{'nodes':>5s} {'sampling':>10s} {'selection':>10s} "
          f"{'comm':>10s} {'total':>10s} {'collectives':>12s}")
    best = None
    for nodes in (1, 2, 4, 8, 16, 32):
        res = DistributedIMM(
            graph, perlmutter_cluster(nodes), threads_per_rank=16
        ).run(params)
        print(
            f"{nodes:5d} {res.sampling_time_s * 1e3:9.3f}m "
            f"{res.selection_compute_s * 1e3:9.3f}m "
            f"{res.comm.comm_time_s * 1e3:9.3f}m "
            f"{res.total_time_s * 1e3:9.3f}m "
            f"{res.comm.num_collectives:12d}"
        )
        if best is None or res.total_time_s < best[1]:
            best = (nodes, res.total_time_s)
    print(
        f"\nsweet spot: {best[0]} nodes — beyond it the per-round "
        f"allreduce of the global counter outweighs the sampling savings."
    )
    print(
        "The communication pattern (one counter reduction per level + per "
        "selection round) matches the paper's 'no additional communication "
        "compared to Ripples' MPI implementation' claim."
    )


if __name__ == "__main__":
    main()
