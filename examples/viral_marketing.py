#!/usr/bin/env python3
"""Viral marketing: compare every seed-selection method in the repository.

The motivating application of influence maximization: a marketer gives k
free products to users of a social network and wants the word-of-mouth
cascade to reach as many users as possible.

On the soc-Pokec replica under the IC model this example compares, by
Monte-Carlo measured spread and selection time:

- **EfficientIMM** (this paper's system) and **Ripples-style IMM**
  (identical seeds; the paper's difference is machine time);
- **TIM** (SIGMOD'14, IMM's predecessor) and **OPIM-C** (SIGMOD'18, online
  early termination) — the algorithmic lineage;
- **forward sketches** (PacIM-style, the related-work direction);
- **degree-discount** / **top-degree** / **random** heuristics.

Run:  python examples/viral_marketing.py
"""

import time

import numpy as np

from repro import (
    EfficientIMM,
    IMMParams,
    RipplesIMM,
    estimate_spread,
    get_model,
    load_dataset,
)
from repro.core.fis import fis_select
from repro.core.heuristics import degree_discount, random_seeds, top_degree
from repro.core.opim import run_opim
from repro.core.tim import run_tim


def main() -> None:
    k = 15
    # Subcritical contagion (p ~ U[0, 0.12]): adoption spreads a few hops
    # from each seed, so seed choice genuinely matters.  (The paper's
    # uniform [0,1] weights percolate — any seed reaches most of the
    # network, which is the right benchmark regime but a boring campaign.)
    from repro.graph.weights import assign_ic_weights

    topology = load_dataset("pokec", seed=0)
    graph = assign_ic_weights(topology, seed=0, scale=0.12)
    model = get_model("IC", graph)
    params = IMMParams(k=k, epsilon=0.5, seed=11, theta_cap=80_000, num_threads=8)
    print(
        f"soc-Pokec replica: {graph.num_vertices:,} users, "
        f"{graph.num_edges:,} follow edges; campaign budget k={k}\n"
    )

    strategies: dict[str, tuple[np.ndarray, float]] = {}

    def timed(name, fn):
        t0 = time.perf_counter()
        seeds = fn()
        strategies[name] = (seeds, time.perf_counter() - t0)

    timed("EfficientIMM", lambda: EfficientIMM(graph).run(params).seeds)
    timed("Ripples IMM", lambda: RipplesIMM(graph).run(params).seeds)
    timed("TIM (2014)", lambda: run_tim(graph, params).seeds)
    timed("OPIM-C (2018)", lambda: run_opim(graph, params).seeds)
    timed(
        "fwd sketches",
        lambda: fis_select(
            graph, k, num_samples=5, num_hashes=16, seed=11,
            candidates=top_degree(graph, 200),
        ).seeds,
    )
    timed("degree-disc.", lambda: degree_discount(graph, k))
    timed("top-degree", lambda: top_degree(graph, k))
    timed("random", lambda: random_seeds(graph, k, seed=5))

    print(f"{'strategy':14s} {'spread':>10s} {'of network':>11s} {'select time':>12s}")
    print("-" * 52)
    for name, (seeds, secs) in strategies.items():
        est = estimate_spread(model, seeds, num_samples=80, seed=3)
        frac = est.mean / graph.num_vertices
        print(f"{name:14s} {est.mean:10,.0f} {frac:11.1%} {secs:11.3f}s")

    eimm = strategies["EfficientIMM"][0]
    rip = strategies["Ripples IMM"][0]
    assert np.array_equal(np.sort(eimm), np.sort(rip)), (
        "both IMM kernels run the same greedy max-cover"
    )
    print(
        "\nEfficientIMM and Ripples pick identical seeds (same algorithm); "
        "the paper's contribution is how much machine time the selection "
        "costs — see `repro experiment table3`.  The guaranteed methods "
        "(IMM/TIM/OPIM) beat random seeding ~5x in this subcritical "
        "regime and match the best heuristics while carrying the "
        "(1 - 1/e - eps) guarantee the heuristics lack."
    )


if __name__ == "__main__":
    main()
