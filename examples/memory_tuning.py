#!/usr/bin/env python3
"""Memory tuning: adaptive RRR representations, budgets, and compression.

Walks through the paper's §IV-C storage story on a real workload:

1. sample RRR sets on the com-LJ replica (dense, SCC-driven sets);
2. compare the store footprint of Ripples' sorted vectors, pure bitmaps,
   and EfficientIMM's adaptive policy across threshold settings;
3. demonstrate the OOM behaviour under a fixed memory budget (Table III's
   Twitter7 mechanism) and its paper-scale projection;
4. run the HBMax-style compression baselines (Huffman / delta-varint) and
   show the codec-time-vs-space trade-off the paper cites.

Run:  python examples/memory_tuning.py
"""

import numpy as np

from repro._util import human_bytes
from repro.bench.experiments import oom_projection
from repro.core.sampling import RRRSampler, SamplingConfig, modelled_store_bytes
from repro.diffusion.base import get_model
from repro.errors import OutOfMemoryModelError
from repro.graph.datasets import load_dataset
from repro.sketch.compress import compare_codecs
from repro.sketch.rrr import AdaptivePolicy
from repro.sketch.store import AdaptiveRRRStore


def main() -> None:
    graph = load_dataset("livejournal", model="IC", seed=0)
    sampler = RRRSampler(
        get_model("IC", graph), SamplingConfig.efficientimm(num_threads=1),
        seed=1,
    )
    sampler.extend(250)
    store = sampler.store
    sizes = store.sizes()
    n = graph.num_vertices
    print(
        f"com-LJ replica: {n:,} vertices; {len(store)} RRR sets, "
        f"avg size {sizes.mean():,.0f} ({sizes.mean() / n:.0%} coverage)\n"
    )

    # ---- 1. representation comparison --------------------------------
    print("store footprint by representation policy:")
    rows = [
        ("sorted vectors (Ripples)", modelled_store_bytes(sizes, n, None)),
        ("pure bitmaps", len(store) * ((n + 7) // 8)),
    ]
    for frac in (1 / 8, 1 / 32, 1 / 128):
        rows.append((
            f"adaptive, threshold n/{int(1 / frac)}",
            modelled_store_bytes(sizes, n, AdaptivePolicy(frac)),
        ))
    best = min(b for _, b in rows)
    for name, nbytes in rows:
        marker = "  <- best" if nbytes == best else ""
        print(f"  {name:28s} {human_bytes(nbytes):>12s}{marker}")

    # ---- 2. budget / OOM demonstration --------------------------------
    budget = 260 * ((n + 7) // 8)  # room for ~260 bitmaps (all 250 sets)
    print(f"\nreplaying under a {human_bytes(budget)} budget:")
    for label, policy in (("Ripples (lists)", None), ("EfficientIMM", AdaptivePolicy())):
        s = AdaptiveRRRStore(n, policy=policy, budget_bytes=budget)
        try:
            for rrr in store:
                s.append(rrr)
            print(f"  {label:18s} stored all {len(s)} sets "
                  f"({human_bytes(s.nbytes())}) {s.representation_histogram()}")
        except OutOfMemoryModelError as err:
            print(f"  {label:18s} OOM after {len(s)} sets: {err}")

    proj = oom_projection("twitter7", "IC")
    print(
        f"\npaper-scale Twitter7 projection: theta={proj['theta']:,.0f}; "
        f"Ripples needs {human_bytes(proj['ripples_bytes'])}, EfficientIMM "
        f"{human_bytes(proj['efficientimm_bytes'])} "
        f"(node budget {human_bytes(proj['budget_bytes'])}) -> "
        f"Ripples OOM={proj['ripples_oom']}"
    )

    # ---- 3. HBMax-style compression baselines --------------------------
    print("\nHBMax-style codecs on 60 sets (space saved vs codec time):")
    sample_sets = [store.get(i) for i in range(60)]
    for rep in compare_codecs(sample_sets, n):
        print(
            f"  {rep.codec:14s} ratio {rep.ratio:5.2f}x   "
            f"encode {rep.encode_seconds * 1e3:7.1f}ms   "
            f"decode {rep.decode_seconds * 1e3:7.1f}ms"
        )
    print(
        "\nCompression saves space but pays per-set codec time on every "
        "access — the overhead EfficientIMM's plain adaptive "
        "representations avoid (§VI, HBMax discussion)."
    )


if __name__ == "__main__":
    main()
