#!/usr/bin/env python3
"""Regenerate docs/cli.md from the live argparse surface.

Usage (from the repository root):

    python tools/gen_cli_docs.py          # rewrite docs/cli.md
    python tools/gen_cli_docs.py --check  # exit 1 if the page has drifted

The page content comes from :func:`repro.cli.render_cli_reference`, so a
verb or flag added to the parser shows up here with zero extra bookkeeping;
``tests/test_cli_surface.py`` runs the equivalent of ``--check`` in CI.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import render_cli_reference  # noqa: E402


def main(argv: list[str]) -> int:
    target = ROOT / "docs" / "cli.md"
    fresh = render_cli_reference()
    if "--check" in argv:
        current = target.read_text() if target.exists() else ""
        if current != fresh:
            print(
                f"{target} is stale; run: python tools/gen_cli_docs.py",
                file=sys.stderr,
            )
            return 1
        print(f"{target} is up to date")
        return 0
    target.write_text(fresh)
    print(f"wrote {target} ({len(fresh.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
