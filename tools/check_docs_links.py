#!/usr/bin/env python3
"""Check internal markdown links and anchors across the documentation.

Scans ``README.md``, ``CONTRIBUTING.md``, and every page under ``docs/``
and verifies that

- every relative link target (``[text](../README.md)``, ``[text](cli.md)``)
  resolves to a file inside the repository;
- every anchor (``[text](cli.md#repro-run)``, ``[text](#exit-codes)``)
  names a heading that actually exists in the target file, using GitHub's
  heading-slug scheme (lowercase, punctuation stripped, spaces to
  hyphens, ``-N`` suffixes for duplicates);
- every page under ``docs/`` is linked from the documentation index
  ``docs/README.md`` (reachability).

External ``http(s)://`` and ``mailto:`` links are ignored — this checker
is offline and deterministic.  Exit code 0 means clean; 1 means at least
one broken link, with one ``file:line: message`` diagnostic per problem.

Run directly (``python tools/check_docs_links.py``) or via
``tests/test_docs_links.py`` / the ``docs-check`` CI job.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Files scanned for outgoing links (docs/*.md are added dynamically).
TOP_LEVEL_PAGES = ("README.md", "CONTRIBUTING.md")

#: The index every docs/ page must be reachable from.
DOCS_INDEX = "docs/README.md"

# [text](target) — target captured up to the closing paren; images share
# the syntax (![alt](src)) and are checked the same way.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")
_EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # http:, https:, mailto:


def github_slug(heading: str, seen: dict[str, int]) -> str:
    """GitHub's anchor slug for a heading line, tracking duplicates."""
    text = heading.strip()
    # Inline markdown that GitHub strips from the anchor text: code spans
    # keep their content, links keep their text, emphasis markers vanish.
    text = re.sub(r"`([^`]*)`", r"\1", text)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.replace("*", "").replace("_", " ")
    slug = text.lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def extract_anchors(path: Path) -> set[str]:
    """All heading anchors in a markdown file, GitHub-slugged."""
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if m:
            anchors.add(github_slug(m.group(2), seen))
    return anchors


def extract_links(path: Path) -> list[tuple[int, str]]:
    """All ``(line_number, target)`` markdown links in a file."""
    links: list[tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in _LINK_RE.finditer(line):
            links.append((lineno, m.group(1)))
    return links


def pages_to_scan(root: Path) -> list[Path]:
    pages = [root / name for name in TOP_LEVEL_PAGES if (root / name).exists()]
    pages.extend(sorted((root / "docs").glob("*.md")))
    return pages


def check_links(root: Path) -> list[str]:
    """Return one diagnostic string per broken link/anchor/orphan page."""
    problems: list[str] = []
    anchor_cache: dict[Path, set[str]] = {}

    def anchors_of(path: Path) -> set[str]:
        if path not in anchor_cache:
            anchor_cache[path] = extract_anchors(path)
        return anchor_cache[path]

    pages = pages_to_scan(root)
    index_targets: set[Path] = set()

    for page in pages:
        rel = page.relative_to(root)
        for lineno, raw in extract_links(page):
            if _EXTERNAL_RE.match(raw):
                continue  # http(s)/mailto — out of scope
            target_part, _, fragment = raw.partition("#")
            if target_part:
                target = (page.parent / target_part).resolve()
                try:
                    target.relative_to(root)
                except ValueError:
                    problems.append(
                        f"{rel}:{lineno}: link escapes the repository: {raw}"
                    )
                    continue
                if not target.exists():
                    problems.append(
                        f"{rel}:{lineno}: broken link: {raw} "
                        f"(no such file: {target.relative_to(root)})"
                    )
                    continue
            else:
                target = page  # bare '#anchor' — same file
            if fragment:
                if target.suffix != ".md" or target.is_dir():
                    continue  # anchors into non-markdown are not checked
                if fragment not in anchors_of(target):
                    problems.append(
                        f"{rel}:{lineno}: broken anchor: {raw} "
                        f"(no heading '#{fragment}' in "
                        f"{target.relative_to(root)})"
                    )
            if str(rel) == DOCS_INDEX and target.suffix == ".md":
                index_targets.add(target)

    # Reachability: every docs page must be linked from the index.
    index = root / DOCS_INDEX
    for page in sorted((root / "docs").glob("*.md")):
        if page == index:
            continue
        if page.resolve() not in index_targets:
            problems.append(
                f"{DOCS_INDEX}: page not linked from the index: "
                f"{page.relative_to(root)}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=ROOT,
        help="repository root to scan (default: the checkout containing "
        "this script)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()
    problems = check_links(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"docs link check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    pages = len(pages_to_scan(root))
    print(f"docs link check: {pages} pages clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
