"""Statistical validation utilities for the reproduction.

Correctness of sampling-based systems cannot be pinned by exact asserts
alone; this module provides the statistical checks the integration tests
and benchmarks lean on:

- :func:`roots_are_uniform` — chi-square test that RRR roots are drawn
  uniformly (RIS's core requirement);
- :func:`same_size_distribution` — two-sample Kolmogorov-Smirnov test that
  two samplers draw RRR sets from the same size distribution (e.g. the
  serial path vs the process-parallel path);
- :func:`spread_consistent` — z-test that IMM's internal ``n * F(S)``
  estimate agrees with forward Monte-Carlo simulation;
- :func:`seed_stability` — Jaccard overlap of seed sets across RNG seeds
  (influential hubs should be robust to resampling).

All tests return a :class:`CheckResult` rather than raising, so callers
choose their own significance policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.errors import ParameterError

__all__ = [
    "CheckResult",
    "roots_are_uniform",
    "same_size_distribution",
    "spread_consistent",
    "seed_stability",
]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one statistical check."""

    name: str
    passed: bool
    p_value: float
    statistic: float
    detail: str = ""

    def __bool__(self) -> bool:
        return self.passed


def roots_are_uniform(
    roots: np.ndarray, num_vertices: int, *, alpha: float = 0.001
) -> CheckResult:
    """Chi-square goodness-of-fit of observed roots against uniform.

    Buckets vertices into ``~sqrt(len(roots))`` equal ranges so expected
    counts stay above the chi-square validity threshold.
    """
    roots = np.asarray(roots, dtype=np.int64).ravel()
    if roots.size < 20:
        raise ParameterError("need at least 20 roots for a meaningful test")
    num_buckets = max(min(int(np.sqrt(roots.size)), num_vertices), 2)
    counts, _ = np.histogram(roots, bins=num_buckets, range=(0, num_vertices))
    stat, p = sps.chisquare(counts)
    return CheckResult(
        "roots_are_uniform", bool(p > alpha), float(p), float(stat),
        f"{num_buckets} buckets over {roots.size} roots",
    )


def same_size_distribution(
    sizes_a: np.ndarray, sizes_b: np.ndarray, *, alpha: float = 0.001
) -> CheckResult:
    """Two-sample KS test on RRR set-size samples."""
    a = np.asarray(sizes_a, dtype=np.float64).ravel()
    b = np.asarray(sizes_b, dtype=np.float64).ravel()
    if a.size < 10 or b.size < 10:
        raise ParameterError("need at least 10 sizes per sample")
    stat, p = sps.ks_2samp(a, b)
    return CheckResult(
        "same_size_distribution", bool(p > alpha), float(p), float(stat),
        f"|a|={a.size}, |b|={b.size}",
    )


def spread_consistent(
    internal_estimate: float,
    mc_mean: float,
    mc_stderr: float,
    *,
    z_threshold: float = 5.0,
    relative_slack: float = 0.10,
) -> CheckResult:
    """Is IMM's n*F(S) within noise (+slack) of the Monte-Carlo spread?

    The internal estimate is computed on the *same* samples used to select
    the seeds, so it is biased slightly upward; ``relative_slack`` absorbs
    that known selection bias.
    """
    gap = abs(internal_estimate - mc_mean)
    tolerance = z_threshold * max(mc_stderr, 1e-12) + relative_slack * mc_mean
    z = gap / max(mc_stderr, 1e-12)
    return CheckResult(
        "spread_consistent", bool(gap <= tolerance), p_value=float("nan"),
        statistic=float(z),
        detail=f"gap={gap:.1f}, tolerance={tolerance:.1f}",
    )


def seed_stability(
    seed_sets: list[np.ndarray], *, min_mean_jaccard: float = 0.2
) -> CheckResult:
    """Mean pairwise Jaccard similarity of seed sets across RNG seeds.

    Hub-driven graphs should keep picking largely the same influencers;
    a near-zero overlap indicates a broken sampler or selection.
    """
    if len(seed_sets) < 2:
        raise ParameterError("need at least two seed sets")
    sets = [set(np.asarray(s).ravel().tolist()) for s in seed_sets]
    sims = []
    for i in range(len(sets)):
        for j in range(i + 1, len(sets)):
            inter = len(sets[i] & sets[j])
            union = len(sets[i] | sets[j])
            sims.append(inter / union if union else 1.0)
    mean = float(np.mean(sims))
    return CheckResult(
        "seed_stability", bool(mean >= min_mean_jaccard), p_value=float("nan"),
        statistic=mean, detail=f"{len(sims)} pairs",
    )
