"""Sampling checkpoints: resumable RRR generation through the artifact layer.

An IMM run spends almost all of its time in the sampling batches the
martingale schedule requests (estimation levels, then the top-up).  The
:class:`SamplingCheckpointer` snapshots the complete sampler state after
every completed batch — the RRR store, the fused counter, the RNG state,
and the per-set cost bookkeeping — as one checksummed ``.npz`` artifact
(the PR 2 format, written atomically via rename).

Because :func:`repro.core.imm.run_imm` is deterministic in that state, a
run interrupted at *any* point and restarted with ``resume=True`` replays
the completed batches as no-ops (the store already holds their sets), then
continues sampling from the restored RNG — producing **byte-identical**
seed sets to an uninterrupted run.  The checkpoint is keyed by
:func:`run_key`, a fingerprint over the graph, every parameter that shapes
sampling, and the framework, so a stale checkpoint from a different run can
never be resumed into the wrong context (it raises
:class:`~repro.errors.ArtifactError` instead).
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro import telemetry
from repro.errors import ArtifactError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.params import IMMParams
    from repro.core.sampling import RRRSampler
    from repro.graph.csr import CSRGraph

__all__ = ["SamplingCheckpointer", "run_key"]

#: Version of the checkpoint metadata layered on the sketch artifact schema.
CHECKPOINT_VERSION = 1


def run_key(graph: "CSRGraph", params: "IMMParams", framework: str = "IMM") -> str:
    """Fingerprint of one resumable run: graph + sampling parameters.

    Everything that influences which RRR sets get drawn (and therefore the
    seeds out of selection) is folded in; two runs share a checkpoint key
    iff an uninterrupted run would give them identical results.
    """
    from repro.graph.io import graph_fingerprint

    key = ":".join(
        str(v)
        for v in (
            graph_fingerprint(graph),
            str(framework),
            params.k,
            f"{float(params.epsilon):.12g}",
            f"{float(params.ell):.12g}",
            str(params.model).upper(),
            params.seed,
            params.num_threads,
            params.theta_cap,
        )
    )
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


class SamplingCheckpointer:
    """Writes/restores per-batch sampler snapshots under one run key.

    One rolling checkpoint file is kept per key (``checkpoint-<key>.npz``
    under ``root``); each :meth:`save` atomically replaces the previous
    snapshot, so an interrupt mid-write leaves the last good checkpoint
    intact.  ``every`` thins the cadence: ``every=3`` snapshots batches
    0, 3, 6, ... (resume then replays the un-checkpointed tail batches,
    still byte-identically).
    """

    def __init__(self, root: str | os.PathLike, key: str, *, every: int = 1):
        if every < 1:
            raise ArtifactError(f"checkpoint cadence must be >= 1, got {every}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.key = str(key)
        self.every = int(every)
        self.saves = 0

    def path(self) -> Path:
        return self.root / f"checkpoint-{self.key}.npz"

    def has_checkpoint(self) -> bool:
        return self.path().exists()

    # ------------------------------------------------------------------ save
    def save(self, sampler: "RRRSampler", batch_index: int) -> Path | None:
        """Snapshot the sampler after completed batch ``batch_index``.

        Returns the checkpoint path, or ``None`` when the cadence skipped
        this batch.  The write goes through the artifact layer (CRC-32,
        schema version) into a temp file, then an atomic rename.
        """
        if batch_index % self.every != 0:
            return None
        from repro.service.artifacts import save_store

        stats = sampler.stats
        meta: dict[str, Any] = {
            "checkpoint_version": CHECKPOINT_VERSION,
            "run_key": self.key,
            "batch_index": int(batch_index),
            "rng_state": sampler.rng.bit_generator.state,
            "per_set_costs": [float(c) for c in sampler.per_set_costs],
            "per_set_edges": [int(e) for e in sampler.per_set_edges],
            "num_atomic_updates": int(sampler.num_atomic_updates),
            "stats": {
                "num_threads": stats.num_threads,
                "loads": stats.loads.tolist(),
                "stores": stats.stores.tolist(),
                "atomics": stats.atomics.tolist(),
                "compute": stats.compute.tolist(),
                "serial_ops": float(stats.serial_ops),
                "sync_barriers": int(stats.sync_barriers),
            },
        }
        final = self.path()
        tmp = final.with_name(final.stem + ".tmp.npz")
        save_store(
            sampler.store,
            tmp,
            fingerprint=self.key,
            counter=sampler.counter,
            meta=meta,
            # Rolling checkpoints are rewritten every batch; the zlib pass
            # dominates the write cost, so trade disk for speed.
            compress=False,
        )
        os.replace(tmp, final)
        self.saves += 1
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter("resilience.checkpoints_written").inc()
            tel.registry.gauge("resilience.checkpoint_sets").set(len(sampler.store))
        return final

    # --------------------------------------------------------------- restore
    def restore(self, sampler: "RRRSampler") -> int | None:
        """Load the latest snapshot into ``sampler``; returns its batch
        index, or ``None`` when no checkpoint exists for this key.

        Raises :class:`~repro.errors.ArtifactError` when the checkpoint is
        corrupt or belongs to a different run key — resuming the wrong
        state would silently produce wrong seeds, so it is never attempted.
        """
        if not self.has_checkpoint():
            return None
        from repro.core.params import KernelStats
        from repro.service.artifacts import load_store

        store, counter, meta = load_store(self.path(), expect_fingerprint=self.key)
        if meta.get("checkpoint_version") != CHECKPOINT_VERSION:
            raise ArtifactError(
                f"{self.path()}: unsupported checkpoint version "
                f"{meta.get('checkpoint_version')!r}"
            )
        if counter is None:
            counter = store.vertex_counts()
        sampler.store = store
        sampler.counter = counter
        sampler.rng.bit_generator.state = meta["rng_state"]
        sampler.per_set_costs = [float(c) for c in meta.get("per_set_costs", [])]
        sampler.per_set_edges = [int(e) for e in meta.get("per_set_edges", [])]
        sampler.num_atomic_updates = int(meta.get("num_atomic_updates", 0))
        st = meta.get("stats")
        if st is not None and st.get("num_threads") == sampler.stats.num_threads:
            sampler.stats = KernelStats(
                num_threads=int(st["num_threads"]),
                loads=np.asarray(st["loads"], dtype=np.float64),
                stores=np.asarray(st["stores"], dtype=np.float64),
                atomics=np.asarray(st["atomics"], dtype=np.float64),
                compute=np.asarray(st["compute"], dtype=np.float64),
                serial_ops=float(st["serial_ops"]),
                sync_barriers=int(st["sync_barriers"]),
            )
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter("resilience.checkpoints_restored").inc()
        return int(meta["batch_index"])

    def clear(self) -> None:
        """Delete this key's checkpoint (e.g. after a completed run)."""
        try:
            self.path().unlink()
        except FileNotFoundError:
            pass
