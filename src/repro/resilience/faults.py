"""Deterministic fault injection: :class:`FaultSpec` and :class:`FaultPlan`.

A fault plan is a small, seedable script of failures keyed by *(scope,
index)* — e.g. "crash task 3", "slow down rank 0", "corrupt the result of
collective 2" — that the execution layers consult at well-defined points:

- :mod:`repro.runtime.backends` — per *task* index in ``run_tasks``;
- :mod:`repro.runtime.workqueue` — per *rank* on ``pop``;
- :mod:`repro.core.imm` — per sampling *batch* in the IMM driver;
- :mod:`repro.distributed.comm` — per *collective* sequence number.

Because firing is keyed by deterministic indices and each spec has a finite
``times`` budget, a run under a fault plan is exactly reproducible: the same
plan string produces the same failures in the same places, which is what
lets the checkpoint/resume test interrupt a run at *every* batch boundary
and assert byte-identical seed sets (docs/resilience.md).

Plans are built in code (``FaultPlan([FaultSpec(...)])``) or parsed from the
CLI's ``--inject-faults`` spec string::

    crash@task:3            # raise FaultInjectedError before task 3 runs
    crash@batch:1x2         # fire twice (defeats a 2-attempt retry policy)
    slow@rank:0:0.05        # sleep 50 ms whenever rank 0 pops work
    corrupt@collective:2    # deterministically mangle collective 2's result
    crash@1                 # scope defaults to "task"

Multiple specs are comma-separated.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.errors import FaultInjectedError, ParameterError

__all__ = ["FaultSpec", "FaultPlan", "FAULT_KINDS", "FAULT_SCOPES"]

#: Supported fault kinds.
FAULT_KINDS = ("crash", "slow", "corrupt")

#: Conventional scopes (free-form strings are accepted; these are the ones
#: the library's own injection points use).
FAULT_SCOPES = ("task", "batch", "rank", "collective", "query")


def _count(name: str, amount: float = 1) -> None:
    tel = telemetry.get()
    if tel.enabled:
        tel.registry.counter(name).inc(amount)


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: *kind* at *(scope, index)*, firing *times* times.

    ``delay_s`` only applies to ``slow`` faults.  ``times`` is the firing
    budget — a ``crash`` with ``times=1`` fails the first attempt and lets a
    retry succeed, which is the canonical "transient fault" scenario.
    """

    kind: str
    index: int
    scope: str = "task"
    times: int = 1
    delay_s: float = 0.01

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ParameterError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.index < 0:
            raise ParameterError(f"fault index must be >= 0, got {self.index}")
        if self.times < 1:
            raise ParameterError(f"fault times must be >= 1, got {self.times}")
        if self.delay_s < 0:
            raise ParameterError(f"fault delay_s must be >= 0, got {self.delay_s}")

    def describe(self) -> str:
        extra = f"x{self.times}" if self.times != 1 else ""
        return f"{self.kind}@{self.scope}:{self.index}{extra}"

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``kind@[scope:]index[xN][:delay]`` token."""
        head, _, rest = text.strip().partition("@")
        if not rest:
            raise ParameterError(
                f"bad fault spec {text!r}: expected kind@[scope:]index[xN][:delay]"
            )
        kind = head.strip().lower()
        parts = rest.split(":")
        scope = "task"
        if parts and not parts[0].lstrip("-").isdigit():
            scope = parts.pop(0).strip().lower()
        if not parts:
            raise ParameterError(f"bad fault spec {text!r}: missing index")
        idx_tok, times = parts.pop(0), 1
        if "x" in idx_tok:
            idx_tok, _, times_tok = idx_tok.partition("x")
            try:
                times = int(times_tok)
            except ValueError as exc:
                raise ParameterError(
                    f"bad fault spec {text!r}: repeat count {times_tok!r}"
                ) from exc
        try:
            index = int(idx_tok)
        except ValueError as exc:
            raise ParameterError(f"bad fault spec {text!r}: index {idx_tok!r}") from exc
        delay_s = 0.01
        if parts:
            try:
                delay_s = float(parts.pop(0))
            except ValueError as exc:
                raise ParameterError(f"bad fault spec {text!r}: delay") from exc
        if parts:
            raise ParameterError(f"bad fault spec {text!r}: trailing fields")
        return cls(kind=kind, index=index, scope=scope, times=times, delay_s=delay_s)


class FaultPlan:
    """A seedable, thread-safe script of :class:`FaultSpec` firings.

    The plan owns all mutable injection state (per-spec remaining budgets,
    the total ``injected`` count, and the RNG that drives ``corrupt``
    mangling), so the same plan object threaded through several layers keeps
    one coherent account of what fired where.
    """

    def __init__(self, specs: "list[FaultSpec] | tuple[FaultSpec, ...]" = (), *, seed: int = 0):
        self.specs = list(specs)
        self.seed = int(seed)
        self._remaining = [s.times for s in self.specs]
        self._rng = np.random.default_rng(self.seed)
        self._lock = threading.Lock()
        self.injected = 0
        self.by_kind: dict[str, int] = {}

    @classmethod
    def parse(cls, text: str, *, seed: int = 0) -> "FaultPlan":
        """Build a plan from a comma-separated spec string (CLI format)."""
        specs = [FaultSpec.parse(tok) for tok in text.split(",") if tok.strip()]
        if not specs:
            raise ParameterError(f"fault spec {text!r} contains no faults")
        return cls(specs, seed=seed)

    # ------------------------------------------------------------- firing
    def take(self, scope: str, index: int) -> FaultSpec | None:
        """Consume and return the matching spec, or ``None``.

        At most one spec fires per call (specs match in declaration order);
        a fired spec's remaining budget is decremented, so an exhausted
        fault never fires again — the mechanism that lets retries succeed.
        """
        with self._lock:
            for i, spec in enumerate(self.specs):
                if (
                    spec.scope == scope
                    and spec.index == index
                    and self._remaining[i] > 0
                ):
                    self._remaining[i] -= 1
                    self.injected += 1
                    self.by_kind[spec.kind] = self.by_kind.get(spec.kind, 0) + 1
                    _count("resilience.faults_injected")
                    _count(f"resilience.faults.{spec.kind}")
                    return spec
            return None

    def invoke(self, scope: str, index: int, fn):
        """Run ``fn`` under this plan's faults for *(scope, index)*.

        ``crash`` raises :class:`~repro.errors.FaultInjectedError` *before*
        ``fn`` runs; ``slow`` sleeps ``delay_s`` first; ``corrupt`` runs
        ``fn`` and mangles its return value.
        """
        spec = self.take(scope, index)
        if spec is None:
            return fn()
        if spec.kind == "crash":
            raise FaultInjectedError(f"injected {spec.describe()}")
        if spec.kind == "slow":
            time.sleep(spec.delay_s)
            return fn()
        return self.corrupt(fn())

    # --------------------------------------------------------- corruption
    def corrupt(self, value):
        """Deterministically mangle a value (driven by the plan's seed).

        Best-effort over the payload shapes the backends move around:
        numpy arrays get one element perturbed, ``bytes`` one bit flipped,
        tuples/lists have their first corruptible element mangled, numbers
        are offset.  Uncorruptible values pass through unchanged.
        """
        if isinstance(value, np.ndarray):
            if value.size == 0:
                return value
            out = value.copy()
            pos = int(self._rng.integers(0, out.size))
            flat = out.reshape(-1)
            if np.issubdtype(out.dtype, np.number):
                flat[pos] = flat[pos] + 1
            return out
        if isinstance(value, (bytes, bytearray)):
            if not value:
                return value
            buf = bytearray(value)
            buf[int(self._rng.integers(0, len(buf)))] ^= 0x01
            return bytes(buf)
        if isinstance(value, bool):
            return not value
        if isinstance(value, (int, float)):
            return value + 1
        if isinstance(value, tuple):
            return tuple(self.corrupt(v) for v in value)
        if isinstance(value, list):
            return [self.corrupt(v) for v in value]
        return value

    # ----------------------------------------------------------- accounting
    def remaining(self) -> int:
        """Total firing budget left across every spec."""
        with self._lock:
            return sum(self._remaining)

    def exhausted(self) -> bool:
        return self.remaining() == 0

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "seed": self.seed,
                "specs": [s.describe() for s in self.specs],
                "remaining": list(self._remaining),
                "injected": self.injected,
                "by_kind": dict(self.by_kind),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({', '.join(s.describe() for s in self.specs)})"
