"""Retry with exponential backoff, a jitter cap, and error classification.

One frozen :class:`RetryPolicy` answers three questions the execution
layers need decided consistently (docs/resilience.md):

1. *Is this error worth retrying?* — transient classes (injected faults,
   backend failures, OS-level errors, timeouts) are; domain errors
   (:class:`~repro.errors.ParameterError` and other user mistakes) never
   are, even when a subclass relation would match.
2. *How long to wait?* — exponential backoff ``base * 2**(attempt-1)``
   clamped to ``max_delay_s``, plus a deterministic jitter drawn from the
   policy's seed and the attempt number (capped at ``jitter_s``), so two
   retrying workers do not stampede in lockstep yet every run is exactly
   reproducible.
3. *When to give up?* — after ``max_attempts`` total attempts the last
   error is wrapped in :class:`~repro.errors.RetryExhaustedError`.

Every performed retry increments the ``resilience.retries`` telemetry
counter.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro import telemetry
from repro.errors import (
    BackendError,
    FaultInjectedError,
    ParameterError,
    RetryExhaustedError,
)

__all__ = ["RetryPolicy", "call_with_retry"]

#: Error classes a default policy treats as transient.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    FaultInjectedError,
    BackendError,
    OSError,
    TimeoutError,
)

#: Error classes never retried, even when a retryable base class matches.
DEFAULT_NON_RETRYABLE: tuple[type[BaseException], ...] = (ParameterError,)


def _count(name: str, amount: float = 1) -> None:
    tel = telemetry.get()
    if tel.enabled:
        tel.registry.counter(name).inc(amount)


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) an operation is retried.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first; ``1`` disables retrying.
    base_delay_s:
        First backoff delay; attempt ``i`` waits ``base * 2**(i-1)``.
    max_delay_s:
        Clamp on the exponential term (the backoff ceiling).
    jitter_s:
        Cap on the additive jitter; the draw is deterministic in
        ``(seed, attempt)`` so retried runs remain reproducible.
    retryable / non_retryable:
        Error classification; ``non_retryable`` wins on overlap.
    seed:
        Jitter RNG seed.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.0
    max_delay_s: float = 1.0
    jitter_s: float = 0.0
    retryable: tuple[type[BaseException], ...] = field(default=DEFAULT_RETRYABLE)
    non_retryable: tuple[type[BaseException], ...] = field(default=DEFAULT_NON_RETRYABLE)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0 or self.jitter_s < 0:
            raise ParameterError("retry delays must be >= 0")

    # ------------------------------------------------------- classification
    def is_retryable(self, exc: BaseException) -> bool:
        if isinstance(exc, self.non_retryable):
            return False
        return isinstance(exc, self.retryable)

    # --------------------------------------------------------------- delays
    def delay_for(self, attempt: int) -> float:
        """Seconds to sleep after failed attempt ``attempt`` (1-based)."""
        backoff = min(self.max_delay_s, self.base_delay_s * (2.0 ** (attempt - 1)))
        jitter = 0.0
        if self.jitter_s > 0:
            jitter = random.Random(self.seed * 1_000_003 + attempt).uniform(
                0.0, self.jitter_s
            )
        return backoff + jitter

    # ----------------------------------------------------------------- call
    def call(self, fn, *, label: str = "operation", on_retry=None):
        """Run ``fn()`` under this policy.

        Non-retryable errors propagate unchanged on the first failure;
        retryable errors that survive every attempt are wrapped in
        :class:`~repro.errors.RetryExhaustedError` (cause chained).
        ``on_retry(attempt, exc)`` is called before each performed retry.
        """
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except Exception as exc:
                if not self.is_retryable(exc):
                    raise
                if attempt >= self.max_attempts:
                    raise RetryExhaustedError(label, attempt, exc) from exc
                _count("resilience.retries")
                if on_retry is not None:
                    on_retry(attempt, exc)
                delay = self.delay_for(attempt)
                if delay > 0:
                    time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


def call_with_retry(fn, policy: RetryPolicy | None, *, label: str = "operation"):
    """Convenience wrapper: ``policy=None`` means a single plain attempt."""
    if policy is None:
        return fn()
    return policy.call(fn, label=label)
