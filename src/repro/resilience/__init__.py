"""repro.resilience — fault injection, retries, and checkpoint recovery.

The production-service framing of the roadmap needs the long-running
parallel sections (sampling fan-out, simulated collectives, cold serving
passes) to survive the failures they will actually meet at scale.  This
package provides the three primitives, threaded through
:mod:`repro.runtime`, :mod:`repro.distributed`, :mod:`repro.core`, and
:mod:`repro.service` (docs/resilience.md):

- :class:`FaultPlan` / :class:`FaultSpec` — a deterministic, seedable
  script of crash/slow/corrupt faults keyed by task index, rank, sampling
  batch, or collective sequence number; usable from tests and from
  ``repro run --inject-faults``;
- :class:`RetryPolicy` — bounded attempts with exponential backoff, a
  deterministic jitter cap, and retryable-error classification, applied
  per task by the execution backends and per collective by
  :class:`~repro.distributed.comm.SimulatedComm`;
- :class:`SamplingCheckpointer` — per-batch RRR-store snapshots through
  the artifact layer, so an interrupted ``repro run`` resumes with
  ``--resume`` and selects byte-identical seed sets.

Telemetry: ``resilience.retries``, ``resilience.faults_injected``,
``resilience.checkpoints_written``, ``resilience.checkpoints_restored``,
and ``resilience.degraded_responses`` (docs/observability.md).
"""

from repro.resilience.checkpoint import SamplingCheckpointer, run_key
from repro.resilience.faults import FAULT_KINDS, FAULT_SCOPES, FaultPlan, FaultSpec
from repro.resilience.retry import RetryPolicy, call_with_retry

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FAULT_KINDS",
    "FAULT_SCOPES",
    "RetryPolicy",
    "call_with_retry",
    "SamplingCheckpointer",
    "run_key",
]
