"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate on the specific failure class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphFormatError(ReproError):
    """An input edge list or graph file is malformed."""


class GraphConstructionError(ReproError):
    """A graph could not be built from the supplied arrays or edges."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is out of its valid domain (e.g. ``k > |V|``)."""


class DatasetError(ReproError):
    """A named dataset is unknown or could not be materialised."""


class BackendError(ReproError):
    """A parallel execution backend failed or was misconfigured."""


class OutOfMemoryModelError(ReproError):
    """The modelled memory footprint exceeded the configured budget.

    This is the reproduction of the paper's Table III ``OOM`` entry: the
    Ripples baseline exceeds its memory budget on the Twitter7 workload while
    EfficientIMM's adaptive representation fits.  It is raised by the sketch
    store's footprint accounting, never by the host OS.
    """

    def __init__(self, required_bytes: int, budget_bytes: int, what: str = "RRR store"):
        self.required_bytes = int(required_bytes)
        self.budget_bytes = int(budget_bytes)
        self.what = what
        super().__init__(
            f"{what} requires {required_bytes:,} bytes "
            f"but the modelled budget is {budget_bytes:,} bytes"
        )


class ArtifactError(ReproError):
    """A persisted graph/sketch artifact is missing, corrupt, or mismatched.

    Raised by :mod:`repro.service.artifacts` when a saved ``.npz`` artifact
    fails its integrity check (checksum, schema version, or fingerprint)
    rather than silently serving stale or truncated sketch data.
    """


class SimulationError(ReproError):
    """The machine simulator was driven with inconsistent state."""
