"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate on the specific failure class.

Every class carries a stable ``exit_code`` — the process exit status
``repro`` (the CLI) maps it to.  The CLI handles *all* library errors from
this one table instead of per-verb ``except`` clauses (docs/resilience.md):

=====================  ====  ==============================================
class                  code  meaning
=====================  ====  ==============================================
``ReproError``         1     any library failure without a narrower class
``ParameterError``     2     a parameter is outside its valid domain
``GraphFormatError``   2     malformed edge list / graph file (user input)
``DatasetError``       2     unknown dataset name (user input)
``ArtifactError``      4     persisted artifact missing/corrupt/mismatched
``BackendError``       5     parallel execution backend failed
``ShmError``           5     shared-memory segment operation failed
``OutOfMemoryModel-``  6     modelled footprint exceeded the budget
``FaultInjectedError`` 7     an injected fault fired and was not recovered
``RetryExhaustedError``8     retries ran out without a successful attempt
=====================  ====  ==============================================

Codes 2 and above are stable API; scripts may branch on them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library.

    ``exit_code`` is the stable process exit status the CLI uses when this
    error terminates a command; subclasses override it (see the module
    docstring table).
    """

    exit_code: int = 1


class GraphFormatError(ReproError):
    """An input edge list or graph file is malformed."""

    exit_code = 2


class GraphConstructionError(ReproError):
    """A graph could not be built from the supplied arrays or edges."""

    exit_code = 2


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is out of its valid domain (e.g. ``k > |V|``)."""

    exit_code = 2


class DatasetError(ReproError):
    """A named dataset is unknown or could not be materialised."""

    exit_code = 2


class BackendError(ReproError):
    """A parallel execution backend failed or was misconfigured."""

    exit_code = 5


class ShmError(ReproError):
    """A shared-memory segment operation failed (docs/memory.md).

    Raised by :mod:`repro.shm` when a named segment cannot be created,
    attached, or unlinked — e.g. attaching after the owner unlinked it, a
    corrupt segment header, or a platform without POSIX shared memory.
    Shares ``BackendError``'s exit code: to the CLI both mean "the parallel
    execution substrate failed", and scripts branching on 5 keep working.
    """

    exit_code = 5


class OutOfMemoryModelError(ReproError):
    """The modelled memory footprint exceeded the configured budget.

    This is the reproduction of the paper's Table III ``OOM`` entry: the
    Ripples baseline exceeds its memory budget on the Twitter7 workload while
    EfficientIMM's adaptive representation fits.  It is raised by the sketch
    store's footprint accounting, never by the host OS.
    """

    exit_code = 6

    def __init__(self, required_bytes: int, budget_bytes: int, what: str = "RRR store"):
        self.required_bytes = int(required_bytes)
        self.budget_bytes = int(budget_bytes)
        self.what = what
        super().__init__(
            f"{what} requires {required_bytes:,} bytes "
            f"but the modelled budget is {budget_bytes:,} bytes"
        )


class ArtifactError(ReproError):
    """A persisted graph/sketch artifact is missing, corrupt, or mismatched.

    Raised by :mod:`repro.service.artifacts` when a saved ``.npz`` artifact
    fails its integrity check (checksum, schema version, or fingerprint)
    rather than silently serving stale or truncated sketch data.  The
    checkpoint layer (:mod:`repro.resilience.checkpoint`) reuses it for
    unreadable or mismatched checkpoints.
    """

    exit_code = 4


class SimulationError(ReproError):
    """The machine simulator was driven with inconsistent state."""


class FaultInjectedError(ReproError):
    """An injected fault fired (docs/resilience.md).

    Raised by :class:`~repro.resilience.faults.FaultPlan` for ``crash``
    faults.  Classified as *retryable* by the default
    :class:`~repro.resilience.retry.RetryPolicy`, so a fault that fires
    fewer times than the policy's attempt budget is absorbed transparently.
    """

    exit_code = 7


class RetryExhaustedError(ReproError):
    """Every retry attempt failed; carries the attempt count and last cause.

    Raised by :class:`~repro.resilience.retry.RetryPolicy` when a retryable
    operation keeps failing past ``max_attempts``.  The original exception
    is chained as ``__cause__`` and kept in ``last_error``.
    """

    exit_code = 8

    def __init__(self, what: str, attempts: int, last_error: BaseException):
        self.what = what
        self.attempts = int(attempts)
        self.last_error = last_error
        super().__init__(
            f"{what}: all {attempts} attempt(s) failed; last error: "
            f"{type(last_error).__name__}: {last_error}"
        )
