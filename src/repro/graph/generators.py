"""Vectorised synthetic graph generators.

These stand in for the SNAP datasets of the paper (no network access in this
environment); each generator targets one topology *class* so that the dataset
registry (:mod:`repro.graph.datasets`) can produce replicas whose RRR-set
characteristics match Table I's qualitative split:

- :func:`rmat` — Kronecker-style skewed web/social topology (web-Google,
  Twitter7 replicas); heavy-tailed degrees, one giant SCC.
- :func:`planted_partition` — community structure (com-Amazon, com-DBLP,
  com-YouTube, com-LJ replicas).
- :func:`barabasi_albert` — preferential attachment (soc-Pokec replica).
- :func:`random_geometric` — spatial/mesh-like topology with high diameter
  (as-Skitter replica: the one dataset with ~1% RRR coverage in Table I).
- :func:`erdos_renyi`, :func:`watts_strogatz` — reference models used by
  tests and examples.

All generators return ``(src, dst)`` ``int64`` edge arrays; deduplication,
self-loop removal, and CSR construction are the builder's job.  Every
generator takes a ``seed`` and is fully deterministic given it.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.errors import ParameterError

__all__ = [
    "erdos_renyi",
    "rmat",
    "barabasi_albert",
    "watts_strogatz",
    "planted_partition",
    "random_geometric",
]

EdgePair = tuple[np.ndarray, np.ndarray]


def erdos_renyi(n: int, num_edges: int, *, seed=None) -> EdgePair:
    """G(n, m)-style random directed graph: ``num_edges`` uniform pairs.

    Sampling is with replacement; the builder's dedup step may therefore
    shave a tiny fraction of edges, matching how sparse G(n, m) samplers are
    implemented in practice.
    """
    n = check_positive_int("n", n)
    rng = as_rng(seed)
    src = rng.integers(0, n, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, n, size=num_edges, dtype=np.int64)
    return src, dst


def rmat(
    scale: int,
    num_edges: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed=None,
) -> EdgePair:
    """R-MAT / stochastic-Kronecker edges on ``2**scale`` vertices.

    The Graph500 default ``(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`` yields
    the heavy-tailed degree distribution and giant-SCC structure of web and
    social graphs.  Vectorised level-by-level: at each of the ``scale`` bit
    positions a quadrant is drawn simultaneously for every edge, so the cost
    is ``O(scale * num_edges)`` numpy work with no Python-level edge loop.
    """
    scale = check_positive_int("scale", scale)
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0.0:
        raise ParameterError(f"R-MAT quadrant probabilities invalid: {(a, b, c, d)}")
    rng = as_rng(seed)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for _level in range(scale):
        r = rng.random(num_edges)
        # Quadrants in order a (0,0), b (0,1), c (1,0), d (1,1).
        right = (r >= a) & (r < a + b) | (r >= a + b + c)
        down = r >= a + b
        src = (src << 1) | down.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)
    return src, dst


def barabasi_albert(n: int, m_attach: int, *, seed=None) -> EdgePair:
    """Preferential-attachment graph: each new vertex attaches ``m_attach``
    edges to endpoints sampled from the running edge-endpoint multiset.

    Uses the standard repeated-nodes implementation: sampling uniformly from
    the flat endpoint list is exactly degree-proportional sampling.  The per-
    vertex loop is unavoidable (attachment is sequential by definition) but
    each iteration is O(m_attach) numpy work.
    """
    n = check_positive_int("n", n)
    m_attach = check_positive_int("m_attach", m_attach)
    if m_attach >= n:
        raise ParameterError(f"m_attach={m_attach} must be < n={n}")
    rng = as_rng(seed)
    # Seed clique endpoints so early sampling has mass.
    repeated = list(range(m_attach + 1)) * 2
    srcs = np.empty((n - m_attach - 1) * m_attach, dtype=np.int64)
    dsts = np.empty_like(srcs)
    pos = 0
    rep = np.array(repeated, dtype=np.int64)
    rep_len = rep.size
    cap = max(4 * rep_len, 4 * n * m_attach // 2)
    buf = np.empty(cap, dtype=np.int64)
    buf[:rep_len] = rep
    for new in range(m_attach + 1, n):
        picks = buf[rng.integers(0, rep_len, size=m_attach)]
        srcs[pos : pos + m_attach] = new
        dsts[pos : pos + m_attach] = picks
        pos += m_attach
        add = np.empty(2 * m_attach, dtype=np.int64)
        add[0::2] = new
        add[1::2] = picks
        if rep_len + add.size > buf.size:
            buf = np.concatenate([buf[:rep_len], np.empty(buf.size, dtype=np.int64)])
        buf[rep_len : rep_len + add.size] = add
        rep_len += add.size
    return srcs[:pos], dsts[:pos]


def watts_strogatz(n: int, k: int, beta: float, *, seed=None) -> EdgePair:
    """Small-world ring lattice with vectorised rewiring.

    Each vertex connects to its ``k`` clockwise neighbours; each lattice edge
    is rewired to a uniform random endpoint with probability ``beta``.
    """
    n = check_positive_int("n", n)
    k = check_positive_int("k", k)
    if k >= n:
        raise ParameterError(f"k={k} must be < n={n}")
    rng = as_rng(seed)
    base = np.arange(n, dtype=np.int64)
    src = np.repeat(base, k)
    offsets = np.tile(np.arange(1, k + 1, dtype=np.int64), n)
    dst = (src + offsets) % n
    rewire = rng.random(src.size) < beta
    dst[rewire] = rng.integers(0, n, size=int(rewire.sum()), dtype=np.int64)
    return src, dst


def planted_partition(
    n: int,
    num_communities: int,
    intra_edges: int,
    inter_edges: int,
    *,
    seed=None,
) -> EdgePair:
    """Community graph: dense within ``num_communities`` equal blocks, sparse
    across.  Matches the modular structure of SNAP's ``com-*`` datasets.

    ``intra_edges`` pairs are drawn with both endpoints in the same
    (uniformly chosen) community; ``inter_edges`` pairs are uniform over all
    vertices.  Fully vectorised.
    """
    n = check_positive_int("n", n)
    num_communities = check_positive_int("num_communities", num_communities)
    if num_communities > n:
        raise ParameterError("more communities than vertices")
    rng = as_rng(seed)
    size = n // num_communities
    if size == 0:
        raise ParameterError("community size rounds to zero")
    comm = rng.integers(0, num_communities, size=intra_edges, dtype=np.int64)
    lo = comm * size
    span = np.where(comm == num_communities - 1, n - lo, size)
    src_in = lo + (rng.random(intra_edges) * span).astype(np.int64)
    dst_in = lo + (rng.random(intra_edges) * span).astype(np.int64)
    src_out = rng.integers(0, n, size=inter_edges, dtype=np.int64)
    dst_out = rng.integers(0, n, size=inter_edges, dtype=np.int64)
    return (
        np.concatenate([src_in, src_out]),
        np.concatenate([dst_in, dst_out]),
    )


def random_geometric(n: int, radius: float, *, seed=None) -> EdgePair:
    """Random geometric graph on the unit square (KD-tree pair query).

    High diameter and purely local structure: reverse BFS from a random
    vertex only reaches a small ball, giving the ~1% RRR coverage the paper
    reports for as-Skitter.
    """
    from scipy.spatial import cKDTree

    n = check_positive_int("n", n)
    if radius <= 0.0:
        raise ParameterError(f"radius must be > 0, got {radius}")
    rng = as_rng(seed)
    pts = rng.random((n, 2))
    tree = cKDTree(pts)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    if pairs.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    src = pairs[:, 0].astype(np.int64)
    dst = pairs[:, 1].astype(np.int64)
    # Geometric graphs are undirected; emit both directions.
    return np.concatenate([src, dst]), np.concatenate([dst, src])
