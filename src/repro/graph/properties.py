"""Structural analysis used by the motivation section (§III-A).

The paper's argument rests on two graph-structural facts:

1. most real web/social graphs have one giant strongly connected component
   (Broder et al.), which makes individual RRR sets cover a large vertex
   fraction (Table I);
2. degree distributions are heavily skewed, which drives the load-imbalance
   and adaptive-data-structure optimisations.

This module computes those properties on :class:`CSRGraph` instances:
SCC/WCC via :mod:`scipy.sparse.csgraph` (plus an own iterative Tarjan used to
cross-check scipy in the tests), degree statistics, and a skewness summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.graph.csr import CSRGraph

__all__ = [
    "to_scipy",
    "strongly_connected_components",
    "weakly_connected_components",
    "largest_component_fraction",
    "DegreeStats",
    "degree_stats",
    "tarjan_scc",
]


def to_scipy(graph: CSRGraph) -> sp.csr_matrix:
    """View the graph's topology as a scipy CSR matrix (data = probs)."""
    return sp.csr_matrix(
        (graph.probs, graph.indices, graph.indptr),
        shape=(graph.num_vertices, graph.num_vertices),
    )


def strongly_connected_components(graph: CSRGraph) -> tuple[int, np.ndarray]:
    """``(count, labels)`` of SCCs."""
    if graph.num_vertices == 0:
        return 0, np.empty(0, dtype=np.int32)
    return connected_components(to_scipy(graph), directed=True, connection="strong")


def weakly_connected_components(graph: CSRGraph) -> tuple[int, np.ndarray]:
    """``(count, labels)`` of WCCs."""
    if graph.num_vertices == 0:
        return 0, np.empty(0, dtype=np.int32)
    return connected_components(to_scipy(graph), directed=True, connection="weak")


def largest_component_fraction(graph: CSRGraph, *, strong: bool = True) -> float:
    """Fraction of vertices in the largest (S|W)CC — the paper's SCC share."""
    if graph.num_vertices == 0:
        return 0.0
    _, labels = (
        strongly_connected_components(graph)
        if strong
        else weakly_connected_components(graph)
    )
    return float(np.bincount(labels).max() / graph.num_vertices)


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a degree distribution used by the dataset registry."""

    mean: float
    maximum: int
    p99: float
    gini: float

    @property
    def skewed(self) -> bool:
        """Heuristic skew flag: a 99th percentile far below the max."""
        return self.maximum > 4 * max(self.p99, 1.0)


def degree_stats(graph: CSRGraph, *, direction: str = "out") -> DegreeStats:
    """Degree statistics; ``direction`` is ``"out"`` or ``"in"``."""
    if direction == "out":
        degs = np.asarray(graph.out_degree())
    elif direction == "in":
        degs = np.bincount(graph.indices, minlength=graph.num_vertices)
    else:
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
    if degs.size == 0:
        return DegreeStats(0.0, 0, 0.0, 0.0)
    sorted_degs = np.sort(degs).astype(np.float64)
    n = sorted_degs.size
    total = sorted_degs.sum()
    if total == 0:
        gini = 0.0
    else:
        # Standard Gini via the sorted-rank formula.
        ranks = np.arange(1, n + 1)
        gini = float((2.0 * (ranks * sorted_degs).sum()) / (n * total) - (n + 1) / n)
    return DegreeStats(
        mean=float(degs.mean()),
        maximum=int(degs.max()),
        p99=float(np.percentile(degs, 99)),
        gini=gini,
    )


def tarjan_scc(graph: CSRGraph) -> np.ndarray:
    """Iterative Tarjan SCC labelling (independent of scipy; used to
    cross-validate :func:`strongly_connected_components` in the tests).

    Returns an array mapping each vertex to an SCC id (ids are arbitrary but
    consistent: two vertices share an id iff they are mutually reachable).
    """
    n = graph.num_vertices
    indptr, indices = graph.indptr, graph.indices
    UNVISITED = -1
    index = np.full(n, UNVISITED, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    comp = np.full(n, UNVISITED, dtype=np.int64)
    stack: list[int] = []
    next_index = 0
    next_comp = 0

    for root in range(n):
        if index[root] != UNVISITED:
            continue
        # Explicit DFS stack of (vertex, next-edge-offset) frames.
        work: list[list[int]] = [[root, int(indptr[root])]]
        index[root] = low[root] = next_index
        next_index += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            v, eo = work[-1]
            if eo < indptr[v + 1]:
                work[-1][1] += 1
                w = int(indices[eo])
                if index[w] == UNVISITED:
                    index[w] = low[w] = next_index
                    next_index += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append([w, int(indptr[w])])
                elif on_stack[w]:
                    low[v] = min(low[v], index[w])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[v])
                if low[v] == index[v]:
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        comp[w] = next_comp
                        if w == v:
                            break
                    next_comp += 1
    return comp
