"""Graph I/O: SNAP edge-list text files and a fast ``.npz`` binary format.

The SNAP reader accepts exactly what ``snap.stanford.edu`` ships: whitespace-
separated ``src dst [prob]`` lines, ``#``-prefixed comment lines, optional
gzip compression (by file suffix).  The binary format stores the three CSR
arrays directly so the dataset registry can cache generated replicas.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import os
import zlib
from pathlib import Path
from typing import IO

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph

__all__ = [
    "read_snap_edgelist",
    "write_snap_edgelist",
    "read_matrix_market",
    "write_matrix_market",
    "save_npz",
    "load_npz",
    "graph_checksum",
    "graph_fingerprint",
    "GRAPH_NPZ_VERSION",
]


def _open_text(path: str | os.PathLike, mode: str) -> IO[str]:
    p = Path(path)
    if p.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(p, mode + "b"), encoding="utf-8")
    return open(p, mode, encoding="utf-8")


def read_snap_edgelist(
    path: str | os.PathLike,
    *,
    relabel: bool = True,
    make_undirected: bool = False,
    default_prob: float = 1.0,
) -> CSRGraph:
    """Parse a SNAP-style edge list into a canonical CSR graph.

    Lines are ``src dst`` or ``src dst prob``; ``#`` starts a comment.
    ``make_undirected`` mirrors every edge (for SNAP's undirected ``com-*``
    collections, which list each edge once).
    """
    srcs: list[int] = []
    dsts: list[int] = []
    probs: list[float] = []
    any_prob = False
    with _open_text(path, "r") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'src dst [prob]', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer vertex id in {line!r}"
                ) from exc
            p = default_prob
            if len(parts) == 3:
                try:
                    p = float(parts[2])
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{lineno}: bad probability in {line!r}"
                    ) from exc
                any_prob = True
            srcs.append(u)
            dsts.append(v)
            probs.append(p)

    b = GraphBuilder(relabel=relabel, default_prob=default_prob)
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    pr = np.asarray(probs, dtype=np.float64) if any_prob else None
    b.add_edges(src, dst, pr)
    if make_undirected:
        b.add_edges(dst, src, pr)
    return b.build()


def write_snap_edgelist(
    graph: CSRGraph,
    path: str | os.PathLike,
    *,
    write_probs: bool = True,
    header: str | None = None,
) -> None:
    """Write the graph as a SNAP-style edge list (``.gz`` suffix compresses)."""
    src, dst, prob = graph.edge_array()
    with _open_text(path, "w") as fh:
        fh.write(f"# repro CSR graph n={graph.num_vertices} m={graph.num_edges}\n")
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        if write_probs:
            for u, v, p in zip(src.tolist(), dst.tolist(), prob.tolist()):
                fh.write(f"{u}\t{v}\t{p:.10g}\n")
        else:
            for u, v in zip(src.tolist(), dst.tolist()):
                fh.write(f"{u}\t{v}\n")


def read_matrix_market(
    path: str | os.PathLike,
    *,
    default_prob: float = 1.0,
) -> CSRGraph:
    """Parse a MatrixMarket coordinate file (the SuiteSparse/HPC format).

    Supports the ``matrix coordinate (real|pattern|integer) (general|
    symmetric)`` headers: ``pattern`` entries get ``default_prob``,
    ``symmetric`` files are expanded to both edge directions (as graph
    codes, Ripples included, consume them).  MatrixMarket ids are 1-based.
    """
    srcs: list[int] = []
    dsts: list[int] = []
    probs: list[float] = []
    with _open_text(path, "r") as fh:
        header = fh.readline().strip().lower()
        if not header.startswith("%%matrixmarket matrix coordinate"):
            raise GraphFormatError(
                f"{path}: not a MatrixMarket coordinate file ({header!r})"
            )
        parts = header.split()
        field = parts[3] if len(parts) > 3 else "real"
        symmetry = parts[4] if len(parts) > 4 else "general"
        if field not in ("real", "pattern", "integer"):
            raise GraphFormatError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise GraphFormatError(f"{path}: unsupported symmetry {symmetry!r}")

        dims: tuple[int, int, int] | None = None
        for lineno, raw in enumerate(fh, start=2):
            line = raw.strip()
            if not line or line.startswith("%"):
                continue
            cols = line.split()
            if dims is None:
                if len(cols) != 3:
                    raise GraphFormatError(
                        f"{path}:{lineno}: bad size line {line!r}"
                    )
                dims = (int(cols[0]), int(cols[1]), int(cols[2]))
                if dims[0] != dims[1]:
                    raise GraphFormatError(
                        f"{path}: adjacency matrix must be square, "
                        f"got {dims[0]}x{dims[1]}"
                    )
                continue
            if len(cols) < 2:
                raise GraphFormatError(f"{path}:{lineno}: bad entry {line!r}")
            u, v = int(cols[0]) - 1, int(cols[1]) - 1
            p = default_prob if field == "pattern" or len(cols) < 3 else float(cols[2])
            srcs.append(u)
            dsts.append(v)
            probs.append(p)
            if symmetry == "symmetric" and u != v:
                srcs.append(v)
                dsts.append(u)
                probs.append(p)

    if dims is None:
        raise GraphFormatError(f"{path}: missing size line")
    b = GraphBuilder(relabel=False, default_prob=default_prob)
    b.add_edges(
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(probs, dtype=np.float64),
    )
    return b.build(num_vertices=dims[0])


def write_matrix_market(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the graph as ``matrix coordinate real general`` (1-based ids)."""
    src, dst, prob = graph.edge_array()
    with _open_text(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        fh.write("% written by repro (EfficientIMM reproduction)\n")
        fh.write(
            f"{graph.num_vertices} {graph.num_vertices} {graph.num_edges}\n"
        )
        for u, v, p in zip(src.tolist(), dst.tolist(), prob.tolist()):
            fh.write(f"{u + 1} {v + 1} {p:.10g}\n")


#: Version of the on-disk ``.npz`` graph schema.  Version 2 adds the
#: CRC-32 ``checksum`` field; version-1 archives (no checksum) still load.
GRAPH_NPZ_VERSION = 2


def graph_checksum(graph: CSRGraph) -> int:
    """CRC-32 over the CSR arrays (the integrity check of the binary format)."""
    crc = zlib.crc32(np.int64(graph.num_vertices).tobytes())
    for arr in (graph.indptr, graph.indices, graph.probs):
        crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc & 0xFFFFFFFF


def graph_fingerprint(graph: CSRGraph) -> str:
    """Content hash of a graph (vertex count + CSR arrays), as a short hex
    string.  This is the ``graph`` component of the serving layer's artifact
    fingerprints (:mod:`repro.service`): two graphs share a fingerprint iff
    their topology and edge probabilities are bit-identical.
    """
    h = hashlib.sha256()
    h.update(np.int64(graph.num_vertices).tobytes())
    for arr in (graph.indptr, graph.indices, graph.probs):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()[:16]


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Persist the CSR arrays losslessly (compressed ``.npz``).

    The archive carries a schema version and a CRC-32 checksum so
    :func:`load_npz` can detect truncated or tampered artifacts instead of
    constructing a graph from corrupt arrays.
    """
    np.savez_compressed(
        Path(path),
        num_vertices=np.int64(graph.num_vertices),
        indptr=graph.indptr,
        indices=graph.indices,
        probs=graph.probs,
        format_version=np.int64(GRAPH_NPZ_VERSION),
        checksum=np.uint32(graph_checksum(graph)),
    )


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph written by :func:`save_npz`, verifying its checksum."""
    try:
        with np.load(Path(path)) as data:
            graph = CSRGraph(
                int(data["num_vertices"]),
                data["indptr"],
                data["indices"],
                data["probs"],
            )
            if "checksum" in data.files:
                expected = int(data["checksum"])
                actual = graph_checksum(graph)
                if actual != expected:
                    raise GraphFormatError(
                        f"{path}: checksum mismatch (stored {expected:#010x}, "
                        f"computed {actual:#010x}); the archive is corrupt"
                    )
            return graph
    except KeyError as exc:
        raise GraphFormatError(f"{path}: not a repro graph archive") from exc
