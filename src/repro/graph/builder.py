"""Edge-list cleanup and CSR construction.

Raw edge lists (SNAP files, generator output) may contain duplicate edges,
self-loops, gaps in the vertex id space, or unsorted rows.  The builder
normalises all of that into a canonical :class:`~repro.graph.csr.CSRGraph`:

- vertex ids are relabelled to a dense ``0..n-1`` range,
- duplicate ``(u, v)`` edges are collapsed (keeping the first probability),
- self-loops are dropped (they carry no influence),
- adjacency rows are sorted by neighbour id (both frameworks sort rows so
  binary search on adjacency is possible).

Everything is vectorised; there is no per-edge Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.csr import OFFSET_DTYPE, PROB_DTYPE, VERTEX_DTYPE, CSRGraph

__all__ = ["GraphBuilder", "from_edge_array"]


@dataclass
class GraphBuilder:
    """Accumulates edges and produces a canonical :class:`CSRGraph`.

    Parameters
    ----------
    relabel:
        When true (default), vertex ids are remapped to a dense range in
        order of first appearance of the *sorted unique* ids; the mapping is
        exposed as :attr:`vertex_labels` after :meth:`build`.
    drop_self_loops / dedup:
        Normalisation toggles; both default to true.
    """

    relabel: bool = True
    drop_self_loops: bool = True
    dedup: bool = True
    default_prob: float = 1.0
    vertex_labels: np.ndarray | None = field(default=None, init=False)
    _src: list[np.ndarray] = field(default_factory=list, init=False, repr=False)
    _dst: list[np.ndarray] = field(default_factory=list, init=False, repr=False)
    _prob: list[np.ndarray] = field(default_factory=list, init=False, repr=False)

    def add_edges(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        probs: np.ndarray | float | None = None,
    ) -> "GraphBuilder":
        """Append a batch of edges; arrays must be 1-D and equal length."""
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if src.shape != dst.shape:
            raise GraphConstructionError(
                f"src/dst length mismatch: {src.shape} vs {dst.shape}"
            )
        if probs is None:
            probs = np.full(src.shape, self.default_prob, dtype=PROB_DTYPE)
        elif np.isscalar(probs):
            probs = np.full(src.shape, float(probs), dtype=PROB_DTYPE)
        else:
            probs = np.asarray(probs, dtype=PROB_DTYPE).ravel()
            if probs.shape != src.shape:
                raise GraphConstructionError("probs length mismatch with edges")
        self._src.append(src)
        self._dst.append(dst)
        self._prob.append(probs)
        return self

    def add_edge(self, u: int, v: int, p: float | None = None) -> "GraphBuilder":
        """Convenience scalar form of :meth:`add_edges`."""
        return self.add_edges(
            np.array([u]), np.array([v]), None if p is None else np.array([p])
        )

    def build(self, num_vertices: int | None = None) -> CSRGraph:
        """Normalise the accumulated edges and emit the CSR graph.

        ``num_vertices`` forces the vertex-space size (ids must fit); when
        omitted it is inferred as ``max(id) + 1`` (or the dense relabelled
        count when ``relabel`` is on).
        """
        if self._src:
            src = np.concatenate(self._src)
            dst = np.concatenate(self._dst)
            prob = np.concatenate(self._prob)
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
            prob = np.empty(0, dtype=PROB_DTYPE)

        if src.size and (src.min() < 0 or dst.min() < 0):
            raise GraphConstructionError("negative vertex id in edge list")

        if self.drop_self_loops and src.size:
            keep = src != dst
            src, dst, prob = src[keep], dst[keep], prob[keep]

        if self.relabel:
            if src.size:
                labels, inverse = np.unique(
                    np.concatenate([src, dst]), return_inverse=True
                )
                src = inverse[: src.size]
                dst = inverse[src.size :]
                self.vertex_labels = labels
                inferred_n = labels.size
            else:
                self.vertex_labels = np.empty(0, dtype=np.int64)
                inferred_n = 0
        else:
            inferred_n = int(max(src.max(), dst.max()) + 1) if src.size else 0

        n = inferred_n if num_vertices is None else int(num_vertices)
        if src.size and max(src.max(), dst.max()) >= n:
            raise GraphConstructionError(
                f"vertex id exceeds requested num_vertices={n}"
            )

        if src.size:
            # Sort by (src, dst): groups rows and sorts each row's neighbours.
            order = np.lexsort((dst, src))
            src, dst, prob = src[order], dst[order], prob[order]
            if self.dedup:
                keep = np.ones(src.size, dtype=bool)
                keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
                src, dst, prob = src[keep], dst[keep], prob[keep]

        counts = np.bincount(src, minlength=n).astype(OFFSET_DTYPE)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return CSRGraph(
            n, indptr, dst.astype(VERTEX_DTYPE), prob.astype(PROB_DTYPE)
        )


def from_edge_array(
    src: np.ndarray,
    dst: np.ndarray,
    probs: np.ndarray | float | None = None,
    *,
    num_vertices: int | None = None,
    relabel: bool = False,
    make_undirected: bool = False,
) -> CSRGraph:
    """One-shot CSR construction from aligned edge arrays.

    ``make_undirected=True`` adds the reversed copy of every edge (SNAP's
    ``com-*`` community graphs are undirected and are consumed this way by
    both frameworks).
    """
    b = GraphBuilder(relabel=relabel)
    b.add_edges(src, dst, probs)
    if make_undirected:
        b.add_edges(dst, src, probs)
    return b.build(num_vertices=num_vertices)
