"""Edge-weight schemes for the IC and LT diffusion models.

The paper's dataset preparation (§V-A) is reproduced exactly:

- **IC**: every edge gets an independent activation probability drawn
  uniformly from ``[0, 1]`` (:func:`assign_ic_weights`, ``scheme="uniform"``).
  The classic *weighted-cascade* (``1/indegree``) and *trivalency*
  ``{0.1, 0.01, 0.001}`` schemes from the IM literature are provided for the
  examples and ablations.
- **LT**: weights are normalised so that, per vertex ``v``, the incoming
  weights plus the probability of activating no neighbour sum to one
  (:func:`assign_lt_weights`), i.e. ``sum_u w_uv <= 1`` with the slack being
  the "no activation" mass.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, check_fraction
from repro.errors import ParameterError
from repro.graph.csr import CSRGraph

__all__ = ["assign_ic_weights", "assign_lt_weights", "lt_incoming_weight_sums"]

_TRIVALENCY = np.array([0.1, 0.01, 0.001])


def assign_ic_weights(
    graph: CSRGraph,
    *,
    scheme: str = "uniform",
    seed=None,
    scale: float = 1.0,
) -> CSRGraph:
    """Return a copy of ``graph`` carrying IC activation probabilities.

    Parameters
    ----------
    scheme:
        ``"uniform"`` — iid U[0, 1] per edge, scaled by ``scale`` (the
        paper's setup with ``scale=1``); ``"weighted_cascade"`` — ``p_uv =
        1 / indeg(v)``; ``"trivalency"`` — uniform choice from
        ``{0.1, 0.01, 0.001}``; ``"constant"`` — every edge gets ``scale``.
    scale:
        Multiplier applied to uniform draws (or the constant itself).  Kept
        in ``(0, 1]`` so results remain valid probabilities.
    """
    check_fraction("scale", scale)
    rng = as_rng(seed)
    m = graph.num_edges
    if scheme == "uniform":
        probs = rng.random(m) * scale
    elif scheme == "constant":
        probs = np.full(m, scale)
    elif scheme == "trivalency":
        probs = rng.choice(_TRIVALENCY, size=m)
    elif scheme == "weighted_cascade":
        indeg = np.bincount(graph.indices, minlength=graph.num_vertices)
        probs = 1.0 / np.maximum(indeg[graph.indices], 1)
    else:
        raise ParameterError(f"unknown IC weight scheme {scheme!r}")
    return graph.with_probs(probs)


def assign_lt_weights(
    graph: CSRGraph,
    *,
    seed=None,
    total_incoming: float = 1.0,
) -> CSRGraph:
    """Return a copy of ``graph`` with LT weights normalised per target.

    For each vertex ``v`` with in-degree ``d``, incoming edge weights are
    random positive values rescaled so they sum to ``total_incoming * U_v``
    where ``U_v ~ U[0, 1]``; the remaining ``1 - sum`` is the probability of
    no activation — the construction described in §V-A ("weights are
    adjusted so that the probabilities of either activating a neighbor or
    activating none sum to one").
    """
    check_fraction("total_incoming", total_incoming)
    rng = as_rng(seed)
    n, m = graph.num_vertices, graph.num_edges
    raw = rng.random(m) + 1e-12  # strictly positive so sums are well defined
    # Sum the raw weights per *target* vertex, then rescale each edge.
    sums = np.zeros(n)
    np.add.at(sums, graph.indices, raw)
    target_mass = rng.random(n) * total_incoming
    factor = np.divide(
        target_mass, sums, out=np.zeros_like(sums), where=sums > 0.0
    )
    return graph.with_probs(raw * factor[graph.indices])


def lt_incoming_weight_sums(graph: CSRGraph) -> np.ndarray:
    """Per-vertex sum of incoming LT weights (must be ``<= 1`` everywhere).

    Exposed for validation and property tests of the LT constraint
    ``sum_{u:(u,v) in E} w_uv <= 1``.
    """
    sums = np.zeros(graph.num_vertices)
    np.add.at(sums, graph.indices, graph.probs)
    return sums
