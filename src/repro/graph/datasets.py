"""Registry of scaled-down synthetic replicas of the paper's SNAP datasets.

The paper evaluates on eight SNAP graphs (Table I).  This environment has no
network access, so each dataset is replaced by a deterministic synthetic
replica built from the topology class that produces the same *qualitative*
RRR-set behaviour (the only property the evaluation depends on):

=============  ===========================  ==================================
paper graph    replica generator            property being preserved
=============  ===========================  ==================================
com-Amazon     planted partition            modular, moderate coverage
com-DBLP       planted partition            modular, moderate coverage
com-YouTube    planted partition + hubs     sparse, lower coverage
com-LJ         planted partition (dense)    high coverage, large
soc-Pokec      Barabási–Albert              skewed social, high coverage
as-Skitter     geometric DAG                **low (~1%) coverage** outlier
web-Google     R-MAT                        skewed web graph, mid coverage
Twitter7       R-MAT (dense)                very large/dense; OOM workload
=============  ===========================  ==================================

Every replica is generated from a fixed per-name seed, so all experiments are
reproducible bit-for-bit.  Sizes are scaled down ~100× from SNAP so the full
benchmark suite runs on a laptop-class machine; the ``scale`` argument lets
callers grow them again.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import DatasetError
from repro.graph import generators as gen
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph
from repro.graph.weights import assign_ic_weights, assign_lt_weights

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """One replica dataset: generator recipe + the paper's reference stats.

    ``paper_nodes`` / ``paper_edges`` / ``paper_avg_coverage`` /
    ``paper_max_coverage`` reproduce Table I's columns so benchmark reports
    can print paper-vs-measured side by side.
    """

    name: str
    paper_name: str
    build: Callable[[float, int], CSRGraph]
    paper_nodes: int
    paper_edges: int
    paper_avg_coverage: float  # fraction, Table I "Average RRRset Coverage"
    paper_max_coverage: float  # fraction, Table I "Max RRRset Coverage"
    directed: bool
    description: str


def _build_amazon(scale: float, seed: int) -> CSRGraph:
    n = int(3400 * scale)
    src, dst = gen.planted_partition(
        n, num_communities=max(n // 12, 1), intra_edges=int(1.55 * n),
        inter_edges=int(0.65 * n), seed=seed,
    )
    return from_edge_array(src, dst, num_vertices=n, make_undirected=True)


def _build_dblp(scale: float, seed: int) -> CSRGraph:
    n = int(3200 * scale)
    src, dst = gen.planted_partition(
        n, num_communities=max(n // 18, 1), intra_edges=int(1.4 * n),
        inter_edges=int(0.6 * n), seed=seed,
    )
    return from_edge_array(src, dst, num_vertices=n, make_undirected=True)


def _build_youtube(scale: float, seed: int) -> CSRGraph:
    # YouTube is sparser (avg degree ~2.6 directed) with strong hubs; a
    # partition graph plus a preferential-attachment hub layer reproduces the
    # lower (~33%) coverage of Table I.
    n = int(11000 * scale)
    src1, dst1 = gen.planted_partition(
        n, num_communities=max(n // 40, 1), intra_edges=int(0.42 * n),
        inter_edges=int(0.12 * n), seed=seed,
    )
    src2, dst2 = gen.barabasi_albert(n, 1, seed=seed + 1)
    src = np.concatenate([src1, src2])
    dst = np.concatenate([dst1, dst2])
    return from_edge_array(src, dst, num_vertices=n, make_undirected=True)


def _build_livejournal(scale: float, seed: int) -> CSRGraph:
    n = int(8000 * scale)
    src, dst = gen.planted_partition(
        n, num_communities=max(n // 25, 1), intra_edges=int(1.6 * n),
        inter_edges=int(0.65 * n), seed=seed,
    )
    return from_edge_array(src, dst, num_vertices=n, make_undirected=True)


def _build_pokec(scale: float, seed: int) -> CSRGraph:
    n = int(6000 * scale)
    src, dst = gen.barabasi_albert(n, 2, seed=seed)
    return from_edge_array(src, dst, num_vertices=n, make_undirected=True)


def _build_skitter(scale: float, seed: int) -> CSRGraph:
    # Geometric DAG: spatial edges oriented low->high vertex id.  Reverse
    # reachability then only sees a narrow upstream cone, reproducing the
    # ~1.6% coverage that makes as-Skitter the outlier of Table I.
    n = int(4000 * scale)
    radius = 3.0 / np.sqrt(n)
    src, dst = gen.random_geometric(n, radius, seed=seed)
    forward = src < dst
    return from_edge_array(src[forward], dst[forward], num_vertices=n)


def _build_google(scale: float, seed: int) -> CSRGraph:
    sc = max(int(np.round(np.log2(8192 * scale))), 4)
    n = 2**sc
    src, dst = gen.rmat(sc, int(5.8 * n), a=0.57, b=0.19, c=0.19, seed=seed)
    return from_edge_array(src, dst, num_vertices=n)


def _build_twitter7(scale: float, seed: int) -> CSRGraph:
    sc = max(int(np.round(np.log2(16384 * scale))), 5)
    n = 2**sc
    src, dst = gen.rmat(sc, int(20.0 * n), a=0.55, b=0.20, c=0.20, seed=seed)
    return from_edge_array(src, dst, num_vertices=n, make_undirected=True)


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            "amazon", "com-Amazon", _build_amazon, 334_863, 925_872,
            0.613, 0.796, directed=False,
            description="product co-purchase communities",
        ),
        DatasetSpec(
            "dblp", "com-DBLP", _build_dblp, 317_080, 1_049_866,
            0.514, 0.789, directed=False,
            description="co-authorship communities",
        ),
        DatasetSpec(
            "youtube", "com-YouTube", _build_youtube, 1_134_890, 2_987_624,
            0.327, 0.599, directed=False,
            description="sparse social graph with hubs",
        ),
        DatasetSpec(
            "livejournal", "com-LJ", _build_livejournal, 3_997_962, 34_681_189,
            0.680, 0.841, directed=False,
            description="dense blogging communities",
        ),
        DatasetSpec(
            "pokec", "soc-Pokec", _build_pokec, 1_632_803, 30_622_564,
            0.601, 0.785, directed=False,
            description="preferential-attachment social network",
        ),
        DatasetSpec(
            "skitter", "as-Skitter", _build_skitter, 1_696_415, 11_095_298,
            0.016, 0.054, directed=True,
            description="spatial/topology graph; the low-coverage outlier",
        ),
        DatasetSpec(
            "google", "web-Google", _build_google, 875_713, 5_105_039,
            0.174, 0.548, directed=True,
            description="skewed web graph (R-MAT)",
        ),
        DatasetSpec(
            "twitter7", "Twitter7", _build_twitter7, 41_652_230, 1_468_365_182,
            0.598, 0.880, directed=False,
            description="largest workload; drives the OOM experiment",
        ),
    ]
}

_NAME_SEED_BASE = 0xE1F  # fixed: replicas are identical across sessions


def dataset_names() -> list[str]:
    """All registry names, in the paper's Table I order."""
    return list(DATASETS)


def load_dataset(
    name: str,
    *,
    model: str | None = None,
    scale: float = 1.0,
    seed: int = 0,
    cache_dir: str | Path | None = None,
) -> CSRGraph:
    """Materialise a replica dataset, optionally weighted for a model.

    Parameters
    ----------
    name:
        A key of :data:`DATASETS` (e.g. ``"youtube"``) or the paper's name
        (e.g. ``"com-YouTube"``).
    model:
        ``None`` returns the bare topology (all probabilities 1); ``"IC"``
        assigns uniform [0, 1] activation probabilities; ``"LT"`` assigns
        normalised linear-threshold weights — both per the paper's §V-A.
    scale:
        Size multiplier relative to the default mini replica.
    seed:
        Offsets the fixed per-dataset seed, letting experiments draw
        independent replicas; ``seed=0`` is the canonical instance.
    cache_dir:
        When set, the generated topology is cached as ``.npz`` under this
        directory and reloaded on subsequent calls.
    """
    key = name.lower()
    if key not in DATASETS:
        by_paper = {s.paper_name.lower(): s.name for s in DATASETS.values()}
        if key in by_paper:
            key = by_paper[key]
        else:
            raise DatasetError(
                f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
            )
    spec = DATASETS[key]
    gen_seed = _NAME_SEED_BASE + 1009 * (sorted(DATASETS).index(key) + 1) + seed

    graph: CSRGraph | None = None
    cache_path: Path | None = None
    if cache_dir is not None:
        cache_path = Path(cache_dir) / f"{key}-s{scale:g}-r{seed}.npz"
        if cache_path.exists():
            from repro.graph.io import load_npz

            graph = load_npz(cache_path)
    if graph is None:
        graph = spec.build(scale, gen_seed)
        if cache_path is not None:
            from repro.graph.io import save_npz

            cache_path.parent.mkdir(parents=True, exist_ok=True)
            save_npz(graph, cache_path)

    if model is None:
        return graph
    model_u = model.upper()
    if model_u == "IC":
        return assign_ic_weights(graph, seed=gen_seed + 7)
    if model_u == "LT":
        return assign_lt_weights(graph, seed=gen_seed + 13)
    raise DatasetError(f"unknown diffusion model {model!r} (use 'IC' or 'LT')")
