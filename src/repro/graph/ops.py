"""Graph transformations: subgraphs, component extraction, k-cores.

Utilities a downstream IM user needs around the core engine: restrict a
graph to a vertex subset (keeping edge probabilities), extract the largest
(strongly or weakly) connected component — the standard preprocessing for
influence studies, since isolated fragments cannot influence anything —
and compute k-core decompositions (a cheap influence-candidate filter the
IM literature uses widely).

All operations return new :class:`CSRGraph` objects plus the vertex-id
mapping back to the original graph.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph
from repro.graph.properties import (
    strongly_connected_components,
    weakly_connected_components,
)

__all__ = [
    "induced_subgraph",
    "largest_component",
    "k_core",
    "core_numbers",
]


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """The subgraph induced by ``vertices``.

    Returns ``(subgraph, labels)`` where ``labels[i]`` is the original id
    of the subgraph's vertex ``i``.  Edge probabilities are preserved.
    """
    verts = np.unique(np.asarray(vertices, dtype=np.int64).ravel())
    if verts.size and (verts.min() < 0 or verts.max() >= graph.num_vertices):
        raise ParameterError("subgraph vertex outside the graph")
    remap = np.full(graph.num_vertices, -1, dtype=np.int64)
    remap[verts] = np.arange(verts.size)
    src, dst, probs = graph.edge_array()
    keep = (remap[src] >= 0) & (remap[dst] >= 0)
    sub = from_edge_array(
        remap[src[keep]], remap[dst[keep]], probs[keep],
        num_vertices=verts.size,
    )
    return sub, verts


def largest_component(
    graph: CSRGraph, *, strong: bool = False
) -> tuple[CSRGraph, np.ndarray]:
    """Restrict to the largest (weakly by default) connected component."""
    if graph.num_vertices == 0:
        return graph, np.empty(0, dtype=np.int64)
    _, labels = (
        strongly_connected_components(graph)
        if strong
        else weakly_connected_components(graph)
    )
    biggest = int(np.argmax(np.bincount(labels)))
    return induced_subgraph(graph, np.flatnonzero(labels == biggest))


def core_numbers(graph: CSRGraph) -> np.ndarray:
    """Core number of every vertex (undirected-degree peeling).

    Standard Matula-Beck peeling on the symmetrised degree: repeatedly
    remove the minimum-degree vertex; a vertex's core number is the degree
    threshold at which it is removed.  O((n + m) log n) with a simple
    bucket-free heap implementation.
    """
    import heapq

    n = graph.num_vertices
    # Symmetrise adjacency (degree = in + out for peeling purposes).
    src, dst, _ = graph.edge_array()
    deg = np.bincount(src, minlength=n) + np.bincount(dst, minlength=n)
    # Build undirected adjacency lists once.
    order = np.argsort(np.concatenate([src, dst]), kind="stable")
    endpoints = np.concatenate([dst, src])[order]
    starts = np.searchsorted(
        np.concatenate([src, dst])[order], np.arange(n + 1)
    )

    core = np.zeros(n, dtype=np.int64)
    removed = np.zeros(n, dtype=bool)
    deg_live = deg.astype(np.int64).copy()
    heap = [(int(d), v) for v, d in enumerate(deg_live)]
    heapq.heapify(heap)
    current = 0
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != deg_live[v]:
            continue  # stale entry
        current = max(current, d)
        core[v] = current
        removed[v] = True
        for u in endpoints[starts[v] : starts[v + 1]].tolist():
            if not removed[u]:
                deg_live[u] -= 1
                heapq.heappush(heap, (int(deg_live[u]), u))
    return core


def k_core(graph: CSRGraph, k: int) -> tuple[CSRGraph, np.ndarray]:
    """The maximal subgraph where every vertex has (symmetrised) degree >= k."""
    if k < 0:
        raise ParameterError(f"k must be >= 0, got {k}")
    cores = core_numbers(graph)
    return induced_subgraph(graph, np.flatnonzero(cores >= k))
