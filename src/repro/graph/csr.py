"""Compressed sparse row (CSR) directed graph with per-edge probabilities.

The CSR layout mirrors what Ripples and EfficientIMM both use in C++: three
flat arrays (``indptr``, ``indices``, ``probs``) giving contiguous, cache-
friendly adjacency traversal.  The reverse (transpose) graph used by reverse
influence sampling is computed once and cached, exactly as the C++ codes
materialise the transposed CSR before sampling.

Design notes (per the HPC-Python guides this repo follows):

- all hot-path state is held in contiguous numpy arrays, never Python object
  graphs;
- neighbour access returns *views*, not copies;
- ``indices`` is ``int32`` (sufficient for every replica dataset and half the
  memory traffic of ``int64`` — the same width EfficientIMM uses), ``indptr``
  is ``int64`` so edge counts above 2**31 remain representable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import GraphConstructionError

__all__ = ["CSRGraph"]

VERTEX_DTYPE = np.int32
OFFSET_DTYPE = np.int64
PROB_DTYPE = np.float64


@dataclass
class CSRGraph:
    """A directed graph ``G = (V, E)`` in CSR form with edge probabilities.

    Attributes
    ----------
    num_vertices:
        ``|V|``; vertices are the integers ``0 .. num_vertices - 1``.
    indptr:
        ``int64`` array of length ``num_vertices + 1``; row ``u``'s
        out-edges live in ``indices[indptr[u]:indptr[u+1]]``.
    indices:
        ``int32`` array of length ``|E|``: the out-neighbour of each edge.
    probs:
        ``float64`` array aligned with ``indices``.  Under the IC model
        ``probs[e]`` is the independent activation probability of edge ``e``;
        under the LT model it is the (in-neighbour-normalised) edge weight.
    """

    num_vertices: int
    indptr: np.ndarray
    indices: np.ndarray
    probs: np.ndarray
    _transpose: "CSRGraph | None" = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ ctor
    def __post_init__(self) -> None:
        self.num_vertices = int(self.num_vertices)
        self.indptr = np.ascontiguousarray(self.indptr, dtype=OFFSET_DTYPE)
        self.indices = np.ascontiguousarray(self.indices, dtype=VERTEX_DTYPE)
        self.probs = np.ascontiguousarray(self.probs, dtype=PROB_DTYPE)
        self._validate()

    def _validate(self) -> None:
        n, m = self.num_vertices, self.indices.shape[0]
        if n < 0:
            raise GraphConstructionError(f"negative vertex count {n}")
        if self.indptr.shape != (n + 1,):
            raise GraphConstructionError(
                f"indptr has shape {self.indptr.shape}, expected ({n + 1},)"
            )
        if self.probs.shape != (m,):
            raise GraphConstructionError(
                f"probs has shape {self.probs.shape}, expected ({m},)"
            )
        if n == 0:
            if m != 0:
                raise GraphConstructionError("edges present in empty graph")
            return
        if self.indptr[0] != 0 or self.indptr[-1] != m:
            raise GraphConstructionError("indptr must start at 0 and end at |E|")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphConstructionError("indptr must be non-decreasing")
        if m and (self.indices.min() < 0 or self.indices.max() >= n):
            raise GraphConstructionError("edge endpoint out of range")
        if m and (np.any(self.probs < 0.0) or np.any(self.probs > 1.0)):
            raise GraphConstructionError("edge probabilities must lie in [0, 1]")

    # ------------------------------------------------------------- accessors
    @property
    def num_edges(self) -> int:
        """``|E|``."""
        return int(self.indices.shape[0])

    def out_degree(self, u: int | np.ndarray | None = None) -> np.ndarray | int:
        """Out-degree of ``u`` (or the full degree vector when ``u is None``)."""
        degs = np.diff(self.indptr)
        if u is None:
            return degs
        return degs[u] if not np.isscalar(u) else int(degs[int(u)])

    def neighbors(self, u: int) -> np.ndarray:
        """View of ``u``'s out-neighbours (no copy)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def edge_probs(self, u: int) -> np.ndarray:
        """View of the probabilities of ``u``'s out-edges (aligned with
        :meth:`neighbors`)."""
        return self.probs[self.indptr[u] : self.indptr[u + 1]]

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(u, v, p)`` triples.  For tests/IO, not hot paths."""
        for u in range(self.num_vertices):
            lo, hi = self.indptr[u], self.indptr[u + 1]
            for e in range(lo, hi):
                yield u, int(self.indices[e]), float(self.probs[e])

    def edge_array(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(src, dst, prob)`` as three aligned flat arrays."""
        src = np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), np.diff(self.indptr)
        )
        return src, self.indices.copy(), self.probs.copy()

    # ----------------------------------------------------------- structure
    def transpose(self) -> "CSRGraph":
        """The reverse graph G^T (in-edges become out-edges); cached.

        Reverse influence sampling traverses in-edges, so both frameworks
        build the transposed CSR up front; we mirror that and memoise it.
        The probability of edge ``(u, v)`` is preserved on ``(v, u)``.
        """
        if self._transpose is None:
            src, dst, p = self.edge_array()
            self._transpose = _csr_from_coo(self.num_vertices, dst, src, p)
            self._transpose._transpose = self  # share the inverse link
        return self._transpose

    def with_probs(self, probs: np.ndarray) -> "CSRGraph":
        """A new graph sharing this topology but carrying fresh edge data."""
        return CSRGraph(self.num_vertices, self.indptr, self.indices, probs)

    def has_sorted_rows(self) -> bool:
        """True when every adjacency row is sorted by neighbour id."""
        for u in range(self.num_vertices):
            row = self.neighbors(u)
            if row.size > 1 and np.any(np.diff(row) < 0):
                return False
        return True

    # ----------------------------------------------------------- accounting
    def nbytes(self) -> int:
        """Modelled memory footprint of the CSR arrays (transpose excluded)."""
        return int(self.indptr.nbytes + self.indices.nbytes + self.probs.nbytes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.probs, other.probs)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(n={self.num_vertices:,}, m={self.num_edges:,})"


def _csr_from_coo(
    n: int, src: np.ndarray, dst: np.ndarray, data: np.ndarray
) -> CSRGraph:
    """Build a CSR graph from COO triples via a counting sort on ``src``.

    Vectorised: one ``bincount`` for degrees, one stable ``argsort`` keyed on
    the source vertex to group rows, keeping each row's edges in input order.
    """
    order = np.argsort(src, kind="stable")
    counts = np.bincount(src, minlength=n).astype(OFFSET_DTYPE)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return CSRGraph(n, indptr, dst[order], data[order])
