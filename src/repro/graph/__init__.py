"""Graph substrate: CSR storage, I/O, generators, weights, structure analysis.

This package is the self-contained graph engine the reproduction runs on.
The central type is :class:`~repro.graph.csr.CSRGraph`, a compressed sparse
row directed graph with per-edge probabilities/weights, plus:

- :mod:`repro.graph.builder` — edge-list cleanup and CSR construction,
- :mod:`repro.graph.io` — SNAP edge-list and ``.npz`` formats,
- :mod:`repro.graph.generators` — vectorised synthetic graph generators,
- :mod:`repro.graph.weights` — IC / LT edge-weight schemes,
- :mod:`repro.graph.properties` — SCC/WCC, degree statistics, skew,
- :mod:`repro.graph.datasets` — the registry of scaled SNAP replicas.
"""

from repro.graph.builder import GraphBuilder, from_edge_array
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASETS, dataset_names, load_dataset
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    planted_partition,
    random_geometric,
    rmat,
    watts_strogatz,
)
from repro.graph.weights import assign_ic_weights, assign_lt_weights

__all__ = [
    "CSRGraph",
    "GraphBuilder",
    "from_edge_array",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "rmat",
    "barabasi_albert",
    "erdos_renyi",
    "watts_strogatz",
    "planted_partition",
    "random_geometric",
    "assign_ic_weights",
    "assign_lt_weights",
]
