"""CELF lazy-greedy influence maximisation — the quality reference.

Monte-Carlo greedy (Kempe et al. 2003 + Leskovec et al.'s CELF lazy
evaluation) is the classical ``(1 - 1/e)``-approximation that IMM matches at
a fraction of the cost.  The reproduction uses it to *validate solution
quality*: on small graphs, IMM's seed sets must achieve a spread within the
theory's tolerance of CELF's.

CELF exploits submodularity: a node's marginal gain can only shrink as the
seed set grows, so stale heap entries are lazily re-evaluated instead of
recomputing every node each round.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.diffusion.base import DiffusionModel
from repro.diffusion.spread import estimate_spread
from repro.errors import ParameterError

__all__ = ["GreedyResult", "celf_greedy"]


@dataclass(frozen=True)
class GreedyResult:
    """Seeds, the spread achieved, and the evaluation count CELF saved."""

    seeds: np.ndarray
    spread: float
    num_evaluations: int


def celf_greedy(
    model: DiffusionModel,
    k: int,
    *,
    num_samples: int = 100,
    seed=None,
    candidates: np.ndarray | None = None,
) -> GreedyResult:
    """Run CELF greedy under ``model``; returns k seeds maximising the
    Monte-Carlo spread estimate.

    ``candidates`` restricts the search space (useful on larger graphs —
    e.g. the top-degree decile); ``None`` considers every vertex.
    """
    check_positive_int("k", k)
    n = model.graph.num_vertices
    if k > n:
        raise ParameterError(f"k={k} exceeds vertex count {n}")
    rng = as_rng(seed)
    if candidates is None:
        candidates = np.arange(n, dtype=np.int64)
    else:
        candidates = np.asarray(candidates, dtype=np.int64).ravel()
        if candidates.size < k:
            raise ParameterError("fewer candidates than k")

    def sigma(seed_list: list[int]) -> float:
        return estimate_spread(
            model,
            np.asarray(seed_list, dtype=np.int64),
            num_samples=num_samples,
            seed=rng,
        ).mean

    evaluations = 0
    # Initial pass: marginal gain of each singleton.
    heap: list[tuple[float, int, int]] = []  # (-gain, round_evaluated, v)
    for v in candidates.tolist():
        gain = sigma([v])
        evaluations += 1
        heapq.heappush(heap, (-gain, 0, v))

    seeds: list[int] = []
    base_spread = 0.0
    while len(seeds) < k:
        neg_gain, evaluated_at, v = heapq.heappop(heap)
        if evaluated_at == len(seeds):
            # Fresh for the current seed set: submodularity makes it optimal.
            seeds.append(v)
            base_spread += -neg_gain
        else:
            gain = sigma(seeds + [v]) - base_spread
            evaluations += 1
            heapq.heappush(heap, (-gain, len(seeds), v))

    return GreedyResult(
        seeds=np.asarray(seeds, dtype=np.int64),
        spread=base_spread,
        num_evaluations=evaluations,
    )
