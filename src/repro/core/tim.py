"""TIM: Two-phase Influence Maximization (Tang et al., SIGMOD 2014).

IMM's direct predecessor and the natural third point on the lineage this
repository covers (TIM -> IMM -> EfficientIMM).  TIM introduced the
RIS-based two-phase structure — estimate how many RRR sets are needed,
then sample and greedily cover — but bounds the sample size through
**KPT**, the expected spread of a *single* random vertex, instead of IMM's
martingale-certified OPT lower bound.  That makes TIM's theta looser
(typically several times larger than IMM's for the same guarantee), which
is precisely the improvement IMM demonstrated; the comparison bench makes
the gap measurable.

Implemented per the SIGMOD'14 paper:

- **KPT estimation** (their Algorithm 2): for rounds ``i = 1 ..
  log2(n) - 1``, draw ``c_i = ceil((6 l ln n + 6 ln log2 n) 2^i)`` RRR
  sets; for each set ``R`` compute ``kappa(R) = 1 - (1 - w(R)/m)^k`` with
  ``w(R)`` the number of edges entering ``R``; accept round ``i`` when the
  mean kappa exceeds ``1 / 2^i``, yielding ``KPT* = n * mean / 2``.
- **theta** = ``lambda / KPT*`` with
  ``lambda = (8 + 2 eps) n (l ln n + ln C(n,k) + ln 2) / eps^2``.
- **Node selection**: the same greedy max-cover kernel as the rest of the
  repository (:func:`~repro.core.selection.efficient_select`), so quality
  differences are attributable to theta alone.

The TIM+ intermediate refinement step (their §5) is intentionally omitted:
it was superseded by IMM's estimation loop, which this repository already
implements in full.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro._util import StageTimes
from repro.core.martingale import log_choose
from repro.core.params import IMMParams
from repro.core.sampling import RRRSampler, SamplingConfig
from repro.core.selection import efficient_select
from repro.diffusion.base import get_model
from repro.errors import ParameterError
from repro.graph.csr import CSRGraph

__all__ = ["TIMResult", "run_tim", "estimate_kpt"]


@dataclass
class TIMResult:
    """Seeds plus TIM's internal estimates."""

    seeds: np.ndarray
    kpt: float
    theta: int
    num_rrrsets: int
    coverage_fraction: float
    spread_estimate: float
    times: StageTimes = field(default_factory=StageTimes)
    theta_capped: bool = False

    def summary(self) -> str:
        return (
            f"TIM k={self.seeds.size} KPT={self.kpt:,.1f} "
            f"theta={self.theta:,} sets={self.num_rrrsets:,} "
            f"sigma~={self.spread_estimate:,.0f}"
        )


def estimate_kpt(
    graph: CSRGraph,
    sampler: RRRSampler,
    k: int,
    ell: float,
    *,
    theta_cap: int | None = None,
) -> float:
    """TIM's Algorithm 2: KPT* from the kappa statistic of random RRR sets.

    Consumes sets from ``sampler`` (growing it as needed), so a subsequent
    sampling phase reuses everything drawn here.
    """
    n, m = graph.num_vertices, graph.num_edges
    if m == 0 or n < 2:
        return 1.0
    indeg = np.bincount(graph.indices, minlength=n).astype(np.float64)
    log_n = math.log(n)
    loglog = math.log(max(math.log2(n), 1.0 + 1e-9))
    base = 6.0 * ell * log_n + 6.0 * loglog
    max_rounds = max(int(math.log2(n)) - 1, 1)

    consumed = 0
    for i in range(1, max_rounds + 1):
        c_i = int(math.ceil(base * (2.0**i)))
        if theta_cap is not None:
            c_i = min(c_i, theta_cap)
        sampler.extend(consumed + c_i)
        kappa_sum = 0.0
        for j in range(consumed, consumed + c_i):
            width = float(indeg[sampler.store.get(j)].sum())
            kappa_sum += 1.0 - (1.0 - width / m) ** k
        consumed += c_i
        mean_kappa = kappa_sum / c_i
        if mean_kappa > 1.0 / (2.0**i):
            return max(n * mean_kappa / 2.0, 1.0)
        if theta_cap is not None and consumed >= theta_cap:
            return max(n * mean_kappa / 2.0, 1.0)
    return 1.0


def run_tim(graph: CSRGraph, params: IMMParams | None = None) -> TIMResult:
    """Run two-phase TIM under the shared parameter object."""
    params = params or IMMParams()
    n = graph.num_vertices
    if params.k > n:
        raise ParameterError(f"k={params.k} exceeds vertex count {n}")
    times = StageTimes()
    model = get_model(params.model, graph)
    sampler = RRRSampler(
        model, SamplingConfig.efficientimm(num_threads=1), seed=params.seed
    )

    with times.measure("KPT_Estimation"):
        kpt = estimate_kpt(
            graph, sampler, params.k, params.ell, theta_cap=params.theta_cap
        )

    log_n = math.log(max(n, 2))
    lam = (
        (8.0 + 2.0 * params.epsilon)
        * n
        * (params.ell * log_n + log_choose(n, params.k) + math.log(2.0))
        / (params.epsilon**2)
    )
    theta_ideal = int(math.ceil(lam / kpt))
    theta = theta_ideal
    capped = False
    if params.theta_cap is not None and theta > params.theta_cap:
        theta = params.theta_cap
        capped = True

    with times.measure("Generate_RRRsets"):
        sampler.extend(max(theta, len(sampler.store)))
    with times.measure("Find_Most_Influential_Set"):
        sel = efficient_select(
            sampler.store, params.k, params.num_threads,
            initial_counter=sampler.counter,
        )
    return TIMResult(
        seeds=sel.seeds.copy(),
        kpt=kpt,
        theta=theta_ideal,
        num_rrrsets=len(sampler.store),
        coverage_fraction=sel.coverage_fraction,
        spread_estimate=n * sel.coverage_fraction,
        times=times,
        theta_capped=capped,
    )
