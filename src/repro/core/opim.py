"""OPIM-C: online processing influence maximization (Tang et al., SIGMOD'18).

The related-work section (§VI) singles out OPIM as the IMM variant that
"enabl[es] early termination of sampling when influence coverage is
sufficient, which improves performance in resource-constrained scenarios".
This module implements OPIM-C on top of the same sampling and selection
kernels as the IMM facades, so the two approaches are directly comparable
(see ``benchmarks/bench_opim_ablation.py``).

Algorithm sketch (SIGMOD'18, Alg. 3):

1. Maintain two *independent* RRR collections, ``R1`` (selection) and
   ``R2`` (validation), of equal size.
2. Per iteration: double both collections; greedily select ``S`` from
   ``R1``; then compute
   - a **lower** bound on ``sigma(S)`` from S's coverage on the held-out
     ``R2`` (Chernoff-style; S never saw R2, so the bound is honest), and
   - an **upper** bound on ``OPT`` from S's coverage on ``R1`` inflated by
     the greedy guarantee (``Lambda1 / (1 - 1/e)``);
3. Stop once ``lower / upper >= 1 - 1/e - epsilon``: the seed set is
   certified without having sampled IMM's worst-case theta.

The bounds below are the paper's (their eq. (6)/(7)), with
``a = ln(3 * i_max / delta)`` split across iterations by a union bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro._util import StageTimes
from repro.core.params import IMMParams
from repro.core.sampling import RRRSampler, SamplingConfig
from repro.core.selection import efficient_select
from repro.diffusion.base import get_model
from repro.errors import ParameterError
from repro.graph.csr import CSRGraph

__all__ = ["OPIMResult", "run_opim", "coverage_of_seeds"]

_E_FACTOR = 1.0 - 1.0 / math.e


@dataclass
class OPIMResult:
    """Seeds plus the certification trace of the online run."""

    seeds: np.ndarray
    approx_guarantee: float  # certified sigma_l / sigma_u at termination
    num_rrrsets: int  # total across R1 + R2
    iterations: int
    spread_lower_bound: float
    opt_upper_bound: float
    times: StageTimes = field(default_factory=StageTimes)
    certified: bool = True

    def summary(self) -> str:
        return (
            f"OPIM-C k={self.seeds.size} sets={self.num_rrrsets:,} "
            f"iters={self.iterations} ratio={self.approx_guarantee:.3f} "
            f"sigma>={self.spread_lower_bound:,.0f}"
        )


def coverage_of_seeds(store, seeds: np.ndarray) -> int:
    """Number of sets in ``store`` hit by ``seeds`` (Lambda(S); exact)."""
    seed_set = set(int(s) for s in np.asarray(seeds).ravel())
    hit = 0
    for s in store:
        for v in s.tolist():
            if v in seed_set:
                hit += 1
                break
    return hit


def _sigma_lower(n: int, theta: int, coverage: int, a: float) -> float:
    """Lower bound on sigma(S) from held-out coverage (OPIM eq. (6))."""
    if theta == 0:
        return 0.0
    lam = float(coverage)
    inner = math.sqrt(lam + 2.0 * a / 9.0) - math.sqrt(a / 2.0)
    # sigma(S) >= 0 always holds, so clamp the concentration bound there.
    return max((max(inner, 0.0) ** 2 - a / 18.0) * n / theta, 0.0)


def _opt_upper(n: int, theta: int, coverage: int, a: float) -> float:
    """Upper bound on OPT via the greedy guarantee (OPIM eq. (7))."""
    if theta == 0:
        return float(n)
    lam_ub = float(coverage) / _E_FACTOR
    return (math.sqrt(lam_ub + a / 2.0) + math.sqrt(a / 2.0)) ** 2 * n / theta


def run_opim(
    graph: CSRGraph,
    params: IMMParams | None = None,
    *,
    delta: float | None = None,
    initial_theta: int = 64,
    max_iterations: int = 24,
) -> OPIMResult:
    """Run OPIM-C under ``params`` (same parameter object as the facades).

    ``delta`` is the failure probability (default ``1/n``, matching IMM's
    ``ell=1``); ``params.theta_cap`` bounds each collection's size, and a
    run that exhausts the cap returns uncertified best-effort seeds
    (``certified=False``) rather than sampling forever.
    """
    params = params or IMMParams()
    n = graph.num_vertices
    if params.k > n:
        raise ParameterError(f"k={params.k} exceeds vertex count {n}")
    delta = delta if delta is not None else 1.0 / max(n, 2)
    if not (0.0 < delta < 1.0):
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    times = StageTimes()

    # Two independent collections: separate models (scratch) and separate
    # deterministic streams.
    model1 = get_model(params.model, graph)
    model2 = get_model(params.model, graph)
    r1 = RRRSampler(
        model1, SamplingConfig.efficientimm(num_threads=1), seed=params.seed
    )
    r2 = RRRSampler(
        model2,
        SamplingConfig.efficientimm(num_threads=1),
        seed=params.seed + 0x5EED,
    )
    a_total = math.log(3.0 * max_iterations / delta)
    target = _E_FACTOR - params.epsilon

    theta = initial_theta
    seeds = np.empty(0, dtype=np.int64)
    lower = 0.0
    upper = float(n)
    for iteration in range(1, max_iterations + 1):
        if params.theta_cap is not None:
            theta = min(theta, params.theta_cap)
        with times.measure("Generate_RRRsets"):
            r1.extend(theta)
            r2.extend(theta)
        with times.measure("Find_Most_Influential_Set"):
            sel = efficient_select(
                r1.store, params.k, params.num_threads,
                initial_counter=r1.counter,
            )
        seeds = sel.seeds.copy()
        with times.measure("Bound_Estimation"):
            cov1 = int(round(sel.coverage_fraction * len(r1.store)))
            cov2 = coverage_of_seeds(r2.store, seeds)
            lower = _sigma_lower(n, len(r2.store), cov2, a_total)
            upper = _opt_upper(n, len(r1.store), cov1, a_total)
        ratio = lower / upper if upper > 0 else 0.0
        if ratio >= target:
            return OPIMResult(
                seeds=seeds,
                approx_guarantee=ratio,
                num_rrrsets=len(r1.store) + len(r2.store),
                iterations=iteration,
                spread_lower_bound=lower,
                opt_upper_bound=upper,
                times=times,
                certified=True,
            )
        if params.theta_cap is not None and theta >= params.theta_cap:
            break
        theta *= 2

    return OPIMResult(
        seeds=seeds,
        approx_guarantee=lower / upper if upper > 0 else 0.0,
        num_rrrsets=len(r1.store) + len(r2.store),
        iterations=min(max_iterations, iteration),
        spread_lower_bound=lower,
        opt_upper_bound=upper,
        times=times,
        certified=False,
    )
