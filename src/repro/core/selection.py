"""``Find_Most_Influential_Set``: greedy max-cover in both designs.

Given theta RRR sets, both kernels pick k seeds greedily: repeatedly take the
vertex occurring in the most *uncovered* sets, then mark every set containing
it as covered.  They return **identical seed sets** (same tie-breaking:
lowest vertex id); what differs — and what this module reproduces — is the
memory-traversal structure:

**RipplesSelection** (§II-B, the baseline): the *vertex space* is block-
partitioned over p threads; every thread traverses **all** RRR sets, binary-
searching each sorted set for its range boundaries, to maintain its private
counter slice; after each pick, every thread again traverses every covered
set.  Total traffic grows with p (the paper's Challenge 1), which this
implementation reproduces with *real* redundant passes — the Ripples kernel
here genuinely reads the set store p times per counting pass, so wall-clock
comparisons are meaningful.

**EfficientSelection** (§IV, the contribution): the *RRR sets* are block-
partitioned; one shared global counter receives fine-grained atomic
updates; the seed is found by a two-step parallel reduction; and counter
maintenance is adaptive — decrement newly covered sets when they are the
minority, rebuild from uncovered sets when they dominate (§IV-C, Figure 5's
knob, exposed as ``adaptive_update``).

Membership ("which sets contain v") is resolved once per round with a
segmented binary search over all remaining sorted sets — vectorised across
sets, faithful to the per-set O(log s) probe both codes perform (adaptive
bitmap sets are charged O(1) instead in the stats).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.core.params import KernelStats
from repro.errors import ParameterError
from repro.runtime.partition import block_partition
from repro.sketch.rrr import AdaptivePolicy
from repro.sketch.store import FlatRRRStore

__all__ = [
    "SelectionResult",
    "efficient_select",
    "ripples_select",
    "segmented_membership",
]


@dataclass
class SelectionResult:
    """Seeds plus the per-round accounting both evaluations consume."""

    seeds: np.ndarray
    coverage_fraction: float
    stats: KernelStats
    rounds: list[dict] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)


def segmented_membership(
    store: FlatRRRStore, v: int, active: np.ndarray
) -> np.ndarray:
    """Indices of active sets containing ``v`` via vectorised per-set
    binary search (sets must be internally sorted).

    Runs the classic bisection loop simultaneously on every active set:
    ``ceil(log2(max_size))`` rounds of array-wide probes — the exact probe
    count a per-set ``std::binary_search`` performs.
    """
    sets = np.flatnonzero(active)
    if sets.size == 0:
        return sets
    offsets = store.offsets
    verts = store.vertices
    lo = offsets[sets].astype(np.int64)
    end = offsets[sets + 1].astype(np.int64)
    hi = end.copy()
    target = np.int32(v)
    # Array-wide lower-bound bisection: every iteration halves every open
    # interval, exactly log2(max set size) rounds.
    while True:
        open_mask = lo < hi
        if not np.any(open_mask):
            break
        mid = (lo + hi) >> 1
        probe = verts[np.where(open_mask, mid, 0)]
        less = open_mask & (probe < target)
        lo = np.where(less, mid + 1, lo)
        hi = np.where(open_mask & ~less, mid, hi)
    if verts.size == 0:
        return sets[:0]
    safe = np.minimum(lo, verts.size - 1)
    found = (lo < end) & (verts[safe] == target)
    return sets[found]


def _entry_set_ids(store: FlatRRRStore) -> np.ndarray:
    """Set id of every flat entry (``repeat`` over sizes)."""
    return np.repeat(
        np.arange(len(store), dtype=np.int64), store.sizes()
    )


def _fresh_counts(
    store: FlatRRRStore, active_entries: np.ndarray
) -> np.ndarray:
    """Occurrence counter over the entries whose mask is true."""
    return np.bincount(
        store.vertices[active_entries], minlength=store.num_vertices
    ).astype(np.int64)


# ===================================================================== IMM
def efficient_select(
    store: FlatRRRStore,
    k: int,
    num_threads: int = 1,
    *,
    initial_counter: np.ndarray | None = None,
    adaptive_update: bool = True,
    adaptive_policy: AdaptivePolicy | None = None,
) -> SelectionResult:
    """EfficientIMM's RRR-partitioned selection (Algorithm 2 + §IV-C).

    Parameters
    ----------
    initial_counter:
        The fused counter produced by Algorithm 3's in-place updates; when
        provided the initialisation pass is skipped (kernel fusion).  When
        ``None`` the kernel builds it with one pass (charged as atomic adds
        by the set owners).
    adaptive_update:
        The §IV-C optimisation: *incrementally* maintain the counter,
        decrementing newly covered sets when they are the minority and
        rebuilding from the uncovered remainder when they dominate.

        ``False`` reproduces Figure 5's "w/o adaptive update" arm: the
        counter is re-derived every round by re-counting all theta sets and
        re-subtracting every set containing any already-selected seed —
        i.e. each round "reduc[es] counts in every identified RRRset"
        (§IV-C's wording).  Per round that costs the whole store plus the
        cumulatively covered entries, which is the only reading consistent
        with the 11.6x-60.9x speedups Figure 5 reports at 128 cores (an
        incremental decrement baseline would differ from the adaptive arm
        by barely 2-3x).  Seeds are identical either way.
    adaptive_policy:
        Representation policy used to *charge* membership probes (bitmap
        sets cost O(1), list sets O(log s)).  Defaults to EfficientIMM's
        standard policy.
    """
    n = store.num_vertices
    num_sets = len(store)
    _check_select_args(store, k, num_threads)
    policy = adaptive_policy if adaptive_policy is not None else AdaptivePolicy()
    stats = KernelStats(num_threads)
    sizes = store.sizes()
    # RRRset partitioning: contiguous blocks of sets per thread (§IV-A).
    owner = np.zeros(num_sets, dtype=np.int64)
    for w, (s_lo, s_hi) in enumerate(block_partition(num_sets, num_threads)):
        owner[s_lo:s_hi] = w
    vertex_bounds = block_partition(n, num_threads)

    # Per-set membership-probe charge under the adaptive representation.
    is_bitmap = sizes > policy.threshold(n)
    probe_cost = np.where(is_bitmap, 1.0, np.log2(np.maximum(sizes, 2)))

    counts = (
        initial_counter.astype(np.int64, copy=True)
        if initial_counter is not None
        else None
    )
    if counts is None:
        counts = store.vertex_counts()
        per_thread = np.bincount(
            owner, weights=sizes.astype(np.float64), minlength=num_threads
        )
        stats.loads += per_thread
        stats.atomics += per_thread
        stats.sync_barriers += 1

    offsets = store.offsets
    active_sets = np.ones(num_sets, dtype=bool)
    active_entries = np.ones(store.total_entries, dtype=bool)
    chosen = np.zeros(n, dtype=bool)
    seeds = np.empty(k, dtype=np.int64)
    covered_total = 0
    rounds: list[dict] = []
    verts = store.vertices

    def retire(set_list: np.ndarray) -> np.ndarray:
        """Mark sets covered; return their concatenated entries.  Touches
        only the covered sets' slices — the partition-local work the
        RRRset-partitioned kernel actually does."""
        chunks = []
        for s in set_list.tolist():
            lo, hi = int(offsets[s]), int(offsets[s + 1])
            active_entries[lo:hi] = False
            chunks.append(verts[lo:hi])
        if chunks:
            return np.concatenate(chunks)
        return np.empty(0, dtype=verts.dtype)

    for rnd in range(k):
        # --- two-step parallel reduction (charged: n/p loads + p serial) ---
        v = int(np.argmax(counts))
        stats.loads += np.array(
            [hi - lo for lo, hi in vertex_bounds], dtype=np.float64
        )
        stats.serial_ops += num_threads
        seeds[rnd] = v
        chosen[v] = True

        # --- membership scan over the thread-local partitions -------------
        new_sets = segmented_membership(store, v, active_sets)
        scan_charge = np.bincount(
            owner[active_sets],
            weights=probe_cost[active_sets],
            minlength=num_threads,
        )
        stats.loads += scan_charge
        stats.sync_barriers += 1

        new_entry_count = int(sizes[new_sets].sum())
        remaining_entries = int(active_entries.sum())
        uncovered_entry_count = remaining_entries - new_entry_count
        use_rebuild = adaptive_update and new_entry_count > uncovered_entry_count

        # Retire the newly covered sets.
        active_sets[new_sets] = False
        dec = retire(new_sets)
        covered_total += new_sets.size

        if not adaptive_update:
            # Figure 5's baseline arm: re-derive the counter from scratch —
            # count every set, then subtract every covered set again.
            counts = store.vertex_counts()
            np.subtract.at(counts, verts[~active_entries], 1)
            per_set_w = sizes.astype(np.float64)
            charge = (
                np.bincount(owner, weights=per_set_w, minlength=num_threads)
                + np.bincount(
                    owner[~active_sets],
                    weights=per_set_w[~active_sets],
                    minlength=num_threads,
                )
            )
            stats.loads += charge
            stats.atomics += charge
        elif use_rebuild:
            counts = _fresh_counts(store, active_entries)
            charge = np.bincount(
                owner[active_sets],
                weights=sizes[active_sets].astype(np.float64),
                minlength=num_threads,
            )
            stats.loads += charge
            stats.atomics += charge
        else:
            np.subtract.at(counts, dec, 1)
            charge = np.bincount(
                owner[new_sets],
                weights=sizes[new_sets].astype(np.float64),
                minlength=num_threads,
            )
            stats.loads += charge
            stats.atomics += charge
        counts[chosen] = -1
        stats.sync_barriers += 1

        rounds.append(
            {
                "seed": v,
                "new_covered_sets": int(new_sets.size),
                "covered_entries": new_entry_count,
                "method": (
                    "recount" if not adaptive_update
                    else "rebuild" if use_rebuild
                    else "decrement"
                ),
            }
        )
        if covered_total >= num_sets and rnd + 1 < k:
            # All sets covered: remaining seeds add nothing; fill with the
            # lowest-id unchosen vertices (counts are all <= 0).
            fill = np.flatnonzero(~chosen)[: k - rnd - 1]
            seeds[rnd + 1 : rnd + 1 + fill.size] = fill
            for fv in fill:
                chosen[fv] = True
                rounds.append(
                    {"seed": int(fv), "new_covered_sets": 0,
                     "covered_entries": 0, "method": "fill"}
                )
            break

    coverage = covered_total / num_sets if num_sets else 0.0
    _record_selection_telemetry(rounds)
    return SelectionResult(
        seeds=seeds, coverage_fraction=coverage, stats=stats, rounds=rounds
    )


def _record_selection_telemetry(rounds: list[dict]) -> None:
    """One guarded block per kernel call: round counts by update method
    (`selection.*`, docs/observability.md) — the §IV-C adaptive-update
    decisions Figure 5 ablates, now observable on any run."""
    tel = telemetry.get()
    if not tel.enabled:
        return
    reg = tel.registry
    reg.counter("selection.rounds").inc(len(rounds))
    for r in rounds:
        reg.counter(f"selection.method.{r['method']}").inc()
        reg.counter("selection.covered_entries").inc(r["covered_entries"])


# ================================================================= Ripples
def ripples_select(
    store: FlatRRRStore,
    k: int,
    num_threads: int = 1,
) -> SelectionResult:
    """Ripples' vertex-partitioned selection (the baseline of §II-B/§III).

    Every thread owns a contiguous vertex range and its private counter
    slice.  Counting and every post-pick update require each thread to
    traverse **all** (remaining) sets — executed here as real redundant
    passes over the flat store, one per thread, so the p-fold traffic the
    paper measures is physically present.  Sets must be internally sorted
    (``store.sort_sets`` at generation): both the range clipping and the
    membership probes binary-search them.
    """
    n = store.num_vertices
    num_sets = len(store)
    _check_select_args(store, k, num_threads)
    if not store.sort_sets:
        raise ParameterError(
            "ripples_select requires a store built with sort_sets=True"
        )
    stats = KernelStats(num_threads)
    sizes = store.sizes()
    offsets = store.offsets
    verts = store.vertices
    vertex_bounds = block_partition(n, num_threads)
    log_sizes = np.log2(np.maximum(sizes, 2))

    # ---- initial counting: p real passes over the whole store ------------
    counts = np.zeros(n, dtype=np.int64)
    for w, (v_lo, v_hi) in enumerate(vertex_bounds):
        in_range = (verts >= v_lo) & (verts < v_hi)  # thread w reads all sets
        counts += np.bincount(verts[in_range], minlength=n)
        # Charge: binary-search bounds in every set + its in-range entries.
        stats.loads[w] += float(log_sizes.sum() + in_range.sum())
        stats.stores[w] += float(in_range.sum())
    stats.sync_barriers += 1

    active_sets = np.ones(num_sets, dtype=bool)
    chosen = np.zeros(n, dtype=bool)
    seeds = np.empty(k, dtype=np.int64)
    covered_total = 0
    rounds: list[dict] = []

    for rnd in range(k):
        # Thread-local maxima then serial merge (the reduction Ripples does).
        v = int(np.argmax(counts))
        stats.loads += np.array(
            [hi - lo for lo, hi in vertex_bounds], dtype=np.float64
        )
        stats.serial_ops += num_threads
        seeds[rnd] = v
        chosen[v] = True

        # Every thread probes every remaining set for v (log s each).
        new_sets = segmented_membership(store, v, active_sets)
        active_count = int(active_sets.sum())
        stats.loads += float(log_sizes[active_sets].sum())  # per thread
        stats.sync_barriers += 1

        active_sets[new_sets] = False
        covered_total += new_sets.size
        dec_chunks = [
            verts[offsets[s] : offsets[s + 1]] for s in new_sets.tolist()
        ]
        dec_all = (
            np.concatenate(dec_chunks) if dec_chunks
            else np.empty(0, dtype=verts.dtype)
        )

        # Decrement: each thread re-reads every covered set, updates its
        # own slice — p real passes over the covered entries.
        for w, (v_lo, v_hi) in enumerate(vertex_bounds):
            mine = dec_all[(dec_all >= v_lo) & (dec_all < v_hi)]
            np.subtract.at(counts, mine, 1)
            stats.loads[w] += float(dec_all.size + log_sizes[new_sets].sum())
            stats.stores[w] += float(mine.size)
        counts[chosen] = -1
        stats.sync_barriers += 1

        rounds.append(
            {
                "seed": v,
                "new_covered_sets": int(new_sets.size),
                "covered_entries": int(sizes[new_sets].sum()),
                "method": "decrement",
                "active_sets_scanned": active_count,
            }
        )
        if covered_total >= num_sets and rnd + 1 < k:
            fill = np.flatnonzero(~chosen)[: k - rnd - 1]
            seeds[rnd + 1 : rnd + 1 + fill.size] = fill
            for fv in fill:
                chosen[fv] = True
                rounds.append(
                    {"seed": int(fv), "new_covered_sets": 0,
                     "covered_entries": 0, "method": "fill"}
                )
            break

    coverage = covered_total / num_sets if num_sets else 0.0
    _record_selection_telemetry(rounds)
    return SelectionResult(
        seeds=seeds, coverage_fraction=coverage, stats=stats, rounds=rounds
    )


def _check_select_args(store: FlatRRRStore, k: int, num_threads: int) -> None:
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    if k > store.num_vertices:
        raise ParameterError(
            f"k={k} exceeds the vertex count {store.num_vertices}"
        )
    if num_threads <= 0:
        raise ParameterError(f"num_threads must be positive, got {num_threads}")
    if len(store) == 0:
        raise ParameterError("cannot select seeds from an empty RRR store")
