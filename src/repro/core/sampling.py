"""``Generate_RRRsets``: the sampling kernel, fused and unfused.

Both frameworks draw theta RRR sets by probabilistic reverse BFS/walks from
uniform roots; they differ in everything around that:

===========================  ========================  =====================
aspect                       Ripples                   EfficientIMM
===========================  ========================  =====================
per-set post-processing      sort each set             none (adaptive store)
counter updates              separate later kernel     **fused** (Alg. 3)
work distribution            static theta/p blocks     dynamic chunked queue
set placement                gathered to one store     stays worker-local
===========================  ========================  =====================

The sampler executes the real sampling work serially (one host core) while
*attributing* it to ``num_threads`` emulated workers according to the
framework's scheduling policy; the per-thread attribution is what the
simulated machine prices into parallel time.  Memory-footprint accounting is
analytic (:func:`modelled_store_bytes`) so the Twitter7 OOM experiment does
not need to materialise per-set objects.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro._util import as_rng
from repro.core.params import KernelStats
from repro.diffusion.base import DiffusionModel
from repro.errors import OutOfMemoryModelError, ParameterError
from repro.sketch.rrr import AdaptivePolicy
from repro.sketch.protocol import make_store
from repro.runtime.workqueue import simulate_schedule

__all__ = ["RRRSampler", "modelled_store_bytes", "reverse_sample_with_cost"]


def reverse_sample_with_cost(
    model: DiffusionModel, root: int, rng: np.random.Generator
) -> tuple[np.ndarray, int]:
    """Draw one RRR set and return ``(vertices, edges_examined)``.

    ``edges_examined`` is the traversal cost the schedulers balance on: the
    number of in-edges whose coin was flipped (IC) or walk steps taken (LT).
    """
    kind = getattr(model, "name", "?")
    if kind == "IC":
        from repro.diffusion.ic import gather_frontier_edges

        rev = model.reverse_graph
        stamp = model._stamp
        epoch = model._next_epoch()
        stamp[root] = epoch
        out = [np.array([root], dtype=np.int32)]
        frontier = np.array([root], dtype=np.int64)
        edges = 0
        while frontier.size:
            nbrs, probs = gather_frontier_edges(rev, frontier)
            edges += nbrs.size
            if nbrs.size == 0:
                break
            live = rng.random(nbrs.size) < probs
            cand = nbrs[live]
            if cand.size == 0:
                break
            cand = np.unique(cand)
            fresh = cand[stamp[cand] != epoch]
            if fresh.size == 0:
                break
            stamp[fresh] = epoch
            out.append(fresh.astype(np.int32))
            frontier = fresh.astype(np.int64)
        return np.concatenate(out), edges
    # LT (and any walk-style model): cost = path length.
    verts = model.reverse_sample(root, rng)
    return verts, int(verts.size)


def modelled_store_bytes(
    sizes: np.ndarray,
    num_vertices: int,
    policy: AdaptivePolicy | None,
) -> int:
    """Footprint of storing sets of the given sizes.

    ``policy=None`` models Ripples (every set a 4-byte-per-entry sorted
    vector); an :class:`AdaptivePolicy` models EfficientIMM (4-byte lists
    below the threshold, ``n/8``-byte bitmaps above).
    """
    s = np.asarray(sizes, dtype=np.int64)
    list_bytes = 4 * s
    if policy is None:
        return int(list_bytes.sum())
    bitmap_bytes = (num_vertices + 7) // 8
    thr = policy.threshold(num_vertices)
    return int(np.where(s > thr, bitmap_bytes, list_bytes).sum())


def charge_per_set(
    edges: np.ndarray,
    sizes: np.ndarray,
    num_vertices: int,
    adaptive_policy: AdaptivePolicy | None,
    *,
    fused: bool,
) -> np.ndarray:
    """Per-set generation cost under a framework's representation rules.

    Recomputes what :class:`RRRSampler` charges online, from the charge-
    independent primitives (edges examined, set size).  Lets one sampling
    pass be re-priced for both frameworks without re-drawing the sets.
    """
    edges = np.asarray(edges, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.float64)
    cost = edges + sizes
    logs = np.log2(np.maximum(sizes, 2.0))
    if adaptive_policy is None:
        cost = cost + np.where(sizes > 1, sizes * logs, 0.0)
    else:
        thr = adaptive_policy.threshold(num_vertices)
        rep = np.where(sizes > thr, sizes, sizes * logs)
        cost = cost + np.where(sizes > 1, rep, 0.0)
    if fused:
        cost = cost + sizes
    return cost


@dataclass
class SamplingConfig:
    """How the sampler behaves; the two presets mirror the frameworks.

    ``kernel`` selects the sampling implementation: ``None`` (default) is
    the legacy per-root path over a sequential ``np.random.Generator``;
    ``"batched"``/``"scalar"`` route through :mod:`repro.kernels`'s
    counter-stream kernels (byte-identical to each other, but a different
    random stream from the legacy path).  ``kernel_batch`` is the number of
    sets per vectorised pass for the batched kernel.
    """

    num_threads: int = 1
    fused: bool = True  # EfficientIMM: update counter as sets are produced
    schedule: str = "dynamic"  # "static" (Ripples) or "dynamic"
    chunk_size: int = 8
    adaptive_policy: AdaptivePolicy | None = None  # None = all sorted lists
    memory_budget_bytes: int | None = None
    kernel: str | None = None
    kernel_batch: int = 64

    @classmethod
    def ripples(cls, num_threads: int = 1, **kw) -> "SamplingConfig":
        return cls(
            num_threads=num_threads, fused=False,
            schedule="static", adaptive_policy=None, **kw,
        )

    @classmethod
    def efficientimm(cls, num_threads: int = 1, **kw) -> "SamplingConfig":
        kw.setdefault("adaptive_policy", AdaptivePolicy())
        return cls(
            num_threads=num_threads, fused=True,
            schedule="dynamic", **kw,
        )


class RRRSampler:
    """Incrementally grows a store of RRR sets (IMM asks for more each level).

    The physical store is always a :class:`FlatRRRStore`; representation
    choices (sorted vs adaptive) affect the sort work charged, the membership
    structures used at selection, and the modelled memory footprint.
    """

    def __init__(self, model: DiffusionModel, config: SamplingConfig, *, seed=0):
        if config.num_threads < 1:
            raise ParameterError("num_threads must be >= 1")
        self.model = model
        self.config = config
        self.rng = as_rng(seed)
        self._kernel_sampler = None
        if config.kernel is not None:
            from repro.kernels import KernelSampler

            if not isinstance(seed, (int, np.integer)):
                raise ParameterError(
                    "kernel sampling needs an integer seed (counter streams "
                    "are keyed by (seed, set_index), not by Generator state)"
                )
            self.seed = int(seed)
            self._kernel_sampler = KernelSampler(
                model, config.kernel, config.kernel_batch
            )
        n = model.graph.num_vertices
        # The physical layout always keeps sets internally sorted so both
        # selection kernels can binary-search them; what differs between the
        # frameworks is the *charged* post-processing cost (below).
        self.store = make_store("flat", num_vertices=n, sort_sets=True)
        self.counter = np.zeros(n, dtype=np.int64)  # fused global counter
        self.per_set_costs: list[float] = []
        self.per_set_edges: list[int] = []  # traversal work, charge-independent
        self.stats = KernelStats(config.num_threads)
        self.num_atomic_updates = 0

    # ---------------------------------------------------------------- main
    def extend(self, target_count: int) -> None:
        """Generate sets until the store holds ``target_count`` of them."""
        if self._kernel_sampler is not None:
            self.sample_batch(target_count)
            return
        cfg = self.config
        n = self.model.graph.num_vertices
        tel = telemetry.get()
        t0 = time.perf_counter() if tel.enabled else 0.0
        new_costs: list[float] = []
        new_sizes: list[int] = []
        new_edges = 0
        while len(self.store) < target_count:
            root = int(self.rng.integers(0, n))
            verts, edges = reverse_sample_with_cost(self.model, root, self.rng)
            self.store.append(verts)
            size = verts.size
            # Traversal loads (edges examined) + writes of the set entries,
            # plus the representation cost: Ripples sorts every set
            # (s log s); EfficientIMM sorts only the small sets and builds a
            # bitmap (O(s)) for dense ones (§IV-C).
            cost = float(edges + size)
            if size > 1:
                if cfg.adaptive_policy is None:
                    cost += size * np.log2(size)
                elif size > cfg.adaptive_policy.threshold(n):
                    cost += size  # bitmap construction
                else:
                    cost += size * np.log2(size)
            if cfg.fused:
                self.counter[verts] += 1  # in-place fused update (Alg. 3)
                self.num_atomic_updates += size
                cost += size
            new_costs.append(cost)
            new_sizes.append(size)
            new_edges += edges
            self.per_set_costs.append(cost)
            self.per_set_edges.append(edges)

        if new_costs:
            self._attribute(np.asarray(new_costs), np.asarray(new_sizes))
        self._check_budget()
        if tel.enabled and new_sizes:
            self._record_telemetry(tel, new_sizes, new_edges, time.perf_counter() - t0)

    def sample_batch(self, target_count: int) -> None:
        """Kernel-mode extend: draw the missing sets in vectorised batches.

        Set *i* (global store index) is produced from the counter stream
        keyed by ``(seed, i)``, so growing the store in any number of calls
        of any size yields the same bytes — which also makes checkpoint
        resume (store length = next index) work unchanged.
        """
        cfg = self.config
        count = target_count - len(self.store)
        if count <= 0:
            return
        n = self.model.graph.num_vertices
        tel = telemetry.get()
        t0 = time.perf_counter() if tel.enabled else 0.0
        start = len(self.store)
        flat, sizes, edges = self._kernel_sampler.sample_indexed(
            self.seed, start, count
        )
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        for i in range(count):
            self.store.append(flat[offsets[i] : offsets[i + 1]])
        costs = charge_per_set(
            edges, sizes, n, cfg.adaptive_policy, fused=cfg.fused
        )
        if cfg.fused and flat.size:
            self.counter += np.bincount(flat, minlength=n).astype(np.int64)
            self.num_atomic_updates += int(flat.size)
        self.per_set_costs.extend(costs.tolist())
        self.per_set_edges.extend(edges.tolist())
        self._attribute(costs, sizes.astype(np.float64))
        self._check_budget()
        if tel.enabled and count:
            self._record_telemetry(
                tel, sizes.tolist(), int(edges.sum()),
                time.perf_counter() - t0,
            )

    def _record_telemetry(
        self, tel, new_sizes: list[int], new_edges: int, elapsed: float
    ) -> None:
        """Unified sampling metrics (docs/observability.md, `sampling.*`)."""
        reg = tel.registry
        reg.counter("sampling.rrr_sets").inc(len(new_sizes))
        reg.counter("sampling.edges_examined").inc(new_edges)
        if self.config.fused:
            reg.counter("sampling.atomic_updates").inc(sum(new_sizes))
        hist = reg.histogram("sampling.set_size")
        for s in new_sizes:
            hist.observe(s)
        if elapsed > 0:
            reg.gauge("sampling.rrr_sets_per_sec").set(len(new_sizes) / elapsed)
        reg.gauge("sketch.store.sets").set(len(self.store))
        reg.gauge("sketch.store.entries").set(self.store.total_entries)
        reg.gauge("sketch.store.bytes").set(self.modelled_bytes())

    def _attribute(self, costs: np.ndarray, sizes: np.ndarray) -> None:
        """Charge this batch's work to emulated threads per the schedule."""
        cfg = self.config
        sched = simulate_schedule(
            costs, cfg.num_threads, policy=cfg.schedule, chunk_size=cfg.chunk_size
        )
        per_thread = np.bincount(
            sched.assignment, weights=costs, minlength=cfg.num_threads
        )
        self.stats.loads += per_thread
        size_per_thread = np.bincount(
            sched.assignment, weights=sizes.astype(np.float64),
            minlength=cfg.num_threads,
        )
        self.stats.stores += size_per_thread
        if cfg.fused:
            self.stats.atomics += size_per_thread
        self.stats.sync_barriers += 1

    def _check_budget(self) -> None:
        cfg = self.config
        if cfg.memory_budget_bytes is None:
            return
        used = self.modelled_bytes()
        if used > cfg.memory_budget_bytes:
            raise OutOfMemoryModelError(used, cfg.memory_budget_bytes)

    # ------------------------------------------------------------ accessors
    def modelled_bytes(self) -> int:
        """Footprint of the sets under this config's representation."""
        return modelled_store_bytes(
            self.store.sizes(),
            self.store.num_vertices,
            self.config.adaptive_policy,
        )

    def reset_counter(self) -> None:
        """Zero the fused counter (IMM discards estimation-phase state)."""
        self.counter[:] = 0

    def rebuild_counter(self) -> None:
        """Recompute the fused counter from the current store contents."""
        self.counter = self.store.vertex_counts()

    def gather_cost(self) -> float:
        """Loads+stores of Ripples' gather/redistribution step: every stored
        entry is copied once into the global structure before selection."""
        return 2.0 * self.store.total_entries
