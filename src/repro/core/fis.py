"""Forward influence sketches (FIS): a PacIM-style baseline (§VI).

PacIM (Wang et al. 2024) — the last related-work system the paper discusses
— builds *forward* influence sketches for the IC model: instead of asking
"who am I influenced by" (IMM's reverse sets), it asks "who am I
influencing".  This module implements the forward-sketch approach in its
classic sketch-based form so the repository can compare the two directions:

1. sample ``num_samples`` live-edge graphs (each IC edge kept independently
   with its probability);
2. in each sample, estimate every vertex's forward-reachable-set size with
   **min-rank (bottom-1, h-repetition) reachability sketches** (Cohen '97):
   assign ``num_hashes`` independent U[0,1] ranks per vertex and propagate
   the element-wise minimum backwards along live edges to a fixpoint — a
   fully vectorised scatter-min loop;
3. the influence of a seed *set* is estimated from the element-wise min of
   its members' sketches (min-rank sketches are union-compatible), averaged
   over samples; seeds are chosen greedily with CELF-style lazy evaluation.

The estimator: if ``r_1..r_h`` are independent minima of ``m`` U[0,1]
ranks, ``sum r_i ~ Gamma(h, 1/(m+1))`` and ``m_hat = (h - 1) / sum(r) - 1``
is the standard unbiased-ish cardinality estimate (we clamp at [1, n]).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.errors import ParameterError
from repro.graph.csr import CSRGraph

__all__ = ["ForwardSketches", "fis_select"]


class ForwardSketches:
    """Per-sample min-rank reachability sketches for every vertex.

    Parameters
    ----------
    num_samples:
        Live-edge graphs sampled (outer Monte-Carlo loop).
    num_hashes:
        Independent rank assignments per sample (sketch width ``h``);
        estimation error shrinks like ``1/sqrt(h)``.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        num_samples: int = 8,
        num_hashes: int = 16,
        seed=0,
    ):
        check_positive_int("num_samples", num_samples)
        check_positive_int("num_hashes", num_hashes)
        self.graph = graph
        self.num_samples = num_samples
        self.num_hashes = num_hashes
        rng = as_rng(seed)
        n = graph.num_vertices
        src_all, dst_all, probs = graph.edge_array()
        # sketches[s] is an (n, h) matrix of propagated min-ranks.
        self.sketches: list[np.ndarray] = []
        for _ in range(num_samples):
            live = rng.random(probs.size) < probs
            src = src_all[live].astype(np.int64)
            dst = dst_all[live].astype(np.int64)
            ranks = rng.random((n, self.num_hashes)).astype(np.float64)
            self.sketches.append(_propagate_min(ranks, src, dst))

    # ------------------------------------------------------------- estimates
    def _estimate_from_rows(self, rows: np.ndarray) -> float:
        """Cardinality estimate from an (h,) min-rank vector."""
        h = self.num_hashes
        total = float(rows.sum())
        if total <= 0.0:
            return float(self.graph.num_vertices)
        est = (h - 1.0) / total - 1.0 if h > 1 else 1.0 / total - 1.0
        return float(np.clip(est, 1.0, self.graph.num_vertices))

    def estimate(self, seeds: np.ndarray) -> float:
        """Estimated expected forward reach (influence) of a seed set."""
        seeds = np.asarray(seeds, dtype=np.int64).ravel()
        if seeds.size == 0:
            return 0.0
        acc = 0.0
        for sk in self.sketches:
            union = sk[seeds].min(axis=0)  # min-rank union property
            acc += self._estimate_from_rows(union)
        return acc / self.num_samples

    def estimate_all_singletons(self) -> np.ndarray:
        """Influence estimate of every single vertex (vectorised)."""
        n = self.graph.num_vertices
        h = self.num_hashes
        sums = np.zeros(n)
        for sk in self.sketches:
            totals = sk.sum(axis=1)
            est = np.where(
                totals > 0,
                (h - 1.0) / np.maximum(totals, 1e-300) - 1.0,
                float(n),
            )
            sums += np.clip(est, 1.0, n)
        return sums / self.num_samples

    def nbytes(self) -> int:
        return sum(sk.nbytes for sk in self.sketches)


def _propagate_min(
    ranks: np.ndarray, src: np.ndarray, dst: np.ndarray, max_rounds: int = 10_000
) -> np.ndarray:
    """Fixpoint of ``ranks[u] = min(ranks[u], ranks[v]) for (u, v) live``.

    After convergence ``ranks[u]`` holds, per hash, the minimum initial
    rank over u's forward-reachable set — one scatter-min per round,
    O(diameter) rounds.
    """
    out = ranks.copy()
    for _ in range(max_rounds):
        before = out.copy()
        np.minimum.at(out, src, out[dst])
        if np.array_equal(out, before):
            return out
    raise ParameterError("min-rank propagation failed to converge")


@dataclass(frozen=True)
class FISResult:
    """Seeds plus the sketch-side influence estimate."""

    seeds: np.ndarray
    estimated_spread: float
    num_evaluations: int
    sketch_bytes: int


def fis_select(
    graph: CSRGraph,
    k: int,
    *,
    num_samples: int = 8,
    num_hashes: int = 16,
    seed=0,
    candidates: np.ndarray | None = None,
) -> FISResult:
    """Greedy IM with forward sketches (CELF-lazy over ``candidates``).

    ``candidates`` defaults to all vertices; restricting it (e.g. to the
    top-degree decile) is PacIM-style pruning for large graphs.
    """
    check_positive_int("k", k)
    n = graph.num_vertices
    if k > n:
        raise ParameterError(f"k={k} exceeds vertex count {n}")
    fs = ForwardSketches(
        graph, num_samples=num_samples, num_hashes=num_hashes, seed=seed
    )
    cands = (
        np.arange(n, dtype=np.int64)
        if candidates is None
        else np.asarray(candidates, dtype=np.int64).ravel()
    )
    if cands.size < k:
        raise ParameterError("fewer candidates than k")

    singles = fs.estimate_all_singletons()
    heap = [(-float(singles[v]), 0, int(v)) for v in cands]
    heapq.heapify(heap)
    evaluations = cands.size

    seeds: list[int] = []
    current = 0.0
    while len(seeds) < k:
        neg_gain, at, v = heapq.heappop(heap)
        if at == len(seeds):
            seeds.append(v)
            current += -neg_gain
        else:
            gain = fs.estimate(np.asarray(seeds + [v])) - current
            evaluations += 1
            heapq.heappush(heap, (-gain, len(seeds), v))

    return FISResult(
        seeds=np.asarray(seeds, dtype=np.int64),
        estimated_spread=fs.estimate(np.asarray(seeds)),
        num_evaluations=evaluations,
        sketch_bytes=fs.nbytes(),
    )
