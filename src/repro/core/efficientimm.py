"""The EfficientIMM facade: all of the paper's optimisations, individually
togglable so the ablation benchmarks (Figure 5, Table II/IV arms) can switch
them off one at a time.

Optimisations and their defaults:

- ``fused_kernels=True`` — Algorithm 3's in-place counter updates;
- ``adaptive_update=True`` — §IV-C counter rebuild-vs-decrement;
- ``adaptive_representation=True`` — §IV-C list/bitmap switching;
- ``dynamic_schedule=True`` — §IV-C producer-consumer job balancing;
- ``num_threads`` — emulated worker count (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.imm import run_imm
from repro.core.params import IMMParams, IMMResult
from repro.core.sampling import SamplingConfig
from repro.core.selection import efficient_select
from repro.graph.csr import CSRGraph
from repro.sketch.rrr import AdaptivePolicy

__all__ = ["EfficientIMM"]


@dataclass
class EfficientIMM:
    """EfficientIMM bound to a weighted graph.

    Example
    -------
    >>> from repro.graph import load_dataset
    >>> from repro.core import EfficientIMM, IMMParams
    >>> g = load_dataset("amazon", model="IC")
    >>> res = EfficientIMM(g).run(IMMParams(k=10, epsilon=0.5, theta_cap=2000))
    >>> len(res.seeds)
    10
    """

    graph: CSRGraph
    fused_kernels: bool = True
    adaptive_update: bool = True
    adaptive_representation: bool = True
    dynamic_schedule: bool = True
    bitmap_fraction: float = 1.0 / 32.0
    memory_budget_bytes: int | None = None

    name = "EfficientIMM"

    def sampling_config(self, params: IMMParams) -> SamplingConfig:
        policy = (
            AdaptivePolicy(self.bitmap_fraction)
            if self.adaptive_representation
            else None
        )
        return SamplingConfig(
            num_threads=params.num_threads,
            fused=self.fused_kernels,
            schedule="dynamic" if self.dynamic_schedule else "static",
            adaptive_policy=policy,
            memory_budget_bytes=self.memory_budget_bytes,
            kernel=params.kernel,
            kernel_batch=params.kernel_batch,
        )

    def run(
        self,
        params: IMMParams | None = None,
        *,
        checkpointer=None,
        resume: bool = False,
        fault_plan=None,
    ) -> IMMResult:
        """Execute the full IMM workflow with EfficientIMM's kernels.

        ``checkpointer`` / ``resume`` / ``fault_plan`` pass through to
        :func:`~repro.core.imm.run_imm` (docs/resilience.md).
        """
        params = params or IMMParams()
        policy = (
            AdaptivePolicy(self.bitmap_fraction)
            if self.adaptive_representation
            else AdaptivePolicy(1.0)  # threshold n: never bitmap
        )

        def select(store, k, num_threads, initial_counter: np.ndarray | None):
            return efficient_select(
                store,
                k,
                num_threads,
                initial_counter=initial_counter,
                adaptive_update=self.adaptive_update,
                adaptive_policy=policy,
            )

        return run_imm(
            self.graph,
            params,
            self.sampling_config(params),
            select,
            gather_before_select=False,
            framework=self.name,
            checkpointer=checkpointer,
            resume=resume,
            fault_plan=fault_plan,
        )
