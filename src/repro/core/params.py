"""Run parameters and result records shared by every IMM implementation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import StageTimes, check_fraction, check_positive_int
from repro.errors import ParameterError

__all__ = ["IMMParams", "KernelStats", "IMMResult"]


@dataclass(frozen=True)
class IMMParams:
    """Parameters of one IMM run (paper defaults: ``k=50``, ``epsilon=0.5``).

    Attributes
    ----------
    k:
        Seed-set budget |S|.
    epsilon:
        Approximation quality; the returned set is a
        ``(1 - 1/e - epsilon)``-approximation w.p. ``>= 1 - 1/n**ell``.
    ell:
        Failure-probability exponent (Tang et al.'s l, default 1).
    model:
        Diffusion model name, ``"IC"`` or ``"LT"``.
    seed:
        RNG seed; every implementation is deterministic given it.
    num_threads:
        The *emulated* thread count p: kernels execute the exact p-thread
        work program serially and report per-thread statistics, which the
        simulated machine turns into parallel time (DESIGN.md).
    theta_cap:
        Optional hard cap on the number of RRR sets, used by tests and
        benchmarks to bound runtime; ``None`` (default) is the faithful
        uncapped algorithm.
    kernel:
        Sampling kernel: ``None`` (default) is the legacy per-root path
        driven by a sequential ``np.random.Generator``; ``"batched"`` /
        ``"scalar"`` select the counter-stream kernels in
        :mod:`repro.kernels`, whose output is byte-identical to each other
        for a given seed but *different* from the legacy stream.
    kernel_batch:
        Sets per vectorised pass when ``kernel="batched"``; ``1`` is the
        compatibility mode (still counter-keyed, minimal memory).
    """

    k: int = 50
    epsilon: float = 0.5
    ell: float = 1.0
    model: str = "IC"
    seed: int = 0
    num_threads: int = 1
    theta_cap: int | None = None
    kernel: str | None = None
    kernel_batch: int = 64

    def __post_init__(self) -> None:
        check_positive_int("k", self.k)
        check_fraction("epsilon", self.epsilon)
        check_positive_int("num_threads", self.num_threads)
        check_positive_int("kernel_batch", self.kernel_batch)
        if self.ell <= 0:
            raise ParameterError(f"ell must be positive, got {self.ell}")
        if self.model.upper() not in ("IC", "LT"):
            raise ParameterError(f"model must be 'IC' or 'LT', got {self.model!r}")
        if self.theta_cap is not None and self.theta_cap < 1:
            raise ParameterError(f"theta_cap must be >= 1, got {self.theta_cap}")
        if self.kernel is not None and self.kernel not in ("batched", "scalar"):
            raise ParameterError(
                f"kernel must be None, 'batched' or 'scalar', got {self.kernel!r}"
            )


@dataclass
class KernelStats:
    """Per-thread operation counts emitted by every kernel.

    These are the quantities the simulated machine prices: array element
    loads/stores, atomic updates, binary-search probes, and generic compute
    operations, each as a length-``num_threads`` vector so load imbalance is
    visible.  ``serial_ops`` counts work on the critical section /
    single-thread path (e.g. Ripples' merge of thread-local counters), which
    is what produces its Amdahl saturation.
    """

    num_threads: int
    loads: np.ndarray = field(default=None)  # type: ignore[assignment]
    stores: np.ndarray = field(default=None)  # type: ignore[assignment]
    atomics: np.ndarray = field(default=None)  # type: ignore[assignment]
    compute: np.ndarray = field(default=None)  # type: ignore[assignment]
    serial_ops: float = 0.0
    sync_barriers: int = 0

    def __post_init__(self) -> None:
        for name in ("loads", "stores", "atomics", "compute"):
            if getattr(self, name) is None:
                setattr(self, name, np.zeros(self.num_threads, dtype=np.float64))

    def merge(self, other: "KernelStats") -> "KernelStats":
        """Accumulate another kernel's stats (thread counts must match)."""
        if other.num_threads != self.num_threads:
            raise ParameterError("cannot merge stats across thread counts")
        self.loads += other.loads
        self.stores += other.stores
        self.atomics += other.atomics
        self.compute += other.compute
        self.serial_ops += other.serial_ops
        self.sync_barriers += other.sync_barriers
        return self

    @property
    def total_memory_ops(self) -> float:
        return float(self.loads.sum() + self.stores.sum() + self.atomics.sum())

    def per_thread_ops(self) -> np.ndarray:
        return self.loads + self.stores + self.atomics + self.compute


@dataclass
class IMMResult:
    """Everything one IMM run produced.

    ``coverage_fraction`` is F(S): the fraction of sampled RRR sets the seed
    set intersects; ``n * coverage_fraction`` is IMM's unbiased influence
    estimate.  ``stats`` maps kernel name -> accumulated
    :class:`KernelStats`; ``times`` is the wall-clock stage breakdown.
    """

    seeds: np.ndarray
    params: IMMParams
    theta: int
    num_rrrsets: int
    coverage_fraction: float
    opt_lower_bound: float
    times: StageTimes = field(default_factory=StageTimes)
    stats: dict[str, KernelStats] = field(default_factory=dict)
    rrr_store_bytes: int = 0

    @property
    def estimated_spread(self) -> float:
        """IMM's internal influence estimate n·F(S) — needs n from params'
        context, so it is stored pre-multiplied by the caller via
        ``spread_estimate``."""
        return self.spread_estimate

    spread_estimate: float = 0.0

    def summary(self) -> str:
        return (
            f"IMM[{self.params.model}] k={self.params.k} "
            f"theta={self.theta:,} sets={self.num_rrrsets:,} "
            f"F(S)={self.coverage_fraction:.3f} "
            f"sigma~={self.spread_estimate:,.0f} "
            f"time={self.times.total:.3f}s"
        )
