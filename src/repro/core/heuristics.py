"""Classic IM heuristics: the cheap baselines every IM evaluation carries.

These are the non-sketch seed-selection methods the IM literature (and the
examples in this repository) compare against:

- :func:`degree_discount` — Chen et al. (KDD'09): degree ranking where each
  selected seed discounts its neighbours' effective degree by the expected
  overlap; nearly free and surprisingly strong on IC with small p;
- :func:`single_discount` — the simpler variant: subtract one per selected
  neighbour;
- :func:`top_degree` — plain out-degree ranking;
- :func:`random_seeds` — the floor any real method must clear.

All run in O(m + n log n)-ish time, need no sampling, and carry no
approximation guarantee — which is exactly the trade IMM's machinery buys
back.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.errors import ParameterError
from repro.graph.csr import CSRGraph

__all__ = ["top_degree", "random_seeds", "single_discount", "degree_discount"]


def _check(graph: CSRGraph, k: int) -> None:
    check_positive_int("k", k)
    if k > graph.num_vertices:
        raise ParameterError(
            f"k={k} exceeds vertex count {graph.num_vertices}"
        )


def top_degree(graph: CSRGraph, k: int) -> np.ndarray:
    """The k highest out-degree vertices (ties by lowest id)."""
    _check(graph, k)
    degs = np.asarray(graph.out_degree())
    # argsort on (-degree, id): stable sort of -degree keeps id order.
    return np.argsort(-degs, kind="stable")[:k].astype(np.int64)


def random_seeds(graph: CSRGraph, k: int, *, seed=None) -> np.ndarray:
    """k uniform random vertices without replacement."""
    _check(graph, k)
    rng = as_rng(seed)
    return rng.choice(graph.num_vertices, size=k, replace=False).astype(np.int64)


def single_discount(graph: CSRGraph, k: int) -> np.ndarray:
    """Degree ranking with one-per-covered-neighbour discounting.

    After selecting ``v``, every vertex with an edge *into* ``v`` loses one
    unit of effective degree: that edge now points at an already-activated
    vertex and can contribute no new reach.  (On the symmetric graphs the
    heuristic was designed for, in- and out-neighbours coincide.)
    """
    _check(graph, k)
    n = graph.num_vertices
    rev = graph.transpose()
    degree = np.asarray(graph.out_degree(), dtype=np.float64).copy()
    heap = [(-degree[v], v) for v in range(n)]
    heapq.heapify(heap)
    selected = np.zeros(n, dtype=bool)
    seeds = []
    while len(seeds) < k:
        neg_d, v = heapq.heappop(heap)
        if selected[v]:
            continue
        if -neg_d != degree[v]:
            heapq.heappush(heap, (-degree[v], v))  # stale: refresh
            continue
        seeds.append(v)
        selected[v] = True
        for u in rev.neighbors(v).tolist():
            if not selected[u]:
                degree[u] -= 1.0
                heapq.heappush(heap, (-degree[u], u))
    return np.asarray(seeds, dtype=np.int64)


def degree_discount(
    graph: CSRGraph, k: int, *, propagation_p: float | None = None
) -> np.ndarray:
    """DegreeDiscountIC (Chen et al., KDD'09).

    Each vertex ``v`` carries a discounted degree
    ``dd(v) = d(v) - 2 t(v) - (d(v) - t(v)) t(v) p`` where ``t(v)`` counts
    already-selected in/out neighbours and ``p`` is the (assumed uniform)
    propagation probability.  ``propagation_p=None`` uses the graph's mean
    edge probability.
    """
    _check(graph, k)
    n = graph.num_vertices
    p = (
        float(propagation_p)
        if propagation_p is not None
        else (float(graph.probs.mean()) if graph.num_edges else 0.0)
    )
    if not (0.0 <= p <= 1.0):
        raise ParameterError(f"propagation_p must be in [0, 1], got {p}")
    rev = graph.transpose()
    degree = np.asarray(graph.out_degree(), dtype=np.float64)
    t = np.zeros(n, dtype=np.float64)
    dd = degree.copy()
    heap = [(-dd[v], v) for v in range(n)]
    heapq.heapify(heap)
    selected = np.zeros(n, dtype=bool)
    seeds = []
    while len(seeds) < k:
        neg_d, v = heapq.heappop(heap)
        if selected[v]:
            continue
        if -neg_d != dd[v]:
            heapq.heappush(heap, (-dd[v], v))
            continue
        seeds.append(v)
        selected[v] = True
        for u in rev.neighbors(v).tolist():
            if selected[u]:
                continue
            t[u] += 1.0
            dd[u] = degree[u] - 2.0 * t[u] - (degree[u] - t[u]) * t[u] * p
            heapq.heappush(heap, (-dd[u], u))
    return np.asarray(seeds, dtype=np.int64)
