"""Martingale-based sample-size (theta) estimation from Tang et al. (2015).

IMM's statistical core: how many RRR sets are enough for the greedy
max-cover over them to be a ``(1 - 1/e - epsilon)``-approximation of the
influence-maximisation optimum with probability ``>= 1 - n**(-ell)``.

Implemented formulas (SIGMOD'15 paper, §4; notation preserved):

- ``log C(n, k)`` computed stably via lgamma;
- ``ell' = ell * (1 + log 2 / log n)`` — the union-bound adjustment that
  accounts for the extra failure probability of the estimation phase;
- ``epsilon' = sqrt(2) * epsilon``;
- ``lambda' = (2 + 2/3 eps') * (logcnk + ell log n + log log2(n)) * n / eps'^2``
  — the per-level sample requirement of the estimation loop;
- ``alpha = sqrt(ell log n + log 2)``,
  ``beta = sqrt((1 - 1/e) * (logcnk + ell log n + log 2))``,
  ``lambda* = 2 n ((1 - 1/e) alpha + beta)^2 / eps^2`` — the final
  requirement given the OPT lower bound;
- the estimation loop's acceptance test ``n F(S) / theta_i >= (1 + eps') x``
  and the resulting bound ``LB = n F(S) / theta_i / (1 + eps')``.

Every function is pure so the property tests can probe monotonicity
(theta decreasing in epsilon, increasing in k and n).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._util import check_fraction, check_positive_int
from repro.errors import ParameterError

__all__ = [
    "log_choose",
    "adjusted_ell",
    "lambda_prime",
    "lambda_star",
    "estimation_levels",
    "level_theta",
    "accepts_level",
    "lower_bound_from_level",
    "final_theta",
    "MartingaleSchedule",
]


def log_choose(n: int, k: int) -> float:
    """``log C(n, k)`` via lgamma; exact domain checks."""
    n = check_positive_int("n", n)
    k = int(k)
    if not (0 <= k <= n):
        raise ParameterError(f"k={k} outside [0, n={n}]")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def adjusted_ell(ell: float, n: int) -> float:
    """``ell' = ell * (1 + log 2 / log n)``: inflates the failure exponent so
    the estimation phase's extra union bound still leaves ``1 - n**-ell``."""
    if n < 2:
        return ell
    return ell * (1.0 + math.log(2.0) / math.log(n))


def lambda_prime(n: int, k: int, ell: float, epsilon: float) -> float:
    """Per-level sample requirement of the OPT-estimation loop."""
    check_fraction("epsilon", epsilon)
    eps_p = math.sqrt(2.0) * epsilon
    logcnk = log_choose(n, k)
    log_n = math.log(max(n, 2))
    loglog = math.log(max(math.log2(max(n, 2)), 1.0))
    return (
        (2.0 + 2.0 / 3.0 * eps_p)
        * (logcnk + ell * log_n + loglog)
        * n
        / (eps_p * eps_p)
    )


def lambda_star(n: int, k: int, ell: float, epsilon: float) -> float:
    """Final sample requirement ``lambda*`` (given an OPT lower bound LB,
    ``theta = lambda* / LB``)."""
    check_fraction("epsilon", epsilon)
    logcnk = log_choose(n, k)
    log_n = math.log(max(n, 2))
    e_inv = 1.0 - 1.0 / math.e
    alpha = math.sqrt(ell * log_n + math.log(2.0))
    beta = math.sqrt(e_inv * (logcnk + ell * log_n + math.log(2.0)))
    return 2.0 * n * (e_inv * alpha + beta) ** 2 / (epsilon * epsilon)


def estimation_levels(n: int) -> int:
    """Number of halving levels the estimation loop may need:
    ``log2(n) - 1`` (at least 1)."""
    return max(int(math.log2(max(n, 2))) - 1, 1)


def level_theta(n: int, k: int, ell: float, epsilon: float, level: int) -> int:
    """``theta_i = lambda' / x_i`` with ``x_i = n / 2**level`` (level >= 1)."""
    if level < 1:
        raise ParameterError(f"level must be >= 1, got {level}")
    x = n / float(2**level)
    return int(math.ceil(lambda_prime(n, k, ell, epsilon) / x))


def accepts_level(
    n: int, epsilon: float, level: int, coverage_fraction: float, theta_i: int
) -> bool:
    """The estimation loop's stopping test:
    ``n * F(S) >= (1 + eps') * x_i`` (F measured over theta_i sets)."""
    eps_p = math.sqrt(2.0) * epsilon
    x = n / float(2**level)
    del theta_i  # the fraction already normalises by theta_i
    return n * coverage_fraction >= (1.0 + eps_p) * x


def lower_bound_from_level(
    n: int, epsilon: float, coverage_fraction: float
) -> float:
    """``LB = n * F(S) / (1 + eps')`` — the certified OPT lower bound."""
    eps_p = math.sqrt(2.0) * epsilon
    return n * coverage_fraction / (1.0 + eps_p)


def final_theta(n: int, k: int, ell: float, epsilon: float, lb: float) -> int:
    """``theta = ceil(lambda* / LB)``."""
    if lb <= 0:
        raise ParameterError(f"OPT lower bound must be positive, got {lb}")
    return int(math.ceil(lambda_star(n, k, ell, epsilon) / lb))


@dataclass(frozen=True)
class MartingaleSchedule:
    """Precomputed schedule for one run: adjusted ell and both lambdas.

    Bundles the constants so the driver computes them once; ``ell`` here is
    already the *adjusted* ell'.
    """

    n: int
    k: int
    epsilon: float
    ell: float
    lambda_prime_: float
    lambda_star_: float

    @classmethod
    def for_run(cls, n: int, k: int, epsilon: float, ell: float) -> "MartingaleSchedule":
        if k > n:
            raise ParameterError(f"k={k} exceeds the vertex count n={n}")
        ell_adj = adjusted_ell(ell, n)
        return cls(
            n=n,
            k=k,
            epsilon=epsilon,
            ell=ell_adj,
            lambda_prime_=lambda_prime(n, k, ell_adj, epsilon),
            lambda_star_=lambda_star(n, k, ell_adj, epsilon),
        )

    def theta_for_level(self, level: int) -> int:
        x = self.n / float(2**level)
        return int(math.ceil(self.lambda_prime_ / x))

    def accepts(self, level: int, coverage_fraction: float) -> bool:
        return accepts_level(self.n, self.epsilon, level, coverage_fraction, 0)

    def lower_bound(self, coverage_fraction: float) -> float:
        return lower_bound_from_level(self.n, self.epsilon, coverage_fraction)

    def theta_final(self, lb: float) -> int:
        return final_theta(self.n, self.k, self.ell, self.epsilon, lb)

    @property
    def max_level(self) -> int:
        return estimation_levels(self.n)
