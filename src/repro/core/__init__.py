"""IMM core: martingale math, sampling/selection kernels, and both facades.

- :mod:`repro.core.params` — run parameters and result records;
- :mod:`repro.core.martingale` — Tang et al.'s theta-estimation math;
- :mod:`repro.core.sampling` — ``Generate_RRRsets`` (fused and unfused);
- :mod:`repro.core.selection` — ``Find_Most_Influential_Set`` in both the
  Ripples (vertex-partitioned) and EfficientIMM (RRR-partitioned) designs;
- :mod:`repro.core.imm` — the Algorithm-1 driver shared by both facades;
- :mod:`repro.core.ripples` / :mod:`repro.core.efficientimm` — the two
  systems under comparison;
- :mod:`repro.core.greedy` — CELF greedy reference for quality validation;
- :mod:`repro.core.opim` — OPIM-C, the online early-termination variant
  discussed in the paper's related work;
- :mod:`repro.core.fis` — PacIM-style forward influence sketches;
- :mod:`repro.core.parallel_sampling` — process-parallel RRR generation.
"""

from repro.core.efficientimm import EfficientIMM
from repro.core.fis import fis_select
from repro.core.greedy import celf_greedy
from repro.core.imm import run_imm
from repro.core.opim import run_opim
from repro.core.parallel_sampling import parallel_generate
from repro.core.params import IMMParams, IMMResult
from repro.core.ripples import RipplesIMM

__all__ = [
    "IMMParams",
    "IMMResult",
    "run_imm",
    "EfficientIMM",
    "RipplesIMM",
    "celf_greedy",
    "run_opim",
    "fis_select",
    "parallel_generate",
]
