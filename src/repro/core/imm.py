"""The IMM driver: Algorithm 1 (sampling phase + selection phase).

Shared by both facades; the framework-specific behaviour is injected through
the :class:`~repro.core.sampling.SamplingConfig` and a selection callable.

The control flow is Tang et al.'s (and Ripples'):

1. **Estimation loop** — for levels ``i = 1 .. log2(n)-1``: grow the RRR
   store to ``theta_i = lambda' / (n / 2^i)`` sets, run the greedy selection,
   and stop as soon as ``n F(S) >= (1 + eps') * n / 2^i``; this certifies
   the OPT lower bound ``LB = n F(S) / (1 + eps')``.
2. **Top-up** — compute ``theta = lambda* / LB``; if more sets are needed,
   generate them (reusing everything already sampled — the martingale
   argument is what makes this reuse sound).
3. **Selection phase** — one final greedy over all theta sets.

``params.theta_cap`` bounds both phases for test/bench workloads; when it
binds, the run is flagged (``theta_capped``) so accuracy-sensitive callers
can tell.

Resilience (docs/resilience.md): every ``sampler.extend`` call is one
*sampling batch*, numbered from 0 in driver order (estimation levels, then
the top-up).  A :class:`~repro.resilience.checkpoint.SamplingCheckpointer`
snapshots the sampler after each completed batch; ``resume=True`` restores
the latest snapshot before the loop, after which the already-sampled
batches replay as no-ops (``extend`` targets a set *count*, which the
restored store already meets) and sampling continues from the restored RNG
— yielding byte-identical seeds to an uninterrupted run.  A
:class:`~repro.resilience.faults.FaultPlan` fires ``batch``-scoped faults
just before each batch runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol

import numpy as np

from repro import telemetry
from repro._util import StageTimes
from repro.core.martingale import MartingaleSchedule
from repro.core.params import IMMParams, IMMResult
from repro.core.sampling import RRRSampler, SamplingConfig
from repro.core.selection import SelectionResult
from repro.diffusion.base import get_model
from repro.graph.csr import CSRGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.checkpoint import SamplingCheckpointer
    from repro.resilience.faults import FaultPlan

__all__ = ["run_imm", "SelectFn"]


class SelectFn(Protocol):
    """Signature of a selection kernel as the driver invokes it."""

    def __call__(
        self,
        store,
        k: int,
        num_threads: int,
        initial_counter: np.ndarray | None,
    ) -> SelectionResult: ...


def run_imm(
    graph: CSRGraph,
    params: IMMParams,
    sampling_config: SamplingConfig,
    select_fn: SelectFn,
    *,
    gather_before_select: bool = False,
    framework: str = "IMM",
    checkpointer: "SamplingCheckpointer | None" = None,
    resume: bool = False,
    fault_plan: "FaultPlan | None" = None,
) -> IMMResult:
    """Execute Algorithm 1 and return a fully populated :class:`IMMResult`.

    ``gather_before_select=True`` charges Ripples' redistribution step (every
    stored entry copied once) ahead of each selection; EfficientIMM's fused,
    partition-local pipeline skips it.  ``framework`` labels the telemetry
    spans/metrics this run emits (docs/observability.md).

    ``checkpointer`` snapshots the sampler after every completed sampling
    batch; ``resume=True`` restores its latest snapshot first (no-op when
    none exists).  ``fault_plan`` fires ``batch``-scoped faults at the
    batch boundaries (docs/resilience.md).
    """
    tel = telemetry.get()
    with tel.span(
        "imm.run", framework=framework, model=params.model,
        k=params.k, epsilon=params.epsilon, num_threads=params.num_threads,
    ):
        result = _run_imm_inner(
            graph, params, sampling_config, select_fn, gather_before_select,
            tel, checkpointer, resume, fault_plan,
        )
    if tel.enabled:
        _record_imm_telemetry(tel, result, framework)
    return result


def _run_imm_inner(
    graph: CSRGraph,
    params: IMMParams,
    sampling_config: SamplingConfig,
    select_fn: SelectFn,
    gather_before_select: bool,
    tel,
    checkpointer: "SamplingCheckpointer | None" = None,
    resume: bool = False,
    fault_plan: "FaultPlan | None" = None,
) -> IMMResult:
    n = graph.num_vertices
    times = StageTimes()
    model = get_model(params.model, graph)
    sched = MartingaleSchedule.for_run(n, params.k, params.epsilon, params.ell)
    sampler = RRRSampler(model, sampling_config, seed=params.seed)

    restored_batch: int | None = None
    if checkpointer is not None and resume:
        restored_batch = checkpointer.restore(sampler)

    # Batches are numbered in driver order regardless of resume, so a fault
    # spec like crash@batch:2 and a checkpoint's batch_index always refer to
    # the same extend call.  Replayed batches (index <= restored) are no-op
    # extends — the restored store already meets their target — and skip the
    # redundant checkpoint write.
    batch_index = -1

    def sample_batch(target: int) -> None:
        nonlocal batch_index
        batch_index += 1
        if fault_plan is not None:
            fault_plan.invoke("batch", batch_index, lambda: None)
        sampler.extend(target)
        if checkpointer is not None and (
            restored_batch is None or batch_index > restored_batch
        ):
            checkpointer.save(sampler, batch_index)

    def capped(theta: int) -> int:
        if params.theta_cap is not None:
            return min(theta, params.theta_cap)
        return theta

    def counter_arg() -> np.ndarray | None:
        return sampler.counter if sampling_config.fused else None

    def charge_gather() -> None:
        if gather_before_select:
            per_thread = sampler.gather_cost() / sampling_config.num_threads
            st = sampler.stats
            st.loads += per_thread / 2.0
            st.stores += per_thread / 2.0
            st.sync_barriers += 1

    # ------------------------------------------------- 1. estimation loop
    lb = 1.0
    selection: SelectionResult | None = None
    sel_stats = None
    for level in range(1, sched.max_level + 1):
        theta_i = capped(sched.theta_for_level(level))
        if tel.enabled:
            tel.registry.counter("imm.martingale_rounds").inc()
        with times.measure("Generate_RRRsets"), tel.span(
            "imm.sampling", phase="estimation", level=level, theta=theta_i
        ):
            sample_batch(theta_i)
        charge_gather()
        with times.measure("Find_Most_Influential_Set"), tel.span(
            "imm.selection", phase="estimation", level=level
        ):
            selection = select_fn(
                sampler.store, params.k, params.num_threads, counter_arg()
            )
        sel_stats = (
            selection.stats if sel_stats is None
            else sel_stats.merge(selection.stats)
        )
        if sched.accepts(level, selection.coverage_fraction):
            lb = sched.lower_bound(selection.coverage_fraction)
            break
        if params.theta_cap is not None and theta_i >= params.theta_cap:
            # The cap bound the level; certify with what we have.
            lb = max(sched.lower_bound(selection.coverage_fraction), 1.0)
            break

    # --------------------------------------------------------- 2. top-up
    theta = capped(sched.theta_final(lb))
    theta_capped = (
        params.theta_cap is not None
        and sched.theta_final(lb) > params.theta_cap
    )
    if len(sampler.store) < theta:
        with times.measure("Generate_RRRsets"), tel.span(
            "imm.sampling", phase="top_up", theta=theta
        ):
            sample_batch(theta)

    # ----------------------------------------------- 3. selection phase
    charge_gather()
    with times.measure("Find_Most_Influential_Set"), tel.span(
        "imm.selection", phase="final"
    ):
        final = select_fn(
            sampler.store, params.k, params.num_threads, counter_arg()
        )
    sel_stats = final.stats if sel_stats is None else sel_stats.merge(final.stats)

    result = IMMResult(
        seeds=final.seeds.copy(),
        params=params,
        theta=theta,
        num_rrrsets=len(sampler.store),
        coverage_fraction=final.coverage_fraction,
        opt_lower_bound=lb,
        times=times,
        stats={
            "Generate_RRRsets": sampler.stats,
            "Find_Most_Influential_Set": sel_stats,
        },
        rrr_store_bytes=sampler.modelled_bytes(),
        spread_estimate=n * final.coverage_fraction,
    )
    result.theta_capped = theta_capped  # type: ignore[attr-defined]
    return result


def _record_imm_telemetry(tel, result: IMMResult, framework: str) -> None:
    """Project one finished run onto the unified schema.

    The gauges here are what the golden telemetry test cross-checks against
    the :class:`IMMResult` (theta, RRR-set count, seed count), and the
    kernel/phase bridges expose the same numbers the simulated-machine
    experiments consume — one schema for simulated and real runs.
    """
    reg = tel.registry
    reg.counter("imm.runs").inc()
    reg.counter(f"imm.runs.{framework.lower()}").inc()
    reg.gauge("imm.theta").set(result.theta)
    reg.gauge("imm.num_rrrsets").set(result.num_rrrsets)
    reg.gauge("imm.k").set(result.params.k)
    reg.gauge("imm.num_seeds").set(int(result.seeds.size))
    reg.gauge("imm.coverage_fraction").set(result.coverage_fraction)
    reg.gauge("imm.opt_lower_bound").set(result.opt_lower_bound)
    reg.gauge("imm.spread_estimate").set(result.spread_estimate)
    reg.gauge("imm.rrr_store_bytes").set(result.rrr_store_bytes)
    telemetry.record_stage_times(reg, result.times)
    for kernel, stats in result.stats.items():
        telemetry.record_kernel_stats(reg, kernel, stats)
