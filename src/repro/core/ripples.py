"""The Ripples baseline facade: the design §II-B/§III describes.

Faithful to the reference implementation's algorithmic choices:

- static ``theta/p`` partitioning of RRR generation;
- every RRR set sorted after generation (no adaptive representation —
  the source of the Table III OOM on Twitter7-class workloads);
- separate Generate/Find kernels with a gather (redistribution) step
  between them;
- vertex-partitioned selection in which every thread traverses all RRR
  sets (binary-searching each) to maintain its private counter slice —
  the memory-traversal pattern behind Figures 1/2 and Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.imm import run_imm
from repro.core.params import IMMParams, IMMResult
from repro.core.sampling import SamplingConfig
from repro.core.selection import ripples_select
from repro.graph.csr import CSRGraph

__all__ = ["RipplesIMM"]


@dataclass
class RipplesIMM:
    """Ripples-style IMM bound to a weighted graph.

    ``memory_budget_bytes`` models the host's memory: because Ripples stores
    every set as a sorted vector, large workloads exceed it (Table III's
    ``OOM`` entry) where EfficientIMM's adaptive store fits.
    """

    graph: CSRGraph
    memory_budget_bytes: int | None = None

    name = "Ripples"

    def sampling_config(self, params: IMMParams) -> SamplingConfig:
        return SamplingConfig.ripples(
            num_threads=params.num_threads,
            memory_budget_bytes=self.memory_budget_bytes,
            kernel=params.kernel,
            kernel_batch=params.kernel_batch,
        )

    def run(
        self,
        params: IMMParams | None = None,
        *,
        checkpointer=None,
        resume: bool = False,
        fault_plan=None,
    ) -> IMMResult:
        """Execute the full IMM workflow with Ripples' kernels.

        ``checkpointer`` / ``resume`` / ``fault_plan`` pass through to
        :func:`~repro.core.imm.run_imm` (docs/resilience.md).
        """
        params = params or IMMParams()

        def select(store, k, num_threads, initial_counter: np.ndarray | None):
            # Ripples has no kernel fusion: the counter is always rebuilt
            # inside the selection kernel, whatever the sampler produced.
            del initial_counter
            return ripples_select(store, k, num_threads)

        return run_imm(
            self.graph,
            params,
            self.sampling_config(params),
            select,
            gather_before_select=True,
            framework=self.name,
            checkpointer=checkpointer,
            resume=resume,
            fault_plan=fault_plan,
        )
