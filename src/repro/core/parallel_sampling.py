"""Process-parallel RRR generation on real host cores.

The simulated machine covers the 128-thread experiments; this module is the
*actual* parallel path for users running on multi-core hosts: RRR sets are
drawn in forked worker processes (the GIL rules out threads — see
DESIGN.md) and merged into one flat store.

Engineering notes, following the mpi4py-style buffer discipline of the HPC
guides:

- the graph is installed once per worker via the pool initializer (fork
  shares it copy-on-write; nothing graph-sized is ever pickled);
- each worker returns its sets as two flat numpy buffers (concatenated
  vertices + sizes), so inter-process traffic is two contiguous arrays per
  worker, not per-set Python objects;
- every worker gets an independent :func:`~repro._util.spawn_rngs` stream,
  so results are deterministic for a given ``(seed, num_workers)`` and
  independent of scheduling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro import telemetry
from repro._util import spawn_rngs
from repro.core.sampling import reverse_sample_with_cost
from repro.diffusion.base import get_model
from repro.errors import ParameterError
from repro.graph.csr import CSRGraph
from repro.runtime.backends import ExecutionBackend, MultiprocessBackend, SerialBackend
from repro.sketch.protocol import make_store
from repro.sketch.store import FlatRRRStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.faults import FaultPlan
    from repro.resilience.retry import RetryPolicy

__all__ = ["kernel_worker_task", "parallel_generate", "worker_task"]

# Per-process state installed by the initializer (fork-shared graph).
_WORKER_MODEL = None
_WORKER_KERNEL: tuple[str, int, int] | None = None  # (kernel, batch, seed)


def _init_worker(
    graph: CSRGraph, model_name: str, kernel_info=None
) -> None:
    global _WORKER_MODEL, _WORKER_KERNEL
    _WORKER_MODEL = get_model(model_name, graph)
    _WORKER_KERNEL = kernel_info
    # Materialise the transpose (and LT cumsums) once, pre-fork-warm.
    _WORKER_MODEL.reverse_graph  # noqa: B018 - intentional touch


def _init_worker_shared(graph_handle, model_name: str, kernel_info=None) -> None:
    """Spawn-mode initializer: attach the graph from its shm segment.

    Module-level and picklable; what crosses the process boundary is the
    :class:`~repro.shm.SegmentHandle` (a few hundred bytes), and the
    attached :class:`~repro.shm.SharedCSRGraph` maps the host's single
    copy of the adjacency arrays.  The view lives for the worker's
    lifetime; the parent's :class:`~repro.shm.SegmentManager` owns the
    segment and unlinks it after the pool is closed.
    """
    from repro import shm

    _init_worker(shm.attach_graph(graph_handle), model_name, kernel_info)


def worker_task(args: tuple[int, int]) -> tuple[bytes, np.ndarray]:
    """Draw ``count`` sets with the given seed; returns packed buffers.

    Module-level (picklable) so the fork pool can dispatch it.  The first
    element is the concatenated ``int32`` vertex buffer as bytes, the
    second the per-set sizes.
    """
    seed, count = args
    model = _WORKER_MODEL
    if model is None:  # serial fallback path (SerialBackend)
        raise RuntimeError("worker not initialised")
    rng = np.random.default_rng(seed)
    n = model.graph.num_vertices
    chunks: list[np.ndarray] = []
    sizes = np.empty(count, dtype=np.int64)
    edges_total = 0
    for i in range(count):
        root = int(rng.integers(0, n))
        verts, edges = reverse_sample_with_cost(model, root, rng)
        chunks.append(np.sort(verts))
        sizes[i] = verts.size
        edges_total += edges
    flat = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int32)
    )
    tel = telemetry.get()
    if tel.enabled and count:
        # Same `sampling.*` schema as the in-process sampler; recorded in
        # the worker's registry and shipped back via the backend's
        # merge-on-reduce protocol (repro.runtime.backends).
        reg = tel.registry
        reg.counter("sampling.rrr_sets").inc(count)
        reg.counter("sampling.edges_examined").inc(edges_total)
        hist = reg.histogram("sampling.set_size")
        for s in sizes.tolist():
            hist.observe(s)
    return flat.astype(np.int32).tobytes(), sizes


def kernel_worker_task(args: tuple[int, int]) -> tuple[bytes, np.ndarray]:
    """Draw the sets with global indices ``[start, start + count)``.

    Kernel-mode counterpart of :func:`worker_task`: per-set randomness is
    keyed by the run seed and the *global* set index
    (:func:`repro.kernels.sample_indexed`), so the union over workers is
    byte-identical no matter how the index space was partitioned, which
    worker drew which chunk, or how the pool was started.
    """
    from repro.kernels import KernelSampler

    start, count = args
    model = _WORKER_MODEL
    if model is None:
        raise RuntimeError("worker not initialised")
    if _WORKER_KERNEL is None:
        raise RuntimeError("worker initialised without kernel config")
    kernel, batch, seed = _WORKER_KERNEL
    flat, sizes, _edges = KernelSampler(model, kernel, batch).sample_indexed(
        seed, start, count
    )
    tel = telemetry.get()
    if tel.enabled and count:
        reg = tel.registry
        reg.counter("sampling.rrr_sets").inc(count)
        reg.counter("sampling.edges_examined").inc(int(_edges.sum()))
        hist = reg.histogram("sampling.set_size")
        for s in sizes.tolist():
            hist.observe(s)
    return flat.tobytes(), sizes


def parallel_generate(
    graph: CSRGraph,
    model_name: str,
    count: int,
    *,
    num_workers: int = 2,
    seed: int = 0,
    backend: ExecutionBackend | None = None,
    retry: "RetryPolicy | None" = None,
    faults: "FaultPlan | None" = None,
    start_method: str = "fork",
    kernel: str | None = None,
    kernel_batch: int = 64,
) -> FlatRRRStore:
    """Generate ``count`` RRR sets across ``num_workers`` processes.

    Returns a flat store whose sets are grouped by producing worker
    (worker 0's sets first) — the partition-local layout EfficientIMM's
    selection consumes directly.  Pass a :class:`SerialBackend` to run the
    identical code path in-process (used by tests and single-core hosts).

    ``retry`` / ``faults`` attach resilience to the per-worker tasks
    (docs/resilience.md); they are installed on the backend this call owns,
    or onto a caller-supplied backend when given.

    ``start_method="spawn"`` starts fresh-interpreter workers that attach
    the graph from a :mod:`repro.shm` segment this call publishes (and
    unlinks on exit), instead of inheriting it through fork — per-worker
    handoff is a segment handle, not the adjacency arrays, and the drawn
    sets are identical for a given ``(seed, num_workers)``.  Ignored when
    a ``backend`` is supplied (its start method was fixed at construction).

    ``kernel="batched"``/``"scalar"`` switches workers to the counter-stream
    kernels of :mod:`repro.kernels`: each worker pulls a contiguous chunk of
    global set indices and samples it batched over its (fork- or shm-shared)
    graph view.  Because per-set randomness is keyed by ``(seed, index)``
    the store bytes are identical for *any* ``num_workers`` and either start
    method — a stronger guarantee than the legacy path's per-``(seed,
    num_workers)`` determinism.
    """
    if count < 0:
        raise ParameterError(f"count must be >= 0, got {count}")
    if num_workers <= 0:
        raise ParameterError(f"num_workers must be positive, got {num_workers}")
    if start_method not in ("fork", "spawn"):
        raise ParameterError(
            f"unknown start_method {start_method!r}; expected 'fork' or 'spawn'"
        )
    if kernel is not None:
        from repro.kernels import check_kernel

        check_kernel(kernel)

    base, extra = divmod(count, num_workers)
    if kernel is None:
        # Derive per-worker independent streams; split the count evenly.
        worker_seeds = [
            int(r.integers(0, 2**62)) for r in spawn_rngs(seed, num_workers)
        ]
        tasks = [
            (worker_seeds[w], base + (1 if w < extra else 0))
            for w in range(num_workers)
        ]
        task_fn = worker_task
        kernel_info = None
    else:
        # Contiguous chunks of the global index space, in worker order.
        tasks = []
        start = 0
        for w in range(num_workers):
            span = base + (1 if w < extra else 0)
            tasks.append((start, span))
            start += span
        task_fn = kernel_worker_task
        kernel_info = (kernel, kernel_batch, int(seed))

    owns_backend = backend is None
    segment_manager = None
    if backend is None:
        if start_method == "spawn":
            from repro import shm

            segment_manager = shm.SegmentManager()
            handle = segment_manager.publish_graph(graph)
            backend = MultiprocessBackend(
                num_workers,
                initializer=_init_worker_shared,
                initargs=(handle, model_name, kernel_info),
                start_method="spawn",
            )
        else:
            backend = MultiprocessBackend(
                num_workers,
                initializer=_init_worker,
                initargs=(graph, model_name, kernel_info),
            )
    elif isinstance(backend, SerialBackend):
        _init_worker(graph, model_name, kernel_info)
    if retry is not None:
        backend.retry_policy = retry
    if faults is not None:
        backend.fault_plan = faults

    tel = telemetry.get()
    with tel.span(
        "sampling.parallel_generate",
        backend=backend.backend_name, num_workers=num_workers, count=count,
    ):
        try:
            results = backend.run_tasks(task_fn, tasks)
        finally:
            if owns_backend:
                backend.close()
            if segment_manager is not None:
                segment_manager.close()

        store = make_store("flat", num_vertices=graph.num_vertices, sort_sets=True)
        for blob, sizes in results:
            flat = np.frombuffer(blob, dtype=np.int32)
            offset = 0
            for size in sizes.tolist():
                store.append(flat[offset : offset + size])
                offset += size
    if tel.enabled:
        tel.registry.gauge("sketch.store.sets").set(len(store))
        tel.registry.gauge("sketch.store.entries").set(store.total_entries)
    return store
