"""Distributed IMM over the simulated cluster.

Maps EfficientIMM's shared-memory design onto ranks exactly the way the
paper's future-work paragraph anticipates:

- **sampling** — theta is block-split across ranks; every rank draws its
  share of RRR sets with its own RNG stream and keeps them rank-local
  (the distributed analogue of the NUMA-local partitioned store), fusing
  counter updates into generation (Algorithm 3);
- **counter** — the global vertex-occurrence counter is one
  ``Allreduce_sum`` of the per-rank fused counters;
- **selection** — every rank runs the same greedy rounds SPMD-style: the
  argmax is computed redundantly from the (replicated) global counter, each
  rank retires its local sets containing the seed and contributes a local
  decrement vector; one ``Allreduce_sum`` per round merges the deltas.  Per
  round the wire carries exactly one counter-sized reduction — matching the
  paper's claim of "no additional communication compared to Ripples' MPI
  implementation".

Everything executes for real (per-rank numpy state, exact collectives);
the cluster model prices compute (via the node-level
:class:`~repro.simmachine.cost.CostModel`) and communication (alpha-beta).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import spawn_rngs
from repro.core.martingale import MartingaleSchedule
from repro.core.params import IMMParams
from repro.core.sampling import RRRSampler, SamplingConfig
from repro.core.selection import segmented_membership
from repro.diffusion.base import get_model
from repro.distributed.cluster import ClusterTopology
from repro.distributed.comm import CommStats, SimulatedComm
from repro.errors import ParameterError
from repro.graph.csr import CSRGraph
from repro.simmachine.cost import CostModel

__all__ = ["DistributedIMM", "DistributedResult"]


@dataclass
class DistributedResult:
    """Outcome of one distributed run, with the cost breakdown."""

    seeds: np.ndarray
    coverage_fraction: float
    theta: int
    num_ranks: int
    sets_per_rank: list[int]
    comm: CommStats
    sampling_time_s: float
    selection_compute_s: float

    @property
    def total_time_s(self) -> float:
        return self.sampling_time_s + self.selection_compute_s + self.comm.comm_time_s

    def summary(self) -> str:
        return (
            f"DistributedIMM[{self.num_ranks} ranks] theta={self.theta:,} "
            f"F(S)={self.coverage_fraction:.3f} "
            f"T={self.total_time_s * 1e3:.2f}ms "
            f"(compute {self.sampling_time_s * 1e3:.2f}+"
            f"{self.selection_compute_s * 1e3:.2f}, "
            f"comm {self.comm.comm_time_s * 1e3:.2f})"
        )


class DistributedIMM:
    """IMM across ``cluster.num_nodes`` ranks, ``threads_per_rank`` wide each."""

    def __init__(
        self,
        graph: CSRGraph,
        cluster: ClusterTopology,
        *,
        threads_per_rank: int | None = None,
    ):
        self.graph = graph
        self.cluster = cluster
        self.threads_per_rank = threads_per_rank or cluster.node.num_cores
        if not (1 <= self.threads_per_rank <= cluster.node.num_cores):
            raise ParameterError(
                f"threads_per_rank {self.threads_per_rank} outside "
                f"[1, {cluster.node.num_cores}]"
            )
        self._cost = CostModel(cluster.node)

    # ------------------------------------------------------------------ run
    def run(self, params: IMMParams | None = None) -> DistributedResult:
        params = params or IMMParams()
        n = self.graph.num_vertices
        world = SimulatedComm(self.cluster)
        ranks = world.size
        rngs = spawn_rngs(params.seed, ranks)
        samplers = [
            RRRSampler(
                get_model(params.model, self.graph),
                SamplingConfig.efficientimm(num_threads=1),
                seed=rngs[r],
            )
            for r in range(ranks)
        ]
        sched = MartingaleSchedule.for_run(n, params.k, params.epsilon, params.ell)

        def capped(theta: int) -> int:
            if params.theta_cap is not None:
                return min(theta, params.theta_cap)
            return theta

        def extend_to(theta_total: int) -> None:
            base, extra = divmod(theta_total, ranks)
            for r, sampler in enumerate(samplers):
                sampler.extend(base + (1 if r < extra else 0))

        # ---- estimation loop (SPMD, one reduction per level) -------------
        lb = 1.0
        for level in range(1, sched.max_level + 1):
            theta_i = capped(sched.theta_for_level(level))
            extend_to(theta_i)
            counter = world.Allreduce_sum([s.counter for s in samplers])
            seeds, coverage, _ = self._select(
                samplers, counter.copy(), params.k, world
            )
            if sched.accepts(level, coverage):
                lb = sched.lower_bound(coverage)
                break
            if params.theta_cap is not None and theta_i >= params.theta_cap:
                lb = max(sched.lower_bound(coverage), 1.0)
                break

        theta = capped(sched.theta_final(lb))
        extend_to(max(theta, sum(len(s.store) for s in samplers)))

        # ---- final selection ---------------------------------------------
        counter = world.Allreduce_sum([s.counter for s in samplers])
        seeds, coverage, select_ops = self._select(
            samplers, counter.copy(), params.k, world
        )

        # ---- price the compute -------------------------------------------
        sampling_s = max(
            self._cost.sampling_time_s(_rank_profile(s), self.threads_per_rank)
            for s in samplers
        )
        selection_s = (
            max(select_ops) / self.threads_per_rank
        ) * self._cost.stream_op_ns * 1e-9

        return DistributedResult(
            seeds=seeds,
            coverage_fraction=coverage,
            theta=sum(len(s.store) for s in samplers),
            num_ranks=ranks,
            sets_per_rank=[len(s.store) for s in samplers],
            comm=world.stats,
            sampling_time_s=sampling_s,
            selection_compute_s=selection_s,
        )

    # ------------------------------------------------------------- internals
    def _select(
        self,
        samplers: list[RRRSampler],
        counter: np.ndarray,
        k: int,
        world: SimulatedComm,
    ) -> tuple[np.ndarray, float, list[float]]:
        """SPMD greedy max-cover over the rank-local stores.

        Returns ``(seeds, coverage_fraction, per-rank op counts)``.  One
        counter-sized allreduce per round, exactly as documented above.
        """
        n = self.graph.num_vertices
        ranks = len(samplers)
        stores = [s.store for s in samplers]
        active = [np.ones(len(st), dtype=bool) for st in stores]
        sizes = [st.sizes() for st in stores]
        num_sets_total = sum(len(st) for st in stores)
        chosen = np.zeros(n, dtype=bool)
        seeds = np.empty(min(k, n), dtype=np.int64)
        covered_total = 0
        ops = [0.0] * ranks

        for rnd in range(seeds.size):
            v = int(np.argmax(counter))
            seeds[rnd] = v
            chosen[v] = True

            deltas = []
            for r, st in enumerate(stores):
                new_local = segmented_membership(st, v, active[r])
                active[r][new_local] = False
                covered_total += new_local.size
                delta = np.zeros(n, dtype=np.int64)
                for s_id in new_local.tolist():
                    seg = st.get(s_id)
                    np.add.at(delta, seg.astype(np.int64), 1)
                    ops[r] += 2.0 * seg.size
                ops[r] += float(np.log2(max(sizes[r].size, 2)))  # probe pass
                deltas.append(delta)
            merged = world.Allreduce_sum(deltas)
            counter -= merged
            counter[chosen] = -1
            if covered_total >= num_sets_total and rnd + 1 < seeds.size:
                fill = np.flatnonzero(~chosen)[: seeds.size - rnd - 1]
                seeds[rnd + 1 : rnd + 1 + fill.size] = fill
                break

        coverage = covered_total / num_sets_total if num_sets_total else 0.0
        return seeds, coverage, ops


def _rank_profile(sampler: RRRSampler):
    """Minimal RunProfile for pricing one rank's sampling."""
    from repro.simmachine.cost import RunProfile

    return RunProfile(
        framework="EfficientIMM",
        dataset="-",
        model="-",
        n=sampler.store.num_vertices,
        num_sets=len(sampler.store),
        total_entries=sampler.store.total_entries,
        per_set_costs=np.asarray(sampler.per_set_costs),
        sampling_schedule="dynamic",
        numa_aware=True,
    )
