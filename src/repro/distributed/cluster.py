"""Cluster topology: N nodes of the paper's machine plus an interconnect.

The interconnect is the standard alpha-beta (latency + inverse-bandwidth)
model with tree-structured collectives — the textbook cost model for MPI
performance analysis (Hockney; Thakur et al.).  Constants default to
Perlmutter's Slingshot-11 numbers from public NERSC documentation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.simmachine.topology import MachineTopology, perlmutter

__all__ = ["ClusterTopology", "perlmutter_cluster"]


@dataclass(frozen=True)
class ClusterTopology:
    """``num_nodes`` identical shared-memory nodes plus a network.

    ``alpha_s`` is the per-message latency (seconds), ``beta_s_per_byte``
    the inverse bandwidth of one NIC.
    """

    name: str
    num_nodes: int
    node: MachineTopology
    alpha_s: float
    beta_s_per_byte: float

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ParameterError(f"num_nodes must be positive, got {self.num_nodes}")
        if self.alpha_s < 0 or self.beta_s_per_byte < 0:
            raise ParameterError("network constants must be non-negative")

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.node.num_cores

    # ------------------------------------------------------------ collectives
    def _tree_depth(self, participants: int) -> int:
        return max(int(math.ceil(math.log2(max(participants, 1)))), 1) if participants > 1 else 0

    def point_to_point_s(self, nbytes: int) -> float:
        """One message of ``nbytes`` between two nodes."""
        return self.alpha_s + nbytes * self.beta_s_per_byte

    def allreduce_s(self, nbytes: int, participants: int | None = None) -> float:
        """Rabenseifner-style allreduce: reduce-scatter + allgather.

        ``2 * log2(P) * alpha + 2 * (P-1)/P * n * beta`` — the standard
        large-message bound.
        """
        p = participants or self.num_nodes
        if p <= 1:
            return 0.0
        return (
            2.0 * self._tree_depth(p) * self.alpha_s
            + 2.0 * (p - 1) / p * nbytes * self.beta_s_per_byte
        )

    def bcast_s(self, nbytes: int, participants: int | None = None) -> float:
        """Binomial-tree broadcast."""
        p = participants or self.num_nodes
        if p <= 1:
            return 0.0
        return self._tree_depth(p) * (
            self.alpha_s + nbytes * self.beta_s_per_byte
        )

    def gather_s(self, nbytes_per_rank: int, participants: int | None = None) -> float:
        """Gather to one root: the root's NIC serialises (P-1) payloads."""
        p = participants or self.num_nodes
        if p <= 1:
            return 0.0
        return (
            self._tree_depth(p) * self.alpha_s
            + (p - 1) * nbytes_per_rank * self.beta_s_per_byte
        )


def perlmutter_cluster(num_nodes: int) -> ClusterTopology:
    """``num_nodes`` Perlmutter CPU nodes on Slingshot-11 (~2 us latency,
    ~25 GB/s injection bandwidth per NIC)."""
    return ClusterTopology(
        name=f"perlmutter-{num_nodes}n",
        num_nodes=num_nodes,
        node=perlmutter(),
        alpha_s=2.0e-6,
        beta_s_per_byte=1.0 / 25e9,
    )
