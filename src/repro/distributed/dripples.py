"""Distributed Ripples: the MPI baseline the paper's claim is measured against.

§VI: "our approach doesn't introduce additional communication compared to
Ripples' MPI implementation".  To make that claim testable, this module
implements the Ripples-style distributed design alongside
:class:`~repro.distributed.dimm.DistributedIMM`:

- sampling: identical rank partitioning of theta (both frameworks split
  samples the same way in MPI mode);
- counter: Ripples has no fused counter, so the initial count is built at
  selection time — every rank counts its local sets into a private
  vector, then one allreduce merges them (same wire bytes as
  EfficientIMM's fused counter reduction);
- selection rounds: identical one-allreduce-per-round delta exchange;
- **the difference is node-local work**: each rank runs the Ripples
  vertex-partitioned kernel over its local sets, with its
  ``threads_per_rank``-fold redundant traversals, rather than
  EfficientIMM's partition-local kernel.

Consequently the communication *volumes* of the two distributed systems
are equal by construction (asserted in tests) and the end-to-end gap is
entirely node-local — exactly the paper's prediction.
"""

from __future__ import annotations

import numpy as np

from repro._util import spawn_rngs
from repro.core.martingale import MartingaleSchedule
from repro.core.params import IMMParams
from repro.core.sampling import RRRSampler, SamplingConfig, charge_per_set
from repro.core.selection import segmented_membership
from repro.diffusion.base import get_model
from repro.distributed.cluster import ClusterTopology
from repro.distributed.comm import SimulatedComm
from repro.distributed.dimm import DistributedResult, _rank_profile
from repro.errors import ParameterError
from repro.graph.csr import CSRGraph
from repro.simmachine.cost import CostModel

__all__ = ["DistributedRipples"]


class DistributedRipples:
    """Ripples' distributed design on the simulated cluster."""

    def __init__(
        self,
        graph: CSRGraph,
        cluster: ClusterTopology,
        *,
        threads_per_rank: int | None = None,
    ):
        self.graph = graph
        self.cluster = cluster
        self.threads_per_rank = threads_per_rank or cluster.node.num_cores
        if not (1 <= self.threads_per_rank <= cluster.node.num_cores):
            raise ParameterError(
                f"threads_per_rank {self.threads_per_rank} outside "
                f"[1, {cluster.node.num_cores}]"
            )
        self._cost = CostModel(cluster.node)

    def run(self, params: IMMParams | None = None) -> DistributedResult:
        params = params or IMMParams()
        n = self.graph.num_vertices
        world = SimulatedComm(self.cluster)
        ranks = world.size
        rngs = spawn_rngs(params.seed, ranks)
        samplers = [
            RRRSampler(
                get_model(params.model, self.graph),
                SamplingConfig.efficientimm(num_threads=1),
                seed=rngs[r],
            )
            for r in range(ranks)
        ]
        sched = MartingaleSchedule.for_run(n, params.k, params.epsilon, params.ell)

        def capped(theta: int) -> int:
            if params.theta_cap is not None:
                return min(theta, params.theta_cap)
            return theta

        def extend_to(theta_total: int) -> None:
            base, extra = divmod(theta_total, ranks)
            for r, sampler in enumerate(samplers):
                sampler.extend(base + (1 if r < extra else 0))

        lb = 1.0
        for level in range(1, sched.max_level + 1):
            theta_i = capped(sched.theta_for_level(level))
            extend_to(theta_i)
            seeds, coverage, _ = self._select(samplers, params.k, world)
            if sched.accepts(level, coverage):
                lb = sched.lower_bound(coverage)
                break
            if params.theta_cap is not None and theta_i >= params.theta_cap:
                lb = max(sched.lower_bound(coverage), 1.0)
                break
        extend_to(
            max(capped(sched.theta_final(lb)),
                sum(len(s.store) for s in samplers))
        )
        seeds, coverage, select_ops = self._select(samplers, params.k, world)

        # Node-local sampling time: Ripples charges the full per-set sort
        # and static scheduling (re-price the shared samples accordingly).
        def ripples_rank_profile(s: RRRSampler):
            prof = _rank_profile(s)
            edges = np.asarray(s.per_set_edges, dtype=np.float64)
            sizes = s.store.sizes().astype(np.float64)
            prof.per_set_costs = charge_per_set(
                edges, sizes, n, None, fused=False
            )
            prof.sampling_schedule = "static"
            prof.numa_aware = False
            return prof

        sampling_s = max(
            self._cost.sampling_time_s(
                ripples_rank_profile(s), self.threads_per_rank
            )
            for s in samplers
        )
        selection_s = (
            max(select_ops)  # already includes the p-fold redundancy
        ) * self._cost.stream_op_ns * 1e-9 / self.threads_per_rank

        return DistributedResult(
            seeds=seeds,
            coverage_fraction=coverage,
            theta=sum(len(s.store) for s in samplers),
            num_ranks=ranks,
            sets_per_rank=[len(s.store) for s in samplers],
            comm=world.stats,
            sampling_time_s=sampling_s,
            selection_compute_s=selection_s,
        )

    # ------------------------------------------------------------- internals
    def _select(
        self,
        samplers: list[RRRSampler],
        k: int,
        world: SimulatedComm,
    ) -> tuple[np.ndarray, float, list[float]]:
        """SPMD greedy with Ripples' node-local kernel accounting.

        Communication structure is identical to DistributedIMM._select —
        one counter-sized allreduce for the initial count plus one per
        round — but each rank's local op count carries the
        ``threads_per_rank``-fold redundant traversal of its local sets.
        """
        n = self.graph.num_vertices
        ranks = len(samplers)
        p_local = self.threads_per_rank
        stores = [s.store for s in samplers]
        active = [np.ones(len(st), dtype=bool) for st in stores]
        num_sets_total = sum(len(st) for st in stores)
        chosen = np.zeros(n, dtype=bool)
        seeds = np.empty(min(k, n), dtype=np.int64)
        covered_total = 0
        ops = [0.0] * ranks

        # Initial counting: every local thread scans all local entries.
        locals_ = []
        for r, st in enumerate(stores):
            locals_.append(st.vertex_counts())
            ops[r] += p_local * st.total_entries
        counter = world.Allreduce_sum(locals_)

        log_sizes = [
            np.log2(np.maximum(st.sizes(), 2)) for st in stores
        ]
        for rnd in range(seeds.size):
            v = int(np.argmax(counter))
            seeds[rnd] = v
            chosen[v] = True
            deltas = []
            for r, st in enumerate(stores):
                new_local = segmented_membership(st, v, active[r])
                # Every local thread probes every remaining local set.
                ops[r] += p_local * float(log_sizes[r][active[r]].sum())
                active[r][new_local] = False
                covered_total += new_local.size
                delta = np.zeros(n, dtype=np.int64)
                for s_id in new_local.tolist():
                    seg = st.get(s_id)
                    np.add.at(delta, seg.astype(np.int64), 1)
                    # Every local thread re-reads every covered set.
                    ops[r] += p_local * seg.size + seg.size
                deltas.append(delta)
            merged = world.Allreduce_sum(deltas)
            counter -= merged
            counter[chosen] = -1
            if covered_total >= num_sets_total and rnd + 1 < seeds.size:
                fill = np.flatnonzero(~chosen)[: seeds.size - rnd - 1]
                seeds[rnd + 1 : rnd + 1 + fill.size] = fill
                break

        coverage = covered_total / num_sets_total if num_sets_total else 0.0
        return seeds, coverage, ops
