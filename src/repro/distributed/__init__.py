"""Distributed-memory IMM: the paper's §VI future-work direction, built out.

The paper closes with: *"While our work concentrates on shared-memory
optimization, it can be extended to distributed memory settings using MPI.
Since our approach doesn't introduce additional communication compared to
Ripples' MPI implementation, exploring an MPI extension is a promising
direction for future work."*

This package explores exactly that extension on a **simulated cluster**
(no real MPI runs in this environment — see DESIGN.md's substitution
rules):

- :mod:`repro.distributed.cluster` — cluster topology (nodes x the paper's
  Perlmutter CPU node) with an alpha-beta interconnect model;
- :mod:`repro.distributed.comm` — a bulk-synchronous simulated communicator
  with mpi4py-shaped collectives (``allreduce``, ``gather``, ``bcast``)
  that executes them for real on per-rank numpy buffers while pricing the
  wire traffic;
- :mod:`repro.distributed.dimm` — distributed IMM: theta is split across
  ranks, each rank samples and stores its RRR sets locally (EfficientIMM's
  partition-local layout maps 1:1 onto ranks), the global counter is an
  ``allreduce``, and each selection round exchanges only the per-rank
  counter deltas — the communication pattern the paper predicts matches
  Ripples' MPI version.
"""

from repro.distributed.cluster import ClusterTopology, perlmutter_cluster
from repro.distributed.comm import CommStats, SimulatedComm
from repro.distributed.dimm import DistributedIMM, DistributedResult
from repro.distributed.dripples import DistributedRipples

__all__ = [
    "ClusterTopology",
    "perlmutter_cluster",
    "SimulatedComm",
    "CommStats",
    "DistributedIMM",
    "DistributedRipples",
    "DistributedResult",
]
