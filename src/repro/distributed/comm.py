"""Simulated bulk-synchronous communicator with mpi4py-shaped collectives.

Distributed IMM is bulk-synchronous (sample - reduce - select - repeat), so
a full MPI runtime is unnecessary: the driver holds every rank's state and
calls collectives that (a) really combine the per-rank numpy buffers — so
results are exact, not modelled — and (b) charge the alpha-beta cost of the
equivalent wire traffic to a running clock.

The method names and buffer conventions deliberately mirror mpi4py's
capital-letter (buffer-based) API so a future port to real ``mpi4py`` is a
mechanical substitution — per the paper's future-work framing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.distributed.cluster import ClusterTopology
from repro.errors import ParameterError

__all__ = ["CommStats", "SimulatedComm"]


@dataclass
class CommStats:
    """Accumulated communication accounting for one simulated world."""

    num_collectives: int = 0
    bytes_on_wire: float = 0.0
    comm_time_s: float = 0.0
    by_kind: dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, nbytes: float, seconds: float) -> None:
        self.num_collectives += 1
        self.bytes_on_wire += nbytes
        self.comm_time_s += seconds
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        tel = telemetry.get()
        if tel.enabled:
            reg = tel.registry
            reg.counter("comm.collectives").inc()
            reg.counter("comm.bytes_on_wire").inc(nbytes)
            reg.counter("comm.time_s").inc(seconds)
            reg.counter(f"comm.kind.{kind}").inc()


class SimulatedComm:
    """A world of ``size`` ranks over a :class:`ClusterTopology`."""

    def __init__(self, cluster: ClusterTopology):
        self.cluster = cluster
        self.size = cluster.num_nodes
        self.stats = CommStats()

    # ------------------------------------------------------------ helpers
    def _check_world(self, buffers: list) -> None:
        if len(buffers) != self.size:
            raise ParameterError(
                f"expected one buffer per rank ({self.size}), got {len(buffers)}"
            )

    # -------------------------------------------------------- collectives
    def Allreduce_sum(self, buffers: list[np.ndarray]) -> np.ndarray:
        """Element-wise sum across ranks; every rank receives the result.

        Returns the reduced array (callers treat it as each rank's receive
        buffer; integer addition commutes, so this is exact).
        """
        self._check_world(buffers)
        shapes = {b.shape for b in buffers}
        if len(shapes) != 1:
            raise ParameterError(f"allreduce buffers disagree on shape: {shapes}")
        total = buffers[0].copy()
        for b in buffers[1:]:
            total += b
        nbytes = total.nbytes
        self.stats.record(
            "allreduce", nbytes, self.cluster.allreduce_s(nbytes, self.size)
        )
        return total

    def Allreduce_max(self, buffers: list[np.ndarray]) -> np.ndarray:
        """Element-wise max across ranks (used for the reduction step)."""
        self._check_world(buffers)
        out = buffers[0].copy()
        for b in buffers[1:]:
            np.maximum(out, b, out=out)
        nbytes = out.nbytes
        self.stats.record(
            "allreduce", nbytes, self.cluster.allreduce_s(nbytes, self.size)
        )
        return out

    def Bcast(self, buffer: np.ndarray) -> np.ndarray:
        """Broadcast the root's buffer to all ranks."""
        nbytes = buffer.nbytes
        self.stats.record("bcast", nbytes, self.cluster.bcast_s(nbytes, self.size))
        return buffer

    def Gather(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Gather every rank's buffer at the root."""
        self._check_world(buffers)
        per_rank = max((b.nbytes for b in buffers), default=0)
        self.stats.record(
            "gather",
            float(sum(b.nbytes for b in buffers)),
            self.cluster.gather_s(per_rank, self.size),
        )
        return [b.copy() for b in buffers]

    def Barrier(self) -> None:
        """Synchronise all ranks (one zero-byte allreduce)."""
        self.stats.record("barrier", 0.0, self.cluster.allreduce_s(8, self.size))
