"""Simulated bulk-synchronous communicator with mpi4py-shaped collectives.

Distributed IMM is bulk-synchronous (sample - reduce - select - repeat), so
a full MPI runtime is unnecessary: the driver holds every rank's state and
calls collectives that (a) really combine the per-rank numpy buffers — so
results are exact, not modelled — and (b) charge the alpha-beta cost of the
equivalent wire traffic to a running clock.

The method names and buffer conventions deliberately mirror mpi4py's
capital-letter (buffer-based) API so a future port to real ``mpi4py`` is a
mechanical substitution — per the paper's future-work framing.

Resilience (docs/resilience.md): a communicator optionally carries a
:class:`~repro.resilience.faults.FaultPlan` and a
:class:`~repro.resilience.retry.RetryPolicy`.  Every collective gets a
monotonically increasing sequence number; the plan's ``collective``-scoped
specs fire against it (crash before the combine, slow before it, corrupt on
the result), and the retry policy re-runs a failed collective — which
succeeds once the fault's budget is spent, the MPI-world analogue of a
transient link failure.  :class:`CommStats` counts ``retries`` and
``faults_injected`` alongside the wire accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro import telemetry
from repro.distributed.cluster import ClusterTopology
from repro.errors import ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.faults import FaultPlan
    from repro.resilience.retry import RetryPolicy

__all__ = ["CommStats", "SimulatedComm"]


@dataclass
class CommStats:
    """Accumulated communication accounting for one simulated world."""

    num_collectives: int = 0
    bytes_on_wire: float = 0.0
    comm_time_s: float = 0.0
    by_kind: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    faults_injected: int = 0

    def record(self, kind: str, nbytes: float, seconds: float) -> None:
        self.num_collectives += 1
        self.bytes_on_wire += nbytes
        self.comm_time_s += seconds
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        tel = telemetry.get()
        if tel.enabled:
            reg = tel.registry
            reg.counter("comm.collectives").inc()
            reg.counter("comm.bytes_on_wire").inc(nbytes)
            reg.counter("comm.time_s").inc(seconds)
            reg.counter(f"comm.kind.{kind}").inc()


class SimulatedComm:
    """A world of ``size`` ranks over a :class:`ClusterTopology`."""

    def __init__(
        self,
        cluster: ClusterTopology,
        *,
        fault_plan: "FaultPlan | None" = None,
        retry: "RetryPolicy | None" = None,
    ):
        self.cluster = cluster
        self.size = cluster.num_nodes
        self.stats = CommStats()
        self.fault_plan = fault_plan
        self.retry = retry
        self._collective_seq = 0

    # ------------------------------------------------------------ helpers
    def _check_world(self, buffers: list) -> None:
        if len(buffers) != self.size:
            raise ParameterError(
                f"expected one buffer per rank ({self.size}), got {len(buffers)}"
            )

    def _resilient(self, kind: str, fn: Callable[[], Any]):
        """Run one collective under the fault plan and retry policy.

        Each call consumes the next collective sequence number; the fault
        plan fires against it, and the retry policy re-attempts the same
        sequence number (the fault's finite budget is what lets a retry
        succeed).  Retries are counted in :attr:`CommStats.retries` and in
        the ``comm.retries`` / ``resilience.retries`` telemetry counters.
        """
        seq = self._collective_seq
        self._collective_seq += 1
        if self.fault_plan is None and self.retry is None:
            return fn()
        before = self.fault_plan.injected if self.fault_plan is not None else 0

        def attempt():
            if self.fault_plan is None:
                return fn()
            return self.fault_plan.invoke("collective", seq, fn)

        def on_retry(attempt_no: int, exc: BaseException) -> None:
            self.stats.retries += 1
            tel = telemetry.get()
            if tel.enabled:
                tel.registry.counter("comm.retries").inc()

        try:
            if self.retry is None:
                return attempt()
            return self.retry.call(
                attempt, label=f"collective {kind}#{seq}", on_retry=on_retry
            )
        finally:
            if self.fault_plan is not None:
                self.stats.faults_injected += self.fault_plan.injected - before

    # -------------------------------------------------------- collectives
    def Allreduce_sum(self, buffers: list[np.ndarray]) -> np.ndarray:
        """Element-wise sum across ranks; every rank receives the result.

        Returns the reduced array (callers treat it as each rank's receive
        buffer; integer addition commutes, so this is exact).
        """
        self._check_world(buffers)
        shapes = {b.shape for b in buffers}
        if len(shapes) != 1:
            raise ParameterError(f"allreduce buffers disagree on shape: {shapes}")

        def combine():
            total = buffers[0].copy()
            for b in buffers[1:]:
                total += b
            return total

        total = self._resilient("allreduce", combine)
        nbytes = total.nbytes
        self.stats.record(
            "allreduce", nbytes, self.cluster.allreduce_s(nbytes, self.size)
        )
        return total

    def Allreduce_max(self, buffers: list[np.ndarray]) -> np.ndarray:
        """Element-wise max across ranks (used for the reduction step)."""
        self._check_world(buffers)

        def combine():
            out = buffers[0].copy()
            for b in buffers[1:]:
                np.maximum(out, b, out=out)
            return out

        out = self._resilient("allreduce", combine)
        nbytes = out.nbytes
        self.stats.record(
            "allreduce", nbytes, self.cluster.allreduce_s(nbytes, self.size)
        )
        return out

    def Bcast(self, buffer: np.ndarray) -> np.ndarray:
        """Broadcast the root's buffer to all ranks."""
        buffer = self._resilient("bcast", lambda: buffer)
        nbytes = buffer.nbytes
        self.stats.record("bcast", nbytes, self.cluster.bcast_s(nbytes, self.size))
        return buffer

    def Gather(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Gather every rank's buffer at the root."""
        self._check_world(buffers)
        out = self._resilient("gather", lambda: [b.copy() for b in buffers])
        per_rank = max((b.nbytes for b in buffers), default=0)
        self.stats.record(
            "gather",
            float(sum(b.nbytes for b in buffers)),
            self.cluster.gather_s(per_rank, self.size),
        )
        return out

    def Barrier(self) -> None:
        """Synchronise all ranks (one zero-byte allreduce)."""
        self._resilient("barrier", lambda: None)
        self.stats.record("barrier", 0.0, self.cluster.allreduce_s(8, self.size))
