"""Machine topology descriptions and the two presets the paper involves.

All hardware constants are from public documentation (AMD EPYC 7763 /
NERSC Perlmutter CPU-node docs); nothing here is fitted to the paper's
measured results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["CacheGeometry", "MachineTopology", "perlmutter", "ripples_testbed"]


@dataclass(frozen=True)
class CacheGeometry:
    """One cache level: capacity, associativity, line size (bytes)."""

    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ParameterError("cache geometry fields must be positive")
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ParameterError(
                "cache size must be a multiple of ways * line size"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class MachineTopology:
    """A multi-socket, multi-NUMA shared-memory machine.

    Latencies are in nanoseconds, bandwidths in bytes/second.  ``remote_ns``
    prices an access served by another NUMA node on the same socket;
    ``cross_socket_ns`` one crossing the socket interconnect.
    """

    name: str
    sockets: int
    numa_per_socket: int
    cores_per_numa: int
    l1: CacheGeometry
    l2: CacheGeometry
    clock_ghz: float
    l1_hit_ns: float
    l2_hit_ns: float
    dram_local_ns: float
    remote_ns: float
    cross_socket_ns: float
    node_bandwidth_bytes_s: float
    atomic_base_ns: float
    atomic_conflict_ns: float
    barrier_ns: float

    def __post_init__(self) -> None:
        if min(self.sockets, self.numa_per_socket, self.cores_per_numa) <= 0:
            raise ParameterError("topology counts must be positive")

    @property
    def num_numa_nodes(self) -> int:
        return self.sockets * self.numa_per_socket

    @property
    def num_cores(self) -> int:
        return self.num_numa_nodes * self.cores_per_numa

    def node_of_core(self, core: int) -> int:
        """NUMA node owning a core (cores are numbered node-contiguously,
        matching how ``numactl`` enumerates them on the EPYC)."""
        if not (0 <= core < self.num_cores):
            raise ParameterError(f"core {core} outside [0, {self.num_cores})")
        return core // self.cores_per_numa

    def socket_of_node(self, node: int) -> int:
        if not (0 <= node < self.num_numa_nodes):
            raise ParameterError(f"node {node} outside topology")
        return node // self.numa_per_socket

    def access_latency_ns(self, core: int, home_node: int) -> float:
        """DRAM latency for ``core`` accessing memory homed on ``home_node``
        (cache misses only; hits are priced by the cache model)."""
        my_node = self.node_of_core(core)
        if my_node == home_node:
            return self.dram_local_ns
        if self.socket_of_node(my_node) == self.socket_of_node(home_node):
            return self.remote_ns
        return self.cross_socket_ns

    def cores_for_threads(self, num_threads: int) -> list[int]:
        """The cores a ``num_threads`` run occupies: packed node-by-node,
        the paper's physical-core pinning (no hyper-threads)."""
        if not (1 <= num_threads <= self.num_cores):
            raise ParameterError(
                f"num_threads {num_threads} outside [1, {self.num_cores}]"
            )
        return list(range(num_threads))

    def active_nodes(self, num_threads: int) -> int:
        """NUMA nodes spanned by a packed ``num_threads`` placement."""
        return min(
            (num_threads + self.cores_per_numa - 1) // self.cores_per_numa,
            self.num_numa_nodes,
        )


def perlmutter() -> MachineTopology:
    """The paper's platform: dual-socket AMD EPYC 7763, 8 NUMA nodes (NPS4),
    128 physical cores, 32 KiB L1D + 512 KiB L2 per core."""
    return MachineTopology(
        name="perlmutter-epyc7763",
        sockets=2,
        numa_per_socket=4,
        cores_per_numa=16,
        l1=CacheGeometry(32 * 1024, ways=8),
        l2=CacheGeometry(512 * 1024, ways=8),
        clock_ghz=2.45,
        l1_hit_ns=1.6,
        l2_hit_ns=5.3,
        dram_local_ns=96.0,
        remote_ns=135.0,
        cross_socket_ns=210.0,
        node_bandwidth_bytes_s=38e9,
        atomic_base_ns=9.0,
        atomic_conflict_ns=55.0,
        barrier_ns=2200.0,
    )


def ripples_testbed() -> MachineTopology:
    """The single-socket 10-core node of the original Ripples paper
    (Minutoli et al. 2019): uniform memory, no NUMA effects."""
    return MachineTopology(
        name="ripples-2019-testbed",
        sockets=1,
        numa_per_socket=1,
        cores_per_numa=10,
        l1=CacheGeometry(32 * 1024, ways=8),
        l2=CacheGeometry(1024 * 1024, ways=16),
        clock_ghz=2.4,
        l1_hit_ns=1.7,
        l2_hit_ns=5.8,
        dram_local_ns=90.0,
        remote_ns=90.0,
        cross_socket_ns=90.0,
        node_bandwidth_bytes_s=60e9,
        atomic_base_ns=8.0,
        atomic_conflict_ns=40.0,
        barrier_ns=1500.0,
    )
