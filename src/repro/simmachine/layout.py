"""Virtual address layout and NUMA page placement policies.

The instrumented kernels address their arrays through a
:class:`MemoryLayout`, which assigns each named array a page-aligned virtual
range; a :class:`NumaPlacement` then maps every 4 KiB page to a home NUMA
node under one of the policies the paper contrasts:

- ``"bind"``      — all pages on one node (the unmanaged default that
  concentrates traffic, §IV-B's "original data structure");
- ``"interleave"`` — pages round-robin across nodes (``numactl -i``);
- ``"local"``     — per-worker arrays homed on the owner's node (the
  ``mbind`` + local-caching strategy of EfficientIMM's NUMA-aware design);
- ``"first_touch"`` — homed on the node of the first registered toucher
  (Linux's default policy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.simmachine.topology import MachineTopology

__all__ = ["MemoryLayout", "NumaPlacement", "PAGE_BYTES"]

PAGE_BYTES = 4096


@dataclass
class _Region:
    name: str
    base: int
    nbytes: int
    policy: str
    home: int  # node for "bind"/"first_touch"; owner node for "local"


@dataclass
class MemoryLayout:
    """Allocates page-aligned virtual ranges for named arrays."""

    _next_base: int = PAGE_BYTES  # keep 0 unmapped, as a canary
    regions: dict[str, _Region] = field(default_factory=dict)

    def allocate(
        self,
        name: str,
        nbytes: int,
        *,
        policy: str = "interleave",
        home: int = 0,
    ) -> int:
        """Reserve ``nbytes`` for ``name``; returns the base address."""
        if name in self.regions:
            raise SimulationError(f"region {name!r} already allocated")
        if nbytes < 0:
            raise SimulationError(f"negative region size for {name!r}")
        if policy not in ("bind", "interleave", "local", "first_touch"):
            raise SimulationError(f"unknown placement policy {policy!r}")
        base = self._next_base
        pages = max((nbytes + PAGE_BYTES - 1) // PAGE_BYTES, 1)
        self._next_base = base + pages * PAGE_BYTES
        self.regions[name] = _Region(name, base, nbytes, policy, home)
        return base

    def base(self, name: str) -> int:
        return self.regions[name].base

    def element_addresses(
        self, name: str, indices: np.ndarray, itemsize: int
    ) -> np.ndarray:
        """Byte addresses of ``array[indices]`` for a region's array."""
        region = self.regions[name]
        idx = np.asarray(indices, dtype=np.int64)
        return region.base + idx * itemsize

    def region_of(self, addresses: np.ndarray) -> list[_Region]:
        """Resolve each address to its region (tests/diagnostics)."""
        out = []
        for a in np.asarray(addresses, dtype=np.int64).ravel().tolist():
            hit = None
            for r in self.regions.values():
                if r.base <= a < r.base + max(r.nbytes, 1):
                    hit = r
                    break
            if hit is None:
                raise SimulationError(f"address {a:#x} unmapped")
            out.append(hit)
        return out


@dataclass
class NumaPlacement:
    """Maps pages to home NUMA nodes under each region's policy."""

    layout: MemoryLayout
    topology: MachineTopology

    def home_nodes(self, addresses: np.ndarray, accessor_node: int) -> np.ndarray:
        """Home node of each address, given the accessing core's node
        (needed by the ``local`` policy)."""
        addrs = np.asarray(addresses, dtype=np.int64).ravel()
        out = np.zeros(addrs.size, dtype=np.int64)
        nn = self.topology.num_numa_nodes
        # Vectorise per region (streams are usually single-region bursts).
        for r in self.layout.regions.values():
            in_r = (addrs >= r.base) & (addrs < r.base + max(r.nbytes, 1))
            if not np.any(in_r):
                continue
            if r.policy in ("bind", "first_touch"):
                out[in_r] = r.home % nn
            elif r.policy == "interleave":
                out[in_r] = (addrs[in_r] // PAGE_BYTES) % nn
            else:  # local: homed wherever the accessor lives
                out[in_r] = accessor_node
        return out

    def dram_latencies_ns(
        self, addresses: np.ndarray, core: int
    ) -> np.ndarray:
        """Per-access DRAM latency for cache-missing accesses from ``core``."""
        node = self.topology.node_of_core(core)
        homes = self.home_nodes(addresses, node)
        lat = np.empty(homes.size)
        for h in np.unique(homes):
            lat[homes == h] = self.topology.access_latency_ns(core, int(h))
        return lat
