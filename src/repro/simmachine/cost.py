"""Analytic cost model: per-thread kernel work -> simulated parallel time.

This is the layer that produces the 1..128-thread curves (Figures 1, 2, 6,
7) and the best-runtime table (Table III).  Its honesty contract
(DESIGN.md): every *workload-dependent* quantity is measured by executing
the real kernels; the model only applies machine constants
(:mod:`repro.simmachine.topology`) to them.

How thread-count dependence is obtained without running 128 threads
--------------------------------------------------------------------
Both selection kernels are executed (really) at p=1 and p=2 and their total
operation counts decomposed as ``W(p) = A + B*p``:

- ``A`` — work that *partitions* (each element handled by exactly one
  thread: counter writes, EfficientIMM's everything);
- ``B`` — work every thread *repeats* (Ripples' full-store traversals and
  per-set probes).

Work-efficient kernels have ``B ~ 0``; Ripples' selection has ``B`` of the
order of the whole store, which is precisely the paper's Challenge 1.  Time
at p threads is then::

    compute(p)  = (A / p) * imbalance(p) + B            [ops, makespan]
    traffic(p)  = (A + B * p) * bytes_per_op            [bytes]
    time(p)     = max(compute(p) * op_ns, traffic(p) / bw(p))
                  + serial(p) + barriers(p) + atomics(p)

``bw(p)`` honours NUMA placement: EfficientIMM's worker-local stores draw
from every active node's controller; Ripples' gathered store is homed on one
node (first-touch), so its bandwidth ceiling never grows — the saturation
behind Figure 1.  Sampling time uses the real per-set costs with the real
scheduling policy (static vs dynamic chunked) via
:func:`repro.runtime.workqueue.simulate_schedule`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError, SimulationError
from repro.runtime.workqueue import simulate_schedule
from repro.simmachine.topology import MachineTopology, perlmutter

__all__ = ["KernelCost", "RunProfile", "CostModel", "ScalingCurve", "profile_run"]


@dataclass(frozen=True)
class KernelCost:
    """A + B*p decomposition of one kernel's operation count."""

    partitioned_ops: float  # A: divided across threads
    replicated_ops: float  # B: repeated by every thread
    atomic_ops: float = 0.0  # subset of A paying atomic latency
    serial_ops_per_round: float = 0.0
    rounds: int = 1
    bytes_per_op: float = 8.0

    @classmethod
    def from_two_runs(
        cls, total_p1: float, total_p2: float, **kw
    ) -> "KernelCost":
        """Solve A + B from totals measured at p=1 and p=2."""
        b = max(total_p2 - total_p1, 0.0)
        a = max(total_p1 - b, 0.0)
        return cls(partitioned_ops=a, replicated_ops=b, **kw)


@dataclass
class RunProfile:
    """Everything the cost model needs about one (graph, model, framework).

    Extracted by :func:`profile_run` from real executions.
    """

    framework: str
    dataset: str
    model: str
    n: int
    num_sets: int
    total_entries: int
    per_set_costs: np.ndarray
    sampling_schedule: str  # "static" | "dynamic"
    numa_aware: bool  # local/interleaved placement vs single-home
    selection: KernelCost = field(default=None)  # type: ignore[assignment]
    gather_bytes: float = 0.0
    store_bytes: int = 0


@dataclass(frozen=True)
class ScalingCurve:
    """time(p) series for one configuration."""

    label: str
    thread_counts: tuple[int, ...]
    times_s: tuple[float, ...]
    stages: dict[int, dict[str, float]] = field(default_factory=dict)

    def speedup_vs(self, baseline_time: float) -> tuple[float, ...]:
        return tuple(baseline_time / t for t in self.times_s)

    @property
    def best_time(self) -> float:
        return min(self.times_s)

    @property
    def best_threads(self) -> int:
        return self.thread_counts[int(np.argmin(self.times_s))]

    def saturation_threads(self, tolerance: float = 0.05) -> int:
        """The smallest p after which time stops improving by > tolerance
        (Figure 1's 'scalability limit')."""
        best = self.times_s[0]
        sat = self.thread_counts[0]
        for p, t in zip(self.thread_counts[1:], self.times_s[1:]):
            if t < best * (1.0 - tolerance):
                best, sat = t, p
        return sat


class CostModel:
    """Prices :class:`RunProfile` kernels on a :class:`MachineTopology`."""

    #: Per-core sustainable streaming bandwidth (bytes/s); the node ceiling
    #: in the topology dominates once a node's cores are all busy.
    per_core_bandwidth = 6e9
    #: Blended cost of one array element operation that mostly hits cache
    #: (sequential streams amortise one line fetch over 8-16 elements).
    stream_op_ns = 7.0
    #: Cost of a random (scatter/probe) operation missing to DRAM often.
    random_op_ns = 14.0

    def __init__(self, topology: MachineTopology | None = None):
        self.topology = topology or perlmutter()

    # ------------------------------------------------------------ plumbing
    def _bandwidth(self, p: int, numa_aware: bool) -> float:
        """Aggregate DRAM bandwidth available to p packed cores."""
        topo = self.topology
        nodes = topo.active_nodes(p) if numa_aware else 1
        return min(p * self.per_core_bandwidth, nodes * topo.node_bandwidth_bytes_s)

    def _op_ns(self, numa_aware: bool, p: int) -> float:
        """Blended per-op latency; NUMA-unaware placement pays the remote
        premium on the fraction of accesses served by non-home nodes."""
        topo = self.topology
        base = self.stream_op_ns
        if numa_aware or p <= topo.cores_per_numa:
            return base
        nodes = topo.active_nodes(p)
        remote_fraction = (nodes - 1) / nodes
        premium = (topo.remote_ns - topo.dram_local_ns) / 16.0  # line-amortised
        return base + remote_fraction * premium

    def _atomic_ns(self, p: int, counter_entries: int) -> float:
        """Expected cost of one atomic add with p concurrent updaters."""
        topo = self.topology
        lines = max(counter_entries // 8, 1)
        conflict = 1.0 - (1.0 - min(p / lines, 1.0)) ** max(p - 1, 0)
        return topo.atomic_base_ns + conflict * topo.atomic_conflict_ns

    def _barrier_ns(self, p: int) -> float:
        return self.topology.barrier_ns * math.log2(p + 1)

    # ------------------------------------------------------------- kernels
    def sampling_time_s(self, profile: RunProfile, p: int) -> float:
        """Generate_RRRsets: real per-set costs, real scheduling policy."""
        self._check_p(p)
        costs = profile.per_set_costs
        if costs.size == 0:
            return 0.0
        sched = simulate_schedule(
            costs, p, policy=profile.sampling_schedule, chunk_size=8
        )
        op_ns = self._op_ns(profile.numa_aware, p)
        compute_s = sched.makespan * op_ns * 1e-9
        total_bytes = float(costs.sum()) * 8.0
        # Graph reads are interleaved for both frameworks (the input layout),
        # so sampling bandwidth scales with the active nodes in both.
        bw = self._bandwidth(p, numa_aware=True)
        mem_s = total_bytes / bw
        return max(compute_s, mem_s) + self._barrier_ns(p) * 1e-9

    def selection_time_s(self, profile: RunProfile, p: int) -> float:
        """Find_Most_Influential_Set from the A + B*p decomposition."""
        self._check_p(p)
        kc = profile.selection
        if kc is None:
            raise SimulationError("profile has no selection cost; run profile_run")
        imb = self._imbalance(profile, p)
        per_thread_ops = (kc.partitioned_ops / p) * imb + kc.replicated_ops
        op_ns = self._op_ns(profile.numa_aware, p)
        compute_s = per_thread_ops * op_ns * 1e-9
        total_bytes = (kc.partitioned_ops + kc.replicated_ops * p) * kc.bytes_per_op
        bw = self._bandwidth(p, profile.numa_aware)
        mem_s = total_bytes / bw
        atomic_s = (kc.atomic_ops / p) * self._atomic_ns(p, profile.n) * 1e-9
        serial_s = kc.serial_ops_per_round * kc.rounds * p * 2.0 * 1e-9
        barrier_s = kc.rounds * 2 * self._barrier_ns(p) * 1e-9
        return max(compute_s, mem_s) + atomic_s + serial_s + barrier_s

    def gather_time_s(self, profile: RunProfile, p: int) -> float:
        """Ripples' redistribution: all entries funnel through one node."""
        if profile.gather_bytes <= 0.0:
            return 0.0
        bw = self._bandwidth(p, numa_aware=False)
        return profile.gather_bytes / bw + self._barrier_ns(p) * 1e-9

    def total_time_s(self, profile: RunProfile, p: int) -> dict[str, float]:
        """Stage breakdown of the whole run at p threads (Figure 2's bars)."""
        stages = {
            "Generate_RRRsets": self.sampling_time_s(profile, p),
            "Find_Most_Influential_Set": self.selection_time_s(profile, p),
            "Other": self.gather_time_s(profile, p),
        }
        stages["Total"] = sum(
            v for k, v in stages.items() if k != "Total"
        )
        return stages

    def scaling_curve(
        self,
        profile: RunProfile,
        thread_counts: list[int] | None = None,
        *,
        label: str | None = None,
    ) -> ScalingCurve:
        """time(p) for the whole run across a thread sweep."""
        if thread_counts is None:
            thread_counts = [1, 2, 4, 8, 16, 32, 64, 128]
        thread_counts = [
            p for p in thread_counts if 1 <= p <= self.topology.num_cores
        ]
        times = []
        stages = {}
        for p in thread_counts:
            st = self.total_time_s(profile, p)
            stages[p] = st
            times.append(st["Total"])
        return ScalingCurve(
            label=label or f"{profile.framework}/{profile.dataset}/{profile.model}",
            thread_counts=tuple(thread_counts),
            times_s=tuple(times),
            stages=stages,
        )

    # ------------------------------------------------------------- helpers
    def _imbalance(self, profile: RunProfile, p: int) -> float:
        """Makespan inflation of a static block partition of the sets."""
        sizes = profile.per_set_costs
        if sizes.size == 0 or p == 1:
            return 1.0
        sched = simulate_schedule(sizes, p, policy="static")
        return max(sched.imbalance, 1.0)

    def _check_p(self, p: int) -> None:
        if not (1 <= p <= self.topology.num_cores):
            raise ParameterError(
                f"p={p} outside [1, {self.topology.num_cores}] for "
                f"{self.topology.name}"
            )


def profile_pair(
    graph,
    dataset: str,
    model: str,
    *,
    k: int = 50,
    epsilon: float = 0.5,
    theta_cap: int | None = 2000,
    seed: int = 0,
) -> dict[str, RunProfile]:
    """Profile **both** frameworks from one shared sampling pass.

    The RRR sets a run draws depend only on the diffusion model and seed,
    not on the framework, so one pass is sampled and re-priced per
    framework with :func:`repro.core.sampling.charge_per_set`; each
    framework's selection kernel then runs (really) at p=1 and p=2 on the
    shared store.  Returns ``{"Ripples": ..., "EfficientIMM": ...}``.
    """
    from repro.core.martingale import MartingaleSchedule
    from repro.core.sampling import RRRSampler, SamplingConfig, charge_per_set
    from repro.core.selection import efficient_select, ripples_select
    from repro.diffusion.base import get_model
    from repro.sketch.rrr import AdaptivePolicy

    dm = get_model(model, graph)
    sampler = RRRSampler(dm, SamplingConfig.efficientimm(num_threads=1), seed=seed)
    sched = MartingaleSchedule.for_run(graph.num_vertices, k, epsilon, 1.0)

    # Run the real estimation loop so theta reflects the workload's actual
    # coverage dynamics (LT's tiny path-sets drive theta orders of magnitude
    # above IC's, exactly as §III observes), bounded by theta_cap.
    def capped(t: int) -> int:
        return t if theta_cap is None else min(t, theta_cap)

    lb = 1.0
    for level in range(1, sched.max_level + 1):
        theta_i = capped(sched.theta_for_level(level))
        sampler.extend(theta_i)
        est = efficient_select(sampler.store, k, 1, initial_counter=sampler.counter)
        if sched.accepts(level, est.coverage_fraction):
            lb = sched.lower_bound(est.coverage_fraction)
            break
        if theta_cap is not None and theta_i >= theta_cap:
            lb = max(sched.lower_bound(est.coverage_fraction), 1.0)
            break
    sampler.extend(capped(sched.theta_final(lb)))
    store = sampler.store
    edges = np.asarray(sampler.per_set_edges, dtype=np.float64)
    sizes = store.sizes().astype(np.float64)

    out: dict[str, RunProfile] = {}
    for framework in ("Ripples", "EfficientIMM"):
        if framework == "EfficientIMM":
            policy = AdaptivePolicy()
            costs = charge_per_set(edges, sizes, graph.num_vertices, policy, fused=True)
            schedule = "dynamic"
        else:
            policy = None
            costs = charge_per_set(edges, sizes, graph.num_vertices, None, fused=False)
            schedule = "static"
        totals = {}
        atomics_total = 0.0
        rounds = 0
        for p in (1, 2):
            if framework == "EfficientIMM":
                sel = efficient_select(store, k, p, initial_counter=sampler.counter)
            else:
                sel = ripples_select(store, k, p)
            totals[p] = float(sel.stats.per_thread_ops().sum())
            atomics_total = float(sel.stats.atomics.sum())
            rounds = sel.num_rounds
        kc = KernelCost.from_two_runs(
            totals[1], totals[2],
            atomic_ops=atomics_total if framework == "EfficientIMM" else 0.0,
            serial_ops_per_round=1.0,
            rounds=rounds,
        )
        from repro.core.sampling import modelled_store_bytes

        out[framework] = RunProfile(
            framework=framework,
            dataset=dataset,
            model=model,
            n=graph.num_vertices,
            num_sets=len(store),
            total_entries=store.total_entries,
            per_set_costs=costs,
            sampling_schedule=schedule,
            numa_aware=(framework == "EfficientIMM"),
            selection=kc,
            gather_bytes=(
                store.total_entries * 8.0 if framework == "Ripples" else 0.0
            ),
            store_bytes=modelled_store_bytes(
                store.sizes(), graph.num_vertices, policy
            ),
        )
    return out


def profile_run(
    graph,
    dataset: str,
    model: str,
    framework: str,
    *,
    k: int = 50,
    epsilon: float = 0.5,
    theta_cap: int | None = 2000,
    seed: int = 0,
) -> RunProfile:
    """Execute one real run and extract its :class:`RunProfile`.

    The sampler runs once (its per-set costs are p-independent); the
    selection kernel runs at p=1 and p=2 on the same store to obtain the
    A + B*p decomposition.
    """
    from repro.core.params import IMMParams
    from repro.core.sampling import RRRSampler, SamplingConfig
    from repro.core.selection import efficient_select, ripples_select
    from repro.diffusion.base import get_model

    params = IMMParams(
        k=k, epsilon=epsilon, model=model, seed=seed,
        theta_cap=theta_cap, num_threads=1,
    )
    dm = get_model(params.model, graph)
    if framework == "EfficientIMM":
        config = SamplingConfig.efficientimm(num_threads=1)
    elif framework == "Ripples":
        config = SamplingConfig.ripples(num_threads=1)
    else:
        raise ParameterError(f"unknown framework {framework!r}")

    sampler = RRRSampler(dm, config, seed=seed)
    from repro.core.martingale import MartingaleSchedule

    sched = MartingaleSchedule.for_run(
        graph.num_vertices, params.k, params.epsilon, params.ell
    )
    theta = sched.theta_for_level(1)
    if theta_cap is not None:
        theta = min(theta, theta_cap)
    sampler.extend(theta)

    store = sampler.store
    totals = {}
    for p in (1, 2):
        if framework == "EfficientIMM":
            sel = efficient_select(
                store, params.k, p, initial_counter=sampler.counter
            )
        else:
            sel = ripples_select(store, params.k, p)
        totals[p] = float(sel.stats.per_thread_ops().sum())
        atomics_total = float(sel.stats.atomics.sum())
        rounds = sel.num_rounds

    kc = KernelCost.from_two_runs(
        totals[1],
        totals[2],
        atomic_ops=atomics_total if framework == "EfficientIMM" else 0.0,
        serial_ops_per_round=1.0,
        rounds=rounds,
    )
    return RunProfile(
        framework=framework,
        dataset=dataset,
        model=model,
        n=graph.num_vertices,
        num_sets=len(store),
        total_entries=store.total_entries,
        per_set_costs=np.asarray(sampler.per_set_costs),
        sampling_schedule=config.schedule,
        numa_aware=(framework == "EfficientIMM"),
        selection=kc,
        gather_bytes=(
            sampler.gather_cost() * 4.0 if framework == "Ripples" else 0.0
        ),
        store_bytes=sampler.modelled_bytes(),
    )
