"""Instrumented kernels: replay the algorithms as per-thread memory traces.

Table IV (cache misses) and Table II (NUMA placement) need the kernels'
*address streams*, not just their operation counts.  The drivers here re-run
the greedy selection loop — the same logic as :mod:`repro.core.selection`,
verified equivalent by tests — while feeding each emulated thread's accesses
through its private :class:`~repro.simmachine.cache.CacheHierarchy` and the
NUMA placement model.

Address-stream construction rules (one per access class):

- flat RRR entries: sequential 4-byte reads within each set's slice;
- counter updates: 8-byte scatter at ``counter_base + 8 * vertex``;
- membership probes: the bisection midpoint sequence inside the probed
  set's slice (lists) or a single bitmap-byte probe (adaptive bitmaps);
- reduction scans: sequential 8-byte reads over the thread's counter slice.

EfficientIMM's *counting* pass is fused into ``Generate_RRRsets``
(Algorithm 3), so — exactly like the paper's per-kernel measurement — it is
not charged to ``Find_Most_Influential_Set`` here; Ripples' counting pass is
part of its selection kernel and is charged to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.runtime.partition import block_partition
from repro.sketch.rrr import AdaptivePolicy
from repro.sketch.store import FlatRRRStore
from repro.simmachine.cache import AccessCounts, CacheHierarchy
from repro.simmachine.layout import MemoryLayout, NumaPlacement
from repro.simmachine.topology import MachineTopology

__all__ = [
    "SelectionTraceResult",
    "SamplingTraceResult",
    "trace_efficient_selection",
    "trace_ripples_selection",
    "trace_sampling",
    "bitmap_check_shares",
]


@dataclass
class SelectionTraceResult:
    """Cache behaviour of one selection-kernel execution."""

    framework: str
    num_threads: int
    per_thread: list[AccessCounts]
    seeds: np.ndarray
    dram_ns: float = 0.0

    @property
    def total(self) -> AccessCounts:
        out = AccessCounts()
        for c in self.per_thread:
            out.merge(AccessCounts(c.l1_hits, c.l1_misses, c.l2_hits, c.l2_misses))
        return out

    @property
    def total_misses(self) -> int:
        return self.total.total_misses


def _bisect_probe_addrs(base: int, lo: int, size: int) -> np.ndarray:
    """Byte addresses of the bisection midpoints a binary search for a
    random key walks inside a sorted slice of ``size`` 4-byte entries."""
    probes = []
    a, b = 0, size
    while a < b:
        mid = (a + b) >> 1
        probes.append(base + (lo + mid) * 4)
        # Walk one side; the side choice does not change the depth or the
        # locality class, so fix it deterministically.
        a = mid + 1
    return np.asarray(probes, dtype=np.int64)


def _seq_addrs(base: int, lo: int, count: int, itemsize: int) -> np.ndarray:
    return base + (lo + np.arange(count, dtype=np.int64)) * itemsize


def trace_efficient_selection(
    store: FlatRRRStore,
    k: int,
    num_threads: int,
    topology: MachineTopology,
    *,
    adaptive_policy: AdaptivePolicy | None = None,
    adaptive_update: bool = True,
) -> SelectionTraceResult:
    """Replay EfficientIMM's selection, simulating each thread's caches."""
    n = store.num_vertices
    num_sets = len(store)
    policy = adaptive_policy or AdaptivePolicy()
    sizes = store.sizes()
    offsets = store.offsets
    verts = store.vertices
    is_bitmap = sizes > policy.threshold(n)

    layout = MemoryLayout()
    rrr_base = layout.allocate("rrr", store.total_entries * 4, policy="local")
    ctr_base = layout.allocate("counter", n * 8, policy="interleave")
    bmp_base = layout.allocate(
        "bitmaps", int(is_bitmap.sum()) * ((n + 7) // 8), policy="local"
    )
    bitmap_slot = np.cumsum(is_bitmap) - 1  # dense index per bitmap set

    caches = [
        CacheHierarchy(topology.l1, topology.l2) for _ in range(num_threads)
    ]
    set_bounds = block_partition(num_sets, num_threads)
    vertex_bounds = block_partition(n, num_threads)
    owner = np.zeros(num_sets, dtype=np.int64)
    for w, (s_lo, s_hi) in enumerate(set_bounds):
        owner[s_lo:s_hi] = w

    counts = store.vertex_counts()
    active = np.ones(num_sets, dtype=bool)
    chosen = np.zeros(n, dtype=bool)
    seeds = np.empty(min(k, n), dtype=np.int64)
    remaining_entries = store.total_entries

    from repro.core.selection import segmented_membership

    for rnd in range(seeds.size):
        v = int(np.argmax(counts))
        seeds[rnd] = v
        chosen[v] = True
        # Reduction scan: each thread reads its counter slice sequentially.
        for w, (v_lo, v_hi) in enumerate(vertex_bounds):
            caches[w].access(_seq_addrs(ctr_base, v_lo, v_hi - v_lo, 8))

        new_sets = segmented_membership(store, v, active)
        # Membership probes, thread-local partitions only.
        for w in range(num_threads):
            probe_chunks = []
            for s in np.flatnonzero(active & (owner == w)).tolist():
                if is_bitmap[s]:
                    probe_chunks.append(
                        np.array(
                            [bmp_base + int(bitmap_slot[s]) * ((n + 7) // 8) + (v >> 3)],
                            dtype=np.int64,
                        )
                    )
                else:
                    probe_chunks.append(
                        _bisect_probe_addrs(rrr_base, int(offsets[s]), int(sizes[s]))
                    )
            if probe_chunks:
                caches[w].access(np.concatenate(probe_chunks))

        new_entry_count = int(sizes[new_sets].sum())
        uncovered_after = remaining_entries - new_entry_count
        use_rebuild = adaptive_update and new_entry_count > uncovered_after
        active[new_sets] = False
        remaining_entries = uncovered_after

        touch_sets = (
            np.flatnonzero(active) if use_rebuild else new_sets
        )
        for w in range(num_threads):
            mine = touch_sets[owner[touch_sets] == w]
            streams = []
            for s in mine.tolist():
                lo, sz = int(offsets[s]), int(sizes[s])
                streams.append(_seq_addrs(rrr_base, lo, sz, 4))  # read set
                streams.append(ctr_base + verts[lo : lo + sz].astype(np.int64) * 8)
            if streams:
                caches[w].access(np.concatenate(streams))
        # Maintain the real counter so seeds match the real kernel.
        if use_rebuild:
            ent = np.zeros(store.total_entries, dtype=bool)
            for s in np.flatnonzero(active).tolist():
                ent[offsets[s] : offsets[s + 1]] = True
            counts = np.bincount(verts[ent], minlength=n).astype(np.int64)
        else:
            for s in new_sets.tolist():
                np.subtract.at(counts, verts[offsets[s] : offsets[s + 1]], 1)
        counts[chosen] = -1
        if not np.any(active) and rnd + 1 < seeds.size:
            fill = np.flatnonzero(~chosen)[: seeds.size - rnd - 1]
            seeds[rnd + 1 : rnd + 1 + fill.size] = fill
            break

    return _record_selection_trace(
        SelectionTraceResult(
            framework="EfficientIMM",
            num_threads=num_threads,
            per_thread=[c.counts for c in caches],
            seeds=seeds,
        )
    )


def _record_selection_trace(res: SelectionTraceResult) -> SelectionTraceResult:
    """Surface a trace's cache counters through the unified registry, under
    the same ``cache.<kernel>.*`` names a real run would use (the Table IV
    numbers become readable from telemetry output)."""
    tel = telemetry.get()
    if tel.enabled:
        telemetry.record_access_counts(
            tel.registry, f"{res.framework}.selection", res.total
        )
    return res


def trace_ripples_selection(
    store: FlatRRRStore,
    k: int,
    num_threads: int,
    topology: MachineTopology,
) -> SelectionTraceResult:
    """Replay Ripples' selection: every thread traverses every set."""
    n = store.num_vertices
    num_sets = len(store)
    sizes = store.sizes()
    offsets = store.offsets
    verts = store.vertices

    layout = MemoryLayout()
    rrr_base = layout.allocate("rrr", store.total_entries * 4, policy="bind")
    ctr_bases = [
        layout.allocate(f"counter{w}", (n // num_threads + 1) * 8, policy="local")
        for w in range(num_threads)
    ]

    caches = [
        CacheHierarchy(topology.l1, topology.l2) for _ in range(num_threads)
    ]
    vertex_bounds = block_partition(n, num_threads)

    # Counting pass: every thread streams the entire store and writes the
    # occurrences landing in its own vertex range to its private counter.
    verts64 = verts.astype(np.int64)
    for w, (v_lo, v_hi) in enumerate(vertex_bounds):
        read_stream = _seq_addrs(rrr_base, 0, store.total_entries, 4)
        mine = verts64[(verts64 >= v_lo) & (verts64 < v_hi)]
        write_stream = ctr_bases[w] + (mine - v_lo) * 8
        caches[w].access(read_stream)
        caches[w].access(write_stream)

    counts = store.vertex_counts()
    active = np.ones(num_sets, dtype=bool)
    chosen = np.zeros(n, dtype=bool)
    seeds = np.empty(min(k, n), dtype=np.int64)
    from repro.core.selection import segmented_membership

    for rnd in range(seeds.size):
        v = int(np.argmax(counts))
        seeds[rnd] = v
        chosen[v] = True
        for w, (v_lo, v_hi) in enumerate(vertex_bounds):
            caches[w].access(_seq_addrs(ctr_bases[w], 0, v_hi - v_lo, 8))

        new_sets = segmented_membership(store, v, active)
        # Every thread probes every remaining set.
        probe_chunks = [
            _bisect_probe_addrs(rrr_base, int(offsets[s]), int(sizes[s]))
            for s in np.flatnonzero(active).tolist()
        ]
        probes = (
            np.concatenate(probe_chunks) if probe_chunks
            else np.empty(0, dtype=np.int64)
        )
        active[new_sets] = False

        # Every thread replays the probe stream and re-reads every covered
        # set, writing only the occurrences in its own vertex range.
        for w, (v_lo, v_hi) in enumerate(vertex_bounds):
            caches[w].access(probes)
            streams = []
            for s in new_sets.tolist():
                lo, sz = int(offsets[s]), int(sizes[s])
                streams.append(_seq_addrs(rrr_base, lo, sz, 4))  # full re-read
                seg = verts64[lo : lo + sz]
                mine = seg[(seg >= v_lo) & (seg < v_hi)]
                streams.append(ctr_bases[w] + (mine - v_lo) * 8)
            if streams:
                caches[w].access(np.concatenate(streams))
        # Maintain the real counter once (semantics, not traffic).
        for s in new_sets.tolist():
            np.subtract.at(counts, verts[offsets[s] : offsets[s + 1]], 1)
        counts[chosen] = -1
        if not np.any(active) and rnd + 1 < seeds.size:
            fill = np.flatnonzero(~chosen)[: seeds.size - rnd - 1]
            seeds[rnd + 1 : rnd + 1 + fill.size] = fill
            break

    return _record_selection_trace(
        SelectionTraceResult(
            framework="Ripples",
            num_threads=num_threads,
            per_thread=[c.counts for c in caches],
            seeds=seeds,
        )
    )


# ================================================== sampling-kernel trace
@dataclass
class SamplingTraceResult:
    """Cache + NUMA behaviour of one Generate_RRRsets execution."""

    num_threads: int
    num_sets: int
    per_thread: list[AccessCounts]
    dram_ns_local: float  # DRAM time under NUMA-aware (local) placement
    dram_ns_bind: float  # DRAM time with everything homed on node 0

    @property
    def total(self) -> AccessCounts:
        out = AccessCounts()
        for c in self.per_thread:
            out.merge(AccessCounts(c.l1_hits, c.l1_misses, c.l2_hits, c.l2_misses))
        return out

    @property
    def numa_benefit(self) -> float:
        """DRAM-time ratio bind/local (>1: NUMA-aware placement wins)."""
        return self.dram_ns_bind / max(self.dram_ns_local, 1e-12)


def trace_sampling(
    graph,
    num_sets: int,
    num_threads: int,
    topology: MachineTopology,
    *,
    model: str = "IC",
    fused: bool = True,
    seed: int = 0,
) -> SamplingTraceResult:
    """Replay Generate_RRRsets (Algorithm 3) as exact memory traces.

    Runs the real probabilistic reverse BFS per set, recording every access:

    - CSR row reads of the transposed graph (sequential within a row);
    - visited-bitmap probes, one per examined in-edge (line 8);
    - RRR-buffer writes (sequential);
    - fused counter updates (random scatter), when ``fused``.

    Each emulated thread owns a contiguous block of the sets and its own
    cache hierarchy; DRAM time for the cache-missing accesses is priced
    twice — once with worker-local placement (the NUMA-aware design) and
    once with everything first-touched on node 0 — giving the same
    comparison as Table II but from exact traces.
    """
    from repro.diffusion.base import get_model

    rng = np.random.default_rng(seed)
    dm = get_model(model, graph)
    rev = dm.reverse_graph
    n = graph.num_vertices

    layout = MemoryLayout()
    g_base = layout.allocate("rev_indices", rev.indices.nbytes, policy="interleave")
    p_base = layout.allocate("rev_probs", rev.probs.nbytes, policy="interleave")
    v_base = layout.allocate("visited", (n + 7) // 8, policy="local")
    r_base = layout.allocate("rrr", 4 * n, policy="local")
    c_base = layout.allocate("counter", 8 * n, policy="interleave")
    placement = NumaPlacement(layout, topology)

    caches = [CacheHierarchy(topology.l1, topology.l2) for _ in range(num_threads)]
    set_bounds = block_partition(num_sets, num_threads)
    dram_local = 0.0
    dram_bind = 0.0
    # In the bind arm every worker's misses funnel through node 0's memory
    # controller; apply the same queueing multiplier as the Table II model.
    worker_cores = [
        w * topology.cores_per_numa % topology.num_cores
        for w in range(num_threads)
    ]
    active_nodes = len({topology.node_of_core(c) for c in worker_cores})
    bind_contention = 1.0 + 0.45 * (active_nodes - 1)

    for w, (lo, hi) in enumerate(set_bounds):
        core = worker_cores[w]
        for _ in range(lo, hi):
            root = int(rng.integers(0, n))
            streams: list[np.ndarray] = []
            if model.upper() == "IC":
                out_count = _traced_ic_bfs(
                    rev, root, rng, dm._stamp, dm._next_epoch(),
                    g_base, p_base, v_base, r_base, streams,
                )
            else:
                out_count = _traced_lt_walk(
                    dm, root, rng, g_base, p_base, v_base, r_base, streams,
                )
            if fused:
                # Counter updates for the produced set (random scatter).
                streams.append(
                    c_base + rng.integers(0, n, size=out_count) * 8
                )
            addrs = np.concatenate(streams)
            got = caches[w].access(addrs)
            # Price the misses under both placements.  Missing addresses
            # are a uniform thinning of the stream; sample them.
            miss_count = got.l2_misses
            if miss_count and addrs.size:
                sample = addrs[:: max(addrs.size // max(miss_count, 1), 1)][
                    :miss_count
                ]
                dram_local += float(
                    placement.dram_latencies_ns(sample, core).sum()
                )
                dram_bind += (
                    miss_count
                    * topology.access_latency_ns(core, 0)
                    * bind_contention
                )

    res = SamplingTraceResult(
        num_threads=num_threads,
        num_sets=num_sets,
        per_thread=[c.counts for c in caches],
        dram_ns_local=dram_local,
        dram_ns_bind=dram_bind,
    )
    tel = telemetry.get()
    if tel.enabled:
        telemetry.record_access_counts(tel.registry, "sampling", res.total)
        tel.registry.gauge("numa.dram_ns_local").set(res.dram_ns_local)
        tel.registry.gauge("numa.dram_ns_bind").set(res.dram_ns_bind)
        tel.registry.gauge("numa.benefit").set(res.numa_benefit)
    return res


def _traced_ic_bfs(
    rev, root, rng, stamp, epoch, g_base, p_base, v_base, r_base, streams
) -> int:
    """IC reverse BFS that appends its exact address stream to ``streams``.

    Returns the RRR-set size.  Mirrors ``repro.diffusion.ic._ic_bfs``.
    """
    from repro.diffusion.ic import gather_frontier_edges

    indptr = rev.indptr
    stamp[root] = epoch
    frontier = np.array([root], dtype=np.int64)
    size = 1
    streams.append(np.array([r_base], dtype=np.int64))  # root write
    while frontier.size:
        # CSR row reads: indices + probs, sequential within each row.
        for u in frontier.tolist():
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            if hi > lo:
                streams.append(g_base + np.arange(lo, hi, dtype=np.int64) * 4)
                streams.append(p_base + np.arange(lo, hi, dtype=np.int64) * 8)
        nbrs, probs = gather_frontier_edges(rev, frontier)
        if nbrs.size == 0:
            break
        # Visited-bitmap probe per examined edge (Algorithm 3 line 8).
        streams.append(v_base + (nbrs.astype(np.int64) >> 3))
        live = rng.random(nbrs.size) < probs
        cand = nbrs[live]
        if cand.size == 0:
            break
        cand = np.unique(cand)
        fresh = cand[stamp[cand] != epoch]
        if fresh.size == 0:
            break
        stamp[fresh] = epoch
        # Bitmap writes + RRR appends for the fresh vertices.
        streams.append(v_base + (fresh.astype(np.int64) >> 3))
        streams.append(
            r_base + (size + np.arange(fresh.size, dtype=np.int64)) * 4
        )
        size += fresh.size
        frontier = fresh.astype(np.int64)
    return size


def _traced_lt_walk(
    dm, root, rng, g_base, p_base, v_base, r_base, streams
) -> int:
    """LT reverse walk with its exact address stream (one binary search
    over the current vertex's cumulative in-weight row per step)."""
    rev = dm.reverse_graph
    indptr, indices, cum = rev.indptr, rev.indices, dm._cum
    epoch = dm._next_epoch()
    stamp = dm._stamp
    stamp[root] = epoch
    streams.append(np.array([r_base], dtype=np.int64))
    v = root
    size = 1
    while True:
        lo, hi = int(indptr[v]), int(indptr[v + 1])
        if hi == lo:
            break
        r = rng.random()
        row = cum[lo:hi]
        # Bisection probes over the cumulative-weight row (8-byte floats):
        # rescale the 4-byte probe offsets to the float64 element size.
        probes4 = _bisect_probe_addrs(0, lo, hi - lo)
        streams.append(p_base + probes4 * 2)
        if r >= row[-1]:
            break
        u = int(indices[lo + np.searchsorted(row, r, side="right")])
        # Neighbour-id load + visited probe + bitmap write + RRR append.
        streams.append(np.array([g_base + (lo) * 4], dtype=np.int64))
        streams.append(np.array([v_base + (u >> 3)], dtype=np.int64))
        if stamp[u] == epoch:
            break
        stamp[u] = epoch
        streams.append(np.array([v_base + (u >> 3)], dtype=np.int64))
        streams.append(np.array([r_base + size * 4], dtype=np.int64))
        size += 1
        v = u
    return size


# ======================================================== Table II driver
@dataclass
class BitmapShareResult:
    """Core-time share of the visited-bitmap check under one placement."""

    placement: str
    bitmap_ns: float
    other_ns: float

    @property
    def share(self) -> float:
        total = self.bitmap_ns + self.other_ns
        return self.bitmap_ns / total if total > 0 else 0.0


def bitmap_check_shares(
    probes_per_sample: float,
    set_size_per_sample: float,
    topology: MachineTopology,
    *,
    bits_per_line_cluster: int = 64,
) -> dict[str, BitmapShareResult]:
    """Table II's experiment: share of Generate_RRRsets core time spent on
    the visited-bitmap check (Algorithm 3 line 8), under the original
    placement versus the NUMA-aware placement.

    Inputs are measured on the replicas by really sampling RRR sets:
    ``probes_per_sample`` is the mean number of in-edges examined per BFS
    (each examines ``visited[v]``), ``set_size_per_sample`` the mean number
    of distinct vertices activated (each dirties a fresh bitmap region —
    the miss/ownership traffic).  Both ratios are scale-invariant, so the
    replica measurements stand in for the paper-scale graphs directly.

    The two arms price the identical probe stream; only the placement-
    controlled constants differ (the paper's own variable):

    - **original** — bitmap pages first-touched on node 0: a probe that
      misses cache is served remotely, through a controller contended by
      every other node's workers; cache hits come from L2 (no locality
      management).
    - **numa_aware** — ``mbind``-local pages plus the "cache key structures
      closer to the processor" placement of §IV-B: hits are L1-resident,
      misses are local-DRAM.
    """
    # Fresh bitmap lines touched per sample: activations cluster within
    # cache lines (sorted BFS frontiers), ~bits_per_line_cluster bits each.
    touched_lines = max(set_size_per_sample / bits_per_line_cluster, 1.0)
    miss_rate = min(touched_lines / max(probes_per_sample, 1.0), 1.0)
    # Queueing multiplier when every node's workers hammer node 0.
    contention = 1.0 + 0.45 * (topology.num_numa_nodes - 1)
    # Non-bitmap work per probe (identical in both arms): amortised
    # sequential CSR line fetches, the coin flip, the probability load.
    other_per_probe_ns = (
        topology.dram_local_ns / 8.0
        + 2.0 / topology.clock_ghz
        + topology.l1_hit_ns
    )
    # Even mbind-local bitmaps exceed L1 capacity at paper scale, so the
    # NUMA-aware arm's hits split between L1 and L2; the original arm's
    # unmanaged placement keeps every hit at L2 distance.
    aware_hit_ns = 0.5 * (topology.l1_hit_ns + topology.l2_hit_ns)
    arms = {
        "original": topology.l2_hit_ns
        + miss_rate * topology.cross_socket_ns * contention,
        "numa_aware": aware_hit_ns + miss_rate * topology.dram_local_ns,
    }
    return {
        name: BitmapShareResult(
            name,
            bitmap_ns=probes_per_sample * per_probe_ns,
            other_ns=probes_per_sample * other_per_probe_ns,
        )
        for name, per_probe_ns in arms.items()
    }
