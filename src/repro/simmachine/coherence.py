"""Cache-line coherence tracking for shared-counter atomics.

EfficientIMM's global counter is updated by every thread with 64-bit
atomic adds; the paper's §IV-A argues the ``lock incq`` form confines
contention to a single quadword, but the *cache line* (64 B = 8 counters)
is still the coherence unit: two threads updating neighbouring counters
ping-pong the line's ownership (false sharing), and updates to the same
hot counter serialise on ownership transfers.

:class:`CoherenceTracker` models the ownership side of a MESI-style
protocol at line granularity: each write is a request-for-ownership (RFO);
an RFO on a line owned by another thread counts as an **invalidation** and
is priced at the line-transfer latency.  Reads by non-owners count as
**sharing downgrades**.  This is deliberately a traffic model, not a full
protocol simulator — it produces the quantities the cost model charges
(ownership transfers), with exact per-thread attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError

__all__ = ["CoherenceStats", "CoherenceTracker"]


@dataclass
class CoherenceStats:
    """Tallies of coherence events."""

    writes: int = 0
    reads: int = 0
    invalidations: int = 0  # write to a line owned by someone else
    downgrades: int = 0  # read of a line exclusively owned by someone else
    per_thread_invalidations: np.ndarray = field(default=None)  # type: ignore[assignment]

    def transfer_ns(self, line_transfer_ns: float) -> float:
        """Total modelled ownership-transfer latency."""
        return (self.invalidations + self.downgrades) * line_transfer_ns


class CoherenceTracker:
    """Line-granular ownership tracking across ``num_threads`` caches."""

    _UNOWNED = -1
    _SHARED = -2

    def __init__(self, num_threads: int, line_bytes: int = 64):
        if num_threads <= 0:
            raise ParameterError(f"num_threads must be positive, got {num_threads}")
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ParameterError(f"line_bytes must be a power of two, got {line_bytes}")
        self.num_threads = num_threads
        self._shift = line_bytes.bit_length() - 1
        self._owner: dict[int, int] = {}
        self.stats = CoherenceStats(
            per_thread_invalidations=np.zeros(num_threads, dtype=np.int64)
        )

    def _check_thread(self, thread: int) -> None:
        if not (0 <= thread < self.num_threads):
            raise ParameterError(
                f"thread {thread} outside [0, {self.num_threads})"
            )

    def write(self, thread: int, addresses: np.ndarray) -> int:
        """Record atomic writes; returns the invalidations this burst caused."""
        self._check_thread(thread)
        lines = np.asarray(addresses, dtype=np.int64) >> self._shift
        inv = 0
        owner = self._owner
        for line in lines.tolist():
            prev = owner.get(line, self._UNOWNED)
            if prev != thread:
                if prev != self._UNOWNED:
                    inv += 1
                owner[line] = thread
        self.stats.writes += lines.size
        self.stats.invalidations += inv
        self.stats.per_thread_invalidations[thread] += inv
        return inv

    def read(self, thread: int, addresses: np.ndarray) -> int:
        """Record reads; returns exclusive-ownership downgrades triggered."""
        self._check_thread(thread)
        lines = np.asarray(addresses, dtype=np.int64) >> self._shift
        down = 0
        owner = self._owner
        for line in lines.tolist():
            prev = owner.get(line, self._UNOWNED)
            if prev not in (self._UNOWNED, self._SHARED, thread):
                down += 1
                owner[line] = self._SHARED
        self.stats.reads += lines.size
        self.stats.downgrades += down
        return down

    def false_sharing_fraction(self) -> float:
        """Invalidations per write — the ping-pong intensity."""
        if self.stats.writes == 0:
            return 0.0
        return self.stats.invalidations / self.stats.writes
