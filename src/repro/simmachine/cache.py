"""Set-associative LRU cache simulation (L1 + L2 per core).

Fed with the *real* address streams the kernels generate
(:mod:`repro.simmachine.instrumented`), this produces the L1+L2 miss counts
of Table IV.  Two implementation notes:

- **Line compression.**  Consecutive accesses to the same cache line are
  guaranteed L1 hits under LRU, so the simulator collapses them up front and
  credits them as hits analytically; only line-changing accesses walk the
  tag arrays.  This is exact, not an approximation, and it is what makes
  simulating multi-hundred-thousand-access streams practical in Python.
- **Dict-based LRU sets.**  Each set is an insertion-ordered dict of tags
  (Python dicts preserve order); a hit reinserts its tag, a miss evicts the
  oldest.  O(1) per access with small constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simmachine.topology import CacheGeometry

__all__ = ["AccessCounts", "CacheSim", "CacheHierarchy", "compress_lines"]


@dataclass
class AccessCounts:
    """Hit/miss tallies for a two-level hierarchy."""

    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0

    @property
    def total_misses(self) -> int:
        """The paper's Table IV metric: L1 misses + L2 misses."""
        return self.l1_misses + self.l2_misses

    def merge(self, other: "AccessCounts") -> "AccessCounts":
        self.l1_hits += other.l1_hits
        self.l1_misses += other.l1_misses
        self.l2_hits += other.l2_hits
        self.l2_misses += other.l2_misses
        return self


def compress_lines(addresses: np.ndarray, line_bytes: int) -> tuple[np.ndarray, int]:
    """Collapse runs of same-line accesses.

    Returns ``(line_ids, collapsed)`` where ``collapsed`` is the number of
    dropped accesses (all guaranteed LRU hits).
    """
    addrs = np.asarray(addresses, dtype=np.int64).ravel()
    if addrs.size == 0:
        return addrs, 0
    shift = int(line_bytes).bit_length() - 1
    lines = addrs >> shift
    keep = np.ones(lines.size, dtype=bool)
    keep[1:] = lines[1:] != lines[:-1]
    kept = lines[keep]
    return kept, int(lines.size - kept.size)


class CacheSim:
    """One cache level: ``geometry.num_sets`` LRU sets of ``ways`` lines."""

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self._sets: list[dict[int, None]] = [
            {} for _ in range(geometry.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def access_lines(self, lines: np.ndarray) -> np.ndarray:
        """Simulate line-granular accesses; returns the missed lines, in
        order (the stream forwarded to the next level)."""
        num_sets = self.geometry.num_sets
        ways = self.geometry.ways
        sets = self._sets
        missed: list[int] = []
        hits = 0
        for line in lines.tolist():
            s = sets[line % num_sets]
            if line in s:
                # Refresh recency: move to the back of the insertion order.
                del s[line]
                s[line] = None
                hits += 1
            else:
                missed.append(line)
                s[line] = None
                if len(s) > ways:
                    s.pop(next(iter(s)))
        self.hits += hits
        self.misses += len(missed)
        return np.asarray(missed, dtype=np.int64)

    def reset(self) -> None:
        self._sets = [{} for _ in range(self.geometry.num_sets)]
        self.hits = 0
        self.misses = 0


@dataclass
class CacheHierarchy:
    """Private L1 + L2 of one core; inclusive-miss forwarding."""

    l1_geom: CacheGeometry
    l2_geom: CacheGeometry
    counts: AccessCounts = field(default_factory=AccessCounts)

    def __post_init__(self) -> None:
        self._l1 = CacheSim(self.l1_geom)
        self._l2 = CacheSim(self.l2_geom)

    def access(self, addresses: np.ndarray) -> AccessCounts:
        """Run a byte-address stream through L1 then L2; returns the tallies
        for *this call* (cumulative state lives in ``self.counts``)."""
        lines, collapsed = compress_lines(addresses, self.l1_geom.line_bytes)
        local = AccessCounts()
        local.l1_hits += collapsed
        l1_missed = self._l1.access_lines(lines)
        local.l1_hits += int(lines.size - l1_missed.size)
        local.l1_misses += int(l1_missed.size)
        l2_missed = self._l2.access_lines(l1_missed)
        local.l2_hits += int(l1_missed.size - l2_missed.size)
        local.l2_misses += int(l2_missed.size)
        self.counts.merge(
            AccessCounts(
                local.l1_hits, local.l1_misses, local.l2_hits, local.l2_misses
            )
        )
        return local

    def reset(self) -> None:
        self._l1.reset()
        self._l2.reset()
        self.counts = AccessCounts()
