"""Simulated multi-NUMA shared-memory machine.

The paper's evaluation platform is a dual-socket 128-core EPYC 7763 with 8
NUMA nodes; its scaling and hardware-counter experiments cannot run on this
environment (single host core, CPython GIL).  Per DESIGN.md's substitution
table, this package provides the machine *model* those experiments run on:

- :mod:`repro.simmachine.topology` — machine descriptions (sockets, NUMA
  nodes, cores, cache geometry, latencies, bandwidths) with presets for the
  paper's Perlmutter node and the original Ripples 10-core testbed;
- :mod:`repro.simmachine.cache` — set-associative LRU L1/L2 simulation fed
  by real kernel address streams (Table IV);
- :mod:`repro.simmachine.layout` — virtual address assignment for the
  kernels' arrays and page→NUMA-node placement policies (Table II);
- :mod:`repro.simmachine.instrumented` — drivers that replay the selection
  and sampling kernels as per-thread memory traces;
- :mod:`repro.simmachine.cost` — the analytic cost model that turns
  per-thread :class:`~repro.core.params.KernelStats` into simulated parallel
  runtimes for 1..128 threads (Figures 1, 2, 6, 7; Table III).

The model's honesty contract: all *workload-dependent* inputs (operation
counts, access streams, load balance) come from executing the real
algorithms; the machine parameters (latencies, bandwidths, cache shapes)
are fixed constants from public hardware documentation.  No curve is fit to
the paper's outputs.
"""

from repro.simmachine.cache import CacheHierarchy, CacheSim
from repro.simmachine.cost import CostModel, ScalingCurve
from repro.simmachine.layout import MemoryLayout, NumaPlacement
from repro.simmachine.topology import CacheGeometry, MachineTopology

__all__ = [
    "MachineTopology",
    "CacheGeometry",
    "CacheSim",
    "CacheHierarchy",
    "MemoryLayout",
    "NumaPlacement",
    "CostModel",
    "ScalingCurve",
]
