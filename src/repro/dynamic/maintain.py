"""Incremental RRR-sketch maintenance over a :class:`DeltaGraph`.

The whole design rests on one property of reverse influence sampling: a
reverse BFS/walk only ever examines an in-edge ``(u, v)`` *after visiting
its destination* ``v``.  An RRR set that does not contain ``v`` therefore
never looked at that edge — its realised trajectory is identical under the
old and new graph, and the set can be kept verbatim.  That is the
provenance rule :meth:`FlatRRRStore.sets_containing` answers, and it is
what keeps a small update batch from invalidating the whole sketch.

Per update kind (IC, ``repair="extend"``, the default):

- **delete / reweight** of ``(u, v)``: every set containing ``v`` may have
  realised a coin the new graph contradicts, so those sets are *resampled*
  from their original roots through the existing sampling kernel
  (:func:`~repro.core.sampling.reverse_sample_with_cost`).
- **insert** of ``(u, v)`` with probability ``p``: sets containing ``v``
  are *extended* instead of resampled — the new edge's coin was simply
  never flipped, so we flip it now (probability ``p``) and, on success,
  continue the reverse BFS from ``u`` with the existing members pre-seeded
  as visited.  Edges of already-visited vertices keep their realised
  outcomes; edges of newly reached vertices get fresh coins, including
  other edges inserted in the same batch.  This deferred-decision coupling
  is distribution-exact and turns the dominant update kind of a growing
  graph into cheap repairs that do **not** count against the resample
  budget.

``repair="resample"`` (and the LT model always, since any in-row change
reshapes a vertex's whole walk distribution) skips the extension path and
resamples every set containing the destination of *any* update.

Resampling keeps each set's original root (roots are uniform draws,
independent of the graph) and replaces its vertices in place via
:meth:`FlatRRRStore.replace_sets`; the fused selection counter is patched
with two ``bincount`` passes (subtract old members, add new) rather than
rebuilt — the dynamic analogue of EfficientIMM's fused counter updates.
When the invalidated fraction exceeds ``full_resample_threshold`` the
maintainer falls back to a full resample of the sketch (fresh roots, same
RNG stream), which is cheaper than patching almost everything.

Statistical note (docs/dynamic.md): keeping the sets that provably did not
observe a structural change conditions them on that event; the resampled
sets are fresh unconditional draws.  The repaired sketch is therefore not
a perfectly i.i.d. sample of the new graph's RRR distribution — the
deviation only affects the correlation between membership of the updated
endpoints and the rest of each set, and the ``bench_dynamic.py`` quality
gate bounds its effect on seed quality (spread within tolerance of a full
recompute).  The insert extension path carries no such caveat.

Everything is deterministic in ``(seed, update stream)``: sets are
resampled in ascending index order and extension coins are drawn in batch
order, so the same stream yields a byte-identical repaired store.

``kernel="batched"``/``"scalar"`` switches full builds and the resample
path to the counter-stream kernels (:mod:`repro.kernels`): per-set draws
are keyed by ``(seed, resample-domain, epoch, set_index)`` instead of
consuming the maintainer's sequential RNG, so a replayed update stream is
byte-identical *without* carrying RNG state — and resampling N sets is one
vectorised pass.  The insert-extension path keeps the sequential RNG (its
coins are conditioned on batch order by design).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro import telemetry
from repro._util import as_rng
from repro.core.sampling import reverse_sample_with_cost
from repro.core.selection import SelectionResult, efficient_select
from repro.diffusion.base import get_model
from repro.errors import ArtifactError, ParameterError
from repro.sketch.protocol import make_store

from repro.dynamic.delta import CommitInfo, DeltaGraph

__all__ = ["IncrementalMaintainer", "RepairReport"]

#: Version of the dynamic checkpoint metadata layered on the artifact schema.
DYNAMIC_CHECKPOINT_VERSION = 1

_REPAIR_MODES = ("extend", "resample")


@dataclass(frozen=True)
class RepairReport:
    """What one :meth:`IncrementalMaintainer.apply` call did."""

    epoch: int
    mode: str  # "repair" | "full"
    num_sets: int
    invalidated: int  # sets that had to be resampled
    extended: int  # sets repaired by the insert extension path
    invalidated_fraction: float
    added_vertices: int  # entries appended by extensions
    inserted: int
    deleted: int
    reweighted: int
    ignored: int
    elapsed_s: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "epoch": self.epoch,
            "mode": self.mode,
            "num_sets": self.num_sets,
            "invalidated": self.invalidated,
            "extended": self.extended,
            "invalidated_fraction": self.invalidated_fraction,
            "added_vertices": self.added_vertices,
            "inserted": self.inserted,
            "deleted": self.deleted,
            "reweighted": self.reweighted,
            "ignored": self.ignored,
            "elapsed_s": self.elapsed_s,
        }


class IncrementalMaintainer:
    """Keeps one RRR sketch (store + fused counter + roots) current with a
    :class:`DeltaGraph`, one committed epoch at a time."""

    def __init__(
        self,
        delta: DeltaGraph,
        *,
        model: str = "IC",
        num_sets: int = 1000,
        seed: int = 0,
        full_resample_threshold: float = 0.25,
        repair: str = "extend",
        build: bool = True,
        kernel: str | None = None,
        kernel_batch: int = 64,
    ):
        if num_sets < 1:
            raise ParameterError(f"num_sets must be >= 1, got {num_sets}")
        if not (0.0 < full_resample_threshold <= 1.0):
            raise ParameterError(
                "full_resample_threshold must lie in (0, 1], got "
                f"{full_resample_threshold}"
            )
        if repair not in _REPAIR_MODES:
            raise ParameterError(
                f"repair must be one of {_REPAIR_MODES}, got {repair!r}"
            )
        if delta.num_vertices == 0:
            raise ParameterError("cannot maintain a sketch of an empty graph")
        self.delta = delta
        self.model_name = str(model).upper()
        self.num_sets = int(num_sets)
        self.seed = int(seed)
        self.full_resample_threshold = float(full_resample_threshold)
        self.repair = repair
        from repro.kernels import check_kernel

        self.kernel = check_kernel(kernel)
        self.kernel_batch = int(kernel_batch)
        if self.kernel_batch < 1:
            raise ParameterError(
                f"kernel_batch must be >= 1, got {kernel_batch}"
            )
        self.rng = as_rng(self.seed)
        self.store = make_store("flat", num_vertices=delta.num_vertices, sort_sets=True)
        self.roots = np.empty(self.num_sets, dtype=np.int64)
        self.counter = np.zeros(delta.num_vertices, dtype=np.int64)
        self.epoch = -1  # no sketch yet
        if build:
            self._build_full()

    # ------------------------------------------------------------- building
    def _sample_set(self, model, root: int) -> np.ndarray:
        verts, _cost = reverse_sample_with_cost(model, int(root), self.rng)
        return verts

    def _kernel_draws(
        self,
        model,
        epoch: int,
        indices: np.ndarray,
        roots: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw one RRR set per index via the counter-stream kernel.

        Coins are keyed by ``(seed, resample-domain, epoch, index)`` so a
        replayed update stream regenerates identical sets without any RNG
        state; per-epoch keying keeps redraws of the same set index at
        different epochs independent.  When ``roots`` is ``None`` fresh
        roots are drawn from a ``(seed, root-domain, epoch)`` stream.
        Returns ``(roots, flat_vertices, sizes)``.
        """
        from repro.kernels import KernelSampler
        from repro.kernels.rng import (
            DOMAIN_RESAMPLE,
            DOMAIN_ROOT,
            counter_uniforms,
            derive_key,
            derive_keys,
        )

        n = self.delta.num_vertices
        if roots is None:
            u = counter_uniforms(
                derive_key(self.seed, DOMAIN_ROOT, epoch), indices
            )
            roots = np.clip((u * n).astype(np.int64), 0, n - 1)
        keys = derive_keys(
            derive_key(self.seed, DOMAIN_RESAMPLE, epoch), indices
        )
        sampler = KernelSampler(model, self.kernel, self.kernel_batch)
        flat, sizes, _edges = sampler.sample_for_roots(roots, keys)
        return roots, flat, sizes

    def _build_full(self) -> None:
        """(Re)build the whole sketch against the current delta epoch,
        drawing fresh roots from the maintainer's RNG stream (or, in
        kernel mode, from the epoch-keyed counter stream)."""
        model = get_model(self.model_name, self.delta.compact())
        n = self.delta.num_vertices
        store = make_store("flat", num_vertices=n, sort_sets=True)
        if self.kernel is not None:
            indices = np.arange(self.num_sets, dtype=np.int64)
            roots, flat, sizes = self._kernel_draws(
                model, self.delta.epoch, indices
            )
            self.roots = roots
            offsets = np.concatenate(([0], np.cumsum(sizes)))
            for i in range(self.num_sets):
                store.append(flat[offsets[i] : offsets[i + 1]])
        else:
            for i in range(self.num_sets):
                root = int(self.rng.integers(0, n))
                self.roots[i] = root
                store.append(self._sample_set(model, root))
        self.store = store.trim()
        self.counter = self.store.vertex_counts()
        self.epoch = self.delta.epoch

    # -------------------------------------------------------------- repairs
    def apply(self, commit: CommitInfo) -> RepairReport:
        """Bring the sketch from epoch ``commit.epoch - 1`` to
        ``commit.epoch``; returns a :class:`RepairReport`.

        Commits must be applied in order — a gap means some epoch's changes
        would silently go unrepaired, so it raises :class:`ParameterError`.
        """
        if commit.epoch != self.epoch + 1:
            raise ParameterError(
                f"commit epoch {commit.epoch} does not follow sketch epoch "
                f"{self.epoch}; apply commits in order"
            )
        if self.delta.epoch < commit.epoch:
            raise ParameterError(
                f"delta graph is at epoch {self.delta.epoch}; commit the "
                "batch before applying it to the sketch"
            )
        tel = telemetry.get()
        t0 = time.perf_counter()

        use_extension = self.repair == "extend" and self.model_name == "IC"
        structural = (
            commit.structural_dsts() if use_extension else commit.all_dsts()
        )
        invalidated = self._sets_containing_any(structural)
        fraction = invalidated.size / self.num_sets

        with tel.span(
            "dynamic.apply", epoch=commit.epoch, invalidated=int(invalidated.size)
        ):
            if fraction > self.full_resample_threshold:
                self._build_full()
                mode = "full"
                extended_sets = 0
                added = 0
                invalidated_count = self.num_sets
            else:
                model = get_model(self.model_name, self.delta.compact())
                self._resample_sets(model, invalidated, commit.epoch)
                if use_extension and commit.inserted.shape[0]:
                    extended_sets, added = self._extend_sets(
                        model, commit, exclude=invalidated
                    )
                else:
                    extended_sets, added = 0, 0
                mode = "repair"
                invalidated_count = int(invalidated.size)
                self.epoch = commit.epoch

        elapsed = time.perf_counter() - t0
        report = RepairReport(
            epoch=commit.epoch,
            mode=mode,
            num_sets=self.num_sets,
            invalidated=invalidated_count,
            extended=extended_sets,
            invalidated_fraction=float(fraction),
            added_vertices=added,
            inserted=int(commit.inserted.shape[0]),
            deleted=int(commit.deleted.shape[0]),
            reweighted=int(commit.reweighted.shape[0]),
            ignored=commit.ignored,
            elapsed_s=elapsed,
        )
        self._record_telemetry(report)
        return report

    def _sets_containing_any(self, dsts: np.ndarray) -> np.ndarray:
        """Sorted unique indices of sets containing any of ``dsts``."""
        if dsts.size == 0:
            return np.empty(0, dtype=np.int64)
        hits = [self.store.sets_containing(int(v)) for v in dsts]
        return np.unique(np.concatenate(hits))

    def _resample_sets(self, model, indices: np.ndarray, epoch: int) -> None:
        """Redraw the given sets from their original roots on the current
        graph, patching the fused counter in place."""
        if indices.size == 0:
            return
        old = np.concatenate([self.store.get(int(i)) for i in indices])
        if self.kernel is not None:
            _roots, flat, sizes = self._kernel_draws(
                model, epoch, indices, roots=self.roots[indices]
            )
            offsets = np.concatenate(([0], np.cumsum(sizes)))
            fresh = [
                flat[offsets[j] : offsets[j + 1]]
                for j in range(indices.size)
            ]
        else:
            fresh = [
                self._sample_set(model, int(self.roots[int(i)]))
                for i in indices
            ]
        self.store.replace_sets(indices, fresh)
        self.counter -= np.bincount(old, minlength=self.delta.num_vertices)
        self.counter += np.bincount(
            np.concatenate(fresh).astype(np.int64),
            minlength=self.delta.num_vertices,
        )

    def _extend_sets(
        self, model, commit: CommitInfo, exclude: np.ndarray
    ) -> tuple[int, int]:
        """Couple inserted edges into the surviving sets (IC only).

        For each set containing an inserted edge's destination (and not
        already resampled), flip the edge's coin; on success run the
        reverse BFS from the source with the set pre-seeded as visited.
        Returns ``(sets_extended, vertices_added)``.
        """
        from repro.diffusion.ic import gather_frontier_edges

        ins_src = commit.inserted[:, 0].astype(np.int64)
        ins_dst = commit.inserted[:, 1].astype(np.int64)
        ins_prob = commit.inserted_probs
        affected = self._sets_containing_any(np.unique(ins_dst))
        if exclude.size:
            affected = np.setdiff1d(affected, exclude, assume_unique=True)
        if affected.size == 0:
            return 0, 0

        rev = model.reverse_graph
        stamp = model._stamp
        extended_idx: list[int] = []
        extended_sets: list[np.ndarray] = []
        added_total = 0
        for i in affected:
            members = self.store.get(int(i))  # sorted (sort_sets=True)
            # Inserted edges whose coin is now decidable: dst inside the
            # set, src outside (src inside adds nothing to the closure).
            pos = np.searchsorted(members, ins_dst)
            dst_in = (pos < members.size) & (members[np.minimum(pos, members.size - 1)] == ins_dst)
            pos_s = np.searchsorted(members, ins_src)
            src_in = (pos_s < members.size) & (members[np.minimum(pos_s, members.size - 1)] == ins_src)
            cand = np.flatnonzero(dst_in & ~src_in)
            if cand.size == 0:
                continue
            live = self.rng.random(cand.size) < ins_prob[cand]
            frontier = np.unique(ins_src[cand[live]])
            if frontier.size == 0:
                continue
            epoch = model._next_epoch()
            stamp[members] = epoch
            stamp[frontier] = epoch
            new_parts: list[np.ndarray] = [frontier.astype(np.int32)]
            while frontier.size:
                nbrs, probs = gather_frontier_edges(rev, frontier)
                if nbrs.size == 0:
                    break
                hit = self.rng.random(nbrs.size) < probs
                cand_v = nbrs[hit]
                if cand_v.size == 0:
                    break
                cand_v = np.unique(cand_v)
                fresh = cand_v[stamp[cand_v] != epoch]
                if fresh.size == 0:
                    break
                stamp[fresh] = epoch
                new_parts.append(fresh.astype(np.int32))
                frontier = fresh.astype(np.int64)
            added = np.concatenate(new_parts)
            extended_idx.append(int(i))
            extended_sets.append(np.concatenate([members, added]))
            added_total += int(added.size)
            self.counter += np.bincount(
                added.astype(np.int64), minlength=self.delta.num_vertices
            )
        if extended_idx:
            self.store.replace_sets(
                np.array(extended_idx, dtype=np.int64), extended_sets
            )
        return len(extended_idx), added_total

    def _record_telemetry(self, report: RepairReport) -> None:
        tel = telemetry.get()
        if not tel.enabled:
            return
        reg = tel.registry
        reg.counter("dynamic.commits").inc()
        if report.mode == "full":
            reg.counter("dynamic.full_resamples").inc()
            reg.histogram("dynamic.full_resample_s").observe(report.elapsed_s)
        else:
            reg.counter("dynamic.repairs").inc()
            reg.histogram("dynamic.repair_s").observe(report.elapsed_s)
        reg.counter("dynamic.sets_resampled").inc(report.invalidated)
        reg.counter("dynamic.sets_extended").inc(report.extended)
        reg.counter("dynamic.updates.inserted").inc(report.inserted)
        reg.counter("dynamic.updates.deleted").inc(report.deleted)
        reg.counter("dynamic.updates.reweighted").inc(report.reweighted)
        reg.counter("dynamic.updates.ignored").inc(report.ignored)
        reg.gauge("dynamic.invalidated_fraction").set(
            report.invalidated_fraction
        )
        reg.gauge("dynamic.epoch").set(report.epoch)

    # ------------------------------------------------------------- selection
    def select(self, k: int, num_threads: int = 1) -> SelectionResult:
        """Greedy seed selection on the current sketch, warm-started from
        the maintained fused counter."""
        return efficient_select(
            self.store, k, num_threads, initial_counter=self.counter
        )

    # ----------------------------------------------------------- checkpoints
    def checkpoint_key(self) -> str:
        """Fingerprint of this maintainer's *configuration* (not its state):
        base graph + model + sketch shape + seed + repair policy.  Two
        maintainers share a key iff replaying the same update stream yields
        identical sketches.  The kernel name joins the key only when set,
        so checkpoints written before kernel mode existed keep their keys;
        ``kernel_batch`` is excluded because kernel output is
        batch-size-invariant."""
        parts = [
            self.delta.base_fingerprint,
            self.model_name,
            str(self.num_sets),
            str(self.seed),
            f"{self.full_resample_threshold:.12g}",
            self.repair,
        ]
        if self.kernel is not None:
            parts.append(f"kernel={self.kernel}")
        key = ":".join(parts)
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]

    def checkpoint_path(self, root: str | os.PathLike) -> Path:
        return Path(root) / f"dynamic-{self.checkpoint_key()}.npz"

    def save_checkpoint(self, root: str | os.PathLike) -> Path:
        """Snapshot the full maintainer state (store, counter, roots, RNG,
        epoch) as one checksummed artifact, written atomically."""
        from repro.service.artifacts import save_store

        final = self.checkpoint_path(root)
        tmp = final.with_name(final.stem + ".tmp.npz")
        meta: dict[str, Any] = {
            "dynamic_checkpoint_version": DYNAMIC_CHECKPOINT_VERSION,
            "epoch": int(self.epoch),
            "graph_fp": self.delta.fingerprint(),
            "base_fp": self.delta.base_fingerprint,
            "model": self.model_name,
            "num_sets": self.num_sets,
            "seed": self.seed,
            "full_resample_threshold": self.full_resample_threshold,
            "repair": self.repair,
            "kernel": self.kernel,
            "roots": [int(r) for r in self.roots],
            "rng_state": self.rng.bit_generator.state,
        }
        save_store(
            self.store,
            tmp,
            fingerprint=self.checkpoint_key(),
            counter=self.counter,
            meta=meta,
            compress=False,  # rolling snapshot: trade disk for write speed
        )
        os.replace(tmp, final)
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter("dynamic.checkpoints_written").inc()
        return final

    @classmethod
    def from_checkpoint(
        cls,
        root: str | os.PathLike,
        delta: DeltaGraph,
        *,
        model: str = "IC",
        num_sets: int = 1000,
        seed: int = 0,
        full_resample_threshold: float = 0.25,
        repair: str = "extend",
        kernel: str | None = None,
        kernel_batch: int = 64,
    ) -> "IncrementalMaintainer":
        """Restore a maintainer whose sketch matches ``delta``'s epoch.

        ``delta`` must already be replayed to the checkpointed epoch — the
        checkpoint stores the graph fingerprint it was taken at and refuses
        (:class:`ArtifactError`) to resume against any other graph, since a
        silently mismatched sketch would produce wrong seeds.
        """
        from repro.service.artifacts import load_store

        m = cls(
            delta,
            model=model,
            num_sets=num_sets,
            seed=seed,
            full_resample_threshold=full_resample_threshold,
            repair=repair,
            build=False,
            kernel=kernel,
            kernel_batch=kernel_batch,
        )
        path = m.checkpoint_path(root)
        store, counter, meta = load_store(
            path, expect_fingerprint=m.checkpoint_key()
        )
        if meta.get("dynamic_checkpoint_version") != DYNAMIC_CHECKPOINT_VERSION:
            raise ArtifactError(
                f"{path}: unsupported dynamic checkpoint version "
                f"{meta.get('dynamic_checkpoint_version')!r}"
            )
        if meta.get("graph_fp") != delta.fingerprint():
            raise ArtifactError(
                f"{path}: checkpoint was taken at epoch {meta.get('epoch')} "
                f"of a graph with fingerprint {meta.get('graph_fp')!r}, but "
                f"the delta graph (epoch {delta.epoch}) fingerprints as "
                f"{delta.fingerprint()!r}; replay the update stream to the "
                "checkpointed epoch before resuming"
            )
        m.store = store
        m.counter = (
            counter if counter is not None else store.vertex_counts()
        ).astype(np.int64)
        m.roots = np.array(meta["roots"], dtype=np.int64)
        m.rng.bit_generator.state = meta["rng_state"]
        m.epoch = int(meta["epoch"])
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter("dynamic.checkpoints_restored").inc()
        return m
