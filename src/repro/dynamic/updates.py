"""The JSON-lines update-stream grammar of ``repro update``.

One JSON object per line; six operations (docs/dynamic.md):

.. code-block:: text

    {"op": "insert",   "src": 3, "dst": 7, "prob": 0.2}
    {"op": "delete",   "src": 3, "dst": 7}
    {"op": "reweight", "src": 3, "dst": 7, "prob": 0.05}
    {"op": "commit"}                       # apply staged updates, repair
    {"op": "query", "k": 10, "id": "q1"}   # seeds from the newest epoch
    {"op": "stats"}                        # service + sketch statistics

``insert``/``delete``/``reweight`` lines *stage* changes; nothing is
visible until a ``commit`` line closes the batch, bumps the epoch, and
triggers the incremental repair.  ``query`` lines are answered from the
newest successfully repaired epoch.

Unlike the serving loop (``repro serve``), an update stream is a script —
order matters and a malformed line poisons everything after it — so
parsing errors raise :class:`~repro.errors.ParameterError` (exit 2)
instead of producing per-line error responses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ParameterError

from repro.dynamic.delta import UPDATE_OPS, EdgeUpdate

__all__ = ["StreamOp", "parse_update_line", "iter_update_stream"]

_CONTROL_OPS = ("commit", "query", "stats")
_QUERY_FIELDS = {"op", "k", "id", "deadline_s"}


@dataclass(frozen=True)
class StreamOp:
    """One decoded stream line.

    ``kind`` is ``"update"`` (with ``update`` set), ``"commit"``,
    ``"stats"``, or ``"query"`` (with ``k``/``id``/``deadline_s`` set).
    """

    kind: str
    update: EdgeUpdate | None = None
    k: int | None = None
    id: str | None = None
    deadline_s: float | None = None


def parse_update_line(line: str) -> StreamOp:
    """Decode and validate one line of an update stream."""
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ParameterError(f"bad JSON update line: {exc}") from exc
    if not isinstance(doc, dict):
        raise ParameterError(
            f"update line must be a JSON object, got {type(doc).__name__}"
        )
    op = doc.get("op")
    if op in UPDATE_OPS:
        unknown = set(doc) - {"op", "src", "dst", "prob"}
        if unknown:
            raise ParameterError(
                f"unknown field(s) on {op!r}: {', '.join(sorted(unknown))}"
            )
        for name in ("src", "dst"):
            if not isinstance(doc.get(name), int):
                raise ParameterError(
                    f"{op!r} requires integer '{name}', got {doc.get(name)!r}"
                )
        prob = doc.get("prob")
        if prob is not None and not isinstance(prob, (int, float)):
            raise ParameterError(f"'prob' must be a number, got {prob!r}")
        # Mirror DeltaGraph.stage()'s prob rules here so a malformed line
        # fails at the wire boundary, before any staging happens.
        if op == "delete":
            if prob is not None:
                raise ParameterError("'delete' must not carry a 'prob' field")
        elif prob is None:
            raise ParameterError(f"{op!r} requires a 'prob' field")
        return StreamOp(
            kind="update",
            update=EdgeUpdate(
                op,
                int(doc["src"]),
                int(doc["dst"]),
                None if prob is None else float(prob),
            ),
        )
    if op == "commit":
        if set(doc) != {"op"}:
            raise ParameterError("'commit' takes no fields")
        return StreamOp(kind="commit")
    if op == "stats":
        if set(doc) != {"op"}:
            raise ParameterError("'stats' takes no fields")
        return StreamOp(kind="stats")
    if op == "query":
        unknown = set(doc) - _QUERY_FIELDS
        if unknown:
            raise ParameterError(
                f"unknown field(s) on 'query': {', '.join(sorted(unknown))}"
            )
        k = doc.get("k")
        if k is not None and (not isinstance(k, int) or k < 1):
            raise ParameterError(f"query 'k' must be a positive integer, got {k!r}")
        return StreamOp(
            kind="query",
            k=k,
            id=doc.get("id"),
            deadline_s=doc.get("deadline_s"),
        )
    raise ParameterError(
        f"unknown stream op {op!r} (use one of "
        f"{', '.join((*UPDATE_OPS, *_CONTROL_OPS))})"
    )


def iter_update_stream(lines) -> "list[StreamOp]":
    """Parse an iterable of raw lines, skipping blanks and ``#`` comments."""
    ops: list[StreamOp] = []
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        ops.append(parse_update_line(line))
    return ops
