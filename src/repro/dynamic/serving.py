"""Epoch-aware serving: a :class:`DynamicService` in front of the engine.

The service owns one :class:`DeltaGraph` + :class:`IncrementalMaintainer`
pair and *publishes* each successfully repaired epoch into a
:class:`~repro.service.engine.QueryEngine`:

- the compacted graph is installed under the service's dataset name
  (:meth:`QueryEngine.install_graph`), overriding replica-dataset loading;
- the repaired sketch is warmed into the engine cache under its epoch's
  sketch fingerprint (:meth:`QueryEngine.warm`).

Because sketch fingerprints hash the *graph* fingerprint, every epoch gets
its own cache key automatically — stale epochs simply stop being addressed
and age out of the LRU.  Queries are answered from the newest *published*
epoch; when a repair fails mid-stream the delta graph may run ahead of the
sketch, and the service keeps serving the last good epoch with
``degraded: true`` on the response (the same disclosure the engine uses
for stale-artifact fallback) plus the ``dynamic.epoch_staleness`` gauge /
``dynamic.stale_queries`` counter.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro import telemetry
from repro.errors import ParameterError, ReproError
from repro.graph.csr import CSRGraph
from repro.service.artifacts import sketch_fingerprint
from repro.service.engine import EngineConfig, QueryEngine
from repro.service.protocol import IMQuery, IMResponse
from repro.sketch.store import FlatRRRStore

from repro.dynamic.delta import DeltaGraph, EdgeUpdate
from repro.dynamic.maintain import IncrementalMaintainer, RepairReport

__all__ = ["DynamicService"]


class DynamicService:
    """Streaming updates + versioned query serving over one dynamic graph."""

    def __init__(
        self,
        dataset: str,
        graph: CSRGraph | None = None,
        *,
        delta: DeltaGraph | None = None,
        maintainer: IncrementalMaintainer | None = None,
        model: str = "IC",
        num_sets: int = 2000,
        seed: int = 0,
        epsilon: float = 0.5,
        full_resample_threshold: float = 0.25,
        repair: str = "extend",
        kernel: str | None = None,
        kernel_batch: int = 64,
        engine: QueryEngine | None = None,
        config: EngineConfig | None = None,
    ):
        if (graph is None) == (delta is None):
            raise ParameterError(
                "DynamicService needs exactly one of 'graph' or 'delta'"
            )
        self.dataset = str(dataset)
        self.model = str(model).upper()
        self.epsilon = float(epsilon)
        self.seed = int(seed)
        self.delta = delta if delta is not None else DeltaGraph(graph)
        if maintainer is not None:
            if maintainer.delta is not self.delta:
                raise ParameterError(
                    "maintainer must wrap the same DeltaGraph as the service"
                )
            self.maintainer = maintainer
        else:
            self.maintainer = IncrementalMaintainer(
                self.delta,
                model=self.model,
                num_sets=num_sets,
                seed=self.seed,
                full_resample_threshold=full_resample_threshold,
                repair=repair,
                kernel=kernel,
                kernel_batch=kernel_batch,
            )
        self.num_sets = self.maintainer.num_sets
        self._own_engine = engine is None
        self.engine = engine if engine is not None else QueryEngine(
            config=config or EngineConfig()
        )
        self.served_epoch = -1
        # Publish fan-out (repro.shard): each hook receives every published
        # epoch — graph, fingerprint, sketch snapshot, counter, meta — so a
        # shard cluster (or any other downstream consumer) stays in lockstep
        # with the engine.  See :meth:`add_publish_hook`.
        self._publish_hooks: list[Any] = []
        self._publish()

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._own_engine:
            self.engine.close()

    def __enter__(self) -> "DynamicService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ publishing
    def current_fingerprint(self) -> str:
        """Sketch fingerprint of the newest *published* epoch."""
        return self._fp

    def add_publish_hook(self, hook: Any, *, replay: bool = True) -> None:
        """Fan each published epoch out to ``hook(dataset=, graph=,
        fingerprint=, store=, counter=, meta=)``.

        :meth:`ShardCluster.publish <repro.shard.cluster.ShardCluster.publish>`
        has exactly this signature, so a cluster subscribes with
        ``service.add_publish_hook(cluster.publish)``.  With ``replay=True``
        (default) the hook is immediately called with the currently served
        epoch, so late subscribers start consistent.
        """
        self._publish_hooks.append(hook)
        if replay and self.served_epoch >= 0:
            self._fan_out(hook, *self._last_published)

    def remove_publish_hook(self, hook: Any) -> bool:
        """Unsubscribe a publish hook (the control plane's canary rollout
        interposes itself by swapping hooks); returns whether it was
        subscribed."""
        try:
            self._publish_hooks.remove(hook)
        except ValueError:
            return False
        return True

    def _publish(self) -> None:
        """Install the maintainer's epoch (graph + warm sketch) for serving."""
        graph = self.delta.compact()
        gfp = self.engine.install_graph(self.dataset, graph)
        self._fp = sketch_fingerprint(
            gfp, self.model, self.epsilon, self.seed, self.num_sets
        )
        # Snapshot the sketch: the maintainer keeps mutating its own store,
        # so the published entry copies the flat arrays (from_arrays copies).
        store = FlatRRRStore.from_arrays(
            self.delta.num_vertices,
            self.maintainer.store.offsets,
            self.maintainer.store.vertices,
            sort_sets=True,
        )
        counter = self.maintainer.counter.copy()
        meta = {
            "dataset": self.dataset,
            "model": self.model,
            "epsilon": self.epsilon,
            "seed": self.seed,
            "num_sets": self.num_sets,
            "epoch": int(self.maintainer.epoch),
            "dynamic": True,
        }
        self.engine.warm(self._fp, store, counter=counter, meta=meta)
        self.served_epoch = int(self.maintainer.epoch)
        self._last_published = (graph, self._fp, store, counter, meta)
        for hook in self._publish_hooks:
            self._fan_out(hook, *self._last_published)

    def _fan_out(self, hook: Any, graph, fp, store, counter, meta) -> None:
        hook(
            dataset=self.dataset,
            graph=graph,
            fingerprint=fp,
            store=store,
            counter=counter,
            meta=meta,
        )

    # --------------------------------------------------------------- updates
    def stage(self, update: EdgeUpdate) -> None:
        self.delta.stage(update)

    def commit(self) -> RepairReport:
        """Commit staged updates, repair the sketch, publish the new epoch.

        On repair failure the delta graph stays committed (the updates are
        real) but serving continues from the last published epoch with
        ``degraded`` responses; the error propagates to the caller.
        """
        info = self.delta.commit()
        try:
            report = self.maintainer.apply(info)
        except ReproError:
            tel = telemetry.get()
            if tel.enabled:
                tel.registry.counter("dynamic.repair_failures").inc()
                tel.registry.gauge("dynamic.epoch_staleness").set(
                    self.staleness()
                )
            raise
        self._publish()
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.gauge("dynamic.epoch_staleness").set(self.staleness())
        return report

    def apply(self, updates: Iterable[EdgeUpdate]) -> RepairReport:
        """Stage + commit one batch (the programmatic convenience path)."""
        for u in updates:
            self.stage(u)
        return self.commit()

    def staleness(self) -> int:
        """How many committed epochs the served sketch lags behind."""
        return int(self.delta.epoch - self.served_epoch)

    # ---------------------------------------------------------------- queries
    def query(
        self,
        k: int = 10,
        *,
        deadline_s: float | None = None,
        id: str | None = None,
    ) -> IMResponse:
        """Top-``k`` seeds from the newest published epoch.

        The response's ``epoch`` field carries the served epoch; when the
        delta graph has committed epochs the sketch has not caught up with
        (a failed repair), the response is flagged ``degraded``.
        """
        return self.execute(
            [IMQuery(dataset=self.dataset, k=int(k), deadline_s=deadline_s, id=id)]
        )[0]

    def execute(self, queries: Sequence[IMQuery]) -> list[IMResponse]:
        """Serve a batch against the newest published epoch.

        The same ``execute(queries) -> responses`` surface as
        :class:`~repro.service.engine.QueryEngine` and
        :class:`~repro.shard.cluster.ShardCluster`, so a
        :class:`~repro.gateway.server.GatewayServer` can front a dynamic
        service directly.  Queries are *pinned* to the service's sketch:
        only ``k``, ``deadline_s``, and ``id`` are taken from the incoming
        query — the dataset must match (an ``"error"`` response otherwise),
        and model/epsilon/seed/theta follow the maintained sketch so every
        answer reflects the published epoch.
        """
        responses: list[IMResponse | None] = [None] * len(queries)
        pinned: list[tuple[int, IMQuery]] = []
        for i, q in enumerate(queries):
            if str(q.dataset).lower() != self.dataset.lower():
                responses[i] = IMResponse(
                    status="error",
                    id=q.id,
                    error=(
                        f"ParameterError: this dynamic service serves "
                        f"{self.dataset!r}, not {q.dataset!r}"
                    ),
                )
                continue
            pinned.append(
                (
                    i,
                    IMQuery(
                        dataset=self.dataset,
                        model=self.model,
                        k=q.k,
                        epsilon=self.epsilon,
                        seed=self.seed,
                        theta_cap=self.num_sets,
                        deadline_s=q.deadline_s,
                        id=q.id,
                    ),
                )
            )
        if pinned:
            answers = self.engine.execute([q for _, q in pinned])
            stale = self.staleness()
            tel = telemetry.get()
            if tel.enabled:
                tel.registry.gauge("dynamic.epoch_staleness").set(stale)
            for (i, _), resp in zip(pinned, answers):
                resp.epoch = self.served_epoch
                if stale > 0 and resp.ok:
                    resp.degraded = True
                    if tel.enabled:
                        tel.registry.counter("dynamic.stale_queries").inc()
                responses[i] = resp
        return [
            r if r is not None
            else IMResponse(status="error", error="internal: query dropped")
            for r in responses
        ]

    # ----------------------------------------------------------------- stats
    def stats_snapshot(self) -> dict[str, Any]:
        """Engine + dynamic counters as one JSON-able dict (the `stats` op)."""
        snap = self.engine.stats_snapshot()
        snap["dynamic"] = {
            "dataset": self.dataset,
            "model": self.model,
            "num_sets": self.num_sets,
            "graph_epoch": int(self.delta.epoch),
            "served_epoch": self.served_epoch,
            "staleness": self.staleness(),
            "num_edges": self.delta.num_edges,
            "fingerprint": self._fp,
        }
        return snap
