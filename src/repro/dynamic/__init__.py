"""repro.dynamic — streaming graph updates with incremental sketch repair.

The static pipeline (graph → sketch → selection) assumes a frozen graph;
this package makes the reproduction serve a *changing* one:

- :mod:`repro.dynamic.delta` — :class:`DeltaGraph`, a mutable overlay over
  :class:`~repro.graph.csr.CSRGraph` with batched insert/delete/reweight,
  epoch numbering, and O(m) ``compact()`` back to CSR;
- :mod:`repro.dynamic.maintain` — :class:`IncrementalMaintainer`, which
  repairs an RRR sketch after each committed batch instead of rebuilding
  it: provenance-based invalidation via ``sets_containing()``, resampling
  through the existing kernels, an exact coin-coupling extension path for
  inserted edges (IC), in-place fused-counter patching, and a full-resample
  fallback above a configurable invalidation threshold — plus epoch-aware
  checkpoints for crash/resume across epochs;
- :mod:`repro.dynamic.updates` — the JSON-lines update-stream grammar of
  ``repro update``;
- :mod:`repro.dynamic.serving` — :class:`DynamicService`, publishing each
  repaired epoch into the :class:`~repro.service.engine.QueryEngine` under
  its epoch's sketch fingerprint so queries always hit the newest epoch
  (stale epochs answer ``degraded`` until the repair catches up).

Typical use::

    from repro.dynamic import DeltaGraph, DynamicService, EdgeUpdate

    svc = DynamicService("live", graph, num_sets=2000, seed=0)
    svc.apply([EdgeUpdate("insert", 3, 7, 0.2)])   # commit + repair
    resp = svc.query(k=10)                          # newest epoch

See docs/dynamic.md for the update grammar, invalidation semantics, and
epoch/staleness guarantees.
"""

from repro.dynamic.delta import CommitInfo, DeltaGraph, EdgeUpdate
from repro.dynamic.maintain import IncrementalMaintainer, RepairReport
from repro.dynamic.serving import DynamicService
from repro.dynamic.updates import StreamOp, iter_update_stream, parse_update_line

__all__ = [
    "CommitInfo",
    "DeltaGraph",
    "DynamicService",
    "EdgeUpdate",
    "IncrementalMaintainer",
    "RepairReport",
    "StreamOp",
    "iter_update_stream",
    "parse_update_line",
]
