"""``DeltaGraph``: a mutable, epoch-numbered overlay over :class:`CSRGraph`.

The static pipeline treats the graph as frozen; a live deployment sees a
stream of edge **inserts**, **deletes**, and **reweights**.  ``DeltaGraph``
holds the current edge set as one sorted ``int64`` key array
(``src * n + dst``) with an aligned probability array — the COO twin of the
CSR layout — so a batch of updates is a handful of vectorised merge/mask
operations, and :meth:`compact` rebuilds a :class:`CSRGraph` in O(m)
without re-running the builder.

Updates are **staged** (:meth:`stage` / :meth:`insert` / :meth:`delete` /
:meth:`reweight`) and then applied atomically by :meth:`commit`, which bumps
the epoch and returns a :class:`CommitInfo` describing the *net* effect of
the batch relative to the previous epoch — exactly the provenance the
incremental maintainer needs (which destination endpoints were perturbed,
and how).  Within a batch, ops are resolved sequentially: inserting an edge
that exists acts as a reweight, deleting or reweighting a missing edge is
counted in ``CommitInfo.ignored`` rather than erroring (streams routinely
carry such no-ops), and an insert+delete pair cancels out.

Epoch numbering starts at 0 (the base graph); each commit increments it.
``compact()`` is cached per epoch, and :meth:`fingerprint` is the ordinary
graph fingerprint of the compacted CSR — so the serving layer's
fingerprint-keyed caches version themselves for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import ParameterError
from repro.graph.csr import CSRGraph, OFFSET_DTYPE, PROB_DTYPE, VERTEX_DTYPE

__all__ = ["EdgeUpdate", "CommitInfo", "DeltaGraph"]

#: The three update verbs of the stream grammar (docs/dynamic.md).
UPDATE_OPS = ("insert", "delete", "reweight")


@dataclass(frozen=True)
class EdgeUpdate:
    """One staged edge operation.

    ``prob`` is required for ``insert``/``reweight`` and must be absent for
    ``delete``; validation happens in :meth:`DeltaGraph.stage` so updates
    parsed from a wire stream fail with :class:`ParameterError` (exit 2).
    """

    op: str
    src: int
    dst: int
    prob: float | None = None


@dataclass(frozen=True)
class CommitInfo:
    """Net effect of one committed batch, relative to the previous epoch.

    All arrays are aligned per category; ``inserted``/``deleted``/
    ``reweighted`` hold ``(src, dst)`` int32 pairs as ``(k, 2)`` arrays.
    ``ignored`` counts deletes/reweights of absent edges plus staged ops
    whose net effect cancelled out (e.g. insert then delete).
    """

    epoch: int
    inserted: np.ndarray  # (k, 2) int32
    inserted_probs: np.ndarray  # (k,) float64
    deleted: np.ndarray  # (k, 2) int32
    reweighted: np.ndarray  # (k, 2) int32
    reweighted_probs: np.ndarray  # (k,) float64
    ignored: int

    @property
    def num_changes(self) -> int:
        return int(
            self.inserted.shape[0]
            + self.deleted.shape[0]
            + self.reweighted.shape[0]
        )

    def structural_dsts(self) -> np.ndarray:
        """Unique destinations of deleted + reweighted edges — the endpoints
        whose realised reverse-BFS coins an update may contradict."""
        parts = [self.deleted[:, 1], self.reweighted[:, 1]]
        return np.unique(np.concatenate(parts)).astype(np.int64)

    def all_dsts(self) -> np.ndarray:
        """Unique destinations across every change category."""
        parts = [self.inserted[:, 1], self.deleted[:, 1], self.reweighted[:, 1]]
        return np.unique(np.concatenate(parts)).astype(np.int64)

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "inserted": int(self.inserted.shape[0]),
            "deleted": int(self.deleted.shape[0]),
            "reweighted": int(self.reweighted.shape[0]),
            "ignored": self.ignored,
        }


class DeltaGraph:
    """Mutable edge-set overlay with batched commits and epoch numbering."""

    def __init__(self, base: CSRGraph):
        self.num_vertices = int(base.num_vertices)
        n = self.num_vertices
        src, dst, probs = base.edge_array()
        keys = src.astype(np.int64) * n + dst.astype(np.int64)
        if keys.size and np.any(np.diff(keys) <= 0):
            # Canonicalise: sort rows by destination and drop duplicate
            # edges keeping the first occurrence (the builder's policy).
            order = np.argsort(keys, kind="stable")
            keys, probs = keys[order], probs[order]
            keep = np.concatenate(([True], np.diff(keys) > 0))
            keys, probs = keys[keep], probs[keep]
        self._keys = np.ascontiguousarray(keys, dtype=np.int64)
        self._probs = np.ascontiguousarray(probs, dtype=PROB_DTYPE)
        self.epoch = 0
        self._pending: list[EdgeUpdate] = []
        self._compact_cache: tuple[int, CSRGraph] | None = None
        self.base_fingerprint = self.fingerprint()

    # ------------------------------------------------------------- accessors
    @property
    def num_edges(self) -> int:
        return int(self._keys.size)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def _key_of(self, src: int, dst: int) -> int:
        return int(src) * self.num_vertices + int(dst)

    def _find(self, key: int) -> int:
        """Index of ``key`` in the sorted key array, or -1."""
        i = int(np.searchsorted(self._keys, key))
        if i < self._keys.size and self._keys[i] == key:
            return i
        return -1

    def has_edge(self, src: int, dst: int) -> bool:
        return self._find(self._key_of(src, dst)) >= 0

    def prob(self, src: int, dst: int) -> float | None:
        """Current probability of edge ``(src, dst)``, or ``None``."""
        i = self._find(self._key_of(src, dst))
        return float(self._probs[i]) if i >= 0 else None

    # --------------------------------------------------------------- staging
    def stage(self, update: EdgeUpdate) -> None:
        """Validate and queue one update for the next :meth:`commit`."""
        n = self.num_vertices
        if update.op not in UPDATE_OPS:
            raise ParameterError(
                f"unknown update op {update.op!r} (use one of {UPDATE_OPS})"
            )
        for name, v in (("src", update.src), ("dst", update.dst)):
            if not isinstance(v, (int, np.integer)) or not (0 <= v < n):
                raise ParameterError(
                    f"update {name}={v!r} out of vertex range [0, {n})"
                )
        if update.src == update.dst:
            raise ParameterError(
                f"self-loop update ({update.src}, {update.dst}) rejected: "
                "self-loops carry no influence (the graph builder drops them)"
            )
        if update.op == "delete":
            if update.prob is not None:
                raise ParameterError("delete must not carry a 'prob' field")
        else:
            if update.prob is None:
                raise ParameterError(f"{update.op} requires a 'prob' field")
            p = float(update.prob)
            if not (0.0 <= p <= 1.0):
                raise ParameterError(
                    f"edge probability must lie in [0, 1], got {update.prob!r}"
                )
        self._pending.append(update)

    def stage_many(self, updates: Iterable[EdgeUpdate]) -> None:
        for u in updates:
            self.stage(u)

    def insert(self, src: int, dst: int, prob: float) -> None:
        self.stage(EdgeUpdate("insert", int(src), int(dst), float(prob)))

    def delete(self, src: int, dst: int) -> None:
        self.stage(EdgeUpdate("delete", int(src), int(dst)))

    def reweight(self, src: int, dst: int, prob: float) -> None:
        self.stage(EdgeUpdate("reweight", int(src), int(dst), float(prob)))

    # ---------------------------------------------------------------- commit
    def commit(self) -> CommitInfo:
        """Apply every staged update atomically; bump the epoch.

        Raises :class:`ParameterError` when nothing is staged (an empty
        commit would create an epoch indistinguishable from its parent).
        """
        if not self._pending:
            raise ParameterError("commit with no staged updates")
        n = self.num_vertices
        # Sequentially resolve the batch into a net disposition per touched
        # key: eff[key] = final prob (or None = absent).
        eff: dict[int, float | None] = {}
        ignored = 0
        for u in self._pending:
            key = self._key_of(u.src, u.dst)
            if key in eff:
                present = eff[key] is not None
            else:
                present = self._find(key) >= 0
            if u.op == "delete":
                if present:
                    eff[key] = None
                else:
                    ignored += 1
            elif u.op == "reweight":
                if present:
                    eff[key] = float(u.prob)  # type: ignore[arg-type]
                else:
                    ignored += 1
            else:  # insert; inserting an existing edge reweights it
                eff[key] = float(u.prob)  # type: ignore[arg-type]
        self._pending.clear()

        ins_k: list[int] = []
        ins_p: list[float] = []
        del_k: list[int] = []
        rew_k: list[int] = []
        rew_p: list[float] = []
        for key, p in eff.items():
            i = self._find(key)
            if i < 0:
                if p is None:
                    ignored += 1  # e.g. insert then delete: net no-op
                else:
                    ins_k.append(key)
                    ins_p.append(p)
            else:
                if p is None:
                    del_k.append(key)
                elif p != float(self._probs[i]):
                    rew_k.append(key)
                    rew_p.append(p)
                else:
                    ignored += 1  # reweight to the identical probability

        keys, probs = self._keys, self._probs
        if rew_k:
            rk = np.array(sorted(rew_k), dtype=np.int64)
            rp = np.array(
                [dict(zip(rew_k, rew_p))[k] for k in rk], dtype=PROB_DTYPE
            )
            probs = probs.copy()
            probs[np.searchsorted(keys, rk)] = rp
        if del_k:
            dk = np.array(sorted(del_k), dtype=np.int64)
            mask = np.ones(keys.size, dtype=bool)
            mask[np.searchsorted(keys, dk)] = False
            keys, probs = keys[mask], probs[mask]
        if ins_k:
            order = np.argsort(np.array(ins_k, dtype=np.int64))
            ik = np.array(ins_k, dtype=np.int64)[order]
            ip = np.array(ins_p, dtype=PROB_DTYPE)[order]
            pos = np.searchsorted(keys, ik)
            keys = np.insert(keys, pos, ik)
            probs = np.insert(probs, pos, ip)
        self._keys, self._probs = keys, probs
        self.epoch += 1
        self._compact_cache = None

        def pairs(ks: list[int]) -> np.ndarray:
            arr = np.array(sorted(ks), dtype=np.int64).reshape(-1)
            out = np.empty((arr.size, 2), dtype=VERTEX_DTYPE)
            out[:, 0] = arr // n
            out[:, 1] = arr % n
            return out

        ins_sorted = sorted(range(len(ins_k)), key=lambda j: ins_k[j])
        rew_sorted = sorted(range(len(rew_k)), key=lambda j: rew_k[j])
        return CommitInfo(
            epoch=self.epoch,
            inserted=pairs(ins_k),
            inserted_probs=np.array(
                [ins_p[j] for j in ins_sorted], dtype=PROB_DTYPE
            ),
            deleted=pairs(del_k),
            reweighted=pairs(rew_k),
            reweighted_probs=np.array(
                [rew_p[j] for j in rew_sorted], dtype=PROB_DTYPE
            ),
            ignored=ignored,
        )

    def apply_batch(self, updates: Iterable[EdgeUpdate]) -> CommitInfo:
        """Stage + commit in one call (the programmatic convenience path)."""
        self.stage_many(updates)
        return self.commit()

    # --------------------------------------------------------------- compact
    def compact(self) -> CSRGraph:
        """The current epoch as an immutable :class:`CSRGraph` (cached).

        Direct CSR assembly from the sorted key array: one ``bincount`` for
        the row pointer, two modulo passes for the columns — no builder
        round-trip, and rows come out sorted by destination.
        """
        if self._compact_cache is not None and self._compact_cache[0] == self.epoch:
            return self._compact_cache[1]
        n = self.num_vertices
        if n == 0:
            graph = CSRGraph(
                0,
                np.zeros(1, dtype=OFFSET_DTYPE),
                np.empty(0, dtype=VERTEX_DTYPE),
                np.empty(0, dtype=PROB_DTYPE),
            )
        else:
            src = (self._keys // n).astype(np.int64)
            counts = np.bincount(src, minlength=n).astype(OFFSET_DTYPE)
            indptr = np.concatenate(([0], np.cumsum(counts)))
            indices = (self._keys % n).astype(VERTEX_DTYPE)
            graph = CSRGraph(n, indptr, indices, self._probs.copy())
        self._compact_cache = (self.epoch, graph)
        return graph

    def fingerprint(self) -> str:
        """Graph fingerprint of the current epoch's compacted CSR."""
        from repro.graph.io import graph_fingerprint

        return graph_fingerprint(self.compact())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaGraph(n={self.num_vertices:,}, m={self.num_edges:,}, "
            f"epoch={self.epoch}, pending={len(self._pending)})"
        )
