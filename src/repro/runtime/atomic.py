"""Atomic counter-array abstraction.

EfficientIMM's central data structure is a global vertex-occurrence counter
updated with fine-grained 64-bit atomic adds (``lock incq``).  CPython cannot
express a hardware atomic, so this class provides the same *interface* with
three faithful properties:

1. increments are applied with ``np.add.at`` (unbuffered scatter-add), so
   duplicate indices within one batch all land — the semantics of a loop of
   atomic adds;
2. every update batch is *counted* (``num_updates``, ``num_batches``), which
   is what the contention/cost models consume;
3. an optional conflict probe records how many updates in a batch hit an
   index touched by another simulated thread in the same round, feeding the
   atomic-contention penalty of the cost model.

The multiprocessing backend gives each process a private counter and merges
(sums) them at a barrier — the standard reduction substitute for cross-
process atomics; the merge is exact because integer addition commutes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = ["AtomicCounterArray"]


class AtomicCounterArray:
    """A ``int64`` counter vector with atomic-add semantics and accounting."""

    def __init__(self, size: int, *, dtype=np.int64):
        if size < 0:
            raise ParameterError(f"size must be >= 0, got {size}")
        self._counts = np.zeros(size, dtype=dtype)
        self.num_updates = 0  # total scalar atomic ops applied
        self.num_batches = 0  # number of update bursts

    # ------------------------------------------------------------- updates
    def add(self, indices: np.ndarray, value: int = 1) -> None:
        """Atomically add ``value`` at each index (duplicates accumulate)."""
        idx = np.asarray(indices, dtype=np.int64).ravel()
        np.add.at(self._counts, idx, value)
        self.num_updates += idx.size
        self.num_batches += 1

    def sub(self, indices: np.ndarray, value: int = 1) -> None:
        """Atomic subtract; the counter-decrement path of Algorithm 2."""
        self.add(indices, -value)

    def reset(self) -> None:
        """Zero all counters (the adaptive-rebuild path starts here)."""
        self._counts[:] = 0
        self.num_batches += 1

    def merge_from(self, other: "AtomicCounterArray") -> None:
        """Sum another counter into this one (cross-process reduction)."""
        if other._counts.shape != self._counts.shape:
            raise ParameterError("cannot merge counters of different sizes")
        self._counts += other._counts
        self.num_updates += other.num_updates
        self.num_batches += other.num_batches

    # ------------------------------------------------------------ accessors
    @property
    def values(self) -> np.ndarray:
        """The underlying counts (a view; do not mutate directly)."""
        return self._counts

    def __len__(self) -> int:
        return self._counts.size

    def __getitem__(self, i) -> np.ndarray | int:
        return self._counts[i]

    def argmax(self) -> int:
        """Index of the maximum counter (serial reference reduction)."""
        return int(np.argmax(self._counts))

    def regional_argmax(self, bounds: list[tuple[int, int]]) -> np.ndarray:
        """Step 1 of EfficientIMM's two-step parallel reduction: the argmax
        within each worker's contiguous vertex range.  Empty ranges yield -1.
        """
        out = np.full(len(bounds), -1, dtype=np.int64)
        for w, (lo, hi) in enumerate(bounds):
            if hi > lo:
                out[w] = lo + int(np.argmax(self._counts[lo:hi]))
        return out

    def global_from_regional(self, regional: np.ndarray) -> int:
        """Step 2: reduce the per-worker regional maxima to the global one."""
        valid = regional[regional >= 0]
        if valid.size == 0:
            raise ParameterError("no regional maxima to reduce")
        return int(valid[np.argmax(self._counts[valid])])

    def estimate_conflicts(self, indices: np.ndarray, num_threads: int) -> float:
        """Expected fraction of ``indices`` contended by concurrent threads.

        Birthday-style estimate: with ``num_threads`` threads issuing this
        batch concurrently over a counter of size ``len(self)``, an update
        conflicts when another thread's concurrent update targets the same
        64-bit word.  Feeds the cost model's atomic-penalty term.
        """
        size = max(len(self), 1)
        idx = np.asarray(indices)
        if idx.size == 0 or num_threads <= 1:
            return 0.0
        density = min(idx.size / size, 1.0)
        return float(1.0 - (1.0 - density) ** (num_threads - 1))
