"""Dynamic job balancing: chunked work queues with stealing, and the
deterministic list scheduler used by the cost model.

§IV-C ("Dynamic Job Balancing"): RRR-set sizes vary by orders of magnitude
(SCC effect + skew), so static ``theta/p`` partitions leave threads idle.
EfficientIMM uses a producer-consumer scheme: work is chunked, each worker
drains its own queue first (preserving the locality of the contiguous
partition), then steals from the most loaded peer.

Two views of the same policy live here:

- :class:`ChunkedWorkQueue` — an actual queue structure usable by the
  multiprocessing backend and by tests (deterministic stealing order);
- :func:`simulate_schedule` — given per-item costs, compute the assignment
  and makespan a given policy yields.  The cost model calls this to turn
  measured per-RRR work into per-thread simulated time for 1..128 threads.

Resilience (docs/resilience.md): the queue understands worker failure —
:meth:`ChunkedWorkQueue.fail_worker` retires a rank, whose unfinished
chunks stay stealable by the survivors, and :meth:`~ChunkedWorkQueue.requeue`
returns a chunk a worker died *holding* to the pool.  An optional
:class:`~repro.resilience.faults.FaultPlan` injects rank-scoped faults at
the ``pop`` boundary.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import BackendError, FaultInjectedError, ParameterError
from repro.runtime.partition import block_partition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.faults import FaultPlan
    from repro.runtime.api import BackendConfig

__all__ = ["ChunkedWorkQueue", "ScheduleResult", "simulate_schedule"]


class ChunkedWorkQueue:
    """Per-worker chunk queues with own-first draining and stealing.

    Items ``0..num_items-1`` are cut into chunks of ``chunk_size`` and
    dealt contiguously to workers (locality first).  ``pop(worker)`` returns
    the next chunk: from the worker's own queue (front) if non-empty, else
    stolen from the *back* of the currently longest peer queue; ``None``
    when all queues are empty.  Thread-safe; stealing order is deterministic
    given a call sequence.

    Construct with keywords (``ChunkedWorkQueue(n, num_workers=4,
    chunk_size=8)``) or from a :class:`~repro.runtime.api.BackendConfig`
    (``ChunkedWorkQueue(n, config=cfg)``), which also supplies the fault
    plan.  The pre-redesign positional form ``ChunkedWorkQueue(n, workers,
    chunk)`` still works but emits :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        num_items: int,
        *args,
        num_workers: int | None = None,
        chunk_size: int | None = None,
        config: "BackendConfig | None" = None,
        fault_plan: "FaultPlan | None" = None,
    ):
        if args:
            warnings.warn(
                "repro execution API: ChunkedWorkQueue(num_items, "
                "num_workers, chunk_size) positional form is deprecated; "
                "use keyword arguments or pass config=BackendConfig(...)",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > 2:
                raise ParameterError(
                    f"ChunkedWorkQueue takes at most 3 positional arguments, "
                    f"got {1 + len(args)}"
                )
            if num_workers is None:
                num_workers = args[0]
            if len(args) > 1 and chunk_size is None:
                chunk_size = args[1]
        if config is not None:
            if num_workers is None:
                num_workers = config.num_workers
            if chunk_size is None:
                chunk_size = config.chunk_size
            if fault_plan is None:
                fault_plan = config.faults
        if chunk_size is None:
            chunk_size = 1
        if num_workers is None:
            raise ParameterError("ChunkedWorkQueue requires num_workers")
        if chunk_size <= 0:
            raise ParameterError(f"chunk_size must be positive, got {chunk_size}")
        if num_workers <= 0:
            raise ParameterError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = num_workers
        self.fault_plan = fault_plan
        chunks = [
            (start, min(start + chunk_size, num_items))
            for start in range(0, num_items, chunk_size)
        ]
        bounds = block_partition(len(chunks), num_workers)
        self._queues: list[list[tuple[int, int]]] = [
            chunks[lo:hi] for lo, hi in bounds
        ]
        self._failed: set[int] = set()
        self._lock = threading.Lock()
        self.steals = 0
        self.pops = 0

    def pop(self, worker: int) -> tuple[int, int] | None:
        """Next ``(start, end)`` item range for ``worker``, or ``None``.

        Raises :class:`~repro.errors.BackendError` when the worker has been
        retired via :meth:`fail_worker`, and
        :class:`~repro.errors.FaultInjectedError` when the attached fault
        plan scripts a crash for this rank (``slow`` faults sleep instead).
        """
        if self.fault_plan is not None:
            spec = self.fault_plan.take("rank", worker)
            if spec is not None:
                if spec.kind == "crash":
                    raise FaultInjectedError(f"injected {spec.describe()}")
                if spec.kind == "slow":
                    time.sleep(spec.delay_s)
                # "corrupt" has no meaningful rank-level payload; ignored.
        with self._lock:
            if worker in self._failed:
                raise BackendError(f"worker {worker} has failed; cannot pop")
            own = self._queues[worker]
            if own:
                self.pops += 1
                return own.pop(0)
            # Steal from the longest queue (back end, away from the owner).
            # Failed workers' leftover queues are deliberately included —
            # that is how their unfinished work gets redistributed.
            victim = max(
                range(len(self._queues)), key=lambda w: len(self._queues[w])
            )
            if self._queues[victim]:
                self.steals += 1
                self.pops += 1
                return self._queues[victim].pop()
            return None

    # ------------------------------------------------------------ resilience
    def fail_worker(self, worker: int) -> int:
        """Retire a rank; returns how many of its chunks remain stealable.

        The failed worker can no longer ``pop`` (it raises
        :class:`~repro.errors.BackendError`), but its queued chunks stay in
        place for the surviving workers to steal, so no work is lost.
        """
        with self._lock:
            if not 0 <= worker < len(self._queues):
                raise ParameterError(f"no such worker {worker}")
            self._failed.add(worker)
            return len(self._queues[worker])

    def requeue(self, chunk: tuple[int, int]) -> None:
        """Return a popped-but-unfinished chunk (e.g. from a worker that
        died holding it) to the front of the least-loaded live queue."""
        with self._lock:
            live = [w for w in range(len(self._queues)) if w not in self._failed]
            if not live:
                raise BackendError("all workers have failed; cannot requeue")
            target = min(live, key=lambda w: len(self._queues[w]))
            self._queues[target].insert(0, (int(chunk[0]), int(chunk[1])))

    @property
    def failed_workers(self) -> frozenset[int]:
        with self._lock:
            return frozenset(self._failed)

    def remaining(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._queues)


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling weighted items onto workers."""

    assignment: np.ndarray  # worker id per item
    loads: np.ndarray  # total cost per worker
    makespan: float  # max worker load = simulated parallel time

    @property
    def imbalance(self) -> float:
        """makespan / mean-load; 1.0 is perfect balance."""
        mean = float(self.loads.mean()) if self.loads.size else 0.0
        return self.makespan / mean if mean > 0 else 1.0


def simulate_schedule(
    costs: np.ndarray,
    num_workers: int,
    *,
    policy: str = "dynamic",
    chunk_size: int = 8,
) -> ScheduleResult:
    """Compute the schedule a policy produces for items with given costs.

    Policies:

    - ``"static"`` — contiguous ``num_items/p`` blocks (Ripples' OpenMP
      static schedule);
    - ``"dynamic"`` — chunked greedy list scheduling: chunks are handed, in
      order, to the worker that becomes free first (the steady-state
      behaviour of the producer-consumer queue with stealing);
    - ``"cyclic"`` — round-robin item assignment.

    Returns per-item worker assignment, per-worker loads, and the makespan.
    """
    c = np.asarray(costs, dtype=np.float64).ravel()
    if num_workers <= 0:
        raise ParameterError(f"num_workers must be positive, got {num_workers}")
    assignment = np.zeros(c.size, dtype=np.int64)
    loads = np.zeros(num_workers)

    if policy == "static":
        for w, (lo, hi) in enumerate(block_partition(c.size, num_workers)):
            assignment[lo:hi] = w
            loads[w] = c[lo:hi].sum()
    elif policy == "cyclic":
        for w in range(num_workers):
            sel = slice(w, c.size, num_workers)
            assignment[sel] = w
            loads[w] = c[sel].sum()
    elif policy == "dynamic":
        if chunk_size <= 0:
            raise ParameterError(f"chunk_size must be positive, got {chunk_size}")
        # Earliest-free-worker list scheduling over chunks, via a time heap.
        heap = [(0.0, w) for w in range(num_workers)]
        for start in range(0, c.size, chunk_size):
            end = min(start + chunk_size, c.size)
            t, w = heappop(heap)
            assignment[start:end] = w
            cost = float(c[start:end].sum())
            loads[w] += cost
            heappush(heap, (t + cost, w))
    else:
        raise ParameterError(f"unknown scheduling policy {policy!r}")

    makespan = float(loads.max()) if num_workers else 0.0
    return ScheduleResult(assignment=assignment, loads=loads, makespan=makespan)
