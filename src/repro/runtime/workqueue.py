"""Dynamic job balancing: chunked work queues with stealing, and the
deterministic list scheduler used by the cost model.

§IV-C ("Dynamic Job Balancing"): RRR-set sizes vary by orders of magnitude
(SCC effect + skew), so static ``theta/p`` partitions leave threads idle.
EfficientIMM uses a producer-consumer scheme: work is chunked, each worker
drains its own queue first (preserving the locality of the contiguous
partition), then steals from the most loaded peer.

Two views of the same policy live here:

- :class:`ChunkedWorkQueue` — an actual queue structure usable by the
  multiprocessing backend and by tests (deterministic stealing order);
- :func:`simulate_schedule` — given per-item costs, compute the assignment
  and makespan a given policy yields.  The cost model calls this to turn
  measured per-RRR work into per-thread simulated time for 1..128 threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from heapq import heappop, heappush

import numpy as np

from repro.errors import ParameterError
from repro.runtime.partition import block_partition

__all__ = ["ChunkedWorkQueue", "ScheduleResult", "simulate_schedule"]


class ChunkedWorkQueue:
    """Per-worker chunk queues with own-first draining and stealing.

    Items ``0..num_items-1`` are cut into chunks of ``chunk_size`` and
    dealt contiguously to workers (locality first).  ``pop(worker)`` returns
    the next chunk: from the worker's own queue (front) if non-empty, else
    stolen from the *back* of the currently longest peer queue; ``None``
    when all queues are empty.  Thread-safe; stealing order is deterministic
    given a call sequence.
    """

    def __init__(self, num_items: int, num_workers: int, chunk_size: int = 1):
        if chunk_size <= 0:
            raise ParameterError(f"chunk_size must be positive, got {chunk_size}")
        if num_workers <= 0:
            raise ParameterError(f"num_workers must be positive, got {num_workers}")
        chunks = [
            (start, min(start + chunk_size, num_items))
            for start in range(0, num_items, chunk_size)
        ]
        bounds = block_partition(len(chunks), num_workers)
        self._queues: list[list[tuple[int, int]]] = [
            chunks[lo:hi] for lo, hi in bounds
        ]
        self._lock = threading.Lock()
        self.steals = 0
        self.pops = 0

    def pop(self, worker: int) -> tuple[int, int] | None:
        """Next ``(start, end)`` item range for ``worker``, or ``None``."""
        with self._lock:
            own = self._queues[worker]
            if own:
                self.pops += 1
                return own.pop(0)
            # Steal from the longest queue (back end, away from the owner).
            victim = max(
                range(len(self._queues)), key=lambda w: len(self._queues[w])
            )
            if self._queues[victim]:
                self.steals += 1
                self.pops += 1
                return self._queues[victim].pop()
            return None

    def remaining(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._queues)


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling weighted items onto workers."""

    assignment: np.ndarray  # worker id per item
    loads: np.ndarray  # total cost per worker
    makespan: float  # max worker load = simulated parallel time

    @property
    def imbalance(self) -> float:
        """makespan / mean-load; 1.0 is perfect balance."""
        mean = float(self.loads.mean()) if self.loads.size else 0.0
        return self.makespan / mean if mean > 0 else 1.0


def simulate_schedule(
    costs: np.ndarray,
    num_workers: int,
    *,
    policy: str = "dynamic",
    chunk_size: int = 8,
) -> ScheduleResult:
    """Compute the schedule a policy produces for items with given costs.

    Policies:

    - ``"static"`` — contiguous ``num_items/p`` blocks (Ripples' OpenMP
      static schedule);
    - ``"dynamic"`` — chunked greedy list scheduling: chunks are handed, in
      order, to the worker that becomes free first (the steady-state
      behaviour of the producer-consumer queue with stealing);
    - ``"cyclic"`` — round-robin item assignment.

    Returns per-item worker assignment, per-worker loads, and the makespan.
    """
    c = np.asarray(costs, dtype=np.float64).ravel()
    if num_workers <= 0:
        raise ParameterError(f"num_workers must be positive, got {num_workers}")
    assignment = np.zeros(c.size, dtype=np.int64)
    loads = np.zeros(num_workers)

    if policy == "static":
        for w, (lo, hi) in enumerate(block_partition(c.size, num_workers)):
            assignment[lo:hi] = w
            loads[w] = c[lo:hi].sum()
    elif policy == "cyclic":
        for w in range(num_workers):
            sel = slice(w, c.size, num_workers)
            assignment[sel] = w
            loads[w] = c[sel].sum()
    elif policy == "dynamic":
        if chunk_size <= 0:
            raise ParameterError(f"chunk_size must be positive, got {chunk_size}")
        # Earliest-free-worker list scheduling over chunks, via a time heap.
        heap = [(0.0, w) for w in range(num_workers)]
        for start in range(0, c.size, chunk_size):
            end = min(start + chunk_size, c.size)
            t, w = heappop(heap)
            assignment[start:end] = w
            cost = float(c[start:end].sum())
            loads[w] += cost
            heappush(heap, (t + cost, w))
    else:
        raise ParameterError(f"unknown scheduling policy {policy!r}")

    makespan = float(loads.max()) if num_workers else 0.0
    return ScheduleResult(assignment=assignment, loads=loads, makespan=makespan)
