"""The unified execution API: :class:`BackendConfig` and :class:`ExecutionContext`.

Before this redesign every layer grew its own execution knobs — the
backend factory took positional strings, the work queue took positional
counts, the query engine re-validated backend names — and there was no
place to hang cross-cutting concerns like retry policies or fault plans.
This module is that place:

- :class:`BackendConfig` is the one keyword-only, frozen description of
  *how to execute*: which backend, how many workers, the chunking, and the
  optional resilience attachments (:class:`~repro.resilience.retry.RetryPolicy`,
  :class:`~repro.resilience.faults.FaultPlan`).
- :class:`ExecutionContext` owns (or wraps) the backend built from a
  config, hands out matching work queues, and cleans up after itself.
  Backend construction is lazy, so describing a multiprocess context is
  free until someone actually runs tasks on it.

The pre-redesign call forms (``make_backend("serial")``,
``ChunkedWorkQueue(n, w, c)``, ``QueryEngine(engine_config)``) keep
working through shims that emit :class:`DeprecationWarning`; all shim
messages start with ``"repro execution API: "`` so the test suite can
escalate them to errors for in-repo callers (see pyproject.toml).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import BackendError, ParameterError
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.runtime.backends import ExecutionBackend, make_backend
from repro.runtime.workqueue import ChunkedWorkQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["BackendConfig", "ExecutionContext"]

#: Backend names the factory accepts.
BACKEND_NAMES = ("serial", "multiprocess")


@dataclass(frozen=True, kw_only=True)
class BackendConfig:
    """Keyword-only description of an execution setup.

    Attributes
    ----------
    backend:
        ``"serial"`` or ``"multiprocess"``.
    num_workers:
        Worker count; ``None`` lets the backend pick (serial: 1,
        multiprocess: the host CPU count).
    chunk_size:
        Chunk granularity for work queues built from this config.
    retry:
        Optional per-task/per-collective retry policy.
    faults:
        Optional fault-injection plan (tests, ``--inject-faults``).
    telemetry_label:
        Span/metric prefix for contexts built from this config.
    initializer / initargs:
        Per-process initializer for multiprocess backends.
    start_method:
        ``"fork"`` (default, copy-on-write sharing), or ``"spawn"`` —
        fresh interpreters that inherit nothing, so large state must reach
        workers explicitly; pair with :mod:`repro.shm` segment handles in
        ``initargs`` to keep the handoff at handle size (the pattern
        :func:`~repro.core.parallel_sampling.parallel_generate` uses).
        ``None`` lets the backend default to fork.
    """

    backend: str = "serial"
    num_workers: int | None = None
    chunk_size: int = 1
    retry: RetryPolicy | None = None
    faults: FaultPlan | None = None
    telemetry_label: str = "runtime"
    initializer: Callable[..., None] | None = None
    initargs: tuple = ()
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_NAMES:
            raise BackendError(
                f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}"
            )
        if self.start_method not in (None, "fork", "spawn"):
            raise BackendError(
                f"unknown start_method {self.start_method!r}; "
                "expected 'fork' or 'spawn'"
            )
        if self.num_workers is not None and self.num_workers <= 0:
            raise BackendError(
                f"num_workers must be positive, got {self.num_workers}"
            )
        if self.chunk_size <= 0:
            raise ParameterError(
                f"chunk_size must be positive, got {self.chunk_size}"
            )

    def with_overrides(self, **changes: Any) -> "BackendConfig":
        """A copy with the given fields replaced (config is frozen)."""
        from dataclasses import replace

        return replace(self, **changes)


class ExecutionContext:
    """Owns the executing pieces described by one :class:`BackendConfig`.

    ``ExecutionContext()`` is a serial context; pass a config for anything
    else, or ``backend=`` to wrap an existing backend the caller owns (the
    context then never closes it).  The backend is built on first use —
    ``ExecutionContext(cfg)`` for a multiprocess config costs nothing until
    :attr:`backend` (or :meth:`run_tasks`) is touched.
    """

    def __init__(
        self,
        config: BackendConfig | None = None,
        *,
        backend: ExecutionBackend | None = None,
    ):
        if config is None:
            config = BackendConfig()
        self.config = config
        self._backend = backend
        self._owns_backend = backend is None
        if backend is not None:
            if backend.retry_policy is None and config.retry is not None:
                backend.retry_policy = config.retry
            if backend.fault_plan is None and config.faults is not None:
                backend.fault_plan = config.faults

    # ------------------------------------------------------------ properties
    @property
    def backend(self) -> ExecutionBackend:
        """The backend, built lazily from the config on first access."""
        if self._backend is None:
            self._backend = make_backend(self.config)
        return self._backend

    @property
    def retry(self) -> RetryPolicy | None:
        return self.config.retry

    @property
    def faults(self) -> FaultPlan | None:
        return self.config.faults

    @property
    def label(self) -> str:
        return self.config.telemetry_label

    @property
    def num_workers(self) -> int:
        if self._backend is not None:
            return self._backend.num_workers
        if self.config.num_workers is not None:
            return self.config.num_workers
        return 1

    # ------------------------------------------------------------- execution
    def run_tasks(
        self, worker_fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> list[Any]:
        """Run tasks on this context's backend (faults/retries included)."""
        return self.backend.run_tasks(worker_fn, tasks)

    def make_workqueue(self, num_items: int) -> ChunkedWorkQueue:
        """A work queue matching this context's worker count and chunking."""
        return ChunkedWorkQueue(
            num_items,
            num_workers=self.num_workers,
            chunk_size=self.config.chunk_size,
            fault_plan=self.config.faults,
        )

    # --------------------------------------------------------------- cleanup
    def close(self) -> None:
        """Close the backend if this context built it; wrapped backends
        belong to their creator and are left running."""
        if self._owns_backend and self._backend is not None:
            self._backend.close()
            self._backend = None

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        built = "built" if self._backend is not None else "lazy"
        return (
            f"ExecutionContext(backend={self.config.backend!r}, "
            f"num_workers={self.config.num_workers!r}, {built})"
        )
