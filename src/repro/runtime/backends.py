"""Execution backends: serial reference and fork-based multiprocessing.

The CPython GIL forbids the shared-memory *thread* parallelism the paper's
C++/OpenMP code uses, so real parallel execution here is process-based
(DESIGN.md substitution table): workers are forked, the read-only graph
arrays are shared copy-on-write, and per-worker results are reduced at a
barrier.  A spawn start method is also supported; spawned workers inherit
nothing, so large state reaches them as :mod:`repro.shm` segment handles
rather than through fork or pickling.  That preserves the algorithms' partitioning and reduction
structure; the 1..128-thread *scaling* experiments instead run on the
simulated machine (:mod:`repro.simmachine`), which is not limited by host
core count.

The backend interface is deliberately tiny — ``run_tasks(worker_fn, tasks)``
with an optional per-process initializer — because both frameworks'
parallel sections reduce to "map independent work, then reduce".

Resilience (docs/resilience.md): a backend optionally carries a
:class:`~repro.resilience.retry.RetryPolicy` and a
:class:`~repro.resilience.faults.FaultPlan` (normally attached by
:func:`make_backend` from a :class:`~repro.runtime.api.BackendConfig`).
Faults are applied *per task index* at the dispatch boundary in the parent
process — semantically a worker crashing on that task — and retries re-run
only the failed tasks, with backoff, until the policy's attempt budget runs
out (:class:`~repro.errors.RetryExhaustedError`).

Telemetry (docs/observability.md): when the global session is enabled,
``run_tasks`` wraps every task to record per-task latency
(``runtime.task_latency_s``), task/failure counts, worker utilisation, and
reduce time.  Forked workers inherit the enabled session; each wrapped task
snapshots the worker-local registry around the call and ships the *delta*
back with its result, which the parent merges on reduce — so counters
recorded inside worker code (e.g. ``sampling.rrr_sets``) aggregate exactly
as they do in-process.
"""

from __future__ import annotations

import os
import time
import warnings
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro import telemetry
from repro.errors import BackendError, FaultInjectedError, RetryExhaustedError
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.telemetry.metrics import diff_snapshots

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.api import BackendConfig

__all__ = ["ExecutionBackend", "SerialBackend", "MultiprocessBackend", "make_backend"]


def _instrumented_task(packed: tuple[Callable[[Any], Any], Any]):
    """Run one task in a worker, returning (result, seconds, metrics delta).

    Module-level so the fork pool can pickle it; ``worker_fn`` rides along
    in the payload.  The delta is the worker registry's growth during the
    task — the per-worker buffer half of the merge-on-reduce protocol.
    """
    worker_fn, task = packed
    tel = telemetry.get()
    before = tel.registry.snapshot()
    t0 = time.perf_counter()
    result = worker_fn(task)
    elapsed = time.perf_counter() - t0
    return result, elapsed, diff_snapshots(tel.registry.snapshot(), before)


class _InitGuard:
    """Initializer wrapper signalling worker init failures to the parent.

    Fork-inherited (never pickled): ``error`` is set when the wrapped
    initializer raises, ``ready`` counts successful initialisations, so the
    parent can distinguish "pool is up" from "workers are crash-looping".
    """

    def __init__(self, initializer, initargs, error, ready):
        self._initializer = initializer
        self._initargs = initargs
        self._error = error
        self._ready = ready

    def __call__(self):
        try:
            self._initializer(*self._initargs)
        except BaseException:
            self._error.set()
            # SystemExit keeps the child's death quiet (no traceback spam
            # from every respawned worker); the parent already has the flag.
            raise SystemExit(1)
        with self._ready.get_lock():
            self._ready.value += 1


class ExecutionBackend(ABC):
    """Minimal map-style execution interface."""

    #: Number of workers the backend actually uses.
    num_workers: int = 1

    #: Telemetry label distinguishing backend-specific metrics.
    backend_name: str = "backend"

    #: Optional resilience attachments (docs/resilience.md); ``None`` means
    #: plain fail-fast execution with zero overhead on the clean path.
    retry_policy: RetryPolicy | None = None
    fault_plan: FaultPlan | None = None

    @abstractmethod
    def run_tasks(
        self,
        worker_fn: Callable[[Any], Any],
        tasks: Sequence[Any],
    ) -> list[Any]:
        """Apply ``worker_fn`` to every task; results keep task order."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ resilience
    @property
    def resilient(self) -> bool:
        """True when a retry policy or fault plan is attached."""
        return self.retry_policy is not None or self.fault_plan is not None

    def _call_resilient(self, fn: Callable[[], Any], index: int):
        """One task through the fault plan and retry policy (serial path)."""
        plan = self.fault_plan

        def attempt():
            if plan is None:
                return fn()
            return plan.invoke("task", index, fn)

        if self.retry_policy is None:
            return attempt()
        return self.retry_policy.call(
            attempt, label=f"{self.backend_name} task {index}"
        )

    # ------------------------------------------------------------- telemetry
    def _record_run(
        self,
        task_seconds: list[float],
        wall_seconds: float,
        reduce_seconds: float = 0.0,
    ) -> None:
        """Record the unified per-run metrics (enabled-session callers only)."""
        reg = telemetry.get().registry
        lat = reg.histogram("runtime.task_latency_s")
        for s in task_seconds:
            lat.observe(s)
        reg.counter("runtime.tasks").inc(len(task_seconds))
        reg.counter("runtime.reduce_s").inc(reduce_seconds)
        busy = sum(task_seconds)
        capacity = self.num_workers * wall_seconds
        reg.gauge("runtime.worker_utilization").set(
            busy / capacity if capacity > 0 else 0.0
        )
        reg.gauge("runtime.num_workers").set(self.num_workers)


class SerialBackend(ExecutionBackend):
    """Run everything inline; the reference for correctness tests."""

    num_workers = 1
    backend_name = "serial"

    def run_tasks(self, worker_fn, tasks):
        tel = telemetry.get()
        if not tel.enabled and not self.resilient:
            return [worker_fn(t) for t in tasks]
        if not tel.enabled:
            return [
                self._call_resilient(lambda t=t: worker_fn(t), i)
                for i, t in enumerate(tasks)
            ]
        with tel.span("runtime.run_tasks", backend=self.backend_name,
                      num_workers=1, num_tasks=len(tasks)):
            t0 = time.perf_counter()
            results: list[Any] = []
            task_seconds: list[float] = []
            for i, t in enumerate(tasks):
                s0 = time.perf_counter()
                try:
                    results.append(
                        self._call_resilient(lambda t=t: worker_fn(t), i)
                    )
                except Exception:
                    tel.registry.counter("runtime.task_failures").inc()
                    raise
                task_seconds.append(time.perf_counter() - s0)
            self._record_run(task_seconds, time.perf_counter() - t0)
            return results


class MultiprocessBackend(ExecutionBackend):
    """Process-pool backend; fork (copy-on-write) or spawn start method.

    Parameters
    ----------
    num_workers:
        Process count; defaults to ``os.cpu_count()``.
    initializer / initargs:
        Run once in each worker process (e.g. to install the graph into a
        module-level slot so tasks only carry small descriptors).  A
        raising initializer is detected here, the half-up pool is torn
        down (no leaked forked workers endlessly respawning), and a
        :class:`~repro.errors.BackendError` is raised.
    init_timeout_s:
        How long to wait for every worker's initializer to finish before
        declaring the spin-up failed.
    start_method:
        ``"fork"`` (default): workers inherit the parent's memory
        copy-on-write, so read-only state needs no explicit handoff.
        ``"spawn"``: workers are fresh interpreters and ``initargs`` is
        *pickled* to each one — keep it handle-sized and attach large
        state through :mod:`repro.shm` segments
        (:func:`~repro.core.parallel_sampling.parallel_generate` shows
        the pattern).  Results are identical either way; spawn exists for
        hosts/embeddings where fork is unsafe or unavailable.
    """

    backend_name = "multiprocess"

    def __init__(
        self,
        num_workers: int | None = None,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        init_timeout_s: float = 120.0,
        start_method: str = "fork",
    ):
        import multiprocessing as mp

        self._pool = None  # so close() is safe even if __init__ fails below
        if num_workers is not None and num_workers <= 0:
            raise BackendError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = num_workers if num_workers is not None else (os.cpu_count() or 1)
        if start_method not in ("fork", "spawn"):
            raise BackendError(
                f"unknown start_method {start_method!r}; expected 'fork' or 'spawn'"
            )
        self.start_method = start_method
        try:
            ctx = mp.get_context(start_method)
        except ValueError as exc:  # pragma: no cover - non-POSIX hosts
            raise BackendError(
                f"{start_method} start method unavailable on this host"
            ) from exc
        if initializer is None:
            self._pool = ctx.Pool(self.num_workers)
            return
        # Guarded spin-up: without this, an initializer that raises leaves
        # the pool respawning crash-looping forked workers forever and the
        # first map() hangs.  The guard reports failure (or completion) and
        # the pool is terminated before the error surfaces.
        error = ctx.Event()
        ready = ctx.Value("i", 0)
        self._pool = ctx.Pool(
            self.num_workers,
            initializer=_InitGuard(initializer, initargs, error, ready),
        )
        deadline = time.monotonic() + init_timeout_s
        while True:
            if error.is_set():
                self.close()
                raise BackendError(
                    "worker initializer raised during pool spin-up; "
                    "pool terminated"
                )
            with ready.get_lock():
                done = ready.value
            if done >= self.num_workers:
                return
            if time.monotonic() > deadline:
                self.close()
                raise BackendError(
                    f"worker initializers did not finish within "
                    f"{init_timeout_s:.0f}s; pool terminated"
                )
            time.sleep(0.002)

    def run_tasks(self, worker_fn, tasks):
        if self._pool is None:
            raise BackendError("backend already closed")
        tasks = list(tasks)
        tel = telemetry.get()
        if self.resilient:
            return self._run_tasks_resilient(worker_fn, tasks, tel)
        if not tel.enabled:
            return self._pool.map(worker_fn, tasks)
        with tel.span("runtime.run_tasks", backend=self.backend_name,
                      num_workers=self.num_workers, num_tasks=len(tasks)):
            t0 = time.perf_counter()
            try:
                packed = self._pool.map(
                    _instrumented_task, [(worker_fn, t) for t in tasks]
                )
            except Exception:
                tel.registry.counter("runtime.task_failures").inc()
                raise
            wall = time.perf_counter() - t0
            # Reduce: unpack results and merge the worker metric deltas.
            r0 = time.perf_counter()
            results = [r for r, _, _ in packed]
            task_seconds = [s for _, s, _ in packed]
            with tel.span("runtime.reduce", num_tasks=len(tasks)):
                for _, _, delta in packed:
                    tel.registry.merge_snapshot(delta)
            self._record_run(task_seconds, wall, time.perf_counter() - r0)
            return results

    def _run_tasks_resilient(self, worker_fn, tasks, tel):
        """Per-task async dispatch with parent-side faults and retries.

        Each round submits the outstanding tasks concurrently, collects
        failures, and — when the retry policy allows — re-submits only the
        failed ones after the policy's backoff.  Faults fire in the parent
        at the dispatch boundary so the plan's state stays in one process
        and the schedule is deterministic.
        """
        plan, policy = self.fault_plan, self.retry_policy
        instrument = tel.enabled
        results: list[Any] = [None] * len(tasks)
        task_seconds: list[float] = []
        pending = list(range(len(tasks)))
        attempt = 1
        max_attempts = policy.max_attempts if policy is not None else 1
        with tel.span("runtime.run_tasks", backend=self.backend_name,
                      num_workers=self.num_workers, num_tasks=len(tasks)):
            t0 = time.perf_counter()
            while pending:
                submitted: list[tuple[int, Any, Any, BaseException | None]] = []
                for i in pending:
                    spec = plan.take("task", i) if plan is not None else None
                    if spec is not None and spec.kind == "crash":
                        submitted.append(
                            (i, None, spec,
                             FaultInjectedError(f"injected {spec.describe()}"))
                        )
                        continue
                    if spec is not None and spec.kind == "slow":
                        time.sleep(spec.delay_s)
                    if instrument:
                        ar = self._pool.apply_async(
                            _instrumented_task, ((worker_fn, tasks[i]),)
                        )
                    else:
                        ar = self._pool.apply_async(worker_fn, (tasks[i],))
                    submitted.append((i, ar, spec, None))
                failures: list[tuple[int, BaseException]] = []
                for i, ar, spec, exc in submitted:
                    r = None
                    if ar is not None:
                        try:
                            r = ar.get()
                        except Exception as worker_exc:
                            exc = worker_exc
                    if exc is not None:
                        if instrument:
                            tel.registry.counter("runtime.task_failures").inc()
                        failures.append((i, exc))
                        continue
                    if instrument:
                        r, secs, delta = r
                        task_seconds.append(secs)
                        tel.registry.merge_snapshot(delta)
                    if spec is not None and spec.kind == "corrupt":
                        r = plan.corrupt(r)
                    results[i] = r
                if not failures:
                    break
                first_idx, first_exc = failures[0]
                if policy is None:
                    raise first_exc
                for _, exc in failures:
                    if not policy.is_retryable(exc):
                        raise exc
                if attempt >= max_attempts:
                    raise RetryExhaustedError(
                        f"{self.backend_name} task {first_idx}",
                        attempt,
                        first_exc,
                    ) from first_exc
                if tel.enabled:
                    tel.registry.counter("resilience.retries").inc(len(failures))
                delay = policy.delay_for(attempt)
                if delay > 0:
                    time.sleep(delay)
                pending = [i for i, _ in failures]
                attempt += 1
            if instrument:
                self._record_run(task_seconds, time.perf_counter() - t0)
        return results

    def close(self) -> None:
        """Terminate the pool; idempotent and exception-safe.

        Safe to call repeatedly, after a worker exception, or on a
        half-constructed instance: the pool handle is detached first, and
        teardown errors (e.g. an already-dead pool) are suppressed so
        ``with``-block exits never mask the original exception.
        """
        pool, self._pool = getattr(self, "_pool", None), None
        if pool is None:
            return
        try:
            pool.terminate()
            pool.join()
        except Exception:  # pragma: no cover - defensive teardown
            pass


def make_backend(
    config: "BackendConfig | str | None" = None,
    num_workers: int | None = None,
    **kwargs,
) -> ExecutionBackend:
    """Factory: build a backend from a :class:`~repro.runtime.api.BackendConfig`.

    The config carries the backend name, worker count, and the optional
    resilience attachments (retry policy, fault plan), which are installed
    on the returned backend.  The pre-redesign positional form
    ``make_backend("serial"|"multiprocess", num_workers, **kwargs)`` keeps
    working through a shim that emits :class:`DeprecationWarning`.
    """
    from repro.runtime.api import BackendConfig

    if config is None or isinstance(config, str):
        warnings.warn(
            "repro execution API: make_backend(name, num_workers, ...) is "
            "deprecated; pass a keyword-only BackendConfig instead, e.g. "
            "make_backend(BackendConfig(backend='multiprocess', num_workers=4))",
            DeprecationWarning,
            stacklevel=2,
        )
        config = BackendConfig(
            backend=config or "serial", num_workers=num_workers, **kwargs
        )
    elif num_workers is not None or kwargs:
        raise BackendError(
            "make_backend(BackendConfig(...)) takes no extra arguments; "
            "fold them into the config"
        )
    if config.backend == "serial":
        backend: ExecutionBackend = SerialBackend()
    elif config.backend == "multiprocess":
        backend = MultiprocessBackend(
            config.num_workers,
            initializer=config.initializer,
            initargs=config.initargs,
            start_method=config.start_method or "fork",
        )
    else:  # unreachable through BackendConfig validation, kept defensive
        raise BackendError(f"unknown backend {config.backend!r}")
    backend.retry_policy = config.retry
    backend.fault_plan = config.faults
    return backend
