"""Execution backends: serial reference and fork-based multiprocessing.

The CPython GIL forbids the shared-memory *thread* parallelism the paper's
C++/OpenMP code uses, so real parallel execution here is process-based
(DESIGN.md substitution table): workers are forked, the read-only graph
arrays are shared copy-on-write, and per-worker results are reduced at a
barrier.  That preserves the algorithms' partitioning and reduction
structure; the 1..128-thread *scaling* experiments instead run on the
simulated machine (:mod:`repro.simmachine`), which is not limited by host
core count.

The backend interface is deliberately tiny — ``run_tasks(worker_fn, tasks)``
with an optional per-process initializer — because both frameworks'
parallel sections reduce to "map independent work, then reduce".

Telemetry (docs/observability.md): when the global session is enabled,
``run_tasks`` wraps every task to record per-task latency
(``runtime.task_latency_s``), task/failure counts, worker utilisation, and
reduce time.  Forked workers inherit the enabled session; each wrapped task
snapshots the worker-local registry around the call and ships the *delta*
back with its result, which the parent merges on reduce — so counters
recorded inside worker code (e.g. ``sampling.rrr_sets``) aggregate exactly
as they do in-process.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from typing import Any, Callable, Sequence

from repro import telemetry
from repro.errors import BackendError
from repro.telemetry.metrics import diff_snapshots

__all__ = ["ExecutionBackend", "SerialBackend", "MultiprocessBackend", "make_backend"]


def _instrumented_task(packed: tuple[Callable[[Any], Any], Any]):
    """Run one task in a worker, returning (result, seconds, metrics delta).

    Module-level so the fork pool can pickle it; ``worker_fn`` rides along
    in the payload.  The delta is the worker registry's growth during the
    task — the per-worker buffer half of the merge-on-reduce protocol.
    """
    worker_fn, task = packed
    tel = telemetry.get()
    before = tel.registry.snapshot()
    t0 = time.perf_counter()
    result = worker_fn(task)
    elapsed = time.perf_counter() - t0
    return result, elapsed, diff_snapshots(tel.registry.snapshot(), before)


class ExecutionBackend(ABC):
    """Minimal map-style execution interface."""

    #: Number of workers the backend actually uses.
    num_workers: int = 1

    #: Telemetry label distinguishing backend-specific metrics.
    backend_name: str = "backend"

    @abstractmethod
    def run_tasks(
        self,
        worker_fn: Callable[[Any], Any],
        tasks: Sequence[Any],
    ) -> list[Any]:
        """Apply ``worker_fn`` to every task; results keep task order."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- telemetry
    def _record_run(
        self,
        task_seconds: list[float],
        wall_seconds: float,
        reduce_seconds: float = 0.0,
    ) -> None:
        """Record the unified per-run metrics (enabled-session callers only)."""
        reg = telemetry.get().registry
        lat = reg.histogram("runtime.task_latency_s")
        for s in task_seconds:
            lat.observe(s)
        reg.counter("runtime.tasks").inc(len(task_seconds))
        reg.counter("runtime.reduce_s").inc(reduce_seconds)
        busy = sum(task_seconds)
        capacity = self.num_workers * wall_seconds
        reg.gauge("runtime.worker_utilization").set(
            busy / capacity if capacity > 0 else 0.0
        )
        reg.gauge("runtime.num_workers").set(self.num_workers)


class SerialBackend(ExecutionBackend):
    """Run everything inline; the reference for correctness tests."""

    num_workers = 1
    backend_name = "serial"

    def run_tasks(self, worker_fn, tasks):
        tel = telemetry.get()
        if not tel.enabled:
            return [worker_fn(t) for t in tasks]
        with tel.span("runtime.run_tasks", backend=self.backend_name,
                      num_workers=1, num_tasks=len(tasks)):
            t0 = time.perf_counter()
            results: list[Any] = []
            task_seconds: list[float] = []
            for t in tasks:
                s0 = time.perf_counter()
                try:
                    results.append(worker_fn(t))
                except Exception:
                    tel.registry.counter("runtime.task_failures").inc()
                    raise
                task_seconds.append(time.perf_counter() - s0)
            self._record_run(task_seconds, time.perf_counter() - t0)
            return results


class MultiprocessBackend(ExecutionBackend):
    """Fork-pool backend sharing read-only state copy-on-write.

    Parameters
    ----------
    num_workers:
        Process count; defaults to ``os.cpu_count()``.
    initializer / initargs:
        Run once in each worker process (e.g. to install the graph into a
        module-level slot so tasks only carry small descriptors).
    """

    backend_name = "multiprocess"

    def __init__(
        self,
        num_workers: int | None = None,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ):
        import multiprocessing as mp

        self._pool = None  # so close() is safe even if __init__ fails below
        if num_workers is not None and num_workers <= 0:
            raise BackendError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = num_workers if num_workers is not None else (os.cpu_count() or 1)
        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX hosts
            raise BackendError("fork start method unavailable on this host") from exc
        self._pool = ctx.Pool(
            self.num_workers, initializer=initializer, initargs=initargs
        )

    def run_tasks(self, worker_fn, tasks):
        if self._pool is None:
            raise BackendError("backend already closed")
        tel = telemetry.get()
        if not tel.enabled:
            return self._pool.map(worker_fn, list(tasks))
        with tel.span("runtime.run_tasks", backend=self.backend_name,
                      num_workers=self.num_workers, num_tasks=len(tasks)):
            t0 = time.perf_counter()
            try:
                packed = self._pool.map(
                    _instrumented_task, [(worker_fn, t) for t in tasks]
                )
            except Exception:
                tel.registry.counter("runtime.task_failures").inc()
                raise
            wall = time.perf_counter() - t0
            # Reduce: unpack results and merge the worker metric deltas.
            r0 = time.perf_counter()
            results = [r for r, _, _ in packed]
            task_seconds = [s for _, s, _ in packed]
            with tel.span("runtime.reduce", num_tasks=len(tasks)):
                for _, _, delta in packed:
                    tel.registry.merge_snapshot(delta)
            self._record_run(task_seconds, wall, time.perf_counter() - r0)
            return results

    def close(self) -> None:
        """Terminate the pool; idempotent and exception-safe.

        Safe to call repeatedly, after a worker exception, or on a
        half-constructed instance: the pool handle is detached first, and
        teardown errors (e.g. an already-dead pool) are suppressed so
        ``with``-block exits never mask the original exception.
        """
        pool, self._pool = getattr(self, "_pool", None), None
        if pool is None:
            return
        try:
            pool.terminate()
            pool.join()
        except Exception:  # pragma: no cover - defensive teardown
            pass


def make_backend(
    name: str,
    num_workers: int | None = None,
    **kwargs,
) -> ExecutionBackend:
    """Factory: ``"serial"`` or ``"multiprocess"``.

    Validates ``num_workers`` up front so misconfiguration fails with a
    :class:`~repro.errors.BackendError` here rather than a downstream crash
    inside a pool or partitioner.
    """
    if num_workers is not None and num_workers < 1:
        raise BackendError(
            f"num_workers must be >= 1, got {num_workers} (backend {name!r})"
        )
    if name == "serial":
        return SerialBackend()
    if name == "multiprocess":
        return MultiprocessBackend(num_workers, **kwargs)
    raise BackendError(f"unknown backend {name!r}")
