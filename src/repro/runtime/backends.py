"""Execution backends: serial reference and fork-based multiprocessing.

The CPython GIL forbids the shared-memory *thread* parallelism the paper's
C++/OpenMP code uses, so real parallel execution here is process-based
(DESIGN.md substitution table): workers are forked, the read-only graph
arrays are shared copy-on-write, and per-worker results are reduced at a
barrier.  That preserves the algorithms' partitioning and reduction
structure; the 1..128-thread *scaling* experiments instead run on the
simulated machine (:mod:`repro.simmachine`), which is not limited by host
core count.

The backend interface is deliberately tiny — ``run_tasks(worker_fn, tasks)``
with an optional per-process initializer — because both frameworks'
parallel sections reduce to "map independent work, then reduce".
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Any, Callable, Sequence

from repro.errors import BackendError

__all__ = ["ExecutionBackend", "SerialBackend", "MultiprocessBackend", "make_backend"]


class ExecutionBackend(ABC):
    """Minimal map-style execution interface."""

    #: Number of workers the backend actually uses.
    num_workers: int = 1

    @abstractmethod
    def run_tasks(
        self,
        worker_fn: Callable[[Any], Any],
        tasks: Sequence[Any],
    ) -> list[Any]:
        """Apply ``worker_fn`` to every task; results keep task order."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Run everything inline; the reference for correctness tests."""

    num_workers = 1

    def run_tasks(self, worker_fn, tasks):
        return [worker_fn(t) for t in tasks]


class MultiprocessBackend(ExecutionBackend):
    """Fork-pool backend sharing read-only state copy-on-write.

    Parameters
    ----------
    num_workers:
        Process count; defaults to ``os.cpu_count()``.
    initializer / initargs:
        Run once in each worker process (e.g. to install the graph into a
        module-level slot so tasks only carry small descriptors).
    """

    def __init__(
        self,
        num_workers: int | None = None,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ):
        import multiprocessing as mp

        if num_workers is not None and num_workers <= 0:
            raise BackendError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = num_workers if num_workers is not None else (os.cpu_count() or 1)
        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX hosts
            raise BackendError("fork start method unavailable on this host") from exc
        self._pool = ctx.Pool(
            self.num_workers, initializer=initializer, initargs=initargs
        )

    def run_tasks(self, worker_fn, tasks):
        if self._pool is None:
            raise BackendError("backend already closed")
        return self._pool.map(worker_fn, list(tasks))

    def close(self) -> None:
        if getattr(self, "_pool", None) is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def make_backend(
    name: str,
    num_workers: int | None = None,
    **kwargs,
) -> ExecutionBackend:
    """Factory: ``"serial"`` or ``"multiprocess"``."""
    if name == "serial":
        return SerialBackend()
    if name == "multiprocess":
        return MultiprocessBackend(num_workers, **kwargs)
    raise BackendError(f"unknown backend {name!r}")
