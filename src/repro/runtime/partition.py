"""Work partitioners: static block, cyclic, and weight-balanced contiguous.

Both frameworks statically partition *something*: Ripples partitions the
vertex id space across threads in ``Find_Most_Influential_Set``; EfficientIMM
partitions the RRR sets.  The partitioners here are shared by the real
kernels, the instrumented kernels, and the cost model, so that every layer
sees exactly the same work distribution.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = ["block_partition", "cyclic_partition", "balanced_partition"]


def block_partition(num_items: int, num_workers: int) -> list[tuple[int, int]]:
    """Split ``range(num_items)`` into ``num_workers`` contiguous blocks.

    Sizes differ by at most one (the first ``num_items % num_workers``
    blocks get the extra item) — OpenMP's ``schedule(static)``.
    Returns ``[(start, end), ...]``; empty blocks are ``(x, x)``.
    """
    _check(num_items, num_workers)
    base, extra = divmod(num_items, num_workers)
    bounds = []
    start = 0
    for w in range(num_workers):
        size = base + (1 if w < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def cyclic_partition(num_items: int, num_workers: int) -> list[np.ndarray]:
    """Round-robin assignment: worker ``w`` owns items ``w, w+p, w+2p, ...``

    (OpenMP ``schedule(static, 1)``); used to spread skewed neighbouring
    items across workers.
    """
    _check(num_items, num_workers)
    return [
        np.arange(w, num_items, num_workers, dtype=np.int64)
        for w in range(num_workers)
    ]


def balanced_partition(
    weights: np.ndarray, num_workers: int
) -> list[tuple[int, int]]:
    """Contiguous partition approximately balancing total weight per worker.

    Splits at the quantiles of the weight prefix sum: worker ``w`` receives
    the smallest contiguous range whose cumulative weight reaches
    ``(w+1)/p`` of the total.  This is the static analogue of dynamic job
    balancing and is what EfficientIMM uses to seed its per-worker queues
    (locality-preserving: ranges stay contiguous).
    """
    w = np.asarray(weights, dtype=np.float64).ravel()
    _check(w.size, num_workers)
    if np.any(w < 0):
        raise ParameterError("weights must be non-negative")
    total = w.sum()
    if total == 0.0:
        return block_partition(w.size, num_workers)
    prefix = np.cumsum(w)
    targets = total * (np.arange(1, num_workers) / num_workers)
    cuts = np.searchsorted(prefix, targets, side="left") + 1
    cuts = np.clip(cuts, 0, w.size)
    bounds = []
    start = 0
    for c in list(cuts) + [w.size]:
        end = max(int(c), start)
        bounds.append((start, end))
        start = end
    return bounds


def _check(num_items: int, num_workers: int) -> None:
    if num_items < 0:
        raise ParameterError(f"num_items must be >= 0, got {num_items}")
    if num_workers <= 0:
        raise ParameterError(f"num_workers must be positive, got {num_workers}")
