"""Parallel runtime substrate: partitioning, atomics, work queues, backends.

This package provides the execution machinery both IMM implementations run
on:

- :mod:`repro.runtime.partition` — static block/cyclic partitioners and the
  weighted balanced partitioner;
- :mod:`repro.runtime.atomic` — the atomic counter-array abstraction
  (modelling the paper's 64-bit ``lock incq`` updates);
- :mod:`repro.runtime.workqueue` — dynamic job balancing: chunked
  producer-consumer queues with stealing, plus the deterministic list
  scheduler the cost model uses;
- :mod:`repro.runtime.backends` — serial and multiprocessing execution
  backends (process-based because the CPython GIL forbids shared-memory
  thread parallelism; see DESIGN.md's substitution table);
- :mod:`repro.runtime.api` — the unified execution API:
  :class:`~repro.runtime.api.BackendConfig` (keyword-only description of
  backend, workers, chunking, and resilience attachments) and
  :class:`~repro.runtime.api.ExecutionContext` (lazily builds and owns the
  backend, hands out matching work queues).
"""

from repro.runtime.api import BackendConfig, ExecutionContext
from repro.runtime.atomic import AtomicCounterArray
from repro.runtime.backends import (
    ExecutionBackend,
    MultiprocessBackend,
    SerialBackend,
    make_backend,
)
from repro.runtime.partition import (
    balanced_partition,
    block_partition,
    cyclic_partition,
)
from repro.runtime.workqueue import ChunkedWorkQueue, simulate_schedule

__all__ = [
    "AtomicCounterArray",
    "BackendConfig",
    "ExecutionContext",
    "ExecutionBackend",
    "SerialBackend",
    "MultiprocessBackend",
    "make_backend",
    "block_partition",
    "cyclic_partition",
    "balanced_partition",
    "ChunkedWorkQueue",
    "simulate_schedule",
]
