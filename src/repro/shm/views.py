"""Zero-copy views over published segments: shared store and shared graph.

Both views subclass the objects they mirror, so every consumer — the
selection kernels, the engine, the shard workers — runs unmodified: a
:class:`SharedFlatRRRStore` *is* a :class:`~repro.sketch.store.FlatRRRStore`
whose backing arrays happen to live in a named shared-memory segment,
mapped read-only.  N attached replicas therefore share one copy of the
bytes; attach cost is a header parse, independent of payload size.

Mutation is copy-on-write: ``append``/``replace_sets`` first privatise the
arrays (one copy into process-local memory), so a writer never perturbs
the segment other processes are reading.  ``detach()`` drops every numpy
reference into the mapping *before* closing it (a live view would make
``mmap.close`` raise ``BufferError``) and is idempotent; after detaching,
the view reads as empty.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro import telemetry
from repro.errors import ShmError
from repro.graph.csr import CSRGraph
from repro.shm.segments import SegmentHandle, array_views, open_segment, read_header
from repro.sketch.protocol import STORE_EXTRAS
from repro.sketch.store import FlatRRRStore

__all__ = ["SharedFlatRRRStore", "SharedCSRGraph", "attach_store", "attach_graph"]


class SharedFlatRRRStore(FlatRRRStore):
    """A flat store whose arrays are read-only views into a shared segment.

    Selection over this store is byte-identical to the store it was
    published from: the arrays are the same bytes, and every kernel only
    reads.  Copy-on-write on mutation; ``detach()`` to unmap.
    """

    def __init__(self, *, shm, header: dict[str, Any], manager=None):
        meta = header["meta"]
        super().__init__(meta["num_vertices"], sort_sets=meta.get("sort_sets", False))
        views = array_views(shm, header)
        offsets, vertices = views["offsets"], views["vertices"]
        self._offsets = offsets
        self._verts = vertices
        self._num_sets = int(offsets.size - 1)
        self._num_entries = int(vertices.size)
        self._shm = shm
        self._manager = manager
        self._private = False
        self.segment_name = shm.name

    @property
    def detached(self) -> bool:
        """True once :meth:`detach` has unmapped the segment."""
        return self._shm is None and not self._private

    def _privatize(self) -> None:
        """Copy the arrays into process-local memory before any mutation."""
        if self._private:
            return
        if self._shm is None:
            raise ShmError(
                f"store view on segment {self.segment_name} is detached"
            )
        self._offsets = self._offsets.copy()
        self._verts = self._verts.copy()
        self._private = True

    def append(self, vertices: np.ndarray) -> int:
        self._privatize()
        return super().append(vertices)

    def extend(self, sets) -> None:
        self._privatize()
        super().extend(sets)

    def replace_sets(self, indices, new_sets) -> "SharedFlatRRRStore":
        self._privatize()
        super().replace_sets(indices, new_sets)
        return self

    def detach(self) -> None:
        """Unmap the segment (idempotent).  Every reference into the mapped
        buffer is dropped first; the view reads as empty afterwards unless a
        mutation already privatised the arrays."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        if not self._private:
            self._offsets = np.zeros(1, dtype=np.int64)
            self._verts = np.empty(0, dtype=np.int32)
            self._num_sets = 0
            self._num_entries = 0
        self._index = None
        try:
            shm.close()
        except BufferError:
            # A caller still holds a get() sub-view; the mapping lives until
            # that view is garbage-collected, then the OS reclaims it.
            pass
        if self._manager is not None:
            self._manager._release(self.segment_name)
            self._manager = None


class SharedCSRGraph(CSRGraph):
    """A CSR graph whose three arrays are read-only views into a segment.

    Spawn-mode sampling workers attach one of these instead of unpickling
    the graph — the adjacency bytes exist once per host, not once per
    worker.  ``transpose()`` still materialises a private reverse graph
    (its cost is unchanged); ``detach()`` to unmap.
    """

    def __init__(self, *, shm, header: dict[str, Any], manager=None):
        views = array_views(shm, header)
        self._shm_segment = shm
        self._manager = manager
        self.segment_name = shm.name
        super().__init__(
            header["meta"]["num_vertices"],
            views["indptr"],
            views["indices"],
            views["probs"],
        )

    @property
    def detached(self) -> bool:
        """True once :meth:`detach` has unmapped the segment."""
        return self._shm_segment is None

    def detach(self) -> None:
        """Unmap the segment (idempotent); the graph reads as empty after."""
        shm, self._shm_segment = self._shm_segment, None
        if shm is None:
            return
        self.num_vertices = 0
        self.indptr = np.zeros(1, dtype=np.int64)
        self.indices = np.empty(0, dtype=np.int32)
        self.probs = np.empty(0, dtype=np.float64)
        self._transpose = None
        try:
            shm.close()
        except BufferError:  # caller still holds a neighbors() sub-view
            pass
        if self._manager is not None:
            self._manager._release(self.segment_name)
            self._manager = None


# Drift-guard registration: the shared view's only additions beyond the
# flat store's surface are the segment lifecycle hooks.
STORE_EXTRAS[SharedFlatRRRStore] = frozenset({"detach", "detached"})


def _record_attach(header: dict[str, Any]) -> None:
    tel = telemetry.get()
    if not tel.enabled:
        return
    payload = int(
        sum(
            int(np.prod(s["shape"])) * np.dtype(s["dtype"]).itemsize
            for s in header["arrays"]
        )
    )
    tel.registry.counter("shm.attaches").inc()
    tel.registry.counter("shm.copy_avoided_bytes").inc(payload)


def _open(handle_or_name, kind: str):
    name = (
        handle_or_name.name
        if isinstance(handle_or_name, SegmentHandle)
        else str(handle_or_name)
    )
    shm = open_segment(name)
    header = read_header(shm)
    if header.get("kind") != kind:
        shm.close()
        raise ShmError(
            f"segment {name} holds kind {header.get('kind')!r}, expected {kind!r}"
        )
    return shm, header


def attach_store(handle_or_name) -> SharedFlatRRRStore:
    """Attach a published store by handle or name, without a manager.

    The process-lifetime form spawn workers use (nothing to refcount:
    the view lives until the worker exits or calls ``detach()``).
    """
    shm, header = _open(handle_or_name, "flat-store")
    _record_attach(header)
    return SharedFlatRRRStore(shm=shm, header=header)


def attach_graph(handle_or_name) -> SharedCSRGraph:
    """Attach a published graph by handle or name, without a manager."""
    shm, header = _open(handle_or_name, "csr-graph")
    _record_attach(header)
    return SharedCSRGraph(shm=shm, header=header)
