"""Shared-memory sketch plane: publish once per host, attach everywhere.

The pre-existing hot paths moved sketches between processes by value —
pickled through ``multiprocessing`` queues or rebuilt per replica — so a
host running W workers held W copies of the same RRR arrays.  This package
replaces that with named POSIX shared-memory segments
(:mod:`multiprocessing.shared_memory`):

- :class:`SegmentManager` publishes a :class:`~repro.sketch.store
  .FlatRRRStore`'s arrays (or a :class:`~repro.graph.csr.CSRGraph`'s) into
  a fingerprint-named segment **once**, and owns its lifetime (context
  manager / atexit unlink, creator-pid guard, orphan sweep, leak
  detection);
- :class:`SharedFlatRRRStore` / :class:`SharedCSRGraph` attach by name in
  any process for the cost of a header parse, exposing zero-copy read-only
  views that drop into every existing consumer (selection kernels, the
  serving engine, shard replicas) with byte-identical results;
- what crosses a process boundary is a :class:`SegmentHandle` — a few
  hundred bytes instead of the payload.

``make_store("shared", handle=...)`` (:func:`repro.sketch.make_store`)
routes here; docs/memory.md is the narrative companion, and ``shm.*``
telemetry (docs/observability.md) counts publishes, attaches, bytes
shared, and leaks.
"""

from repro.shm.segments import (
    DEFAULT_PREFIX,
    SegmentHandle,
    SegmentManager,
    list_segments,
    sweep_orphans,
)
from repro.shm.views import (
    SharedCSRGraph,
    SharedFlatRRRStore,
    attach_graph,
    attach_store,
)

__all__ = [
    "DEFAULT_PREFIX",
    "SegmentHandle",
    "SegmentManager",
    "SharedCSRGraph",
    "SharedFlatRRRStore",
    "attach_graph",
    "attach_store",
    "list_segments",
    "sweep_orphans",
]
