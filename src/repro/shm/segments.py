"""Named shared-memory segments: layout, lifecycle, and the refcounted manager.

One segment holds one published object (a flat RRR store or a CSR graph)
in a self-describing layout::

    [ u64 header length | JSON header | padding | arrays, 64-byte aligned ]

The header records each array's name, dtype, shape, and byte offset plus
object-level metadata (``num_vertices``, ``sort_sets``, fingerprint), so a
child process can attach *by name alone* — the only thing that crosses the
process boundary is a :class:`SegmentHandle` a few hundred bytes long,
instead of a multi-GB pickle.

Segment names are fingerprint-keyed — ``<prefix>-<fingerprint16>-<pidhex>``
— which makes publishes idempotent (same content, same name), keeps names
under the 31-character POSIX portability limit, and embeds the creator pid
so :func:`sweep_orphans` can tell a crashed owner's leftovers from a live
one's segments.

Lifecycle rules (docs/memory.md):

- the :class:`SegmentManager` that *creates* a segment owns it and unlinks
  it on :meth:`~SegmentManager.close` (context-manager exit or atexit);
- *attachers* only ever map and unmap; a fork- or spawn-inherited manager
  never unlinks (creator-pid guard), so worker exit cannot pull segments
  out from under the parent;
- attaching suppresses ``multiprocessing``'s resource-tracker
  registration — before Python 3.13 the tracker registers attaches too and
  would unlink the segment when the *attaching* process exits (bpo-39959);
  creators rely on the manager (plus the sweep) instead.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Any

import numpy as np

from repro import telemetry
from repro.errors import ShmError

__all__ = [
    "DEFAULT_PREFIX",
    "SegmentHandle",
    "SegmentManager",
    "list_segments",
    "sweep_orphans",
]

#: Default segment-name prefix ("repro sketch").
DEFAULT_PREFIX = "rs"

_FORMAT = "repro-shm/1"
_ALIGN = 64
_SHM_DIR = Path("/dev/shm")  # Linux; list/sweep degrade gracefully elsewhere


@dataclass(frozen=True)
class SegmentHandle:
    """Picklable pointer to one published segment (what workers receive)."""

    name: str            #: shared-memory segment name (attach key)
    kind: str            #: "flat-store" | "csr-graph"
    fingerprint: str     #: content fingerprint the name was keyed by
    payload_bytes: int   #: bytes of array payload the attacher does NOT copy


# ------------------------------------------------------------------ layout
def _pack_header(
    kind: str, meta: dict[str, Any], arrays: dict[str, np.ndarray]
) -> tuple[bytes, dict[str, int], int]:
    """(header bytes, array offsets, total segment size) for a payload."""
    specs = []
    # Offsets depend on the header length, which depends on the offsets'
    # digit count; reserve generous fixed-width offsets by building the
    # header twice with the second pass's offsets.
    offsets = {name: 0 for name in arrays}
    for _ in range(2):
        specs = [
            {
                "name": name,
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
                "offset": offsets[name],
            }
            for name, arr in arrays.items()
        ]
        doc = {"format": _FORMAT, "kind": kind, "meta": meta, "arrays": specs}
        header = json.dumps(doc, sort_keys=True).encode("utf-8")
        cursor = 8 + len(header)
        for name, arr in arrays.items():
            cursor += (-cursor) % _ALIGN
            offsets[name] = cursor
            cursor += arr.nbytes
    return header, offsets, cursor


def _write_segment(
    shm: shared_memory.SharedMemory,
    header: bytes,
    offsets: dict[str, int],
    arrays: dict[str, np.ndarray],
) -> None:
    buf = shm.buf
    buf[0:8] = len(header).to_bytes(8, "little")
    buf[8 : 8 + len(header)] = header
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        view = np.frombuffer(
            buf, dtype=arr.dtype, count=arr.size, offset=offsets[name]
        ).reshape(arr.shape)
        view[...] = arr  # the one copy of the publish path


def read_header(shm: shared_memory.SharedMemory) -> dict[str, Any]:
    """Parse and validate a segment's JSON header."""
    try:
        hlen = int.from_bytes(bytes(shm.buf[0:8]), "little")
        if not (0 < hlen <= shm.size - 8):
            raise ValueError(f"implausible header length {hlen}")
        doc = json.loads(bytes(shm.buf[8 : 8 + hlen]).decode("utf-8"))
    except (ValueError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ShmError(f"segment {shm.name}: corrupt header ({exc})") from exc
    if doc.get("format") != _FORMAT:
        raise ShmError(
            f"segment {shm.name}: unknown format {doc.get('format')!r}"
        )
    return doc


def array_views(
    shm: shared_memory.SharedMemory, header: dict[str, Any]
) -> dict[str, np.ndarray]:
    """Zero-copy, read-only numpy views over a segment's arrays."""
    out: dict[str, np.ndarray] = {}
    for spec in header["arrays"]:
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        count = int(np.prod(shape)) if shape else 1
        view = np.frombuffer(
            shm.buf, dtype=dtype, count=count, offset=int(spec["offset"])
        ).reshape(shape)
        view.flags.writeable = False
        out[spec["name"]] = view
    return out


# --------------------------------------------------------------- open/attach
_ATTACH_LOCK = threading.Lock()


def open_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment by name, without tracker registration.

    ``SharedMemory(name)`` would register the attach with the resource
    tracker, which before Python 3.13 unlinks the segment when *this*
    process exits (bpo-39959) — pulling it out from under the creator.
    Registration is suppressed for the duration of the open; creators keep
    their own registration, and crashes are covered by the pid sweep.
    """
    with _ATTACH_LOCK:
        real_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError as exc:
            raise ShmError(
                f"segment {name!r} not found — never published, already "
                "unlinked, or a different host"
            ) from exc
        except OSError as exc:  # pragma: no cover - platform-specific failures
            raise ShmError(f"cannot attach segment {name!r}: {exc}") from exc
        finally:
            resource_tracker.register = real_register
    return shm


# ------------------------------------------------------------- host scanning
def list_segments(prefix: str = DEFAULT_PREFIX) -> list[str]:
    """Names of live segments under ``prefix`` (Linux ``/dev/shm`` scan;
    returns ``[]`` on hosts without it)."""
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(p.name for p in _SHM_DIR.glob(f"{prefix}-*"))


def _creator_pid(name: str) -> int | None:
    """The pid embedded in a segment name, or ``None`` if unparsable."""
    try:
        return int(name.rsplit("-", 1)[1], 16)
    except (IndexError, ValueError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's pid
        return True
    return True


def sweep_orphans(prefix: str = DEFAULT_PREFIX) -> list[str]:
    """Unlink segments whose embedded creator pid is dead; returns the
    removed names.  Run by :class:`SegmentManager` on startup so a crashed
    (SIGKILLed) owner's segments do not accumulate in ``/dev/shm``; live
    owners' segments are never touched."""
    removed: list[str] = []
    for name in list_segments(prefix):
        pid = _creator_pid(name)
        if pid is None or pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            (_SHM_DIR / name).unlink(missing_ok=True)
        except OSError:  # pragma: no cover - raced with another sweeper
            continue
        removed.append(name)
    if removed:
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter("shm.orphans_swept").inc(len(removed))
    return removed


# ------------------------------------------------------------------- manager
class SegmentManager:
    """Refcounted owner of published segments and bookkeeper of attaches.

    Use as a context manager (or rely on the atexit hook)::

        with SegmentManager() as mgr:
            handle = mgr.publish_store(store)
            view = mgr.attach_store(handle)   # zero-copy read-only store
            ...
            view.detach()
        # exit unlinks every segment this manager created

    ``leaked()`` lists segments with views still attached — the leak
    detector the tests (and ``shm.leaked_views`` telemetry) key off.
    Closing is idempotent, safe from ``atexit``, and guarded by creator
    pid: a manager inherited into a worker process closes *views* only and
    never unlinks the parent's segments.
    """

    def __init__(self, *, prefix: str = DEFAULT_PREFIX, sweep: bool = True):
        if not prefix or "-" in prefix or "/" in prefix:
            raise ShmError(
                f"invalid segment prefix {prefix!r} (no '-', no '/', non-empty)"
            )
        self.prefix = prefix
        self._pid = os.getpid()
        self._created: dict[str, shared_memory.SharedMemory] = {}
        self._handles: dict[str, SegmentHandle] = {}
        self._refcounts: dict[str, int] = {}
        self._closed = False
        if sweep:
            sweep_orphans(prefix)
        atexit.register(self.close)

    # ------------------------------------------------------------- publishing
    def segment_name(self, fingerprint: str) -> str:
        return f"{self.prefix}-{fingerprint}-{self._pid:x}"

    def publish_arrays(
        self,
        kind: str,
        arrays: dict[str, np.ndarray],
        meta: dict[str, Any],
        fingerprint: str,
    ) -> SegmentHandle:
        """Copy arrays into a named segment once; idempotent per fingerprint."""
        self._check_open()
        name = self.segment_name(fingerprint)
        existing = self._handles.get(name)
        if existing is not None:
            return existing
        arrays = {k: np.ascontiguousarray(v) for k, v in arrays.items()}
        header, offsets, total = _pack_header(kind, meta, arrays)
        payload = int(sum(a.nbytes for a in arrays.values()))
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        except FileExistsError:
            # Another manager in this same process already published this
            # fingerprint; adopt its segment read-only (no double ownership).
            shm = open_segment(name)
            doc = read_header(shm)
            if doc.get("kind") != kind:
                raise ShmError(
                    f"segment {name} holds kind {doc.get('kind')!r}, "
                    f"expected {kind!r}"
                )
            handle = SegmentHandle(name, kind, fingerprint, payload)
            self._handles[name] = handle
            shm.close()
            return handle
        except OSError as exc:  # pragma: no cover - platform-specific
            raise ShmError(f"cannot create segment {name!r}: {exc}") from exc
        _write_segment(shm, header, offsets, arrays)
        handle = SegmentHandle(name, kind, fingerprint, payload)
        self._created[name] = shm
        self._handles[name] = handle
        tel = telemetry.get()
        if tel.enabled:
            reg = tel.registry
            reg.counter("shm.publishes").inc()
            reg.gauge("shm.segments").set(len(self._created))
            reg.gauge("shm.segment_bytes").set(
                sum(s.size for s in self._created.values())
            )
        return handle

    def publish_store(self, store, *, fingerprint: str | None = None) -> SegmentHandle:
        """Publish a flat store's arrays; returns the attachable handle.

        Partitioned/adaptive/compressed stores are materialised to the flat
        layout first (their global order is preserved, so fingerprints and
        selection answers are unchanged).
        """
        from repro.sketch.store import FlatRRRStore

        if not isinstance(store, FlatRRRStore):
            if hasattr(store, "merge"):
                store = store.merge()
            elif hasattr(store, "to_flat"):
                store = store.to_flat(sort_sets=True)
            else:
                raise ShmError(
                    f"cannot publish store type {type(store).__name__}"
                )
        fp = fingerprint if fingerprint is not None else store.fingerprint()
        return self.publish_arrays(
            "flat-store",
            {"offsets": store.offsets, "vertices": store.vertices},
            {
                "num_vertices": int(store.num_vertices),
                "sort_sets": bool(store.sort_sets),
                "fingerprint": fp,
            },
            fp,
        )

    def publish_graph(self, graph, *, fingerprint: str | None = None) -> SegmentHandle:
        """Publish a CSR graph's arrays; returns the attachable handle."""
        from repro.graph.io import graph_fingerprint

        fp = fingerprint if fingerprint is not None else graph_fingerprint(graph)
        return self.publish_arrays(
            "csr-graph",
            {
                "indptr": graph.indptr,
                "indices": graph.indices,
                "probs": graph.probs,
            },
            {"num_vertices": int(graph.num_vertices), "fingerprint": fp},
            fp,
        )

    # -------------------------------------------------------------- attaching
    def handle_for(self, fingerprint: str, kind: str = "flat-store") -> SegmentHandle | None:
        """The handle of a published fingerprint, or ``None``."""
        for handle in self._handles.values():
            if handle.fingerprint == fingerprint and handle.kind == kind:
                return handle
        return None

    def has_store(self, fingerprint: str) -> bool:
        return self.handle_for(fingerprint, "flat-store") is not None

    def attach_store(self, handle_or_name):
        """Zero-copy :class:`~repro.shm.views.SharedFlatRRRStore` view."""
        from repro.shm.views import SharedFlatRRRStore

        return self._attach(handle_or_name, "flat-store", SharedFlatRRRStore)

    def attach_graph(self, handle_or_name):
        """Zero-copy :class:`~repro.shm.views.SharedCSRGraph` view."""
        from repro.shm.views import SharedCSRGraph

        return self._attach(handle_or_name, "csr-graph", SharedCSRGraph)

    def _attach(self, handle_or_name, kind: str, view_cls):
        self._check_open()
        name = (
            handle_or_name.name
            if isinstance(handle_or_name, SegmentHandle)
            else str(handle_or_name)
        )
        shm = open_segment(name)
        header = read_header(shm)
        if header.get("kind") != kind:
            shm.close()
            raise ShmError(
                f"segment {name} holds kind {header.get('kind')!r}, "
                f"expected {kind!r}"
            )
        view = view_cls(shm=shm, header=header, manager=self)
        self._refcounts[name] = self._refcounts.get(name, 0) + 1
        tel = telemetry.get()
        if tel.enabled:
            reg = tel.registry
            reg.counter("shm.attaches").inc()
            payload = int(
                sum(
                    int(np.prod(s["shape"])) * np.dtype(s["dtype"]).itemsize
                    for s in header["arrays"]
                )
            )
            reg.counter("shm.copy_avoided_bytes").inc(payload)
        return view

    def _release(self, name: str) -> None:
        """A view detached; drop its refcount (views call this)."""
        if self._refcounts.get(name, 0) > 0:
            self._refcounts[name] -= 1
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter("shm.detaches").inc()

    # ------------------------------------------------------------ diagnostics
    def leaked(self) -> list[str]:
        """Segment names with views attached through this manager that were
        never detached (sorted)."""
        return sorted(n for n, c in self._refcounts.items() if c > 0)

    def segments(self) -> list[SegmentHandle]:
        """Handles of every segment this manager knows (created or adopted)."""
        return list(self._handles.values())

    # ---------------------------------------------------------------- cleanup
    def _check_open(self) -> None:
        if self._closed:
            raise ShmError("SegmentManager is closed")

    def close(self) -> None:
        """Unlink every created segment; idempotent (double-close is a no-op).

        In a process other than the creator (fork/spawn inheritance) only
        the bookkeeping is dropped — unlinking is the creator's job.
        """
        if self._closed:
            return
        self._closed = True
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass
        leaked = self.leaked()
        tel = telemetry.get()
        if tel.enabled and leaked:
            tel.registry.counter("shm.leaked_views").inc(len(leaked))
        created, self._created = self._created, {}
        self._handles.clear()
        self._refcounts.clear()
        if os.getpid() != self._pid:
            return
        for shm in created.values():
            try:
                shm.close()
            except BufferError:  # a view still maps the buffer; unlink anyway
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already swept
                pass
        if tel.enabled:
            reg = tel.registry
            reg.counter("shm.unlinks").inc(len(created))
            reg.gauge("shm.segments").set(0)
            reg.gauge("shm.segment_bytes").set(0)

    def __enter__(self) -> "SegmentManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{len(self._created)} segment(s)"
        return f"SegmentManager(prefix={self.prefix!r}, {state})"
