"""Benchmark harness: experiment definitions, runners, and reporting.

Each of the paper's tables/figures has an experiment function here that the
``benchmarks/`` pytest modules and the ``repro`` CLI both call; the
experiment functions return structured results, and :mod:`repro.bench.report`
renders them as the paper's rows/series with a paper-vs-measured column.
"""

from repro.bench.report import Table, format_speedup
from repro.bench.experiments import (
    experiment_fig1,
    experiment_fig2,
    experiment_fig5,
    experiment_fig6,
    experiment_fig7,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_table4,
)

__all__ = [
    "Table",
    "format_speedup",
    "experiment_table1",
    "experiment_table2",
    "experiment_table3",
    "experiment_table4",
    "experiment_fig1",
    "experiment_fig2",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_fig7",
]
