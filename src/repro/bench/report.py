"""Plain-text table rendering, CSV output, and the unified bench JSON.

The harness prints every reproduced table/figure as an aligned ASCII table
(the terminal equivalent of the paper's layout) and can dump the same rows
as CSV for downstream plotting.

For machine-diffable perf tracking across PRs, every benchmark emits one
``BENCH_*.json``-compatible record through :func:`write_bench_record`
(schema ``repro-bench/1``, defined in :mod:`repro.telemetry.export`): the
benchmark's scalar fields and/or table rows plus the active telemetry
registry's snapshot — one schema instead of per-script ad-hoc dicts.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.telemetry.export import BENCH_SCHEMA, bench_payload, write_bench_json

__all__ = [
    "Table",
    "format_speedup",
    "format_ratio",
    "write_bench_record",
    "bench_payload",
    "BENCH_SCHEMA",
]


@dataclass
class Table:
    """An aligned text table with optional title and footnotes."""

    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    extras: list[str] = field(default_factory=list)  # charts etc.

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def _cell(self, value: object) -> str:
        if isinstance(value, float):
            if value == 0.0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 10:
                return f"{value:.1f}"
            return f"{value:.3g}"
        return str(value)

    def render(self) -> str:
        cells = [[self._cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[c]), *(len(r[c]) for r in cells), 1)
            if cells
            else len(self.columns[c])
            for c in range(len(self.columns))
        ]
        out = io.StringIO()
        out.write(f"\n== {self.title} ==\n")
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        out.write(header + "\n")
        out.write("-" * len(header) + "\n")
        for row in cells:
            out.write("  ".join(v.rjust(w) for v, w in zip(row, widths)) + "\n")
        for note in self.notes:
            out.write(f"  * {note}\n")
        for block in self.extras:
            out.write("\n" + block + "\n")
        return out.getvalue()

    def print(self) -> None:
        print(self.render())

    def to_csv(self, path: str | Path) -> None:
        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.columns)
            writer.writerows(self.rows)

    def to_records(self) -> list[dict[str, object]]:
        """Rows as column->value dicts (the bench-JSON representation)."""
        return [dict(zip(self.columns, row)) for row in self.rows]


def write_bench_record(
    path: str | Path,
    name: str,
    *,
    table: "Table | None" = None,
    fields: dict[str, Any] | None = None,
    registry=None,
) -> Path:
    """Write one unified ``repro-bench/1`` record for a benchmark.

    ``registry=None`` snapshots the active telemetry session's registry, so
    a benchmark that ran inside ``telemetry.session()`` ships its counters
    automatically; a table's rows are embedded under ``fields["rows"]``.
    """
    from repro import telemetry

    if registry is None:
        registry = telemetry.get().registry
    merged = dict(fields or {})
    if table is not None:
        merged.setdefault("title", table.title)
        merged["rows"] = table.to_records()
    return write_bench_json(path, name, registry, fields=merged)


def format_speedup(value: float) -> str:
    """Render a speedup factor the way the paper does (``5.9x``)."""
    return f"{value:.1f}x"


def format_ratio(measured: float, paper: float) -> str:
    """Side-by-side measured-vs-paper cell (``0.62 (paper 0.61)``)."""
    return f"{measured:.3g} (paper {paper:.3g})"
