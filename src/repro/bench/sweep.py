"""Artifact-style sweep runner: JSON run logs and speedup CSV extraction.

The paper's artifact (`run_efficient_imm.sh` / `run_ripples.sh` +
`extract_results.py`) runs strong-scaling sweeps "starting with 4 threads
and doubling the thread count until the system limit", writes one JSON log
per (dataset, framework, threads) run into ``strong-scaling-logs-<model>-
<framework>`` directories, and post-processes them into ``speedup_ic.csv``
/ ``speedup_lt.csv`` with the columns:

    Dataset, Speedup, EfficientIMM Time (s), Ripples Time (s),
    Ripples Best #Threads, EfficientIMM Best #Threads

This module reproduces that workflow byte-for-byte in structure: the sweep
executes the real workloads, prices them on the simulated machine per
thread count, writes the same directory/JSON layout, and
:func:`extract_results` regenerates the same CSVs.  Exposed on the CLI as
``repro sweep`` and ``repro extract-results``.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.errors import ParameterError
from repro.graph.datasets import dataset_names, load_dataset
from repro.simmachine.cost import CostModel, profile_pair
from repro.simmachine.topology import MachineTopology, perlmutter

__all__ = [
    "RunLog",
    "run_sweep",
    "extract_results",
    "log_dir_name",
    "DEFAULT_THREAD_SWEEP",
]

#: The artifact's schedule: start at 4 threads, double to the machine limit.
DEFAULT_THREAD_SWEEP = (4, 8, 16, 32, 64, 128)

_FRAMEWORK_TAGS = {"EfficientIMM": "eimm", "Ripples": "ripples"}


@dataclass(frozen=True)
class RunLog:
    """One strong-scaling run's JSON record (the artifact's log schema)."""

    dataset: str
    model: str
    framework: str
    num_threads: int
    k: int
    epsilon: float
    theta: int
    total_time_s: float
    generate_rrrsets_s: float
    find_most_influential_s: float
    other_s: float
    seeds: list[int]
    machine: str
    timestamp: float

    def write(self, path: Path) -> None:
        path.write_text(json.dumps(asdict(self), indent=2) + "\n")

    @classmethod
    def read(cls, path: Path) -> "RunLog":
        return cls(**json.loads(path.read_text()))


def log_dir_name(model: str, framework: str) -> str:
    """``strong-scaling-logs-<model>-<framework>`` — the artifact's layout."""
    tag = _FRAMEWORK_TAGS.get(framework)
    if tag is None:
        raise ParameterError(f"unknown framework {framework!r}")
    return f"strong-scaling-logs-{model.lower()}-{tag}"


def run_sweep(
    out_dir: str | Path,
    *,
    datasets: list[str] | None = None,
    models: tuple[str, ...] = ("IC", "LT"),
    thread_sweep: tuple[int, ...] = DEFAULT_THREAD_SWEEP,
    k: int = 50,
    epsilon: float = 0.5,
    seed: int = 0,
    topology: MachineTopology | None = None,
    theta_caps: dict[str, dict[str, int]] | None = None,
) -> list[Path]:
    """Execute the artifact's strong-scaling experiment matrix.

    For every (dataset, model): profile both frameworks from one real
    sampling + selection pass, price each thread count on the simulated
    machine, and write one JSON log per (framework, threads) run.  Returns
    the written paths.
    """
    from repro.bench.experiments import THETA_CAP_IC, THETA_CAP_LT

    caps = theta_caps or {"IC": THETA_CAP_IC, "LT": THETA_CAP_LT}
    topo = topology or perlmutter()
    cm = CostModel(topo)
    out = Path(out_dir)
    names = datasets or dataset_names()
    written: list[Path] = []

    for name in names:
        for model in models:
            graph = load_dataset(name, model=model, seed=seed)
            profiles = profile_pair(
                graph, name, model, k=k, epsilon=epsilon,
                theta_cap=caps[model][name], seed=seed,
            )
            # Seeds are framework-independent (same greedy); recover them
            # once from the real kernel for the log payload.
            from repro.core.selection import efficient_select
            from repro.core.sampling import RRRSampler, SamplingConfig
            from repro.diffusion.base import get_model

            sampler = RRRSampler(
                get_model(model, graph),
                SamplingConfig.efficientimm(num_threads=1),
                seed=seed,
            )
            sampler.extend(min(256, caps[model][name]))
            seeds = efficient_select(
                sampler.store, k, 1, initial_counter=sampler.counter
            ).seeds.tolist()

            for framework, prof in profiles.items():
                log_dir = out / log_dir_name(model, framework)
                log_dir.mkdir(parents=True, exist_ok=True)
                for p in thread_sweep:
                    if p > topo.num_cores:
                        continue
                    stages = cm.total_time_s(prof, p)
                    log = RunLog(
                        dataset=name,
                        model=model,
                        framework=framework,
                        num_threads=p,
                        k=k,
                        epsilon=epsilon,
                        theta=prof.num_sets,
                        total_time_s=stages["Total"],
                        generate_rrrsets_s=stages["Generate_RRRsets"],
                        find_most_influential_s=stages[
                            "Find_Most_Influential_Set"
                        ],
                        other_s=stages["Other"],
                        seeds=seeds,
                        machine=topo.name,
                        timestamp=time.time(),
                    )
                    path = log_dir / f"{name}-t{p}.json"
                    log.write(path)
                    written.append(path)
    return written


def extract_results(
    logs_root: str | Path,
    results_dir: str | Path | None = None,
    *,
    models: tuple[str, ...] = ("IC", "LT"),
) -> dict[str, Path]:
    """The artifact's ``extract_results.py``: logs -> ``speedup_<model>.csv``.

    Reads every JSON log under ``logs_root``, finds each framework's best
    time per (dataset, model), and writes one CSV per model with the
    artifact's exact columns.  Returns ``{model: csv_path}``.
    """
    import csv

    root = Path(logs_root)
    res = Path(results_dir) if results_dir is not None else root / "results"
    res.mkdir(parents=True, exist_ok=True)

    best: dict[tuple[str, str, str], tuple[float, int]] = {}
    for model in models:
        for framework in _FRAMEWORK_TAGS:
            log_dir = root / log_dir_name(model, framework)
            if not log_dir.is_dir():
                continue
            for path in sorted(log_dir.glob("*.json")):
                log = RunLog.read(path)
                key = (log.dataset, log.model, log.framework)
                cur = best.get(key)
                if cur is None or log.total_time_s < cur[0]:
                    best[key] = (log.total_time_s, log.num_threads)

    out_paths: dict[str, Path] = {}
    for model in models:
        rows = []
        datasets = sorted(
            {d for (d, m, _f) in best if m == model},
            key=lambda d: dataset_names().index(d)
            if d in dataset_names() else 99,
        )
        for d in datasets:
            rip = best.get((d, model, "Ripples"))
            eimm = best.get((d, model, "EfficientIMM"))
            if rip is None or eimm is None:
                continue
            rows.append(
                {
                    "Dataset": d,
                    "Speedup": round(rip[0] / eimm[0], 2),
                    "EfficientIMM Time (s)": eimm[0],
                    "Ripples Time (s)": rip[0],
                    "Ripples Best #Threads": rip[1],
                    "EfficientIMM Best #Threads": eimm[1],
                }
            )
        if not rows:
            continue
        csv_path = res / f"speedup_{model.lower()}.csv"
        with open(csv_path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        out_paths[model] = csv_path
    return out_paths
