"""Experiment functions — one per paper table/figure.

Every function executes the real algorithms on the replica datasets, applies
the simulated machine where the paper used hardware counters or 128 cores,
and returns a :class:`~repro.bench.report.Table` (plus structured data) that
the ``benchmarks/`` modules print and assert on.

Workload caps: the replicas are ~100x smaller than SNAP, and ``theta`` is
capped per dataset (column ``THETA_CAP_IC`` / ``_LT``) so the whole suite
runs in minutes on one core.  Caps bound sample counts, never change the
algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.bench.report import Table, format_speedup
from repro.core.martingale import MartingaleSchedule
from repro.graph.datasets import DATASETS, load_dataset
from repro.simmachine.cost import CostModel, RunProfile, profile_pair
from repro.simmachine.topology import perlmutter

__all__ = [
    "THETA_CAP_IC",
    "THETA_CAP_LT",
    "PAPER_TABLE3",
    "experiment_table1",
    "experiment_table2",
    "experiment_table3",
    "experiment_table4",
    "experiment_fig1",
    "experiment_fig2",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_fig7",
    "oom_projection",
]

#: Per-dataset RRR-set caps (IC sets are huge, LT sets are tiny paths).
THETA_CAP_IC = {
    "amazon": 1000, "dblp": 1000, "youtube": 600, "livejournal": 400,
    "pokec": 600, "skitter": 3000, "google": 1000, "twitter7": 150,
}
THETA_CAP_LT = {
    "amazon": 24000, "dblp": 24000, "youtube": 20000, "livejournal": 16000,
    "pokec": 20000, "skitter": 24000, "google": 24000, "twitter7": 6000,
}

#: Paper Table III (seconds): (Ripples, EfficientIMM) best runtimes.
PAPER_TABLE3 = {
    ("amazon", "IC"): (7.93, 0.97), ("amazon", "LT"): (0.93, 0.16),
    ("dblp", "IC"): (7.10, 0.94), ("dblp", "LT"): (4.2, 0.85),
    ("youtube", "IC"): (14.07, 3.0), ("youtube", "LT"): (1.23, 0.14),
    ("skitter", "IC"): (2.3, 0.45), ("skitter", "LT"): (38.96, 10.59),
    ("google", "IC"): (36.04, 4.82), ("google", "LT"): (21.93, 3.7),
    ("pokec", "IC"): (59.90, 36.97), ("pokec", "LT"): (40.57, 10.7),
    ("livejournal", "IC"): (167.4, 134.0), ("livejournal", "LT"): (1.58, 0.13),
    ("twitter7", "IC"): (float("nan"), 1645.58),  # Ripples: OOM
    ("twitter7", "LT"): (2354.7, 1734.9),
}

#: Paper Table IV: L1+L2 miss reduction factors.
PAPER_TABLE4 = {
    "amazon": 25.94, "google": 22.40, "pokec": 93.14,
    "youtube": 357.39, "livejournal": 100.82,
}

#: Paper Table II: bitmap-check core-time shares (original, NUMA-aware).
PAPER_TABLE2 = {
    "amazon": (0.382, 0.238), "youtube": (0.386, 0.239),
    "pokec": (0.449, 0.166), "livejournal": (0.463, 0.185),
    "google": (0.290, 0.136),
}

_MEMORY_BUDGET_BYTES = 512 * 1024**3  # the Perlmutter node's 512 GB


def _cap(dataset: str, model: str) -> int:
    return (THETA_CAP_IC if model == "IC" else THETA_CAP_LT)[dataset]


@lru_cache(maxsize=None)
def get_profiles(dataset: str, model: str, k: int = 50, seed: int = 0):
    """Cached framework profiles for one (dataset, model) workload."""
    graph = load_dataset(dataset, model=model, seed=seed)
    return profile_pair(
        graph, dataset, model, k=k, theta_cap=_cap(dataset, model), seed=seed
    )


# ==================================================================== T1
def experiment_table1(num_samples: int = 60, seed: int = 1) -> Table:
    """Table I: graph and RRRset characteristics under IC, eps=0.5."""
    from repro.core.sampling import RRRSampler, SamplingConfig
    from repro.diffusion.base import get_model
    from repro.sketch.stats import coverage_stats

    table = Table(
        "Table I — Input graph and RRRset characteristics (IC)",
        ["Graph", "Nodes", "Edges", "AvgCov", "AvgCov(paper)",
         "MaxCov", "MaxCov(paper)"],
    )
    data = {}
    for name, spec in DATASETS.items():
        g = load_dataset(name, model="IC")
        sampler = RRRSampler(
            get_model("IC", g), SamplingConfig.efficientimm(num_threads=1),
            seed=seed,
        )
        sampler.extend(num_samples)
        cs = coverage_stats(sampler.store)
        data[name] = cs
        table.add_row(
            spec.paper_name, g.num_vertices, g.num_edges,
            f"{cs.avg_coverage:.1%}", f"{spec.paper_avg_coverage:.1%}",
            f"{cs.max_coverage:.1%}", f"{spec.paper_max_coverage:.1%}",
        )
    table.add_note(
        "replica graphs are ~100x scaled-down synthetic stand-ins; coverage "
        "fractions are the comparable quantity (see DESIGN.md)"
    )
    table.data = data  # type: ignore[attr-defined]
    return table


# ==================================================================== T2
def experiment_table2(seed: int = 0) -> Table:
    """Table II: bitmap-check core-time share, original vs NUMA-aware."""
    from repro.core.sampling import RRRSampler, SamplingConfig
    from repro.diffusion.base import get_model
    from repro.simmachine.instrumented import bitmap_check_shares

    topo = perlmutter()
    table = Table(
        "Table II — Visited-bitmap core-time share (8 NUMA nodes)",
        ["Graph", "Original", "Orig(paper)", "NUMA-aware", "Aware(paper)",
         "Improvement", "Impr(paper)"],
    )
    data = {}
    for name in ("amazon", "youtube", "pokec", "livejournal", "google"):
        g = load_dataset(name, model="IC")
        sampler = RRRSampler(
            get_model("IC", g), SamplingConfig.efficientimm(num_threads=1),
            seed=seed,
        )
        sampler.extend(40)
        edges = np.asarray(sampler.per_set_edges)
        sizes = sampler.store.sizes()
        spec = DATASETS[name]
        shares = bitmap_check_shares(
            float(edges.mean()), float(sizes.mean()), topo
        )
        orig = shares["original"].share
        aware = shares["numa_aware"].share
        improvement = (orig - aware) / orig if orig > 0 else 0.0
        p_orig, p_aware = PAPER_TABLE2[name]
        p_impr = (p_orig - p_aware) / p_orig
        data[name] = (orig, aware, improvement)
        table.add_row(
            spec.paper_name, f"{orig:.1%}", f"{p_orig:.1%}",
            f"{aware:.1%}", f"{p_aware:.1%}",
            f"{improvement:.0%}", f"{p_impr:.0%}",
        )
    table.data = data  # type: ignore[attr-defined]
    return table


# ==================================================================== T3
@dataclass(frozen=True)
class BestRuntime:
    """Best-over-threads modelled runtime of one framework on one workload."""

    dataset: str
    model: str
    framework: str
    best_time_s: float
    best_threads: int
    oom: bool = False


def oom_projection(dataset: str, model: str = "IC", k: int = 50,
                   epsilon: float = 0.5) -> dict[str, float]:
    """Project paper-scale RRR-store footprints from replica measurements.

    theta at paper scale comes from the martingale formulas with the paper's
    n and an OPT lower bound of ``avg_coverage * n`` (the replica-measured
    coverage); the footprint then follows each framework's representation.
    Reproduces Table III's Twitter7 'OOM' cell.
    """
    spec = DATASETS[dataset]
    profiles = get_profiles(dataset, model)
    prof = profiles["EfficientIMM"]
    avg_cov = prof.total_entries / prof.num_sets / prof.n
    n_paper = spec.paper_nodes
    sched = MartingaleSchedule.for_run(n_paper, k, epsilon, 1.0)
    lb = max(avg_cov * n_paper, 1.0)
    theta_paper = sched.theta_final(lb)
    avg_size_paper = avg_cov * n_paper
    ripples_bytes = theta_paper * avg_size_paper * 4.0
    bitmap_bytes = (n_paper + 7) // 8
    eimm_bytes = theta_paper * min(avg_size_paper * 4.0, float(bitmap_bytes))
    return {
        "theta": float(theta_paper),
        "ripples_bytes": ripples_bytes,
        "efficientimm_bytes": eimm_bytes,
        "budget_bytes": float(_MEMORY_BUDGET_BYTES),
        "ripples_oom": ripples_bytes > _MEMORY_BUDGET_BYTES,
        "efficientimm_oom": eimm_bytes > _MEMORY_BUDGET_BYTES,
    }


def experiment_table3(models: tuple[str, ...] = ("IC", "LT")) -> Table:
    """Table III: best modelled runtime, Ripples vs EfficientIMM."""
    cm = CostModel(perlmutter())
    table = Table(
        "Table III — Best runtime (modelled seconds, best over 1..128 threads)",
        ["Graph", "Model", "Ripples", "EfficientIMM", "Speedup",
         "Speedup(paper)"],
    )
    results: dict[tuple[str, str], dict[str, BestRuntime]] = {}
    for name, spec in DATASETS.items():
        for model in models:
            profiles = get_profiles(name, model)
            row: dict[str, BestRuntime] = {}
            oom = oom_projection(name, model) if model == "IC" else None
            for fw, prof in profiles.items():
                is_oom = bool(
                    fw == "Ripples" and oom is not None and oom["ripples_oom"]
                )
                curve = cm.scaling_curve(prof)
                row[fw] = BestRuntime(
                    name, model, fw, curve.best_time, curve.best_threads,
                    oom=is_oom,
                )
            results[(name, model)] = row
            rip, eimm = row["Ripples"], row["EfficientIMM"]
            p_rip, p_eimm = PAPER_TABLE3[(name, model)]
            paper_speedup = (
                "OOM" if math.isnan(p_rip) else format_speedup(p_rip / p_eimm)
            )
            table.add_row(
                spec.paper_name, model,
                "OOM*" if rip.oom else f"{rip.best_time_s:.4f}",
                f"{eimm.best_time_s:.4f}",
                format_speedup(rip.best_time_s / eimm.best_time_s),
                paper_speedup,
            )
    table.add_note(
        "OOM*: projected paper-scale Ripples store exceeds the 512 GB node "
        "(see oom_projection); modelled time shown would require that memory"
    )
    table.data = results  # type: ignore[attr-defined]
    return table


# ==================================================================== T4
def experiment_table4(
    theta: int = 220, k: int = 10, num_threads: int = 8, seed: int = 3
) -> Table:
    """Table IV: simulated L1+L2 misses in Find_Most_Influential_Set."""
    from repro.core.sampling import RRRSampler, SamplingConfig
    from repro.diffusion.base import get_model
    from repro.simmachine.instrumented import (
        trace_efficient_selection,
        trace_ripples_selection,
    )

    topo = perlmutter()
    table = Table(
        "Table IV — L1+L2 cache misses, Find_Most_Influential_Set "
        f"(simulated, theta={theta}, k={k}, p={num_threads})",
        ["Graph", "Ripples misses", "EfficientIMM misses", "Reduction",
         "Reduction(paper)"],
    )
    data = {}
    for name in ("amazon", "google", "pokec", "youtube", "livejournal"):
        g = load_dataset(name, model="IC")
        sampler = RRRSampler(
            get_model("IC", g), SamplingConfig.efficientimm(num_threads=1),
            seed=seed,
        )
        sampler.extend(theta)
        store = sampler.store
        rip = trace_ripples_selection(store, k, num_threads, topo)
        eimm = trace_efficient_selection(store, k, num_threads, topo)
        assert np.array_equal(rip.seeds, eimm.seeds), "trace kernels diverged"
        reduction = rip.total_misses / max(eimm.total_misses, 1)
        data[name] = (rip.total_misses, eimm.total_misses, reduction)
        table.add_row(
            DATASETS[name].paper_name, rip.total_misses, eimm.total_misses,
            format_speedup(reduction), format_speedup(PAPER_TABLE4[name]),
        )
    table.data = data  # type: ignore[attr-defined]
    return table


# ================================================================= figures
def experiment_fig1(dataset: str = "google") -> Table:
    """Figure 1: Ripples strong scaling saturates early (LT before IC)."""
    cm = CostModel(perlmutter())
    table = Table(
        f"Figure 1 — Ripples strong scaling ({DATASETS[dataset].paper_name})",
        ["Model", *[f"p={p}" for p in (1, 2, 4, 8, 16, 32, 64, 128)],
         "saturates@"],
    )
    curves = {}
    for model in ("LT", "IC"):
        prof = get_profiles(dataset, model)["Ripples"]
        curve = cm.scaling_curve(prof)
        curves[model] = curve
        speedups = curve.speedup_vs(curve.times_s[0])
        table.add_row(
            model, *[f"{s:.2f}" for s in speedups],
            curve.saturation_threads(),
        )
    table.add_note("cells are speedup over 1 thread (paper plots runtime)")
    from repro.bench.figures import scaling_chart

    table.extras.append(
        scaling_chart(curves, title="Ripples speedup over 1 thread")
    )
    table.data = curves  # type: ignore[attr-defined]
    return table


def experiment_fig2(dataset: str = "google") -> Table:
    """Figure 2: Ripples runtime breakdown by kernel, 1..128 cores."""
    cm = CostModel(perlmutter())
    table = Table(
        f"Figure 2 — Ripples runtime breakdown ({DATASETS[dataset].paper_name})",
        ["Model", "p", "Generate_RRRsets", "Find_Most_Influential_Set",
         "Other", "Total(s)"],
    )
    data = {}
    for model in ("IC", "LT"):
        prof = get_profiles(dataset, model)["Ripples"]
        for p in (1, 4, 16, 64, 128):
            st = cm.total_time_s(prof, p)
            total = st["Total"]
            data[(model, p)] = st
            table.add_row(
                model, p,
                f"{st['Generate_RRRsets'] / total:.0%}",
                f"{st['Find_Most_Influential_Set'] / total:.0%}",
                f"{st['Other'] / total:.0%}",
                f"{total:.4f}",
            )
    table.data = data  # type: ignore[attr-defined]
    return table


def experiment_fig5(
    datasets: tuple[str, ...] = ("amazon", "youtube", "google", "pokec"),
    num_threads: int = 128,
    seed: int = 0,
) -> Table:
    """Figure 5: selection runtime with vs without adaptive counter update."""
    from repro.core.sampling import RRRSampler, SamplingConfig
    from repro.core.selection import efficient_select
    from repro.diffusion.base import get_model
    from repro.simmachine.cost import KernelCost

    cm = CostModel(perlmutter())
    table = Table(
        f"Figure 5 — Adaptive counter update at {num_threads} cores",
        ["Graph", "w/o adaptive (s)", "w/ adaptive (s)", "Speedup",
         "Paper range"],
    )
    data = {}
    for name in datasets:
        g = load_dataset(name, model="IC")
        sampler = RRRSampler(
            get_model("IC", g), SamplingConfig.efficientimm(num_threads=1),
            seed=seed,
        )
        sampler.extend(_cap(name, "IC"))
        store = sampler.store
        times = {}
        for adaptive in (False, True):
            totals = {}
            atomics = 0.0
            rounds = 0
            for p in (1, 2):
                sel = efficient_select(
                    store, 50, p,
                    initial_counter=sampler.counter,
                    adaptive_update=adaptive,
                )
                totals[p] = float(sel.stats.per_thread_ops().sum())
                atomics = float(sel.stats.atomics.sum())
                rounds = sel.num_rounds
            kc = KernelCost.from_two_runs(
                totals[1], totals[2], atomic_ops=atomics,
                serial_ops_per_round=1.0, rounds=rounds,
            )
            prof = RunProfile(
                framework="EfficientIMM", dataset=name, model="IC",
                n=g.num_vertices, num_sets=len(store),
                total_entries=store.total_entries,
                per_set_costs=store.sizes().astype(np.float64),
                sampling_schedule="dynamic", numa_aware=True, selection=kc,
            )
            times[adaptive] = cm.selection_time_s(prof, num_threads)
        speedup = times[False] / times[True]
        data[name] = (times[False], times[True], speedup)
        table.add_row(
            DATASETS[name].paper_name, f"{times[False]:.5f}",
            f"{times[True]:.5f}", format_speedup(speedup), "11.6x-60.9x",
        )
    table.data = data  # type: ignore[attr-defined]
    return table


def _scaling_figure(model: str, title: str) -> Table:
    cm = CostModel(perlmutter())
    plist = (1, 2, 4, 8, 16, 32, 64, 128)
    table = Table(
        title,
        ["Graph", "Framework", *[f"p={p}" for p in plist], "best"],
    )
    data = {}
    for name, spec in DATASETS.items():
        profiles = get_profiles(name, model)
        base = cm.scaling_curve(profiles["Ripples"]).times_s[0]
        for fw in ("Ripples", "EfficientIMM"):
            curve = cm.scaling_curve(profiles[fw], list(plist))
            data[(name, fw)] = curve
            speedups = curve.speedup_vs(base)
            table.add_row(
                spec.paper_name, fw, *[f"{s:.2f}" for s in speedups],
                f"{curve.best_time:.4f}s@{curve.best_threads}",
            )
    table.add_note("cells: speedup normalised to Ripples at 1 thread")
    from repro.bench.figures import scaling_chart

    example = "google"
    table.extras.append(
        scaling_chart(
            {
                fw: data[(example, fw)]
                for fw in ("Ripples", "EfficientIMM")
            },
            title=f"{DATASETS[example].paper_name} [{model}]: "
            "speedup over own 1-thread time",
        )
    )
    table.data = data  # type: ignore[attr-defined]
    return table


def experiment_fig6() -> Table:
    """Figure 6: LT strong scaling, both frameworks, all datasets."""
    return _scaling_figure("LT", "Figure 6 — Strong scaling, LT model, k=50")


def experiment_fig7() -> Table:
    """Figure 7: IC strong scaling, both frameworks, all datasets."""
    return _scaling_figure("IC", "Figure 7 — Strong scaling, IC model, k=50")
