"""Terminal line charts for the figure experiments.

The paper's Figures 1/6/7 are speedup-vs-threads line plots; this module
renders the same series as ASCII charts so ``repro experiment fig7`` shows
the curve shapes directly in the terminal (the CSV export feeds real
plotting tools).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ParameterError

__all__ = ["ascii_chart", "scaling_chart"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: dict[str, tuple[list[float], list[float]]],
    *,
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render multi-series (x, y) data as an ASCII line chart.

    Each series gets a distinct marker; the legend maps markers to labels.
    ``log_x`` places x positions on a log2 axis (thread sweeps).
    """
    if not series:
        raise ParameterError("ascii_chart needs at least one series")
    for label, (xs, ys) in series.items():
        if len(xs) != len(ys) or not xs:
            raise ParameterError(f"series {label!r} malformed")
    if len(series) > len(_MARKERS):
        raise ParameterError(f"at most {len(_MARKERS)} series supported")

    def tx(x: float) -> float:
        return math.log2(x) if log_x else x

    all_x = [tx(x) for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    for (label, (xs, ys)), marker in zip(series.items(), _MARKERS):
        cols = [
            int(round((tx(x) - x_lo) / x_span * (width - 1))) for x in xs
        ]
        rows = [
            height - 1 - int(round((y - y_lo) / y_span * (height - 1)))
            for y in ys
        ]
        # Connect consecutive points with interpolated markers.
        for (c0, r0), (c1, r1) in zip(zip(cols, rows), zip(cols[1:], rows[1:])):
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for s in range(steps + 1):
                c = c0 + (c1 - c0) * s // steps
                r = r0 + (r1 - r0) * s // steps
                if grid[r][c] == " " or s in (0, steps):
                    grid[r][c] = marker
        for c, r in zip(cols, rows):
            grid[r][c] = marker

    lines = []
    if title:
        lines.append(title)
    top_lab = f"{y_hi:.3g}"
    bot_lab = f"{y_lo:.3g}"
    lab_w = max(len(top_lab), len(bot_lab), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_lab.rjust(lab_w)
        elif i == height - 1:
            prefix = bot_lab.rjust(lab_w)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(lab_w)
        else:
            prefix = " " * lab_w
        lines.append(f"{prefix} |{''.join(row)}")
    x_left = 2.0**x_lo if log_x else x_lo
    x_right = 2.0**x_hi if log_x else x_hi
    axis = f"{' ' * lab_w} +{'-' * width}"
    xl = f"{x_left:.3g}".ljust(width // 2)
    xr = f"{x_right:.3g}".rjust(width - len(xl))
    lines.append(axis)
    lines.append(f"{' ' * lab_w}  {xl}{xr}")
    legend = "   ".join(
        f"{marker}={label}" for (label, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(f"{' ' * lab_w}  {legend}")
    return "\n".join(lines)


def scaling_chart(curves: dict[str, "object"], *, title: str = "") -> str:
    """Chart :class:`~repro.simmachine.cost.ScalingCurve` objects
    (speedup over each curve's own 1-thread time, log-x)."""
    series = {}
    for label, curve in curves.items():
        xs = list(curve.thread_counts)
        base = curve.times_s[0]
        ys = [base / t for t in curve.times_s]
        series[label] = (xs, ys)
    return ascii_chart(
        series, log_x=True, title=title, y_label="speedup",
    )
