"""Common interface for diffusion models.

A diffusion model supplies two sampling primitives:

- :meth:`DiffusionModel.forward_sample` — simulate one cascade from a seed
  set, returning the activated vertices (defines sigma(S) by expectation);
- :meth:`DiffusionModel.reverse_sample` — draw one random reverse-reachable
  set rooted at a given vertex, the equivalence on which RIS/IMM rests: the
  probability that S intersects a random RRR set equals sigma(S) / n.

Implementations keep reusable scratch buffers (epoch-stamped visited arrays)
so drawing many samples does not re-zero O(n) memory each time — the Python
analogue of the per-thread scratch both C++ frameworks maintain.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ParameterError
from repro.graph.csr import CSRGraph

__all__ = ["DiffusionModel", "get_model"]


class DiffusionModel(ABC):
    """Base class binding a model to one weighted graph."""

    #: Short name ("IC" or "LT"); used in reports and the CLI.
    name: str = "?"

    def __init__(self, graph: CSRGraph):
        self.graph = graph
        self.reverse_graph = graph.transpose()
        n = graph.num_vertices
        # Epoch-stamped visited array: "visited in the current sample" is
        # (stamp == epoch); bumping the epoch invalidates everything in O(1).
        self._stamp = np.zeros(n, dtype=np.int64)
        self._epoch = 0

    # ------------------------------------------------------------ sampling
    def _next_epoch(self) -> int:
        self._epoch += 1
        return self._epoch

    @abstractmethod
    def reverse_sample(
        self, root: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw one RRR set rooted at ``root``; returns vertex ids
        (``int32``, unsorted, root included, no duplicates)."""

    @abstractmethod
    def forward_sample(
        self, seeds: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Simulate one cascade from ``seeds``; returns activated vertex ids
        (seeds included, no duplicates)."""

    # ------------------------------------------------------------- helpers
    def random_root(self, rng: np.random.Generator) -> int:
        """Uniform random RRR root, as prescribed by RIS."""
        return int(rng.integers(0, self.graph.num_vertices))


def get_model(name: str, graph: CSRGraph) -> DiffusionModel:
    """Factory: ``"IC"`` or ``"LT"`` (case-insensitive) bound to ``graph``."""
    from repro.diffusion.ic import ICModel
    from repro.diffusion.lt import LTModel

    key = name.upper()
    if key == "IC":
        return ICModel(graph)
    if key == "LT":
        return LTModel(graph)
    raise ParameterError(f"unknown diffusion model {name!r} (use 'IC' or 'LT')")
