"""Monte-Carlo influence-spread estimation.

sigma(S) is defined as the expected number of vertices activated by a cascade
seeded at S.  The estimator here simply averages forward simulations; it is
the ground truth used to (a) validate that IMM's seed sets achieve their
``(1 - 1/e - eps)`` guarantee relative to the greedy reference and (b) rank
seed-set quality in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.diffusion.base import DiffusionModel

__all__ = ["SpreadEstimate", "estimate_spread"]


@dataclass(frozen=True)
class SpreadEstimate:
    """Mean spread with a standard error, from ``num_samples`` cascades."""

    mean: float
    stderr: float
    num_samples: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI (default 95%)."""
        return self.mean - z * self.stderr, self.mean + z * self.stderr


def estimate_spread(
    model: DiffusionModel,
    seeds: np.ndarray,
    *,
    num_samples: int = 200,
    seed=None,
) -> SpreadEstimate:
    """Estimate sigma(seeds) by averaging forward cascade sizes."""
    check_positive_int("num_samples", num_samples)
    seeds = np.asarray(seeds, dtype=np.int64).ravel()
    rng = as_rng(seed)
    sizes = np.empty(num_samples)
    for i in range(num_samples):
        sizes[i] = model.forward_sample(seeds, rng).size
    mean = float(sizes.mean())
    stderr = float(sizes.std(ddof=1) / np.sqrt(num_samples)) if num_samples > 1 else 0.0
    return SpreadEstimate(mean=mean, stderr=stderr, num_samples=num_samples)
