"""Diffusion models: Independent Cascade and Linear Threshold.

Provides both directions the reproduction needs:

- **forward** Monte-Carlo simulation (:mod:`repro.diffusion.spread`) to
  estimate the influence spread sigma(S) of a seed set — used to validate
  end-to-end solution quality against the greedy reference;
- **reverse** samplers (:class:`ICModel` / :class:`LTModel`) that draw one
  random reverse-reachable (RRR) set, the primitive of IMM's sampling phase.
"""

from repro.diffusion.base import DiffusionModel, get_model
from repro.diffusion.ic import ICModel
from repro.diffusion.lt import LTModel
from repro.diffusion.spread import estimate_spread

__all__ = [
    "DiffusionModel",
    "ICModel",
    "LTModel",
    "get_model",
    "estimate_spread",
]
