"""Independent Cascade model: forward cascades and reverse probabilistic BFS.

Both directions use the frontier-at-a-time vectorised BFS pattern: all edges
incident to the current frontier are gathered with one fancy-indexing pass,
one batch of coin flips decides which are live, and survivors are deduplicated
against the epoch-stamped visited array.  This keeps the per-sample Python
overhead at O(depth) instead of O(edges).

The live-edge semantics match the model definition exactly: every edge
incident to a newly activated (resp. newly visited) vertex is examined at
most once and flips its own independent coin with the edge's probability.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.graph.csr import CSRGraph

__all__ = ["ICModel", "gather_frontier_edges"]


def gather_frontier_edges(
    graph: CSRGraph, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the adjacency rows of every frontier vertex.

    Returns aligned ``(neighbors, probs)`` arrays covering each out-edge of
    each frontier vertex exactly once.  Vectorised row gather: the classic
    ``repeat + cumsum-offset`` trick builds one flat index array addressing
    all rows at once.
    """
    indptr = graph.indptr
    starts = indptr[frontier]
    lengths = (indptr[frontier + 1] - starts).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        empty_i = np.empty(0, dtype=graph.indices.dtype)
        empty_p = np.empty(0, dtype=graph.probs.dtype)
        return empty_i, empty_p
    # flat[i] walks each row contiguously: offset of row start + position.
    row_of = np.repeat(np.arange(frontier.size), lengths)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(lengths[:-1]))), lengths
    )
    flat = starts[row_of] + within
    return graph.indices[flat], graph.probs[flat]


class ICModel(DiffusionModel):
    """Independent Cascade bound to a graph with per-edge probabilities."""

    name = "IC"

    def reverse_sample(self, root: int, rng: np.random.Generator) -> np.ndarray:
        """Reverse probabilistic BFS from ``root`` over in-edges.

        Every in-edge of every visited vertex flips one coin; the RRR set is
        the set of vertices reached through live edges (Algorithm 3's loop,
        minus the fused counter update which the sampling kernel owns).
        """
        return _ic_bfs(
            self.reverse_graph, root, rng, self._stamp, self._next_epoch()
        )

    def forward_sample(self, seeds: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One forward cascade: seeds activate, each new activation gets one
        chance per out-edge."""
        seeds = np.asarray(seeds, dtype=np.int64).ravel()
        epoch = self._next_epoch()
        stamp = self._stamp
        stamp[seeds] = epoch
        out: list[np.ndarray] = [seeds.astype(np.int32)]
        frontier = seeds
        while frontier.size:
            nbrs, probs = gather_frontier_edges(self.graph, frontier)
            if nbrs.size == 0:
                break
            live = rng.random(nbrs.size) < probs
            cand = nbrs[live]
            if cand.size == 0:
                break
            cand = np.unique(cand)
            fresh = cand[stamp[cand] != epoch]
            if fresh.size == 0:
                break
            stamp[fresh] = epoch
            out.append(fresh.astype(np.int32))
            frontier = fresh.astype(np.int64)
        return np.concatenate(out)


def _ic_bfs(
    graph: CSRGraph,
    root: int,
    rng: np.random.Generator,
    stamp: np.ndarray,
    epoch: int,
) -> np.ndarray:
    """Shared BFS core for reverse sampling (probabilistic frontier BFS)."""
    stamp[root] = epoch
    out: list[np.ndarray] = [np.array([root], dtype=np.int32)]
    frontier = np.array([root], dtype=np.int64)
    while frontier.size:
        nbrs, probs = gather_frontier_edges(graph, frontier)
        if nbrs.size == 0:
            break
        live = rng.random(nbrs.size) < probs
        cand = nbrs[live]
        if cand.size == 0:
            break
        cand = np.unique(cand)
        fresh = cand[stamp[cand] != epoch]
        if fresh.size == 0:
            break
        stamp[fresh] = epoch
        out.append(fresh.astype(np.int32))
        frontier = fresh.astype(np.int64)
    return np.concatenate(out)
