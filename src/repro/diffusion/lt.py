"""Linear Threshold model: forward threshold cascades and reverse walks.

**Reverse sampling.** Under LT's live-edge interpretation (Kempe et al.),
every vertex independently selects *at most one* in-edge, choosing edge
``(u, v)`` with probability ``w_uv`` and no edge with the remaining
``1 - sum_u w_uv``.  A reverse-reachable set rooted at ``r`` is therefore a
*path*: follow the (single) selected in-edge from ``r`` until either no edge
is selected or an already-visited vertex is reached.  This is why Table I/
§III observes LT RRR sets are much smaller than IC's while theta is much
larger.

Sampling one in-neighbour proportionally to weight uses per-vertex cumulative
weight rows precomputed over the transpose CSR, so each step is one binary
search (``np.searchsorted``) — O(log indegree).

**Forward simulation.** Thresholds ``T_v ~ U[0, 1]`` are drawn per cascade;
each round adds the out-weights of newly active vertices into an incoming-
mass accumulator (one ``np.add.at`` scatter) and activates vertices whose
mass crosses their threshold.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.diffusion.ic import gather_frontier_edges
from repro.graph.csr import CSRGraph

__all__ = ["LTModel"]


class LTModel(DiffusionModel):
    """Linear Threshold model bound to a graph with normalised weights."""

    name = "LT"

    def __init__(self, graph: CSRGraph):
        super().__init__(graph)
        rev = self.reverse_graph
        # Per-row cumulative incoming weights: cum[indptr[v]:indptr[v+1]] is
        # the running sum of v's in-edge weights; the row total may be < 1,
        # the slack being the "select no edge" probability.
        self._cum = _row_cumsum(rev)
        self._incoming_mass = np.zeros(graph.num_vertices)
        self._mass_stamp = np.zeros(graph.num_vertices, dtype=np.int64)

    # -------------------------------------------------------------- reverse
    def reverse_sample(self, root: int, rng: np.random.Generator) -> np.ndarray:
        rev = self.reverse_graph
        indptr, indices, cum = rev.indptr, rev.indices, self._cum
        epoch = self._next_epoch()
        stamp = self._stamp
        out = [root]
        stamp[root] = epoch
        v = root
        while True:
            lo, hi = indptr[v], indptr[v + 1]
            if hi == lo:
                break
            r = rng.random()
            row = cum[lo:hi]
            # row[-1] = total incoming weight (<= 1); r beyond it = no edge.
            if r >= row[-1]:
                break
            u = int(indices[lo + np.searchsorted(row, r, side="right")])
            if stamp[u] == epoch:
                break  # walked into the existing path: live-edge cycle
            stamp[u] = epoch
            out.append(u)
            v = u
        return np.asarray(out, dtype=np.int32)

    # -------------------------------------------------------------- forward
    def forward_sample(self, seeds: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        seeds = np.asarray(seeds, dtype=np.int64).ravel()
        n = self.graph.num_vertices
        thresholds = rng.random(n)
        epoch = self._next_epoch()
        stamp = self._stamp
        stamp[seeds] = epoch
        # Reset incoming mass lazily via its own epoch stamps.
        mass, mstamp = self._incoming_mass, self._mass_stamp
        out: list[np.ndarray] = [seeds.astype(np.int32)]
        frontier = seeds
        while frontier.size:
            nbrs, wts = gather_frontier_edges(self.graph, frontier)
            if nbrs.size == 0:
                break
            nbrs64 = nbrs.astype(np.int64)
            stale = mstamp[nbrs64] != epoch
            if np.any(stale):
                reset = nbrs64[stale]
                mass[reset] = 0.0
                mstamp[reset] = epoch
            np.add.at(mass, nbrs64, wts)
            cand = np.unique(nbrs64)
            crossed = cand[
                (stamp[cand] != epoch) & (mass[cand] >= thresholds[cand])
            ]
            if crossed.size == 0:
                break
            stamp[crossed] = epoch
            out.append(crossed.astype(np.int32))
            frontier = crossed
        return np.concatenate(out)


def _row_cumsum(graph: CSRGraph) -> np.ndarray:
    """Cumulative sum of edge weights within each CSR row (vectorised).

    Computed as a global cumsum minus each row's starting prefix, avoiding a
    Python loop over rows.
    """
    if graph.num_edges == 0:
        return np.empty(0)
    total = np.cumsum(graph.probs)
    row_starts = graph.indptr[:-1]
    # Prefix value just before each row begins, broadcast to its edges.
    before = np.where(row_starts > 0, total[row_starts - 1], 0.0)
    lengths = np.diff(graph.indptr)
    return total - np.repeat(before, lengths)
