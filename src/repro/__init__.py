"""repro — a from-scratch Python reproduction of **EfficientIMM** (SC 2024):
*"Enhancing Scalability and Performance in Influence Maximization with
Optimized Parallel Processing"*.

Public API at a glance::

    from repro import (
        load_dataset, EfficientIMM, RipplesIMM, IMMParams,
        get_model, estimate_spread,
    )

    graph = load_dataset("youtube", model="IC")
    result = EfficientIMM(graph).run(IMMParams(k=50, epsilon=0.5))
    print(result.seeds, result.spread_estimate)

Subpackages:

- :mod:`repro.graph` — CSR graph engine, generators, SNAP-replica datasets;
- :mod:`repro.diffusion` — IC / LT forward simulation and reverse samplers;
- :mod:`repro.sketch` — RRR-set representations, stores, compression;
- :mod:`repro.core` — the IMM algorithm, EfficientIMM, and the Ripples
  baseline;
- :mod:`repro.runtime` — partitioners, atomics, work queues, backends, and
  the unified execution API (:class:`~repro.runtime.api.BackendConfig`,
  :class:`~repro.runtime.api.ExecutionContext`);
- :mod:`repro.resilience` — fault injection, retry policies, and sampling
  checkpoints threaded through the execution layers (docs/resilience.md);
- :mod:`repro.simmachine` — the simulated multi-NUMA machine (caches, NUMA
  placement, cost model) behind the scaling and hardware-counter
  experiments;
- :mod:`repro.bench` — the harness that regenerates every paper table and
  figure;
- :mod:`repro.telemetry` — unified tracing, metrics, and profiling wired
  through all of the above (docs/observability.md)::

      from repro import telemetry
      with telemetry.session() as tel:
          EfficientIMM(graph).run(IMMParams(k=10, theta_cap=2000))
      telemetry.write_report("out/", tel)
"""

from repro import telemetry
from repro.core import EfficientIMM, IMMParams, IMMResult, RipplesIMM, celf_greedy
from repro.diffusion import estimate_spread, get_model
from repro.errors import ReproError
from repro.graph import CSRGraph, dataset_names, load_dataset

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "load_dataset",
    "dataset_names",
    "get_model",
    "estimate_spread",
    "EfficientIMM",
    "RipplesIMM",
    "IMMParams",
    "IMMResult",
    "celf_greedy",
    "ReproError",
    "telemetry",
    "__version__",
]
