"""An in-process shard cluster: plan + workers + router in one handle.

:class:`ShardCluster` is the deployment unit the CLI (``repro shard``),
the tests, and the benchmarks drive: it instantiates
``plan.num_workers`` :class:`~repro.shard.worker.ShardWorker` replicas, a
:class:`~repro.shard.router.Router` over them, and offers:

- :meth:`build` — the offline pipeline: sample the full sketch **once**,
  split it with :meth:`ShardPlan.partition_store`, and warm (and persist,
  when the engine config has an artifact dir) every replica's sub-sketch —
  so serving never pays a per-worker cold sampling pass;
- :meth:`publish` — the online fan-out with the exact keyword signature
  :meth:`DynamicService.add_publish_hook
  <repro.dynamic.serving.DynamicService.add_publish_hook>` calls, so a
  dynamic graph's repaired epochs propagate to every shard atomically
  from the cluster's point of view;
- :meth:`kill` / :meth:`revive` — deterministic fault injection at
  replica or whole-shard granularity, mirrored by the CLI's JSON ops so
  CI can exercise failover over the wire.

Everything runs in one process; "workers" model separate serving
processes the way :mod:`repro.runtime.simmachine` models parallel
hardware — state is strictly per-worker, and all cross-worker
communication flows through the router's scatter-gather calls.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro import telemetry
from repro.core.parallel_sampling import parallel_generate
from repro.errors import ParameterError
from repro.graph.datasets import load_dataset
from repro.graph.io import graph_fingerprint
from repro.runtime.backends import SerialBackend
from repro.service.artifacts import sketch_fingerprint
from repro.service.engine import EngineConfig
from repro.service.protocol import IMQuery, IMResponse
from repro.shard.plan import ShardPlan, shard_fingerprint
from repro.shard.router import Router, RouterConfig
from repro.shard.worker import ShardWorker, SketchSpec

__all__ = ["ShardCluster"]


class ShardCluster:
    """Owns the workers of one :class:`ShardPlan` plus their router."""

    def __init__(
        self,
        plan: ShardPlan,
        *,
        engine_config: EngineConfig | None = None,
        router_config: RouterConfig | None = None,
        sampling_workers: int = 1,
        dataset_scale: float = 1.0,
        segment_manager=None,
    ):
        self.plan = plan
        self.segment_manager = segment_manager
        self.workers: list[ShardWorker] = [
            ShardWorker(
                s,
                plan,
                replica_id=r,
                config=engine_config,
                sampling_workers=sampling_workers,
                dataset_scale=dataset_scale,
                segment_manager=segment_manager,
            )
            for s in range(plan.num_shards)
            for r in range(plan.replication)
        ]
        self.router = Router(self.workers, config=router_config)
        self.sampling_workers = int(sampling_workers)
        self.dataset_scale = float(dataset_scale)
        self._engine_config = engine_config
        self._installed: dict[str, Any] = {}
        # Last adopted sketch per dataset: (spec, fingerprint, parts, meta).
        # This is what lets revive/add_replica re-warm a worker from the
        # shm tier (or the retained partition) instead of cold-building.
        self._published: dict[str, tuple] = {}

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        for w in self.workers:
            w.close()

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ----------------------------------------------------------------- lookup
    def worker(self, shard: int, replica: int = 0) -> ShardWorker:
        for w in self.workers:
            if w.shard_id == shard and w.replica_id == replica:
                return w
        raise ParameterError(
            f"no worker {self.plan.worker_name(shard, replica)} in this cluster"
        )

    def replicas(self, shard: int) -> list[ShardWorker]:
        return [w for w in self.workers if w.shard_id == shard]

    # ----------------------------------------------------------------- faults
    def kill(self, shard: int, replica: int | None = None) -> list[str]:
        """Kill one replica, or the whole shard when ``replica`` is None;
        returns the names of the workers taken down."""
        targets = (
            self.replicas(shard)
            if replica is None
            else [self.worker(shard, replica)]
        )
        if not targets:
            raise ParameterError(f"shard {shard} has no workers")
        for w in targets:
            w.kill()
        return [w.name for w in targets]

    def revive(self, shard: int, replica: int | None = None) -> list[str]:
        """Bring replicas back and **re-warm** them from the published tier.

        A revived worker whose cache no longer holds the current sub-sketch
        (evicted while dead, or a fresh restart) must not fall through to a
        cold streaming build on its next query: for dynamic epochs a cold
        re-sample diverges from the maintainer's incrementally repaired
        store, silently breaking the byte-identity replicas guarantee.
        Re-warming follows the worker acquisition order — shm segment
        first, retained partition otherwise.
        """
        targets = (
            self.replicas(shard)
            if replica is None
            else [self.worker(shard, replica)]
        )
        for w in targets:
            w.revive()
            self._rewarm(w)
        return [w.name for w in targets]

    # ---------------------------------------------------------------- scaling
    def add_replica(self, shard: int) -> str:
        """Attach one more replica to ``shard`` and warm it from the
        published tier; returns the new worker's name.

        The plan is immutable (its ``replication`` is the *initial* layout
        and :func:`shard_fingerprint` does not depend on it), so scaling a
        shard is purely additive: new replicas reuse the exact sub-sketch
        keys the existing ones serve.
        """
        if not (0 <= shard < self.plan.num_shards):
            raise ParameterError(
                f"shard {shard} out of range [0, {self.plan.num_shards})"
            )
        reps = self.replicas(shard)
        rid = max(w.replica_id for w in reps) + 1 if reps else 0
        w = ShardWorker(
            shard,
            self.plan,
            replica_id=rid,
            config=self._engine_config,
            sampling_workers=self.sampling_workers,
            dataset_scale=self.dataset_scale,
            segment_manager=self.segment_manager,
        )
        for ds, g in self._installed.items():
            w.install_graph(ds, g)
        self._rewarm(w)
        self.workers.append(w)
        self.router.add_worker(w)
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter("shard.replicas_added").inc()
            tel.registry.gauge("shard.num_workers").set(len(self.workers))
        return w.name

    def remove_replica(self, shard: int, replica: int | None = None) -> str:
        """Detach a replica (highest replica id by default) from ``shard``;
        refuses to leave a shard empty.  Returns the removed worker's name."""
        reps = self.replicas(shard)
        if len(reps) <= 1:
            raise ParameterError(
                f"cannot remove the last replica of shard {shard}"
            )
        if replica is None:
            w = max(reps, key=lambda w: w.replica_id)
        else:
            w = self.worker(shard, replica)
        self.router.remove_worker(w)
        self.workers.remove(w)
        w.close()
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter("shard.replicas_removed").inc()
            tel.registry.gauge("shard.num_workers").set(len(self.workers))
        return w.name

    def _rewarm(self, w: ShardWorker) -> None:
        """Warm ``w`` with its shard's slice of every published sketch,
        preferring a zero-copy shm attach over the retained partition."""
        for spec, fp, parts, meta in self._published.values():
            sub_fp = shard_fingerprint(fp, w.shard_id, self.plan)
            if w.engine.cache.get(sub_fp) is not None:
                continue
            sub = parts.parts[w.shard_id]
            counter = sub.vertex_counts()
            shard_meta = {
                **(meta or {}),
                "dataset": spec.dataset, "model": spec.model,
                "epsilon": spec.epsilon, "seed": spec.seed,
                "num_sets": spec.num_sets, "shard": w.shard_id,
                "num_shards": self.plan.num_shards,
                "strategy": self.plan.strategy,
            }
            handle = None
            if self.segment_manager is not None:
                handle = self.segment_manager.handle_for(sub_fp)
            if handle is not None:
                view = self.segment_manager.attach_store(handle)
                w._views.append(view)
                w.stats.shm_attaches += 1
                w.engine.warm(
                    sub_fp, view, counter=counter.copy(), meta=shard_meta
                )
            else:
                w.engine.warm(sub_fp, sub, counter=counter, meta=shard_meta)

    # ------------------------------------------------------------------ build
    def build(self, spec: SketchSpec) -> dict[str, Any]:
        """Offline pipeline: one full sampling pass, partitioned and warmed
        (plus persisted, with an artifact dir) into every replica.

        The full sketch exists only transiently here; afterwards each
        worker holds — in memory and on disk — just its shard's slice.
        """
        tel = telemetry.get()
        graph = self._installed.get(spec.dataset)
        if graph is None:
            graph = load_dataset(
                spec.dataset, model=spec.model, seed=spec.seed,
                scale=self.dataset_scale,
            )
        gfp = graph_fingerprint(graph)
        kcfg = self._engine_config or EngineConfig()
        fp = sketch_fingerprint(
            gfp, spec.model, spec.epsilon, spec.seed, spec.num_sets,
            kernel=kcfg.kernel,
        )
        with tel.span(
            "shard.build", dataset=spec.dataset, num_sets=spec.num_sets,
            num_shards=self.plan.num_shards,
        ):
            full = parallel_generate(
                graph, spec.model, spec.num_sets,
                num_workers=self.sampling_workers, seed=spec.seed,
                backend=SerialBackend(),
                kernel=kcfg.kernel, kernel_batch=kcfg.kernel_batch,
            )
            parts = self.plan.partition_store(full, fp).trim()
        return self._adopt(spec, fp, parts)

    def publish(
        self,
        *,
        dataset: str,
        graph: Any,
        fingerprint: str,
        store: Any,
        counter: np.ndarray | None = None,  # noqa: ARG002 - hook signature
        meta: dict | None = None,
    ) -> dict[str, Any]:
        """Online fan-out of an externally built sketch (the
        :class:`DynamicService` publish-hook target).

        Installs ``graph`` on every worker under ``dataset`` and warms each
        shard's slice of ``store`` (keyed by ``fingerprint``).  Per-shard
        counters are rebuilt from the slices — the global ``counter`` is
        accepted for signature compatibility but each shard needs its own
        partial.
        """
        ds = str(dataset).lower()
        self._installed[ds] = graph
        for w in self.workers:
            w.install_graph(ds, graph)
        parts = self.plan.partition_store(store, fingerprint).trim()
        extra = dict(meta or {})
        spec = SketchSpec(
            dataset=ds,
            model=str(extra.get("model", "IC")).upper(),
            epsilon=float(extra.get("epsilon", 0.5)),
            seed=int(extra.get("seed", 0)),
            num_sets=int(extra.get("num_sets", len(store))),
        )
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter("shard.publishes").inc()
        return self._adopt(spec, fingerprint, parts, meta=extra)

    def _adopt(
        self,
        spec: SketchSpec,
        fp: str,
        parts,
        *,
        meta: dict | None = None,
    ) -> dict[str, Any]:
        """Warm (and persist) each shard's partition into its replicas.

        With a :class:`~repro.shm.SegmentManager`, each shard's sub-sketch
        is published to a shared-memory segment **once** and every replica
        is warmed with its own zero-copy attached view — R replicas of a
        shard share one copy of the bytes instead of referencing one
        Python object (or, across processes, holding R copies).  The
        views are tracked per worker and detached on worker close.

        The adopted ``(spec, fingerprint, parts, meta)`` tuple is retained
        per dataset so later revives / scale-ups re-warm from it instead of
        cold-building (see :meth:`revive`).
        """
        self._published[spec.dataset] = (spec, fp, parts, dict(meta or {}))
        summary = []
        for shard in range(self.plan.num_shards):
            sub = parts.parts[shard]
            counter = sub.vertex_counts()
            sub_fp = shard_fingerprint(fp, shard, self.plan)
            shard_meta = {
                **(meta or {}),
                "dataset": spec.dataset, "model": spec.model,
                "epsilon": spec.epsilon, "seed": spec.seed,
                "num_sets": spec.num_sets, "shard": shard,
                "num_shards": self.plan.num_shards,
                "strategy": self.plan.strategy,
            }
            seg_handle = None
            if self.segment_manager is not None:
                seg_handle = self.segment_manager.publish_store(
                    sub, fingerprint=sub_fp
                )
            for w in self.replicas(shard):
                arts = w.engine.artifacts
                if (
                    arts is not None
                    and w.engine.config.persist
                    and not arts.has_sketch(sub_fp)
                ):
                    arts.save_sketch(
                        sub_fp, sub, counter=counter, meta=shard_meta
                    )
                    w.engine.stats.artifact_saves += 1
                if seg_handle is not None:
                    view = self.segment_manager.attach_store(seg_handle)
                    w._views.append(view)
                    w.stats.shm_attaches += 1
                    w.engine.warm(
                        sub_fp, view, counter=counter.copy(), meta=shard_meta
                    )
                else:
                    w.engine.warm(sub_fp, sub, counter=counter, meta=shard_meta)
            summary.append(
                {
                    "shard": shard,
                    "shard_fingerprint": sub_fp,
                    "num_sets": len(sub),
                    "sketch_bytes": sub.nbytes(),
                    "segment": seg_handle.name if seg_handle else None,
                    "replicas": [w.name for w in self.replicas(shard)],
                }
            )
        tel = telemetry.get()
        if tel.enabled:
            for row in summary:
                tel.registry.gauge(
                    f"shard.s{row['shard']}.sketch_bytes"
                ).set(row["sketch_bytes"])
                tel.registry.gauge(
                    f"shard.s{row['shard']}.num_sets"
                ).set(row["num_sets"])
        return {
            "fingerprint": fp,
            "plan": self.plan.describe(),
            "shards": summary,
        }

    # ---------------------------------------------------------------- serving
    def install_graph(self, dataset: str, graph: Any) -> None:
        """Install an in-memory graph on every worker (no sketch fan-out)."""
        ds = str(dataset).lower()
        self._installed[ds] = graph
        for w in self.workers:
            w.install_graph(ds, graph)

    def query(self, query: IMQuery) -> IMResponse:
        return self.router.query(query)

    def execute(self, queries) -> list[IMResponse]:
        return self.router.execute(queries)

    # ------------------------------------------------------------------ stats
    def stats_snapshot(self) -> dict[str, Any]:
        """Router + per-worker counters as one JSON-able dict."""
        snap = self.router.stats_snapshot()
        snap["workers"] = [w.stats_snapshot() for w in self.workers]
        return snap
