"""One shard replica: a :class:`QueryEngine` over the shard's sub-sketch.

A :class:`ShardWorker` is the in-process stand-in for one serving process
of the cluster.  It owns a private :class:`~repro.service.engine.QueryEngine`
whose warm layers hold only *this shard's* slice of each sketch — the
byte-budget LRU cache, the fingerprint-keyed artifact store, and the
engine's stats/telemetry all come along for free, keyed by
:func:`~repro.shard.plan.shard_fingerprint` so sub-sketches of different
plans never collide.

Acquisition order mirrors the engine (docs/serving.md):

1. the worker engine's in-memory cache (warm);
2. a shared-memory segment published under the shard fingerprint (when the
   worker was given a :class:`~repro.shm.SegmentManager`) — attached as a
   zero-copy read-only view, so replicas of the same shard share one copy
   of the sub-sketch bytes (docs/memory.md);
3. a ``sketch-<shard_fp>.npz`` artifact written by ``repro shard build``
   (or a previous cold pass) — integrity-checked, survives restarts;
4. cold: the worker *streams* the deterministic sampling sequence of the
   full sketch and keeps only the sets its shard owns, so its peak sketch
   memory stays ``O(owned sets)`` even while deriving them from the global
   sequence (the HBMax memory-per-worker discipline).  The sequence is
   byte-identical to :func:`repro.core.parallel_sampling.parallel_generate`
   for the same ``(seed, sampling_workers)``, which is what makes
   scatter-gathered selection equal the single-node engine.

The scatter protocol (``session_open`` / ``session_cover`` /
``session_counts``) is deliberately self-healing: every call carries the
selection history, so a replica that never saw the session — or fell out
of sync after a presumed-failed call — silently rebuilds its state by
replaying the history against its (identical) sub-sketch.  That replay is
the whole failover story; the router never orchestrates recovery beyond
re-sending the same call to the next replica.

``kill()`` / ``fail_after()`` are deterministic fault hooks in the spirit
of :mod:`repro.resilience.faults`: a dead worker raises
:class:`~repro.errors.BackendError` (retryable under the default policy)
on every operation until ``revive()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import telemetry
from repro._util import spawn_rngs
from repro.core.sampling import reverse_sample_with_cost
from repro.core.selection import segmented_membership
from repro.diffusion.base import get_model
from repro.errors import ArtifactError, BackendError, ParameterError
from repro.graph.datasets import load_dataset
from repro.graph.io import graph_fingerprint
from repro.service.artifacts import sketch_fingerprint
from repro.service.cache import CacheEntry
from repro.service.engine import EngineConfig, QueryEngine
from repro.service.protocol import IMQuery
from repro.shard.plan import ShardPlan, shard_fingerprint
from repro.sketch.protocol import make_store

__all__ = ["SketchSpec", "OpenInfo", "CoverResult", "ShardWorker", "WorkerStats"]


@dataclass(frozen=True)
class SketchSpec:
    """Everything that determines one serving sketch (a query batch key)."""

    dataset: str
    model: str = "IC"
    epsilon: float = 0.5
    seed: int = 0
    num_sets: int = 2000

    @classmethod
    def from_query(cls, query: IMQuery, default_theta: int) -> "SketchSpec":
        return cls(
            dataset=query.dataset.lower(),
            model=str(query.model).upper(),
            epsilon=float(query.epsilon),
            seed=int(query.seed),
            num_sets=int(query.theta_cap or default_theta),
        )

    def key(self) -> tuple:
        return (self.dataset, self.model, self.epsilon, self.seed, self.num_sets)


@dataclass
class OpenInfo:
    """What a worker reports when a selection session opens."""

    counter: np.ndarray | None
    num_local_sets: int
    num_vertices: int
    warm: bool
    sketch_bytes: int
    fingerprint: str        # full-sketch fingerprint (cluster-wide)
    shard_fingerprint: str  # this shard's sub-sketch key


@dataclass
class CoverResult:
    """One shard's contribution to one selection round."""

    dec: np.ndarray        # concatenated entries of newly covered local sets
    new_covered: int       # how many local sets seed v newly covered
    replayed: bool = False # state was rebuilt from history before covering


@dataclass
class WorkerStats:
    """Cumulative per-worker behaviour (plain counters)."""

    opens: int = 0
    covers: int = 0
    replays: int = 0
    cold_builds: int = 0
    artifact_loads: int = 0
    shm_attaches: int = 0
    warm_hits: int = 0
    faults: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "opens": self.opens, "covers": self.covers,
            "replays": self.replays, "cold_builds": self.cold_builds,
            "artifact_loads": self.artifact_loads,
            "shm_attaches": self.shm_attaches,
            "warm_hits": self.warm_hits, "faults": self.faults,
        }


@dataclass
class _Session:
    """Selection state for one scatter-gather query group."""

    spec: SketchSpec
    entry: CacheEntry
    active: np.ndarray          # bool per local set
    covered: int = 0            # cover ops applied so far
    history: list[int] = field(default_factory=list)


class ShardWorker:
    """One replica of one shard, wrapping a private :class:`QueryEngine`."""

    def __init__(
        self,
        shard_id: int,
        plan: ShardPlan,
        *,
        replica_id: int = 0,
        config: EngineConfig | None = None,
        sampling_workers: int = 1,
        dataset_scale: float = 1.0,
        segment_manager=None,
    ):
        if not (0 <= shard_id < plan.num_shards):
            raise ParameterError(
                f"shard_id {shard_id} out of range [0, {plan.num_shards})"
            )
        # ``plan.replication`` is the *initial* replication; the control
        # plane may scale a shard past it (ShardCluster.add_replica), so
        # replica ids are only bounded below.
        if replica_id < 0:
            raise ParameterError(f"replica_id must be >= 0, got {replica_id}")
        self.shard_id = int(shard_id)
        self.replica_id = int(replica_id)
        self.plan = plan
        self.name = plan.worker_name(shard_id, replica_id)
        self.engine = QueryEngine(config=config or EngineConfig())
        self.sampling_workers = int(sampling_workers)
        self.dataset_scale = float(dataset_scale)
        self.segment_manager = segment_manager
        self.stats = WorkerStats()
        self._sessions: dict[str, _Session] = {}
        self._graphs: dict[tuple, tuple[Any, str]] = {}
        self._installed: dict[str, tuple[Any, str]] = {}
        self._views: list[Any] = []  # attached shm views, detached on close
        self._dead = False
        self._fail_after: int | None = None

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._sessions.clear()
        views, self._views = self._views, []
        for view in views:
            view.detach()
        self.engine.close()

    def __enter__(self) -> "ShardWorker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self._dead else "up"
        return f"ShardWorker({self.name}, {state})"

    # ------------------------------------------------------------ fault hooks
    def kill(self) -> None:
        """Every subsequent operation fails with :class:`BackendError`."""
        self._dead = True

    def revive(self) -> None:
        self._dead = False
        self._fail_after = None

    def fail_after(self, ops: int) -> None:
        """Die permanently after ``ops`` more successful operations —
        the deterministic "replica killed mid-stream" drill."""
        if ops < 0:
            raise ParameterError(f"ops must be >= 0, got {ops}")
        self._fail_after = int(ops)

    @property
    def dead(self) -> bool:
        return self._dead

    def _checkpoint(self) -> None:
        """Raise if this worker is (or just became) dead."""
        if self._fail_after is not None:
            if self._fail_after <= 0:
                self._dead = True
                self._fail_after = None
            else:
                self._fail_after -= 1
        if self._dead:
            self.stats.faults += 1
            raise BackendError(f"shard worker {self.name} is down")

    def ping(self) -> str:
        """Cheap health probe; raises when the worker is down."""
        self._checkpoint()
        return self.name

    # ---------------------------------------------------------------- graphs
    def install_graph(self, dataset: str, graph: Any) -> str:
        """Serve ``dataset`` from an in-memory graph (the dynamic epoch
        fan-out hook); returns the graph fingerprint.  Mirrors
        :meth:`QueryEngine.install_graph` so the wrapped engine agrees."""
        ds = str(dataset).lower()
        fp = self.engine.install_graph(ds, graph)
        self._installed[ds] = (graph, fp)
        for key in [k for k in self._graphs if k[0] == ds]:
            del self._graphs[key]
        return fp

    def installed_graph(self, dataset: str) -> tuple[Any, str] | None:
        """The ``(graph, fingerprint)`` installed for ``dataset`` (or None).
        The rollout canary uses this to restore the previous epoch."""
        return self._installed.get(str(dataset).lower())

    def _resolve_graph(self, spec: SketchSpec) -> tuple[Any, str]:
        installed = self._installed.get(spec.dataset)
        if installed is not None:
            return installed
        key = (spec.dataset, spec.model, spec.seed)
        hit = self._graphs.get(key)
        if hit is None:
            graph = load_dataset(
                spec.dataset, model=spec.model, seed=spec.seed,
                scale=self.dataset_scale,
            )
            hit = (graph, graph_fingerprint(graph))
            self._graphs[key] = hit
        return hit

    # ------------------------------------------------------------ acquisition
    def fingerprints(self, spec: SketchSpec) -> tuple[str, str]:
        """(full-sketch fingerprint, this shard's sub-sketch fingerprint)."""
        _, gfp = self._resolve_graph(spec)
        fp = sketch_fingerprint(
            gfp, spec.model, spec.epsilon, spec.seed, spec.num_sets,
            kernel=self.engine.config.kernel,
        )
        return fp, shard_fingerprint(fp, self.shard_id, self.plan)

    def _acquire(self, spec: SketchSpec) -> tuple[CacheEntry, bool, str, str]:
        """(entry, warm, fp, shard_fp): cache → shm → artifact → cold stream."""
        graph, gfp = self._resolve_graph(spec)
        fp = sketch_fingerprint(
            gfp, spec.model, spec.epsilon, spec.seed, spec.num_sets,
            kernel=self.engine.config.kernel,
        )
        sub_fp = shard_fingerprint(fp, self.shard_id, self.plan)
        entry = self.engine.cache.get(sub_fp)
        if entry is not None:
            self.stats.warm_hits += 1
            return entry, True, fp, sub_fp

        meta = {
            "dataset": spec.dataset, "model": spec.model,
            "epsilon": spec.epsilon, "seed": spec.seed,
            "num_sets": spec.num_sets, "shard": self.shard_id,
            "num_shards": self.plan.num_shards,
            "strategy": self.plan.strategy,
        }
        if self.segment_manager is not None:
            handle = self.segment_manager.handle_for(sub_fp)
            if handle is not None:
                store = self.segment_manager.attach_store(handle)
                self._views.append(store)
                counter = store.vertex_counts()
                self.stats.shm_attaches += 1
                self.engine.warm(sub_fp, store, counter=counter, meta=meta)
                entry = self.engine.cache.get(sub_fp) or CacheEntry(
                    store=store, counter=counter, meta=meta
                )
                return entry, True, fp, sub_fp
        arts = self.engine.artifacts
        if arts is not None and arts.has_sketch(sub_fp):
            try:
                store, counter, _ = arts.load_sketch(sub_fp)
            except ArtifactError:
                self.engine.stats.artifact_corrupt += 1
                store = None
            if store is not None:
                if counter is None:
                    counter = store.vertex_counts()
                self.stats.artifact_loads += 1
                self.engine.stats.artifact_loads += 1
                self.engine.warm(sub_fp, store, counter=counter, meta=meta)
                entry = self.engine.cache.get(sub_fp) or CacheEntry(
                    store=store, counter=counter, meta=meta
                )
                return entry, True, fp, sub_fp

        tel = telemetry.get()
        with tel.span(
            "shard.cold_build",
            worker=self.name, fingerprint=fp, num_sets=spec.num_sets,
        ):
            store = self._build_subsketch(graph, spec, fp)
        counter = store.vertex_counts()
        self.stats.cold_builds += 1
        if tel.enabled:
            tel.registry.counter("shard.worker.cold_builds").inc()
        if arts is not None and self.engine.config.persist:
            arts.save_sketch(sub_fp, store, counter=counter, meta=meta)
            self.engine.stats.artifact_saves += 1
        self.engine.warm(sub_fp, store, counter=counter, meta=meta)
        entry = self.engine.cache.get(sub_fp) or CacheEntry(
            store=store, counter=counter, meta=meta
        )
        return entry, False, fp, sub_fp

    def _build_subsketch(
        self, graph: Any, spec: SketchSpec, fingerprint: str
    ) -> FlatRRRStore:
        """Cold path: derive this shard's slice of the global sequence.

        Replays :func:`parallel_generate`'s exact ordering — per-sampling-
        worker seed streams, worker 0's sets first — appending only owned
        global indices, so memory stays proportional to the owned slice.
        The ``"balanced"`` strategy needs all set sizes up front and so
        cannot stream; it materialises the full sketch transiently (prefer
        ``repro shard build`` artifacts for that layout).

        With an engine ``kernel`` configured the replay gets cheaper still:
        counter streams are keyed by the global set index, so only the
        *owned* indices are sampled at all — O(owned) work instead of a
        full O(num_sets) pass — and the result still matches what a
        single-node engine with the same kernel would draw.
        """
        kernel = self.engine.config.kernel
        if self.plan.strategy == "balanced":
            from repro.core.parallel_sampling import parallel_generate
            from repro.runtime.backends import SerialBackend

            full = parallel_generate(
                graph, spec.model, spec.num_sets,
                num_workers=self.sampling_workers, seed=spec.seed,
                backend=SerialBackend(),
                kernel=kernel, kernel_batch=self.engine.config.kernel_batch,
            )
            mask = self.plan.owned_mask(
                fingerprint, len(full), self.shard_id, sizes=full.sizes()
            )
            store = make_store("flat", num_vertices=graph.num_vertices, sort_sets=True)
            for i in np.flatnonzero(mask).tolist():
                store.append(full.get(i))
            return store.trim()

        mask = self.plan.owned_mask(fingerprint, spec.num_sets, self.shard_id)
        if kernel is not None:
            from repro.kernels import KernelSampler
            from repro.kernels.rng import coin_key, derive_keys, roots_for_indices

            model = get_model(spec.model, graph)
            owned = np.flatnonzero(mask).astype(np.int64)
            roots = roots_for_indices(spec.seed, owned, graph.num_vertices)
            keys = derive_keys(coin_key(spec.seed), owned)
            flat, sizes, _ = KernelSampler(
                model, kernel, self.engine.config.kernel_batch
            ).sample_for_roots(roots, keys)
            store = make_store(
                "flat", num_vertices=graph.num_vertices, sort_sets=True
            )
            offsets = np.concatenate(([0], np.cumsum(sizes)))
            for i in range(owned.size):
                store.append(flat[offsets[i] : offsets[i + 1]])
            return store.trim()
        model = get_model(spec.model, graph)
        n = graph.num_vertices
        worker_seeds = [
            int(r.integers(0, 2**62))
            for r in spawn_rngs(spec.seed, self.sampling_workers)
        ]
        base, extra = divmod(spec.num_sets, self.sampling_workers)
        store = make_store("flat", num_vertices=n, sort_sets=True)
        g_index = 0
        for w, wseed in enumerate(worker_seeds):
            count = base + (1 if w < extra else 0)
            rng = np.random.default_rng(wseed)
            for _ in range(count):
                root = int(rng.integers(0, n))
                verts, _ = reverse_sample_with_cost(model, root, rng)
                if mask[g_index]:
                    store.append(np.sort(verts))
                g_index += 1
        return store.trim()

    # ------------------------------------------------------- scatter protocol
    def session_open(
        self, session_id: str, spec: SketchSpec, *, with_counts: bool = True
    ) -> OpenInfo:
        """Start (or restart) a selection session; optionally return this
        shard's partial fused counter (skipped when the router has it
        cached)."""
        self._checkpoint()
        entry, warm, fp, sub_fp = self._acquire(spec)
        self._sessions[session_id] = _Session(
            spec=spec,
            entry=entry,
            active=np.ones(len(entry.store), dtype=bool),
        )
        self.stats.opens += 1
        return OpenInfo(
            counter=entry.counter.copy() if with_counts else None,
            num_local_sets=len(entry.store),
            num_vertices=entry.store.num_vertices,
            warm=warm,
            sketch_bytes=entry.store.nbytes(),
            fingerprint=fp,
            shard_fingerprint=sub_fp,
        )

    def _sync_session(
        self, session_id: str, spec: SketchSpec, history: tuple[int, ...]
    ) -> tuple[_Session, bool]:
        """The session, replayed from ``history`` when absent or diverged."""
        sess = self._sessions.get(session_id)
        if (
            sess is not None
            and sess.spec == spec
            and sess.covered == len(history)
            and sess.history == list(history)
        ):
            return sess, False
        # Fresh replica (failover) or diverged state (a call the router
        # timed out on still mutated us): rebuild deterministically.
        entry, _, _, _ = self._acquire(spec)
        sess = _Session(
            spec=spec,
            entry=entry,
            active=np.ones(len(entry.store), dtype=bool),
        )
        for v in history:
            self._cover(sess, int(v))
        self._sessions[session_id] = sess
        self.stats.replays += 1
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter("shard.worker.replays").inc()
        return sess, True

    def _cover(self, sess: _Session, v: int) -> tuple[np.ndarray, int]:
        store = sess.entry.store
        new_sets = segmented_membership(store, v, sess.active)
        sess.active[new_sets] = False
        offsets, verts = store.offsets, store.vertices
        chunks = [
            verts[offsets[s] : offsets[s + 1]] for s in new_sets.tolist()
        ]
        dec = (
            np.concatenate(chunks)
            if chunks
            else np.empty(0, dtype=np.int32)
        )
        sess.covered += 1
        sess.history.append(int(v))
        return dec, int(new_sets.size)

    def session_cover(
        self,
        session_id: str,
        spec: SketchSpec,
        history: tuple[int, ...],
        v: int,
    ) -> CoverResult:
        """Apply seed ``v``: retire local sets containing it and return
        their concatenated entries (the router's counter decrements) plus
        the newly covered count.  ``history`` is every seed already applied
        to this session, enabling transparent replay on a fresh replica."""
        self._checkpoint()
        sess, replayed = self._sync_session(session_id, spec, tuple(history))
        dec, new_covered = self._cover(sess, int(v))
        self.stats.covers += 1
        return CoverResult(dec=dec, new_covered=new_covered, replayed=replayed)

    def session_counts(
        self, session_id: str, spec: SketchSpec, history: tuple[int, ...]
    ) -> np.ndarray:
        """Partial fused counter over this shard's *uncovered* sets — the
        resync gather the router runs after losing a shard mid-stream."""
        self._checkpoint()
        sess, _ = self._sync_session(session_id, spec, tuple(history))
        store = sess.entry.store
        entry_active = np.repeat(sess.active, store.sizes())
        return np.bincount(
            store.vertices[entry_active], minlength=store.num_vertices
        ).astype(np.int64)

    def session_close(self, session_id: str) -> None:
        self._sessions.pop(session_id, None)

    # ------------------------------------------------------------------ misc
    def sketch_bytes(self, spec: SketchSpec) -> int:
        """Modelled bytes of this shard's sub-sketch (acquiring it if cold)."""
        self._checkpoint()
        entry, _, _, _ = self._acquire(spec)
        return entry.store.nbytes()

    def stats_snapshot(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "shard": self.shard_id,
            "replica": self.replica_id,
            "dead": self._dead,
            "worker": self.stats.to_dict(),
            "engine": self.engine.stats_snapshot(),
        }
