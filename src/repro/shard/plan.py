"""Shard planning: which worker owns which RRR sets, and who its replicas are.

A :class:`ShardPlan` is the one deterministic, side-effect-free description
of a cluster layout that every component — the build pipeline, each
:class:`~repro.shard.worker.ShardWorker`, and the
:class:`~repro.shard.router.Router` — derives the same answers from:

- **set ownership**: RRR set ``i`` of a sketch (identified by its content
  fingerprint) belongs to exactly one of ``num_shards`` shards.  The
  default ``"hash"`` strategy places ``sha256(fingerprint:i)`` on a
  consistent-hash ring of ``virtual_nodes`` points per shard, so adding a
  shard remaps only ``~1/num_shards`` of the sets; ``"block"`` and
  ``"balanced"`` reuse :func:`repro.runtime.partition.block_partition` /
  :func:`repro.runtime.partition.balanced_partition` for contiguous
  layouts (balanced needs the per-set sizes, so it is only available when
  the whole sketch is materialised — i.e. the build path).
- **replication**: every shard's sub-sketch is held by ``replication``
  interchangeable workers.  Replicas store *identical* data (same
  :func:`shard_fingerprint`, same artifact), which is what lets the router
  fail over mid-query and still produce byte-identical answers.

Ownership is a pure function of ``(plan, fingerprint, num_sets)``; no
component ever needs to ask another who owns a set.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ParameterError
from repro.runtime.partition import balanced_partition, block_partition
from repro.sketch.protocol import make_store
from repro.sketch.store import FlatRRRStore, PartitionedRRRStore

__all__ = ["ShardPlan", "shard_fingerprint"]

#: Assignment strategies a plan accepts.
STRATEGIES = ("hash", "block", "balanced")


def _ring_point(key: str) -> int:
    """64-bit position of ``key`` on the hash ring."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


def shard_fingerprint(fingerprint: str, shard: int, plan: "ShardPlan") -> str:
    """Content key of one shard's sub-sketch.

    Replicas of the same shard share this key (they hold identical data),
    while different plans — another shard count, strategy, or ring
    resolution — never collide, so a cluster resize can coexist with the
    old layout in one artifact directory.
    """
    key = (
        f"{fingerprint}:shard{int(shard)}/{plan.num_shards}"
        f":{plan.strategy}:{plan.virtual_nodes}"
    )
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic layout of one serving cluster.

    Attributes
    ----------
    num_shards:
        Number of disjoint sub-sketch partitions.
    replication:
        Workers per shard holding identical copies (R-way replication).
    strategy:
        ``"hash"`` (consistent hashing over fingerprints, the default),
        ``"block"`` (contiguous equal-count ranges), or ``"balanced"``
        (contiguous ranges balancing total entries — build path only).
    virtual_nodes:
        Ring points per shard under ``"hash"``; more points smooth the
        set-count imbalance between shards.
    """

    num_shards: int
    replication: int = 1
    strategy: str = "hash"
    virtual_nodes: int = 64

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ParameterError(
                f"num_shards must be positive, got {self.num_shards}"
            )
        if self.replication <= 0:
            raise ParameterError(
                f"replication must be positive, got {self.replication}"
            )
        if self.strategy not in STRATEGIES:
            raise ParameterError(
                f"unknown shard strategy {self.strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        if self.virtual_nodes <= 0:
            raise ParameterError(
                f"virtual_nodes must be positive, got {self.virtual_nodes}"
            )

    # ------------------------------------------------------------------ ring
    @cached_property
    def _ring(self) -> tuple[np.ndarray, np.ndarray]:
        """(sorted ring positions, shard id at each position)."""
        points = np.empty(self.num_shards * self.virtual_nodes, dtype=np.uint64)
        shards = np.empty_like(points, dtype=np.int64)
        i = 0
        for s in range(self.num_shards):
            for v in range(self.virtual_nodes):
                points[i] = _ring_point(f"shard{s}:vnode{v}")
                shards[i] = s
                i += 1
        order = np.argsort(points, kind="stable")
        return points[order], shards[order]

    def owner(self, key: str) -> int:
        """Shard owning ``key``: the first ring point at or after its hash
        (wrapping past the top of the ring back to the first point)."""
        points, shards = self._ring
        idx = int(np.searchsorted(points, np.uint64(_ring_point(key))))
        return int(shards[idx % points.size])

    # ------------------------------------------------------------- ownership
    def assign_sets(
        self,
        fingerprint: str,
        num_sets: int,
        *,
        sizes: np.ndarray | None = None,
    ) -> np.ndarray:
        """Owning shard of every global set index, ``int64[num_sets]``.

        ``sizes`` (per-set entry counts) is required by the ``"balanced"``
        strategy and ignored by the others.
        """
        if num_sets < 0:
            raise ParameterError(f"num_sets must be >= 0, got {num_sets}")
        owners = np.empty(num_sets, dtype=np.int64)
        if self.strategy == "hash":
            for i in range(num_sets):
                owners[i] = self.owner(f"{fingerprint}:{i}")
            return owners
        if self.strategy == "balanced":
            if sizes is None:
                raise ParameterError(
                    "the 'balanced' strategy needs per-set sizes; build the "
                    "full sketch first (repro shard build) or use 'hash'/'block'"
                )
            bounds = balanced_partition(
                np.asarray(sizes, dtype=np.float64), self.num_shards
            )
        else:  # block
            bounds = block_partition(num_sets, self.num_shards)
        for s, (lo, hi) in enumerate(bounds):
            owners[lo:hi] = s
        return owners

    def owned_mask(
        self,
        fingerprint: str,
        num_sets: int,
        shard: int,
        *,
        sizes: np.ndarray | None = None,
    ) -> np.ndarray:
        """Boolean mask over global set indices owned by ``shard``."""
        if not (0 <= shard < self.num_shards):
            raise ParameterError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
        return self.assign_sets(fingerprint, num_sets, sizes=sizes) == shard

    def partition_store(
        self, store: FlatRRRStore, fingerprint: str
    ) -> PartitionedRRRStore:
        """Split a full sketch into one partition per shard.

        Partition ``s`` of the result is exactly the sub-sketch shard ``s``'s
        workers serve; per-partition vertex counters sum to the full store's
        counter, which is what makes scatter-gathered selection exact.
        """
        owners = self.assign_sets(
            fingerprint, len(store), sizes=store.sizes()
        )
        parts = make_store(
            "partitioned",
            num_vertices=store.num_vertices,
            num_workers=self.num_shards,
            sort_sets=store.sort_sets,
        )
        for i, s in enumerate(owners.tolist()):
            parts.append(s, store.get(i))
        return parts

    # --------------------------------------------------------------- workers
    @property
    def num_workers(self) -> int:
        return self.num_shards * self.replication

    def worker_name(self, shard: int, replica: int) -> str:
        return f"s{int(shard)}r{int(replica)}"

    def describe(self) -> dict:
        """JSON-able summary (used by ``repro shard`` and stats snapshots)."""
        return {
            "num_shards": self.num_shards,
            "replication": self.replication,
            "strategy": self.strategy,
            "virtual_nodes": self.virtual_nodes,
            "num_workers": self.num_workers,
        }
