"""Scatter-gather query routing over a shard cluster.

The :class:`Router` presents the same ``execute(queries) -> responses``
surface as :class:`~repro.service.engine.QueryEngine`, but instead of one
full sketch it drives one selection *session* per query group across every
shard.  The merge is exact, not approximate:

- the global fused counter is the **int64 sum** of per-shard partial
  counters (disjoint set ownership makes occurrence counts additive);
- each greedy round runs :func:`~repro.core.selection.efficient_select`'s
  own loop at the router — ``argmax`` pick, scatter the pick, gather each
  shard's newly covered entries, subtract, ``counts[chosen] = -1`` — so
  integer arithmetic, tie-breaking (lowest id via ``np.argmax``), and the
  all-covered fill path match the single-node kernel operation for
  operation.  Under a fixed seed the returned seed sets are therefore
  **byte-identical** to the single-node engine's.

Failure handling (docs/sharding.md):

- **replica failover**: every scatter call may be retried on the shard's
  other replicas; the :class:`~repro.resilience.retry.RetryPolicy` decides
  which errors are worth failing over (``BackendError``/``TimeoutError``
  yes, ``ParameterError`` no) and how long to back off between replicas.
  Because every call carries the full selection history, the surviving
  replica transparently replays the session and the answer is unchanged —
  a replica death mid-stream is invisible in the response.
- **shard loss**: when *every* replica of a shard is down the router
  drops the shard and **restarts the greedy selection from round zero**
  over the survivors (nothing has been returned to the client yet, and
  the surviving workers self-heal to the empty history on the next
  call).  No answer ever mixes full-sketch and survivor-sketch
  decisions: a degraded response is byte-identical to what a cluster of
  only the surviving shards would have served, marked ``degraded:true``
  (the same disclosure contract as the engine's stale-artifact
  fallback).
- **health tracking**: consecutive per-replica failures order future
  replica attempts (healthy first) and are reported in
  :meth:`stats_snapshot`; a soft per-call deadline flags slow workers.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro import telemetry
from repro.errors import BackendError, ParameterError, ReproError
from repro.resilience.retry import RetryPolicy
from repro.service.protocol import IMQuery, IMResponse
from repro.shard.plan import ShardPlan
from repro.shard.worker import CoverResult, OpenInfo, ShardWorker, SketchSpec

__all__ = ["Router", "RouterConfig", "RouterStats", "ShardDownError"]


class ShardDownError(BackendError):
    """Every replica of a shard refused a call (internal control flow).

    Subclasses :class:`BackendError` so it inherits its exit code and
    retryability; it never escapes :meth:`Router.execute`.
    """

    def __init__(self, shard: int, last: Exception):
        super().__init__(f"shard {shard} is down: {last}")
        self.shard = shard
        self.last = last


@dataclass(frozen=True)
class RouterConfig:
    """Routing knobs (the scatter-side analogue of ``EngineConfig``).

    Attributes
    ----------
    default_theta:
        Sketch size when a query has no ``theta_cap`` — must match the
        single-node engine being compared against for byte-identity.
    worker_deadline_s:
        Soft per-scatter-call budget.  In-process workers cannot be
        preempted, so a completed-but-late call is *used* (discarding it
        would redo deterministic work for the same answer) but counted as
        a deadline miss and charged against the replica's health.
    retry:
        Failover classification and backoff between replica attempts.
        ``max_attempts`` bounds attempts **per replica** (first try
        included); the router additionally tries every replica.
    unhealthy_after:
        Consecutive failures after which a replica is reported unhealthy
        and deprioritised when ordering failover candidates.
    allow_degraded:
        Serve partial-coverage answers over the surviving shards when a
        whole shard is down (``False`` turns shard loss into an error
        response).
    """

    default_theta: int = 2000
    worker_deadline_s: float | None = None
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(max_attempts=1))
    unhealthy_after: int = 2
    allow_degraded: bool = True

    def __post_init__(self) -> None:
        if self.default_theta <= 0:
            raise ParameterError(
                f"default_theta must be positive, got {self.default_theta}"
            )
        if self.unhealthy_after <= 0:
            raise ParameterError(
                f"unhealthy_after must be positive, got {self.unhealthy_after}"
            )


@dataclass
class RouterStats:
    """Cumulative router behaviour, mirrored to ``shard.*`` telemetry."""

    queries: int = 0
    ok: int = 0
    errors: int = 0
    timeouts: int = 0
    degraded: int = 0
    batches: int = 0
    scatter_calls: int = 0
    failovers: int = 0
    shard_losses: int = 0
    resyncs: int = 0
    deadline_misses: int = 0

    def to_dict(self) -> dict[str, int]:
        return {k: int(v) for k, v in self.__dict__.items()}


@dataclass
class _Pending:
    index: int
    query: IMQuery
    submitted_at: float

    def deadline(self) -> float | None:
        if self.query.deadline_s is None:
            return None
        return self.submitted_at + self.query.deadline_s


class _GroupSession:
    """Mutable per-group selection state shared by the serve helpers."""

    def __init__(self, sid: str, spec: SketchSpec, shards: list[int]):
        self.sid = sid
        self.spec = spec
        self.live = list(shards)          # shards still participating
        self.opens: dict[int, OpenInfo] = {}
        self.history: list[int] = []      # seeds applied so far
        self.counts: np.ndarray | None = None
        self.chosen: np.ndarray | None = None
        # covered[shard] = per-round newly covered local sets (live shards).
        self.covered: dict[int, list[int]] = {}
        self.lost_shard = False
        self.needs_restart = False        # a shard died mid-selection

    @property
    def num_live_sets(self) -> int:
        return sum(self.opens[s].num_local_sets for s in self.live)

    def covered_rounds(self) -> np.ndarray:
        """Total newly covered sets per round, over the live shards."""
        rounds = len(self.history)
        out = np.zeros(rounds, dtype=np.int64)
        for s in self.live:
            rec = self.covered.get(s, [])
            out[: len(rec)] += np.asarray(rec[:rounds], dtype=np.int64)
        return out


class Router:
    """Routes :class:`IMQuery` batches across a cluster of shard workers."""

    def __init__(
        self,
        workers: Sequence[ShardWorker],
        *,
        config: RouterConfig | None = None,
        plan: ShardPlan | None = None,
    ):
        if not workers:
            raise ParameterError("a Router needs at least one worker")
        self.plan = plan or workers[0].plan
        for w in workers:
            if w.plan != self.plan:
                raise ParameterError(
                    f"worker {w.name} built for a different ShardPlan"
                )
        self.config = config or RouterConfig()
        self._replicas: dict[int, list[ShardWorker]] = {}
        for w in workers:
            self._replicas.setdefault(w.shard_id, []).append(w)
        missing = [
            s for s in range(self.plan.num_shards) if s not in self._replicas
        ]
        if missing:
            raise ParameterError(f"no workers for shards {missing}")
        for reps in self._replicas.values():
            reps.sort(key=lambda w: w.replica_id)
        self._failures: dict[str, int] = {w.name: 0 for w in workers}
        self.stats = RouterStats()
        self._session_seq = 0

    # ----------------------------------------------------------------- public
    def query(self, query: IMQuery) -> IMResponse:
        """Serve a single query (a one-element :meth:`execute` batch)."""
        return self.execute([query])[0]

    def execute(self, queries: Sequence[IMQuery]) -> list[IMResponse]:
        """Serve a batch; same grouping and per-query error isolation as
        :meth:`QueryEngine.execute` — one poisoned query never takes down
        its batch, and responses come back in submission order."""
        submitted_at = time.monotonic()
        responses: list[IMResponse | None] = [None] * len(queries)
        groups: dict[tuple, list[_Pending]] = {}
        for i, q in enumerate(queries):
            try:
                q.validate()
            except ParameterError as exc:
                responses[i] = self._finish_error(q, exc, submitted_at)
                continue
            groups.setdefault(q.batch_key(), []).append(
                _Pending(i, q, submitted_at)
            )
        for pending in groups.values():
            for p, resp in self._serve_group(pending):
                responses[p.index] = resp
        self._project_stats()
        return [
            r if r is not None
            else IMResponse(status="error", error="internal: query dropped")
            for r in responses
        ]

    def add_worker(self, worker: ShardWorker) -> None:
        """Route to one more replica (control-plane scale-up).

        The worker must be built for this router's plan; replica ids may
        exceed the plan's initial ``replication``.
        """
        if worker.plan != self.plan:
            raise ParameterError(
                f"worker {worker.name} built for a different ShardPlan"
            )
        reps = self._replicas.setdefault(worker.shard_id, [])
        if any(w.name == worker.name for w in reps):
            raise ParameterError(f"worker {worker.name} already routed")
        reps.append(worker)
        reps.sort(key=lambda w: w.replica_id)
        self._failures.setdefault(worker.name, 0)

    def remove_worker(self, worker: ShardWorker) -> None:
        """Stop routing to a replica (control-plane scale-down); refuses
        to leave a shard with no replicas at all."""
        reps = self._replicas.get(worker.shard_id, [])
        if worker not in reps:
            raise ParameterError(f"worker {worker.name} is not routed")
        if len(reps) == 1:
            raise ParameterError(
                f"removing {worker.name} would leave shard "
                f"{worker.shard_id} without replicas"
            )
        reps.remove(worker)
        self._failures.pop(worker.name, None)

    def health_snapshot(self) -> dict[str, Any]:
        """Per-replica consecutive-failure counts and up/down state."""
        out = {}
        for shard, reps in sorted(self._replicas.items()):
            out[str(shard)] = {
                w.name: {
                    "consecutive_failures": self._failures[w.name],
                    "healthy": (
                        self._failures[w.name] < self.config.unhealthy_after
                    ),
                }
                for w in reps
            }
        return out

    def stats_snapshot(self) -> dict[str, Any]:
        """Router + per-shard health as one JSON-able dict."""
        return {
            "router": self.stats.to_dict(),
            "plan": self.plan.describe(),
            "health": self.health_snapshot(),
        }

    # ------------------------------------------------------------- scattering
    def _ordered_replicas(self, shard: int) -> list[ShardWorker]:
        """Healthy-first replica order (stable by replica id on ties)."""
        return sorted(
            self._replicas[shard], key=lambda w: self._failures[w.name]
        )

    def _call(self, shard: int, op: Callable[[ShardWorker], Any]) -> Any:
        """Run ``op`` on some replica of ``shard``, failing over through the
        others on retryable errors; raises :class:`ShardDownError` when
        every replica refused."""
        tel = telemetry.get()
        policy = self.config.retry
        deadline = self.config.worker_deadline_s
        last: Exception | None = None
        replicas = self._ordered_replicas(shard)
        for nth, worker in enumerate(replicas):
            for attempt in range(1, max(1, policy.max_attempts) + 1):
                self.stats.scatter_calls += 1
                start = time.monotonic()
                try:
                    result = op(worker)
                except Exception as exc:  # noqa: BLE001 - classified below
                    if not policy.is_retryable(exc):
                        raise
                    last = exc
                    self._failures[worker.name] += 1
                    if tel.enabled:
                        tel.registry.counter("shard.router.replica_errors").inc()
                    delay = policy.delay_for(attempt)
                    if delay > 0 and attempt < policy.max_attempts:
                        time.sleep(delay)
                    continue
                elapsed = time.monotonic() - start
                if tel.enabled:
                    tel.registry.histogram(
                        "shard.router.call_latency_s"
                    ).observe(elapsed)
                if deadline is not None and elapsed > deadline:
                    self.stats.deadline_misses += 1
                    self._failures[worker.name] += 1
                    if tel.enabled:
                        tel.registry.counter(
                            "shard.router.deadline_misses"
                        ).inc()
                else:
                    self._failures[worker.name] = 0
                if nth > 0:
                    self.stats.failovers += 1
                    if tel.enabled:
                        tel.registry.counter("shard.router.failovers").inc()
                return result
        raise ShardDownError(shard, last or BackendError("no replicas"))

    # ---------------------------------------------------------------- serving
    def _open_sessions(self, sess: _GroupSession) -> None:
        """Scatter ``session_open``; drops shards whose replicas are all
        down (handled by the caller via ``sess.live``)."""
        tel = telemetry.get()
        still_live = []
        for shard in sess.live:
            try:
                info = self._call(
                    shard,
                    lambda w: w.session_open(
                        sess.sid, sess.spec, with_counts=True
                    ),
                )
            except ShardDownError:
                self._note_shard_loss(sess, shard)
                continue
            sess.opens[shard] = info
            sess.covered[shard] = []
            still_live.append(shard)
        sess.live = still_live
        if tel.enabled:
            tel.registry.histogram("shard.router.gather_fanin").observe(
                len(still_live)
            )

    def _note_shard_loss(self, sess: _GroupSession, shard: int) -> None:
        sess.lost_shard = True
        self.stats.shard_losses += 1
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter("shard.router.shard_losses").inc()

    def _sum_counters(self, sess: _GroupSession) -> np.ndarray:
        """Exact global counter: int64 sum of per-shard partials."""
        n = sess.opens[sess.live[0]].num_vertices
        counts = np.zeros(n, dtype=np.int64)
        for s in sess.live:
            c = sess.opens[s].counter
            if c is not None:
                counts += c.astype(np.int64, copy=False)
        return counts

    def _drop_shard(self, sess: _GroupSession, lost: int) -> None:
        """A shard died mid-selection: drop it and flag a restart."""
        sess.live = [s for s in sess.live if s != lost]
        sess.needs_restart = True
        self._note_shard_loss(sess, lost)

    def _scatter_cover(self, sess: _GroupSession, v: int) -> int:
        """One greedy round's scatter: apply seed ``v`` on every live shard,
        gather decrements into the fused counter; returns the total newly
        covered sets.  A shard lost here flags a selection restart."""
        tel = telemetry.get()
        history = tuple(sess.history)
        new_covered = 0
        n = sess.counts.shape[0]
        for s in list(sess.live):
            try:
                res: CoverResult = self._call(
                    s,
                    lambda w: w.session_cover(sess.sid, sess.spec, history, v),
                )
            except ShardDownError:
                self._drop_shard(sess, s)
                return new_covered
            if res.dec.size:
                sess.counts -= np.bincount(res.dec, minlength=n).astype(
                    np.int64
                )
            sess.covered[s].append(res.new_covered)
            new_covered += res.new_covered
        if tel.enabled:
            tel.registry.histogram("shard.router.gather_fanin").observe(
                len(sess.live)
            )
        return new_covered

    def _select(self, sess: _GroupSession, k_max: int) -> np.ndarray:
        """Run the selection, restarting over the survivors on shard loss.

        A restart (rather than splicing a partially full-sketch-informed
        prefix onto survivor-only rounds) keeps the degraded contract
        exact: the answer equals what a cluster holding only the surviving
        shards would have produced from scratch.  Surviving workers
        self-heal to the empty history on the first post-restart call, and
        each restart removes at least one shard, so the loop is bounded.
        """
        while True:
            seeds = self._select_pass(sess, k_max)
            if seeds is not None:
                return seeds
            if not sess.live:
                raise ShardDownError(
                    -1, BackendError("all shards lost mid-query")
                )
            self.stats.resyncs += 1
            self._tel_inc("shard.router.resyncs")

    def _select_pass(self, sess: _GroupSession, k_max: int) -> np.ndarray | None:
        """The exact :func:`efficient_select` greedy loop, scatter-gathered;
        returns None when a shard was lost mid-pass (caller restarts).

        Round structure is copied operation-for-operation from the kernel:
        ``argmax`` (np.argmax == lowest-id tie-break), membership+retire
        (scattered), counter decrement (gathered), ``counts[chosen] = -1``,
        and the all-covered lowest-id fill — which is what makes the output
        byte-identical to the single-node engine."""
        sess.needs_restart = False
        sess.history = []
        for s in sess.live:
            sess.covered[s] = []
        sess.counts = self._sum_counters(sess)
        n = sess.counts.shape[0]
        sess.chosen = np.zeros(n, dtype=bool)
        seeds = np.empty(k_max, dtype=np.int64)
        covered_total = 0
        rnd = 0
        while rnd < k_max:
            v = int(np.argmax(sess.counts))
            seeds[rnd] = v
            sess.chosen[v] = True
            covered_total += self._scatter_cover(sess, v)
            if sess.needs_restart:
                return None
            sess.history.append(v)
            sess.counts[sess.chosen] = -1
            num_sets = sess.num_live_sets
            if covered_total >= num_sets and rnd + 1 < k_max:
                fill = np.flatnonzero(~sess.chosen)[: k_max - rnd - 1]
                seeds[rnd + 1 : rnd + 1 + fill.size] = fill
                for fv in fill.tolist():
                    sess.chosen[fv] = True
                    sess.history.append(int(fv))
                    for s in sess.live:
                        sess.covered[s].append(0)
                break
            rnd += 1
        return seeds

    def _serve_group(
        self, pending: list[_Pending]
    ) -> list[tuple[_Pending, IMResponse]]:
        tel = telemetry.get()
        out: list[tuple[_Pending, IMResponse]] = []
        self.stats.batches += 1
        pending = self._split_expired(pending, out)
        if not pending:
            return out

        q0 = pending[0].query
        spec = SketchSpec.from_query(q0, self.config.default_theta)
        self._session_seq += 1
        sess = _GroupSession(
            f"g{self._session_seq}", spec, list(range(self.plan.num_shards))
        )
        with tel.span(
            "shard.route", dataset=spec.dataset, size=len(pending)
        ):
            try:
                self._open_sessions(sess)
                if not sess.live:
                    raise BackendError(
                        "all shards down: no replica could open the session"
                    )
                if sess.lost_shard and not self.config.allow_degraded:
                    raise BackendError(
                        "shard down and degraded answers are disabled"
                    )
                if sess.num_live_sets == 0:
                    raise ParameterError(
                        "cannot select seeds from an empty RRR store"
                    )
            except ReproError as exc:
                for p in pending:
                    out.append(
                        (p, self._finish_error(p.query, exc, p.submitted_at))
                    )
                self._close_sessions(sess)
                return out

            num_vertices = sess.opens[sess.live[0]].num_vertices
            live: list[_Pending] = []
            for p in pending:
                if p.query.k > num_vertices:
                    exc = ParameterError(
                        f"k={p.query.k} exceeds the vertex count {num_vertices}"
                    )
                    out.append(
                        (p, self._finish_error(p.query, exc, p.submitted_at))
                    )
                else:
                    live.append(p)
            if not live:
                self._close_sessions(sess)
                return out

            cached = all(sess.opens[s].warm for s in sess.live)
            k_max = max(p.query.k for p in live)
            try:
                seeds = self._select(sess, k_max)
            except ReproError as exc:
                if sess.lost_shard and not self.config.allow_degraded:
                    exc = BackendError(
                        f"shard down and degraded answers are disabled ({exc})"
                    )
                for p in live:
                    out.append(
                        (p, self._finish_error(p.query, exc, p.submitted_at))
                    )
                self._close_sessions(sess)
                return out

            if sess.lost_shard and not self.config.allow_degraded:
                exc = BackendError(
                    "shard down and degraded answers are disabled"
                )
                for p in live:
                    out.append(
                        (p, self._finish_error(p.query, exc, p.submitted_at))
                    )
                self._close_sessions(sess)
                return out

            covered = np.cumsum(sess.covered_rounds())
            num_sets = sess.num_live_sets
            degraded = sess.lost_shard

        for p in live:
            if self._expired(p):
                out.append((p, self._finish_timeout(p)))
                continue
            k = p.query.k
            coverage = float(covered[k - 1]) / num_sets if num_sets else 0.0
            out.append(
                (
                    p,
                    self._finish_ok(
                        p, seeds[:k], coverage, num_vertices, num_sets,
                        cached, degraded=degraded,
                    ),
                )
            )
        self._close_sessions(sess)
        return out

    def _close_sessions(self, sess: _GroupSession) -> None:
        for s in sess.live:
            for w in self._replicas[s]:
                w.session_close(sess.sid)

    # ------------------------------------------------------------- responses
    def _finish_error(
        self, query: IMQuery, exc: Exception, submitted_at: float
    ) -> IMResponse:
        self.stats.queries += 1
        self.stats.errors += 1
        self._tel_inc("shard.router.queries")
        self._tel_inc("shard.router.errors")
        return IMResponse(
            status="error",
            id=query.id,
            error=f"{type(exc).__name__}: {exc}",
            latency_s=time.monotonic() - submitted_at,
        )

    def _finish_timeout(self, p: _Pending) -> IMResponse:
        self.stats.queries += 1
        self.stats.timeouts += 1
        self._tel_inc("shard.router.queries")
        self._tel_inc("shard.router.timeouts")
        return IMResponse(
            status="timeout",
            id=p.query.id,
            error=(
                f"TimeoutError: deadline of {p.query.deadline_s}s exceeded "
                f"after {time.monotonic() - p.submitted_at:.3f}s"
            ),
            latency_s=time.monotonic() - p.submitted_at,
        )

    def _finish_ok(
        self,
        p: _Pending,
        seeds: np.ndarray,
        coverage: float,
        num_vertices: int,
        num_sets: int,
        cached: bool,
        degraded: bool,
    ) -> IMResponse:
        latency = time.monotonic() - p.submitted_at
        self.stats.queries += 1
        self.stats.ok += 1
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter("shard.router.queries").inc()
            tel.registry.histogram("shard.router.query_latency_s").observe(
                latency
            )
        if degraded:
            self.stats.degraded += 1
            self._tel_inc("shard.router.degraded")
            self._tel_inc("resilience.degraded_responses")
        return IMResponse(
            status="ok",
            id=p.query.id,
            seeds=[int(v) for v in seeds],
            spread_estimate=num_vertices * coverage,
            coverage_fraction=coverage,
            num_rrrsets=num_sets,
            cached=cached,
            degraded=degraded,
            latency_s=latency,
        )

    def _expired(self, p: _Pending) -> bool:
        deadline = p.deadline()
        return deadline is not None and time.monotonic() > deadline

    def _split_expired(
        self, pending: list[_Pending], out: list
    ) -> list[_Pending]:
        live: list[_Pending] = []
        for p in pending:
            if self._expired(p):
                out.append((p, self._finish_timeout(p)))
            else:
                live.append(p)
        return live

    def _tel_inc(self, name: str, amount: float = 1) -> None:
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter(name).inc(amount)

    def _project_stats(self) -> None:
        tel = telemetry.get()
        if tel.enabled:
            telemetry.record_shard_stats(
                tel.registry, self.stats, self.health_snapshot()
            )
