"""repro.shard: partitioned multi-worker serving with exact scatter-gather.

The sharding layer spreads one serving sketch across ``num_shards``
disjoint sub-sketches, each held by ``replication`` interchangeable
workers, and routes queries so the merged greedy selection is
**byte-identical** to the single-node :class:`~repro.service.engine.
QueryEngine` — while a replica death fails over invisibly and a whole
shard loss degrades to an exact answer over the survivors
(``degraded:true``).  See docs/sharding.md.

Layout:

- :mod:`repro.shard.plan` — :class:`ShardPlan`: consistent-hash (or
  block/balanced) RRR-set ownership, replication, sub-sketch fingerprints;
- :mod:`repro.shard.worker` — :class:`ShardWorker`: one replica, a
  :class:`QueryEngine`-backed sub-sketch plus the self-healing scatter
  protocol and fault hooks;
- :mod:`repro.shard.router` — :class:`Router`: scatter-gather selection,
  replica failover, health tracking, degraded answers;
- :mod:`repro.shard.cluster` — :class:`ShardCluster`: plan + workers +
  router as one handle with build/publish/kill/revive.
"""

from repro.shard.cluster import ShardCluster
from repro.shard.plan import ShardPlan, shard_fingerprint
from repro.shard.router import Router, RouterConfig, RouterStats
from repro.shard.worker import ShardWorker, SketchSpec

__all__ = [
    "Router",
    "RouterConfig",
    "RouterStats",
    "ShardCluster",
    "ShardPlan",
    "ShardWorker",
    "SketchSpec",
    "shard_fingerprint",
]
