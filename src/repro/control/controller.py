"""The tick-driven reconcile loop: probe → policies → actions.

:class:`Controller` is the only control-plane piece with side effects.
Each :meth:`tick` takes one :class:`~repro.control.probe.HealthSample`
(from a live probe or a fixture), asks every policy for its actions, and
— unless ``dry_run`` — applies them to the attached handles:

==================  =====================================================
action kind         applied as
==================  =====================================================
``scale_up``        ``cluster.add_replica(shard)`` on every shard
``scale_down``      ``cluster.remove_replica(shard)`` on every shard
``revive``          ``cluster.revive(shard, replica)`` (re-warms from shm)
``quarantine``      bookkeeping only (the policy stops proposing revives)
``tune_admission``  ``gateway.set_admission(**params)``
==================  =====================================================

Each application runs under a per-action
:class:`~repro.resilience.retry.RetryPolicy` and an optional
:class:`~repro.resilience.faults.FaultPlan` (scope ``"action"``, indexed
by the controller's global action sequence number), so CI can make a
revive fail transiently and assert the retry recovers it.  A failed
action is reported in the tick's outcomes and counted — the loop itself
never dies.

Clock and sleep are injected; tests drive virtual time, the CLI passes
the real ones.  Telemetry lands under ``control.*`` (ticks, actions by
kind, failures, a reconcile-latency histogram).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import telemetry
from repro.errors import ParameterError, ReproError
from repro.resilience.retry import RetryPolicy
from repro.control.probe import HealthProbe, HealthSample

__all__ = ["Controller", "ControllerConfig", "TickReport"]


@dataclass(frozen=True)
class ControllerConfig:
    """Reconcile-loop knobs."""

    interval_s: float = 1.0
    dry_run: bool = False
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_attempts=2, base_delay_s=0.0)
    )

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ParameterError(
                f"interval_s must be positive, got {self.interval_s}"
            )


@dataclass
class TickReport:
    """What one reconcile tick saw and did (JSON-able)."""

    tick: int
    ts: float
    elapsed_s: float
    sample: HealthSample
    outcomes: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "tick": self.tick,
            "ts": self.ts,
            "elapsed_s": self.elapsed_s,
            "sample": self.sample.to_dict(),
            "actions": list(self.outcomes),
        }


class Controller:
    """Composes one probe and N policies over the attached data plane.

    ``probe`` is a :class:`HealthProbe` or any zero-argument callable
    returning a :class:`HealthSample` (fixtures plug in here).  Policies
    are consulted in order; their actions apply in order within a tick.
    """

    def __init__(
        self,
        probe: Any,
        policies: list[Any],
        *,
        cluster: Any = None,
        gateway: Any = None,
        rollout: Any = None,
        config: ControllerConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        fault_plan: Any = None,
    ):
        if isinstance(probe, HealthProbe):
            self._probe: Callable[[], HealthSample] = probe.sample
        elif callable(probe):
            self._probe = probe
        else:
            raise ParameterError(
                "probe must be a HealthProbe or a callable returning "
                "a HealthSample"
            )
        self.policies = list(policies)
        self.cluster = cluster
        self.gateway = gateway
        self.rollout = rollout
        self.config = config or ControllerConfig()
        self._clock = clock
        self._sleep = sleep
        self.fault_plan = fault_plan
        self.ticks = 0
        self.actions_applied = 0
        self.action_failures = 0
        self.scale_events = 0
        self.revives = 0
        self._action_seq = 0
        self.actions_by_kind: dict[str, int] = {}

    # ------------------------------------------------------------------ tick
    def tick(self) -> TickReport:
        t0 = self._clock()
        sample = self._probe()
        actions = []
        for policy in self.policies:
            actions.extend(policy.propose(sample, self.ticks))
        outcomes: list[dict[str, Any]] = []
        for action in actions:
            doc = action.to_dict()
            seq = self._action_seq
            self._action_seq += 1
            if self.config.dry_run:
                doc["outcome"] = "planned"
            else:
                try:
                    self.config.retry.call(
                        lambda: self._apply(action, seq),
                        label=f"control.{action.kind}",
                    )
                except ReproError as exc:
                    doc["outcome"] = "failed"
                    doc["error"] = f"{type(exc).__name__}: {exc}"
                    self.action_failures += 1
                    self._tel_inc("control.action_failures")
                else:
                    doc["outcome"] = "applied"
                    self.actions_applied += 1
            self.actions_by_kind[action.kind] = (
                self.actions_by_kind.get(action.kind, 0) + 1
            )
            self._tel_inc(f"control.actions.{action.kind}")
            outcomes.append(doc)
        self.ticks += 1
        elapsed = max(0.0, self._clock() - t0)
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter("control.ticks").inc()
            tel.registry.histogram("control.reconcile_s").observe(elapsed)
        return TickReport(
            tick=self.ticks - 1, ts=sample.ts, elapsed_s=elapsed,
            sample=sample, outcomes=outcomes,
        )

    def run(
        self,
        *,
        ticks: int | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> list[TickReport]:
        """Run the loop for ``ticks`` ticks (or until ``should_stop``)."""
        reports: list[TickReport] = []
        while ticks is None or len(reports) < ticks:
            if should_stop is not None and should_stop():
                break
            reports.append(self.tick())
            if ticks is not None and len(reports) >= ticks:
                break
            self._sleep(self.config.interval_s)
        return reports

    # ----------------------------------------------------------------- apply
    def _apply(self, action, seq: int) -> None:
        if self.fault_plan is not None:
            self.fault_plan.invoke("action", seq, lambda: None)
        kind = action.kind
        if kind == "scale_up":
            self._require(self.cluster, kind)
            for shard in range(self.cluster.plan.num_shards):
                self.cluster.add_replica(shard)
            self.scale_events += 1
            self._tel_inc("control.scale_events")
        elif kind == "scale_down":
            self._require(self.cluster, kind)
            for shard in range(self.cluster.plan.num_shards):
                self.cluster.remove_replica(shard)
            self.scale_events += 1
            self._tel_inc("control.scale_events")
        elif kind == "revive":
            self._require(self.cluster, kind)
            self.cluster.revive(
                int(action.params["shard"]), int(action.params["replica"])
            )
            self.revives += 1
            self._tel_inc("control.revives")
        elif kind == "quarantine":
            # The proposing policy already stopped reviving the replica;
            # nothing to change on the data plane.
            pass
        elif kind == "tune_admission":
            self._require(self.gateway, kind)
            self.gateway.set_admission(**action.params)
        else:
            raise ParameterError(f"unknown action kind {kind!r}")

    @staticmethod
    def _require(handle: Any, kind: str) -> None:
        if handle is None:
            raise ParameterError(
                f"action {kind!r} needs a handle the controller was not given"
            )

    # ---------------------------------------------------------------- status
    def status(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "ticks": self.ticks,
            "actions_applied": self.actions_applied,
            "action_failures": self.action_failures,
            "actions_by_kind": dict(self.actions_by_kind),
            "scale_events": self.scale_events,
            "revives": self.revives,
            "dry_run": self.config.dry_run,
        }
        for policy in self.policies:
            quarantined = getattr(policy, "quarantined", None)
            if quarantined is not None:
                doc["quarantined"] = sorted(quarantined)
        if self.rollout is not None:
            doc["rollout"] = self.rollout.status()
        return doc

    @staticmethod
    def _tel_inc(name: str, amount: float = 1) -> None:
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter(name).inc(amount)
