"""repro.control — the telemetry-driven control plane (docs/control.md).

Closes the loop the data-plane layers leave open: probes
(:mod:`repro.control.probe`) condense stats surfaces and telemetry into
typed samples, policies (:mod:`repro.control.policy`) turn samples into
deterministic actions, the rollout gate (:mod:`repro.control.rollout`)
canaries dynamic epochs before cluster fan-out, and the controller
(:mod:`repro.control.controller`) applies it all on a tick loop with
retries and fault injection.  ``repro control run|status|plan`` is the
CLI entry point.
"""

from repro.control.controller import Controller, ControllerConfig, TickReport
from repro.control.policy import (
    Action,
    AdmissionConfig,
    AdmissionPolicy,
    AutoscaleConfig,
    AutoscalePolicy,
    SelfHealConfig,
    SelfHealPolicy,
)
from repro.control.probe import (
    HealthProbe,
    HealthSample,
    RateTracker,
    ReplicaHealth,
)
from repro.control.rollout import EpochRollout, RolloutConfig

__all__ = [
    "Action",
    "AdmissionConfig",
    "AdmissionPolicy",
    "AutoscaleConfig",
    "AutoscalePolicy",
    "Controller",
    "ControllerConfig",
    "EpochRollout",
    "HealthProbe",
    "HealthSample",
    "RateTracker",
    "ReplicaHealth",
    "RolloutConfig",
    "SelfHealConfig",
    "SelfHealPolicy",
    "TickReport",
]
