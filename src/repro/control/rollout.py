"""Safe epoch rollout: canary → compare → promote-or-rollback.

:class:`EpochRollout` sits between a
:class:`~repro.dynamic.serving.DynamicService` and a
:class:`~repro.shard.cluster.ShardCluster`: instead of subscribing the
cluster's ``publish`` directly as the service's publish hook, the
rollout's :meth:`publish` is subscribed and decides *whether* the cluster
gets the new epoch.

The correctness lever is the stack's byte-identity contract: a shard
cluster serving epoch E answers a fixed probe query with exactly the
seed set the single-node engine (here: the dynamic service itself, which
warms its own engine before fanning out) produces for E.  So the canary
check is exact, not statistical:

1. **canary** — install the new epoch's graph + sub-sketch slice on one
   replica per shard only (the canary set), leaving the other replicas on
   the old epoch;
2. **compare** — run one deterministic probe query (fixed ``k``, the
   service's own model/epsilon/seed/theta) through a router over just the
   canary replicas, and compare its seed set against the service's own
   answer for the new epoch;
3. **promote** on an exact match: fan the epoch out to every replica via
   :meth:`ShardCluster.publish`;
4. **rollback** on mismatch, canary error, or degraded canary answer:
   restore the previous graph on the canary replicas, evict the new
   epoch's cache entries, mark the rollout ``degraded``, and increment
   ``control.rollbacks`` — the cluster keeps serving the old epoch.

A :class:`~repro.resilience.faults.FaultPlan` with scope ``"canary"``
(indexed by epoch) can corrupt or crash the comparison deterministically,
which is how tests force the rollback path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro import telemetry
from repro.errors import ParameterError, ReproError
from repro.resilience.retry import RetryPolicy
from repro.service.protocol import IMQuery
from repro.shard.plan import shard_fingerprint
from repro.shard.router import Router, RouterConfig
from repro.shard.worker import SketchSpec

__all__ = ["EpochRollout", "RolloutConfig"]


@dataclass(frozen=True)
class RolloutConfig:
    """Canary knobs.

    ``probe_k`` is the seed-set size of the deterministic probe query;
    every other query parameter is pinned to the publishing service's
    sketch, so the comparison is apples-to-apples by construction.
    """

    probe_k: int = 5

    def __post_init__(self) -> None:
        if self.probe_k < 1:
            raise ParameterError(f"probe_k must be >= 1, got {self.probe_k}")


class EpochRollout:
    """Canary gate between a dynamic service and a shard cluster."""

    def __init__(
        self,
        service: Any,
        cluster: Any,
        *,
        config: RolloutConfig | None = None,
        fault_plan: Any = None,
    ):
        self.service = service
        self.cluster = cluster
        self.config = config or RolloutConfig()
        self.fault_plan = fault_plan
        self.degraded = False
        self.rollbacks = 0
        self.promotions = 0
        self.history: list[dict[str, Any]] = []
        self._bootstrapped: set[str] = set()

    # ------------------------------------------------------------ lifecycle
    def attach(self, *, replay: bool = True) -> None:
        """Subscribe to the service's publish fan-out (the canary seam)."""
        self.service.add_publish_hook(self.publish, replay=replay)

    def detach(self) -> bool:
        return self.service.remove_publish_hook(self.publish)

    # -------------------------------------------------------------- rollout
    def publish(
        self,
        *,
        dataset: str,
        graph: Any,
        fingerprint: str,
        store: Any,
        counter: np.ndarray | None = None,
        meta: dict | None = None,
    ) -> dict[str, Any]:
        """Publish-hook entry point: gate one epoch into the cluster."""
        ds = str(dataset).lower()
        extra = dict(meta or {})
        epoch = int(extra.get("epoch", 0))
        if ds not in self._bootstrapped:
            # First epoch for this dataset: there is no old epoch to keep
            # serving, so the canary comparison has nothing to protect.
            self._bootstrapped.add(ds)
            self.cluster.publish(
                dataset=ds, graph=graph, fingerprint=fingerprint,
                store=store, counter=counter, meta=extra,
            )
            return self._record(ds, epoch, fingerprint, "bootstrap", None, None)

        spec = SketchSpec(
            dataset=ds,
            model=str(extra.get("model", "IC")).upper(),
            epsilon=float(extra.get("epsilon", 0.5)),
            seed=int(extra.get("seed", 0)),
            num_sets=int(extra.get("num_sets", len(store))),
        )
        reference = self.service.query(self.config.probe_k)
        canaries = self._pick_canaries()
        restore: dict[str, tuple[Any, Any]] = {}
        sub_fps: list[str] = []
        match = False
        canary_seeds: list[int] | None = None
        error: str | None = None
        try:
            if canaries is None:
                raise ReproError(
                    "no live replica available to canary on some shard"
                )
            parts = self.cluster.plan.partition_store(store, fingerprint).trim()
            for w in canaries:
                restore[w.name] = (w, w.installed_graph(ds))
                sub = parts.parts[w.shard_id]
                sub_fp = shard_fingerprint(fingerprint, w.shard_id, self.cluster.plan)
                sub_fps.append(sub_fp)
                w.install_graph(ds, graph)
                w.engine.warm(
                    sub_fp, sub, counter=sub.vertex_counts(),
                    meta={**extra, "shard": w.shard_id, "canary": True},
                )
            router = Router(
                canaries,
                config=RouterConfig(
                    default_theta=spec.num_sets,
                    retry=RetryPolicy(max_attempts=1),
                    allow_degraded=False,
                ),
                plan=self.cluster.plan,
            )
            resp = router.query(
                IMQuery(
                    dataset=ds, model=spec.model, epsilon=spec.epsilon,
                    seed=spec.seed, k=self.config.probe_k,
                    theta_cap=spec.num_sets,
                )
            )
            seeds = list(resp.seeds) if resp.seeds else []
            if self.fault_plan is not None:
                seeds = self.fault_plan.invoke("canary", epoch, lambda: seeds)
            canary_seeds = seeds
            match = (
                resp.ok
                and not resp.degraded
                and reference.ok
                and seeds == list(reference.seeds)
            )
            if not match and resp.error:
                error = resp.error
        except ReproError as exc:
            error = f"{type(exc).__name__}: {exc}"
            match = False

        if match:
            self.cluster.publish(
                dataset=ds, graph=graph, fingerprint=fingerprint,
                store=store, counter=counter, meta=extra,
            )
            self.degraded = False
            self.promotions += 1
            self._tel("control.promotions", degraded=False)
            return self._record(
                ds, epoch, fingerprint, "promote",
                list(reference.seeds), canary_seeds,
            )

        # Rollback: put the canary replicas back on the old epoch and drop
        # whatever the canary warmed, so the cluster's answers stay the old
        # epoch's everywhere.
        for w, prev in restore.values():
            if prev is not None:
                w.install_graph(ds, prev[0])
            for sub_fp in sub_fps:
                w.engine.cache.evict(sub_fp)
        self.degraded = True
        self.rollbacks += 1
        self._tel("control.rollbacks", degraded=True)
        return self._record(
            ds, epoch, fingerprint, "rollback",
            list(reference.seeds) if reference.ok else None,
            canary_seeds, error=error,
        )

    # -------------------------------------------------------------- helpers
    def _pick_canaries(self) -> list[Any] | None:
        """One live replica per shard (lowest replica id), or ``None`` when
        some shard has no live replica at all."""
        out: list[Any] = []
        for shard in range(self.cluster.plan.num_shards):
            live = [w for w in self.cluster.replicas(shard) if not w.dead]
            if not live:
                return None
            out.append(min(live, key=lambda w: w.replica_id))
        return out

    def _tel(self, counter: str, *, degraded: bool) -> None:
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter(counter).inc()
            tel.registry.gauge("control.rollout_degraded").set(
                1.0 if degraded else 0.0
            )

    def _record(
        self,
        dataset: str,
        epoch: int,
        fingerprint: str,
        action: str,
        reference: list[int] | None,
        canary: list[int] | None,
        *,
        error: str | None = None,
    ) -> dict[str, Any]:
        report = {
            "dataset": dataset,
            "epoch": epoch,
            "fingerprint": fingerprint,
            "action": action,
            "reference_seeds": reference,
            "canary_seeds": canary,
            "degraded": self.degraded,
            "error": error,
        }
        self.history.append(report)
        return report

    def status(self) -> dict[str, Any]:
        return {
            "degraded": self.degraded,
            "promotions": self.promotions,
            "rollbacks": self.rollbacks,
            "epochs_seen": len(self.history),
            "last": self.history[-1] if self.history else None,
        }
