"""Deterministic reconciliation policies: sample in, actions out.

Every policy is a plain object with one method —
``propose(sample, tick) -> list[Action]`` — and no side effects on the
stack.  Determinism is the design constraint: given the same sample
sequence a policy emits the same action sequence, which is what lets
``repro control plan --fixture`` print an exact plan, lets unit tests
drive policies from hand-written samples, and keeps the controller's
dry-run faithful to its live run.

All three policies damp themselves (docs/control.md):

- **hysteresis** — a condition must hold for N consecutive ticks before
  an action fires (``breach_ticks`` / ``idle_ticks``), so one noisy
  sample never reconfigures the cluster;
- **cooldown** — after a scale event the autoscaler holds for
  ``cooldown_ticks`` regardless of what the samples say, giving the
  action time to show up in the metrics it was based on;
- **quarantine** — a replica revived ``flap_threshold`` times within
  ``flap_window_ticks`` is abandoned to the operator rather than revived
  a fourth time (crash-looping hardware does not get better by retrying).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ParameterError
from repro.control.probe import HealthSample

__all__ = [
    "Action",
    "AdmissionConfig",
    "AdmissionPolicy",
    "AutoscaleConfig",
    "AutoscalePolicy",
    "SelfHealConfig",
    "SelfHealPolicy",
]


@dataclass(frozen=True)
class Action:
    """One proposed change to the stack, JSON-able for dry-run plans."""

    kind: str          # scale_up | scale_down | revive | quarantine | tune_admission
    target: str = "cluster"
    params: dict[str, Any] = field(default_factory=dict)
    reason: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "target": self.target,
            "params": dict(self.params),
            "reason": self.reason,
        }


# --------------------------------------------------------------- autoscaler
@dataclass(frozen=True)
class AutoscaleConfig:
    """SLO autoscaler knobs.

    ``memory_budget_bytes`` caps the *projected* post-scale footprint:
    current sketch + segment bytes plus one more replica-set of per-shard
    slices (with an shm plane the extra replicas are zero-copy views, so
    the projection conservatively re-counts the slices anyway — the
    budget is a ceiling, not an estimate).
    """

    p99_slo_s: float = 0.5
    shed_rate_slo: float = 1.0
    breach_ticks: int = 3
    idle_ticks: int = 5
    cooldown_ticks: int = 5
    min_replicas: int = 1
    max_replicas: int = 4
    idle_fraction: float = 0.25
    memory_budget_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.p99_slo_s <= 0:
            raise ParameterError(
                f"p99_slo_s must be positive, got {self.p99_slo_s}"
            )
        if self.breach_ticks < 1 or self.idle_ticks < 1:
            raise ParameterError("breach_ticks and idle_ticks must be >= 1")
        if self.cooldown_ticks < 0:
            raise ParameterError(
                f"cooldown_ticks must be >= 0, got {self.cooldown_ticks}"
            )
        if not (1 <= self.min_replicas <= self.max_replicas):
            raise ParameterError(
                "need 1 <= min_replicas <= max_replicas, got "
                f"[{self.min_replicas}, {self.max_replicas}]"
            )
        if not (0.0 <= self.idle_fraction < 1.0):
            raise ParameterError(
                f"idle_fraction must be in [0, 1), got {self.idle_fraction}"
            )


class AutoscalePolicy:
    """Scale replication up on sustained SLO breach, down on sustained idle.

    A *breach* is a windowed p99 above the SLO or a shed rate above
    ``shed_rate_slo``; *idle* is a p99 under ``idle_fraction`` of the SLO
    with nothing queued and nothing shed.  Both must persist (hysteresis)
    and respect the cooldown; scale-up additionally respects
    ``max_replicas`` and the memory budget.  Scaling is uniform — every
    shard gains or loses one replica — so the cluster's replication stays
    homogeneous, matching how :class:`ShardPlan` describes it.
    """

    name = "autoscale"

    def __init__(self, config: AutoscaleConfig | None = None):
        self.config = config or AutoscaleConfig()
        self._breach_ticks = 0
        self._idle_ticks = 0
        self._last_scale_tick: int | None = None
        self.blocked_by_memory = 0

    # ------------------------------------------------------------- helpers
    def _replication(self, sample: HealthSample) -> int:
        per_shard = sample.replicas_per_shard()
        if not per_shard:
            return 0
        return min(per_shard.values())

    def _in_cooldown(self, tick: int) -> bool:
        return (
            self._last_scale_tick is not None
            and tick - self._last_scale_tick < self.config.cooldown_ticks
        )

    def _memory_allows(self, sample: HealthSample) -> bool:
        budget = self.config.memory_budget_bytes
        if budget is None:
            return True
        replication = max(1, self._replication(sample))
        per_replica_set = sample.sketch_bytes / replication
        projected = (
            sample.segment_bytes + sample.sketch_bytes + per_replica_set
        )
        return projected <= budget

    # -------------------------------------------------------------- policy
    def propose(self, sample: HealthSample, tick: int) -> list[Action]:
        cfg = self.config
        breach = (
            sample.p99_latency_s > cfg.p99_slo_s
            or sample.shed_rate > cfg.shed_rate_slo
        )
        idle = (
            sample.p99_latency_s <= cfg.p99_slo_s * cfg.idle_fraction
            and sample.shed_rate == 0.0
            and sample.queue_depth == 0
        )
        self._breach_ticks = self._breach_ticks + 1 if breach else 0
        self._idle_ticks = self._idle_ticks + 1 if idle else 0

        replication = self._replication(sample)
        if replication == 0 or self._in_cooldown(tick):
            return []
        if self._breach_ticks >= cfg.breach_ticks:
            if replication >= cfg.max_replicas:
                return []
            if not self._memory_allows(sample):
                self.blocked_by_memory += 1
                return []
            self._last_scale_tick = tick
            self._breach_ticks = 0
            return [
                Action(
                    kind="scale_up",
                    target="cluster",
                    params={"to": replication + 1},
                    reason=(
                        f"p99 {sample.p99_latency_s:.3f}s / shed "
                        f"{sample.shed_rate:.2f}/s breached the SLO for "
                        f"{cfg.breach_ticks} ticks"
                    ),
                )
            ]
        if self._idle_ticks >= cfg.idle_ticks and replication > cfg.min_replicas:
            self._last_scale_tick = tick
            self._idle_ticks = 0
            return [
                Action(
                    kind="scale_down",
                    target="cluster",
                    params={"to": replication - 1},
                    reason=(
                        f"idle for {cfg.idle_ticks} ticks "
                        f"(p99 {sample.p99_latency_s:.3f}s, empty queue)"
                    ),
                )
            ]
        return []


# ---------------------------------------------------------------- self-heal
@dataclass(frozen=True)
class SelfHealConfig:
    """Replica revival knobs (flap detection bounds the blast radius)."""

    flap_window_ticks: int = 20
    flap_threshold: int = 3

    def __post_init__(self) -> None:
        if self.flap_window_ticks < 1 or self.flap_threshold < 1:
            raise ParameterError(
                "flap_window_ticks and flap_threshold must be >= 1"
            )


class SelfHealPolicy:
    """Revive dead replicas; quarantine ones that keep dying.

    A replica revived ``flap_threshold`` times inside
    ``flap_window_ticks`` is flapping: instead of revive number N+1 the
    policy emits a one-shot ``quarantine`` action and stops proposing for
    that replica until :meth:`release` is called.
    """

    name = "self_heal"

    def __init__(self, config: SelfHealConfig | None = None):
        self.config = config or SelfHealConfig()
        self._revive_ticks: dict[str, list[int]] = {}
        self._quarantined: set[str] = set()

    @property
    def quarantined(self) -> frozenset[str]:
        return frozenset(self._quarantined)

    def release(self, name: str) -> bool:
        """Operator override: let a quarantined replica be revived again."""
        if name in self._quarantined:
            self._quarantined.discard(name)
            self._revive_ticks.pop(name, None)
            return True
        return False

    def propose(self, sample: HealthSample, tick: int) -> list[Action]:
        cfg = self.config
        actions: list[Action] = []
        for r in sample.dead_replicas():
            if r.name in self._quarantined:
                continue
            recent = [
                t
                for t in self._revive_ticks.get(r.name, [])
                if tick - t < cfg.flap_window_ticks
            ]
            if len(recent) >= cfg.flap_threshold:
                self._quarantined.add(r.name)
                actions.append(
                    Action(
                        kind="quarantine",
                        target=r.name,
                        params={"shard": r.shard, "replica": r.replica},
                        reason=(
                            f"{len(recent)} revives within "
                            f"{cfg.flap_window_ticks} ticks: flapping"
                        ),
                    )
                )
                continue
            recent.append(tick)
            self._revive_ticks[r.name] = recent
            actions.append(
                Action(
                    kind="revive",
                    target=r.name,
                    params={"shard": r.shard, "replica": r.replica},
                    reason="replica is down",
                )
            )
        return actions


# ----------------------------------------------------------- admission tuner
@dataclass(frozen=True)
class AdmissionConfig:
    """Gateway admission tuner bounds (never exceeded in either direction)."""

    min_queue_depth: int = 16
    max_queue_depth: int = 1024
    grow_factor: float = 2.0
    breach_ticks: int = 2
    relax_ticks: int = 6

    def __post_init__(self) -> None:
        if not (1 <= self.min_queue_depth <= self.max_queue_depth):
            raise ParameterError(
                "need 1 <= min_queue_depth <= max_queue_depth, got "
                f"[{self.min_queue_depth}, {self.max_queue_depth}]"
            )
        if self.grow_factor <= 1.0:
            raise ParameterError(
                f"grow_factor must be > 1, got {self.grow_factor}"
            )
        if self.breach_ticks < 1 or self.relax_ticks < 1:
            raise ParameterError("breach_ticks and relax_ticks must be >= 1")


class AdmissionPolicy:
    """Widen the gateway queue under queue-full shedding, shrink when idle.

    Widening absorbs short bursts without turning them away; it is bounded
    by ``max_queue_depth`` because an over-deep queue converts sheds into
    queue-deadline sheds instead (waiting is not serving).  When the queue
    sits empty with no sheds, depth decays back toward the configured
    floor so a past burst does not leave the gateway permanently
    permissive.
    """

    name = "admission"

    def __init__(self, config: AdmissionConfig | None = None):
        self.config = config or AdmissionConfig()
        self._full_ticks = 0
        self._calm_ticks = 0

    def propose(self, sample: HealthSample, tick: int) -> list[Action]:
        cfg = self.config
        capacity = sample.queue_capacity
        if capacity <= 0:  # no gateway in the stack
            return []
        queue_full_rate = sample.shed_by_cause.get("queue_full", 0.0)
        self._full_ticks = self._full_ticks + 1 if queue_full_rate > 0 else 0
        calm = sample.shed_rate == 0.0 and sample.queue_depth == 0
        self._calm_ticks = self._calm_ticks + 1 if calm else 0

        if self._full_ticks >= cfg.breach_ticks and capacity < cfg.max_queue_depth:
            depth = min(
                cfg.max_queue_depth, int(capacity * cfg.grow_factor)
            )
            self._full_ticks = 0
            return [
                Action(
                    kind="tune_admission",
                    target="gateway",
                    params={"queue_depth": depth},
                    reason=(
                        f"queue-full sheds at {queue_full_rate:.2f}/s for "
                        f"{cfg.breach_ticks} ticks"
                    ),
                )
            ]
        if self._calm_ticks >= cfg.relax_ticks and capacity > cfg.min_queue_depth:
            depth = max(
                cfg.min_queue_depth, int(capacity / cfg.grow_factor)
            )
            self._calm_ticks = 0
            return [
                Action(
                    kind="tune_admission",
                    target="gateway",
                    params={"queue_depth": depth},
                    reason=f"no sheds and empty queue for {cfg.relax_ticks} ticks",
                )
            ]
        return []
