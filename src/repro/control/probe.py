"""Health probing: stats surfaces + telemetry snapshots → typed samples.

The probe layer is the control plane's only *input*.  A
:class:`HealthProbe` polls whatever data-plane handles it was given — a
:class:`~repro.shard.cluster.ShardCluster`, a
:class:`~repro.gateway.server.GatewayServer`, a
:class:`~repro.dynamic.serving.DynamicService` — plus the process-wide
telemetry registry, and condenses everything into one flat, JSON-able
:class:`HealthSample` per tick.  Policies (:mod:`repro.control.policy`)
consume samples and nothing else, which is what makes them unit-testable
from fixtures and `repro control plan --fixture` deterministic.

Counters are cumulative, but policies want *rates* ("sheds per second
right now", not "sheds since boot") and *windowed* percentiles ("p99 over
the last tick", not since boot — a breach must clear once traffic
recovers).  :class:`RateTracker` turns consecutive
:meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot` dicts into both,
using :func:`~repro.telemetry.metrics.diff_snapshots` and clamping every
delta at zero: a registry ``clear()`` or an out-of-order merge-on-reduce
fold must read as "no progress", never as negative traffic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import telemetry
from repro.telemetry.metrics import Histogram, diff_snapshots

__all__ = ["HealthProbe", "HealthSample", "RateTracker", "ReplicaHealth"]


@dataclass(frozen=True)
class ReplicaHealth:
    """Liveness of one shard replica as seen by cluster + router."""

    name: str
    shard: int
    replica: int
    dead: bool
    consecutive_failures: int = 0
    healthy: bool = True

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "shard": self.shard,
            "replica": self.replica,
            "dead": self.dead,
            "consecutive_failures": self.consecutive_failures,
            "healthy": self.healthy,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ReplicaHealth":
        return cls(
            name=str(d.get("name", "")),
            shard=int(d.get("shard", 0)),
            replica=int(d.get("replica", 0)),
            dead=bool(d.get("dead", False)),
            consecutive_failures=int(d.get("consecutive_failures", 0)),
            healthy=bool(d.get("healthy", True)),
        )


@dataclass(frozen=True)
class HealthSample:
    """One tick's flattened view of the stack (everything a policy sees).

    Rates are per-second over the window since the previous sample;
    ``p95_latency_s`` / ``p99_latency_s`` are windowed the same way, so a
    past breach does not pin them high forever.  ``source`` records where
    the sample came from (``"live"`` or ``"fixture"``).
    """

    ts: float
    num_shards: int = 0
    replicas: tuple[ReplicaHealth, ...] = ()
    queue_depth: int = 0
    queue_capacity: int = 0
    predicted_wait_s: float = 0.0
    accept_rate: float = 0.0
    shed_rate: float = 0.0
    shed_by_cause: dict[str, float] = field(default_factory=dict)
    p95_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    query_rate: float = 0.0
    sketch_bytes: int = 0
    segment_bytes: int = 0
    graph_epoch: int = -1
    served_epoch: int = -1
    staleness: int = 0
    source: str = "live"

    def replicas_per_shard(self) -> dict[int, int]:
        """Configured replicas per shard (dead ones included)."""
        out: dict[int, int] = {}
        for r in self.replicas:
            out[r.shard] = out.get(r.shard, 0) + 1
        return out

    def dead_replicas(self) -> tuple[ReplicaHealth, ...]:
        return tuple(r for r in self.replicas if r.dead)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ts": self.ts,
            "num_shards": self.num_shards,
            "replicas": [r.to_dict() for r in self.replicas],
            "queue_depth": self.queue_depth,
            "queue_capacity": self.queue_capacity,
            "predicted_wait_s": self.predicted_wait_s,
            "accept_rate": self.accept_rate,
            "shed_rate": self.shed_rate,
            "shed_by_cause": dict(self.shed_by_cause),
            "p95_latency_s": self.p95_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "query_rate": self.query_rate,
            "sketch_bytes": self.sketch_bytes,
            "segment_bytes": self.segment_bytes,
            "graph_epoch": self.graph_epoch,
            "served_epoch": self.served_epoch,
            "staleness": self.staleness,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "HealthSample":
        return cls(
            ts=float(d.get("ts", 0.0)),
            num_shards=int(d.get("num_shards", 0)),
            replicas=tuple(
                ReplicaHealth.from_dict(r) for r in d.get("replicas", [])
            ),
            queue_depth=int(d.get("queue_depth", 0)),
            queue_capacity=int(d.get("queue_capacity", 0)),
            predicted_wait_s=float(d.get("predicted_wait_s", 0.0)),
            accept_rate=float(d.get("accept_rate", 0.0)),
            shed_rate=float(d.get("shed_rate", 0.0)),
            shed_by_cause={
                str(k): float(v)
                for k, v in d.get("shed_by_cause", {}).items()
            },
            p95_latency_s=float(d.get("p95_latency_s", 0.0)),
            p99_latency_s=float(d.get("p99_latency_s", 0.0)),
            query_rate=float(d.get("query_rate", 0.0)),
            sketch_bytes=int(d.get("sketch_bytes", 0)),
            segment_bytes=int(d.get("segment_bytes", 0)),
            graph_epoch=int(d.get("graph_epoch", -1)),
            served_epoch=int(d.get("served_epoch", -1)),
            staleness=int(d.get("staleness", 0)),
            source=str(d.get("source", "fixture")),
        )


class RateTracker:
    """Consecutive registry snapshots → per-window rates and histograms.

    Keeps only the previous snapshot (no external state), so it composes
    with any snapshot source — the live registry, a worker's shipped
    delta, a fixture.  All counter deltas are clamped at zero: under the
    merge-on-reduce protocol a counter can *appear* to regress (a
    ``clear()`` between samples, or a fold of an older worker snapshot
    landing after a newer one was observed), and a negative rate would
    make policies hallucinate recovering traffic.
    """

    def __init__(self) -> None:
        self._prev: dict[str, Any] | None = None
        self._prev_ts: float | None = None

    def advance(
        self, snapshot: dict[str, Any], now: float
    ) -> dict[str, Any]:
        """Fold in a new snapshot; returns the window since the last one.

        The result holds ``elapsed_s``, ``deltas`` (counter increments,
        clamped >= 0), ``rates`` (deltas / elapsed), and ``histograms``
        (windowed :class:`~repro.telemetry.metrics.Histogram` objects —
        call ``percentile`` on them).  The first call has no window and
        returns empty tables.
        """
        prev, prev_ts = self._prev, self._prev_ts
        self._prev, self._prev_ts = snapshot, float(now)
        if prev is None:
            return {
                "elapsed_s": 0.0, "deltas": {}, "rates": {}, "histograms": {}
            }
        elapsed = max(0.0, float(now) - float(prev_ts))
        diff = diff_snapshots(snapshot, prev)
        deltas = {
            k: max(0.0, float(v))
            for k, v in diff.get("counters", {}).items()
        }
        rates = (
            {k: v / elapsed for k, v in deltas.items()}
            if elapsed > 0
            else {k: 0.0 for k in deltas}
        )
        histograms = {
            name: Histogram.from_dict(data)
            for name, data in diff.get("histograms", {}).items()
            if int(data.get("count", 0)) > 0
        }
        return {
            "elapsed_s": elapsed,
            "deltas": deltas,
            "rates": rates,
            "histograms": histograms,
        }


class HealthProbe:
    """Polls the attached data-plane handles into :class:`HealthSample`s.

    Every handle is optional: the probe reports whatever surfaces it can
    see and leaves the rest at their defaults, so the same probe class
    serves a bare cluster in a test and the full gateway+dynamic stack in
    ``repro control run``.
    """

    #: Latency histograms consulted for p95/p99, most upstream first —
    #: the gateway's end-to-end latency is the SLO surface when present.
    LATENCY_METRICS = (
        "gateway.request_latency_s",
        "shard.router.query_latency_s",
        "engine.query_latency_s",
    )

    def __init__(
        self,
        *,
        cluster: Any = None,
        gateway: Any = None,
        service: Any = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.cluster = cluster
        self.gateway = gateway
        self.service = service
        self._clock = clock
        self.tracker = RateTracker()

    def sample(self) -> HealthSample:
        now = float(self._clock())
        tel = telemetry.get()
        snap = tel.snapshot() if tel.enabled else {}
        window = self.tracker.advance(snap, now)
        rates = window["rates"]

        replicas: list[ReplicaHealth] = []
        num_shards = 0
        if self.cluster is not None:
            num_shards = int(self.cluster.plan.num_shards)
            health: dict[str, Any] = {}
            for per_shard in self.cluster.router.health_snapshot().values():
                health.update(per_shard)
            for w in self.cluster.workers:
                h = health.get(w.name, {})
                replicas.append(
                    ReplicaHealth(
                        name=w.name,
                        shard=int(w.shard_id),
                        replica=int(w.replica_id),
                        dead=bool(w.dead),
                        consecutive_failures=int(
                            h.get("consecutive_failures", 0)
                        ),
                        healthy=bool(h.get("healthy", not w.dead)),
                    )
                )
            replicas.sort(key=lambda r: (r.shard, r.replica))

        queue_depth = queue_capacity = 0
        predicted_wait = 0.0
        if self.gateway is not None:
            g = self.gateway.stats_snapshot().get("gateway", {})
            queue_depth = int(g.get("queue_depth", 0))
            queue_capacity = int(g.get("queue_capacity", 0))
            predicted_wait = float(g.get("predicted_wait_s") or 0.0)

        graph_epoch = served_epoch = -1
        staleness = 0
        if self.service is not None:
            d = self.service.stats_snapshot().get("dynamic", {})
            graph_epoch = int(d.get("graph_epoch", -1))
            served_epoch = int(d.get("served_epoch", -1))
            staleness = int(d.get("staleness", 0))

        p95 = p99 = 0.0
        query_rate = 0.0
        for name in self.LATENCY_METRICS:
            hist = window["histograms"].get(name)
            if hist is not None:
                p95 = float(hist.percentile(0.95))
                p99 = float(hist.percentile(0.99))
                query_rate = (
                    hist.count / window["elapsed_s"]
                    if window["elapsed_s"] > 0
                    else 0.0
                )
                break

        shed_by_cause = {
            cause: rates.get(f"gateway.shed_{cause}", 0.0)
            for cause in ("queue_full", "deadline", "stale", "rate_limited")
            if f"gateway.shed_{cause}" in rates
        }
        gauges = snap.get("gauges", {})
        sketch_bytes = int(
            sum(
                v
                for k, v in gauges.items()
                if k.startswith("shard.s") and k.endswith(".sketch_bytes")
            )
        )
        return HealthSample(
            ts=now,
            num_shards=num_shards,
            replicas=tuple(replicas),
            queue_depth=queue_depth,
            queue_capacity=queue_capacity,
            predicted_wait_s=predicted_wait,
            accept_rate=rates.get("gateway.accepted", 0.0),
            shed_rate=rates.get("gateway.shed", 0.0),
            shed_by_cause=shed_by_cause,
            p95_latency_s=p95,
            p99_latency_s=p99,
            query_rate=query_rate,
            sketch_bytes=sketch_bytes,
            segment_bytes=int(gauges.get("shm.segment_bytes", 0)),
            graph_epoch=graph_epoch,
            served_epoch=served_epoch,
            staleness=staleness,
            source="live",
        )
