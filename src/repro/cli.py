"""Command-line entry point: regenerate any paper table/figure, or run IMM.

Usage::

    repro list                      # available experiments + datasets
    repro experiment table3         # regenerate Table III
    repro experiment all            # everything (minutes)
    repro run youtube --model IC --k 20 --framework efficientimm
    repro run youtube --telemetry out/     # + metrics.json & trace.json
    repro run youtube --checkpoint ckpt/   # resumable sampling batches
    repro run youtube --checkpoint ckpt/ --resume   # continue after a crash
    repro run amazon --inject-faults crash@batch:1  # deterministic fault drill
    repro trace amazon --k 10              # telemetry-first run
    repro datasets                  # replica inventory vs paper stats
    repro query amazon --k 10 --artifacts store/   # cached serving, one-shot
    repro serve --artifacts store/  # JSON-lines query loop on stdin/stdout
    repro gateway serve --port 8471 --artifacts store/   # TCP gateway
    repro gateway query amazon --k 10 --port 8471        # query it
    repro gateway loadgen --mode open --rate 200         # offered-load drill

(Equivalently: ``python -m repro ...``.)  ``--telemetry DIR`` / ``trace``
enable the :mod:`repro.telemetry` session around the run and write the
unified ``metrics.json`` plus a Chrome trace-event ``trace.json`` (open in
``chrome://tracing`` or Perfetto); see docs/observability.md.
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main", "build_parser"]

_EXPERIMENTS = (
    "table1", "table2", "table3", "table4",
    "fig1", "fig2", "fig5", "fig6", "fig7",
)


def _add_kernel_args(p: argparse.ArgumentParser) -> None:
    """Sampling-kernel switch, shared by every verb that draws RRR sets."""
    p.add_argument(
        "--kernel", default=None, choices=("batched", "scalar"),
        help="counter-stream sampling kernel; both choices yield "
        "byte-identical sets, 'batched' vectorizes across sets "
        "(default: legacy per-worker RNG path; docs/performance.md)",
    )
    p.add_argument(
        "--kernel-batch", type=int, default=64, metavar="B",
        help="RRR sets per vectorized pass (batched kernel only)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EfficientIMM reproduction: experiments and IMM runs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and datasets")
    sub.add_parser("datasets", help="show the replica dataset inventory")

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument(
        "id", choices=(*_EXPERIMENTS, "all"),
        help="experiment id (paper table/figure) or 'all'",
    )
    exp.add_argument(
        "--csv", metavar="DIR", default=None,
        help="also write each regenerated table as <DIR>/<id>.csv",
    )

    sweep = sub.add_parser(
        "sweep",
        help="artifact-style strong-scaling sweep writing JSON run logs",
    )
    sweep.add_argument(
        "--out", default="strong-scaling", help="output root directory"
    )
    sweep.add_argument(
        "--datasets", nargs="*", default=None,
        help="subset of datasets (default: all eight)",
    )
    sweep.add_argument(
        "--models", nargs="*", default=["IC", "LT"], choices=["IC", "LT"],
    )
    sweep.add_argument("--k", type=int, default=50)
    sweep.add_argument("--epsilon", type=float, default=0.5)
    sweep.add_argument("--seed", type=int, default=0)

    extract = sub.add_parser(
        "extract-results",
        help="summarise sweep logs into speedup_<model>.csv (the artifact's "
        "extract_results.py)",
    )
    extract.add_argument(
        "--logs", default="strong-scaling", help="sweep output root"
    )
    extract.add_argument(
        "--results", default=None, help="CSV directory (default <logs>/results)"
    )

    val = sub.add_parser(
        "validate",
        help="statistical health checks of the samplers and estimators",
    )
    val.add_argument("--dataset", default="amazon")
    val.add_argument("--model", default="IC", choices=("IC", "LT"))
    val.add_argument("--seed", type=int, default=0)

    run = sub.add_parser("run", help="run IMM on a replica dataset")
    run.add_argument("dataset", help="dataset name, e.g. 'youtube'")
    run.add_argument("--model", default="IC", choices=("IC", "LT"))
    run.add_argument("--k", type=int, default=50, help="seed budget")
    run.add_argument("--epsilon", type=float, default=0.5)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--theta-cap", type=int, default=2000)
    run.add_argument(
        "--framework", default="efficientimm",
        choices=("efficientimm", "ripples"),
    )
    run.add_argument(
        "--estimate-spread", action="store_true",
        help="Monte-Carlo validate the seed set's spread",
    )
    run.add_argument(
        "--telemetry", metavar="DIR", default=None,
        help="enable telemetry; write DIR/metrics.json and DIR/trace.json",
    )
    run.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="checkpoint sampling batches under DIR (docs/resilience.md)",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="resume from the latest matching checkpoint (requires --checkpoint)",
    )
    run.add_argument(
        "--inject-faults", metavar="SPEC", default=None,
        help="deterministic fault plan, e.g. 'crash@batch:1,slow@task:0:0.05'",
    )
    run.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault plan's corrupt-mangling RNG",
    )
    _add_kernel_args(run)

    trace = sub.add_parser(
        "trace",
        help="run IMM with full telemetry and write metrics + Chrome trace",
    )
    trace.add_argument("dataset", help="dataset name, e.g. 'amazon'")
    trace.add_argument("--model", default="IC", choices=("IC", "LT"))
    trace.add_argument("--k", type=int, default=10)
    trace.add_argument("--epsilon", type=float, default=0.5)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--theta-cap", type=int, default=2000)
    trace.add_argument(
        "--framework", default="efficientimm",
        choices=("efficientimm", "ripples"),
    )
    trace.add_argument(
        "--out", metavar="DIR", default="telemetry-out",
        help="output directory (default: telemetry-out/)",
    )
    trace.add_argument(
        "--memory", action="store_true",
        help="also attribute tracemalloc memory to spans (slower)",
    )
    _add_kernel_args(trace)

    query = sub.add_parser(
        "query",
        help="serve one IM query through the caching engine (docs/serving.md)",
    )
    query.add_argument("dataset", help="dataset name, e.g. 'amazon'")
    query.add_argument("--model", default="IC", choices=("IC", "LT"))
    query.add_argument("--k", type=int, default=10)
    query.add_argument("--epsilon", type=float, default=0.5)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--theta-cap", type=int, default=None,
        help="sketch size in RRR sets (default: the engine's 2000)",
    )
    query.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-query deadline; expiry yields a timeout response",
    )
    query.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="persist/reuse sketch artifacts under DIR (warm across runs)",
    )
    query.add_argument(
        "--cache-bytes", type=int, default=None,
        help="in-memory sketch cache budget (default 256 MiB)",
    )
    query.add_argument(
        "--json", action="store_true", help="print the raw JSON response"
    )
    _add_kernel_args(query)

    serve = sub.add_parser(
        "serve",
        help="JSON-lines IM query server on stdin/stdout (docs/serving.md)",
    )
    serve.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="persist/reuse sketch artifacts under DIR",
    )
    serve.add_argument(
        "--cache-bytes", type=int, default=None,
        help="in-memory sketch cache budget (default 256 MiB)",
    )
    serve.add_argument(
        "--default-theta", type=int, default=2000,
        help="sketch size for queries without theta_cap",
    )
    serve.add_argument(
        "--backend", default="serial", choices=("serial", "multiprocess"),
        help="cold-sampling execution backend",
    )
    serve.add_argument(
        "--num-workers", type=int, default=1,
        help="sampling workers per cold pass",
    )
    serve.add_argument(
        "--telemetry", metavar="DIR", default=None,
        help="write DIR/metrics.json and DIR/trace.json at shutdown",
    )
    _add_kernel_args(serve)

    shard = sub.add_parser(
        "shard",
        help="partitioned multi-worker serving cluster: build/serve/query "
        "(docs/sharding.md)",
    )
    shard.add_argument(
        "action", choices=("build", "serve", "query"),
        help="build shard artifacts, run the JSON-lines router loop, or "
        "serve one query",
    )
    shard.add_argument(
        "dataset", nargs="?", default=None,
        help="dataset name (required for build/query)",
    )
    shard.add_argument("--shards", type=int, default=2, help="shard count")
    shard.add_argument(
        "--replicas", type=int, default=1, help="replicas per shard"
    )
    shard.add_argument(
        "--strategy", default="hash", choices=("hash", "block", "balanced"),
        help="RRR-set ownership strategy (docs/sharding.md)",
    )
    shard.add_argument(
        "--virtual-nodes", type=int, default=64,
        help="consistent-hash ring points per shard",
    )
    shard.add_argument("--model", default="IC", choices=("IC", "LT"))
    shard.add_argument("--k", type=int, default=10)
    shard.add_argument("--epsilon", type=float, default=0.5)
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument(
        "--theta-cap", type=int, default=None,
        help="sketch size in RRR sets (default: --default-theta)",
    )
    shard.add_argument(
        "--default-theta", type=int, default=2000,
        help="sketch size for queries without theta_cap",
    )
    shard.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="persist/reuse per-shard sketch artifacts under DIR",
    )
    shard.add_argument(
        "--cache-bytes", type=int, default=None,
        help="per-worker in-memory sketch cache budget",
    )
    shard.add_argument(
        "--worker-deadline", type=float, default=None, metavar="SECONDS",
        help="soft per-scatter-call budget; misses count against health",
    )
    shard.add_argument(
        "--no-degraded", action="store_true",
        help="error instead of serving partial coverage when a shard is down",
    )
    shard.add_argument(
        "--telemetry", metavar="DIR", default=None,
        help="write DIR/metrics.json and DIR/trace.json at shutdown",
    )
    shard.add_argument(
        "--json", action="store_true",
        help="print the raw JSON response (query action)",
    )
    _add_kernel_args(shard)

    gw = sub.add_parser(
        "gateway",
        help="async TCP gateway: serve an engine over sockets, query one, "
        "or generate load (docs/gateway.md)",
    )
    gw.add_argument(
        "action", choices=("serve", "query", "loadgen"),
        help="run the TCP server, send one query at it, or drive traffic",
    )
    gw.add_argument(
        "dataset", nargs="?", default=None,
        help="dataset name (required for query; loadgen default 'amazon')",
    )
    gw.add_argument("--host", default="127.0.0.1", help="bind/connect address")
    gw.add_argument(
        "--port", type=int, default=8471,
        help="TCP port (serve: 0 picks an ephemeral port)",
    )
    gw.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="persist/reuse sketch artifacts under DIR (serve)",
    )
    gw.add_argument(
        "--cache-bytes", type=int, default=None,
        help="in-memory sketch cache budget (default 256 MiB)",
    )
    gw.add_argument(
        "--default-theta", type=int, default=2000,
        help="sketch size for queries without theta_cap",
    )
    gw.add_argument(
        "--backend", default="serial", choices=("serial", "multiprocess"),
        help="cold-sampling execution backend (serve)",
    )
    gw.add_argument(
        "--num-workers", type=int, default=1,
        help="sampling workers per cold pass",
    )
    gw.add_argument(
        "--shards", type=int, default=0,
        help="front a shard cluster with this many shards (0 = one engine)",
    )
    gw.add_argument(
        "--replicas", type=int, default=1, help="replicas per shard"
    )
    gw.add_argument(
        "--max-connections", type=int, default=64,
        help="concurrent client connection cap",
    )
    gw.add_argument(
        "--queue-depth", type=int, default=256,
        help="admission queue capacity; a full queue sheds new arrivals",
    )
    gw.add_argument(
        "--queue-deadline", type=float, default=2.0, metavar="SECONDS",
        help="max queue wait before a query is shed as stale",
    )
    gw.add_argument(
        "--batch-window", type=float, default=0.002, metavar="SECONDS",
        help="micro-batch coalescing window",
    )
    gw.add_argument(
        "--batch-max", type=int, default=64, help="max queries per batch"
    )
    gw.add_argument(
        "--rate-limit", type=float, default=None, metavar="QPS",
        help="per-client token-bucket rate limit (default: off)",
    )
    gw.add_argument(
        "--rate-burst", type=float, default=10.0,
        help="token-bucket burst size",
    )
    gw.add_argument(
        "--max-line-bytes", type=int, default=None,
        help="bound on one request line (default 1 MiB)",
    )
    gw.add_argument(
        "--idle-timeout", type=float, default=300.0, metavar="SECONDS",
        help="close connections idle this long (0 disables)",
    )
    gw.add_argument(
        "--telemetry", metavar="DIR", default=None,
        help="write DIR/metrics.json and DIR/trace.json at shutdown",
    )
    gw.add_argument("--model", default="IC", choices=("IC", "LT"))
    gw.add_argument("--k", type=int, default=10)
    gw.add_argument("--epsilon", type=float, default=0.5)
    gw.add_argument("--seed", type=int, default=0)
    gw.add_argument(
        "--theta-cap", type=int, default=None,
        help="sketch size in RRR sets (default: server's --default-theta)",
    )
    gw.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-query deadline; expiry yields a timeout response",
    )
    gw.add_argument(
        "--retries", type=int, default=5,
        help="client connect/overload retry attempts (query)",
    )
    gw.add_argument(
        "--json", action="store_true",
        help="print the raw JSON response (query action)",
    )
    gw.add_argument(
        "--mode", default="closed", choices=("closed", "open"),
        help="loadgen traffic shape (docs/gateway.md)",
    )
    gw.add_argument(
        "--rate", type=float, default=50.0,
        help="offered load in queries/s (open loop)",
    )
    gw.add_argument(
        "--concurrency", type=int, default=4,
        help="loadgen workers (closed) or connection pool size (open)",
    )
    gw.add_argument(
        "--duration", type=float, default=5.0, metavar="SECONDS",
        help="loadgen run length",
    )
    gw.add_argument(
        "--requests", type=int, default=None,
        help="stop loadgen after N requests instead of --duration",
    )
    gw.add_argument(
        "--zipf", type=float, default=1.1,
        help="zipf skew of the loadgen k mix",
    )
    _add_kernel_args(gw)

    update = sub.add_parser(
        "update",
        help="apply a JSON-lines graph-update stream with incremental "
        "sketch repair (docs/dynamic.md)",
    )
    update.add_argument("dataset", help="dataset name, e.g. 'skitter'")
    update.add_argument(
        "--updates", metavar="FILE", default="-",
        help="JSON-lines update stream (default: stdin)",
    )
    update.add_argument("--model", default="IC", choices=("IC", "LT"))
    update.add_argument("--k", type=int, default=10,
                        help="default seed budget for query ops without k")
    update.add_argument("--epsilon", type=float, default=0.5)
    update.add_argument("--seed", type=int, default=0)
    update.add_argument(
        "--theta-cap", type=int, default=2000,
        help="number of RRR sets the maintained sketch holds",
    )
    update.add_argument(
        "--threshold", type=float, default=0.25,
        help="invalidated fraction above which the sketch is fully "
        "resampled instead of repaired",
    )
    update.add_argument(
        "--repair", default="extend", choices=("extend", "resample"),
        help="repair strategy for inserted edges under IC (docs/dynamic.md)",
    )
    update.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="checkpoint the maintainer after every commit under DIR",
    )
    update.add_argument(
        "--resume", action="store_true",
        help="resume from the latest matching checkpoint (requires "
        "--checkpoint); earlier commits are replayed graph-only",
    )
    update.add_argument(
        "--telemetry", metavar="DIR", default=None,
        help="write DIR/metrics.json and DIR/trace.json at end of stream",
    )
    _add_kernel_args(update)

    shm = sub.add_parser(
        "shm",
        help="shared-memory plane maintenance: list live segments or sweep "
        "orphans (docs/memory.md)",
    )
    shm.add_argument(
        "action", choices=("list", "sweep"),
        help="list this host's live segments, or unlink segments whose "
        "owning process is gone",
    )
    shm.add_argument(
        "--prefix", default="rs",
        help="segment name prefix to scan (default 'rs')",
    )

    ctl = sub.add_parser(
        "control",
        help="telemetry-driven control plane: probe health, plan actions, "
        "run the reconcile loop (docs/control.md)",
    )
    ctl.add_argument(
        "action", choices=("run", "status", "plan"),
        help="run the tick loop over an in-process cluster, probe one "
        "health sample, or print the action plan for a probe fixture",
    )
    ctl.add_argument(
        "dataset", nargs="?", default="amazon",
        help="dataset the in-process cluster serves (run/status)",
    )
    ctl.add_argument(
        "--fixture", metavar="FILE", default=None,
        help="JSON-lines HealthSample fixture driving the policies instead "
        "of a live probe (makes run/plan deterministic)",
    )
    ctl.add_argument(
        "--dry-run", action="store_true",
        help="plan actions without applying them (JSON lines per tick)",
    )
    ctl.add_argument(
        "--ticks", type=int, default=None,
        help="reconcile ticks (default: the fixture's length, or 5 live)",
    )
    ctl.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="seconds between ticks",
    )
    ctl.add_argument("--shards", type=int, default=2, help="shard count")
    ctl.add_argument(
        "--replicas", type=int, default=1, help="initial replicas per shard"
    )
    ctl.add_argument("--model", default="IC", choices=("IC", "LT"))
    ctl.add_argument("--epsilon", type=float, default=0.5)
    ctl.add_argument("--seed", type=int, default=0)
    ctl.add_argument(
        "--theta-cap", type=int, default=2000,
        help="sketch size in RRR sets",
    )
    ctl.add_argument(
        "--p99-slo", type=float, default=0.5, metavar="SECONDS",
        help="windowed p99 latency SLO the autoscaler defends",
    )
    ctl.add_argument(
        "--shed-slo", type=float, default=1.0, metavar="PER_S",
        help="shed rate above which the autoscaler treats a tick as a breach",
    )
    ctl.add_argument(
        "--min-replicas", type=int, default=1,
        help="autoscaler floor (per shard)",
    )
    ctl.add_argument(
        "--max-replicas", type=int, default=4,
        help="autoscaler ceiling (per shard)",
    )
    ctl.add_argument(
        "--breach-ticks", type=int, default=3,
        help="consecutive breach ticks before a scale-up",
    )
    ctl.add_argument(
        "--idle-ticks", type=int, default=5,
        help="consecutive idle ticks before a scale-down",
    )
    ctl.add_argument(
        "--cooldown", type=int, default=5, metavar="TICKS",
        help="minimum ticks between scale events",
    )
    ctl.add_argument(
        "--memory-budget", type=int, default=None, metavar="BYTES",
        help="projected-footprint ceiling blocking scale-ups",
    )
    ctl.add_argument(
        "--inject-faults", metavar="SPEC", default=None,
        help="fault plan for action/canary scopes, e.g. 'crash@action:0'",
    )
    ctl.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault plan's corrupt-mangling RNG",
    )
    ctl.add_argument(
        "--telemetry", metavar="DIR", default=None,
        help="write DIR/metrics.json and DIR/trace.json at exit",
    )
    return parser


def command_help() -> dict[str, str]:
    """Every CLI verb with its one-line help, read off the parser itself.

    Deriving the listing from the parser (rather than a hand-maintained
    table) is what keeps ``repro list`` from drifting when verbs are added;
    a regression test asserts the listing matches ``main()``'s dispatch.
    """
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return {
                choice.dest: choice.help or "" for choice in action._choices_actions
            }
    raise AssertionError("parser has no subcommands")


def render_cli_reference() -> str:
    """Render ``docs/cli.md`` from the live argparse surface.

    The page is *generated*, never hand-edited: ``tools/gen_cli_docs.py``
    writes it and ``tests/test_cli_surface.py`` regenerates and diffs it so
    any parser change that forgets to refresh the page fails CI.  Help text
    is formatted at a fixed 80-column width so the output does not depend
    on the invoking terminal.
    """
    import inspect
    import os

    import repro.errors as errors_mod

    parser = build_parser()
    sub = next(
        a for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    saved_columns = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = "80"
    try:
        lines = [
            "# CLI reference",
            "",
            "> **Generated page — do not edit.**  Regenerate with "
            "`python tools/gen_cli_docs.py`;",
            "> `tests/test_cli_surface.py` diffs this file against the live "
            "parser on every run.",
            "",
            "All verbs are invoked as `repro <verb> ...` "
            "(equivalently `python -m repro`, with `PYTHONPATH=src` from a "
            "checkout).",
            "",
            "## Verbs",
            "",
            "| verb | summary |",
            "| --- | --- |",
        ]
        verbs = command_help()
        for verb, help_text in verbs.items():
            anchor = "repro-" + verb.replace(" ", "-")
            lines.append(f"| [`{verb}`](#{anchor}) | {help_text} |")
        lines.append("")
        for verb in verbs:
            lines += [
                f"## `repro {verb}`",
                "",
                "```text",
                sub.choices[verb].format_help().rstrip(),
                "```",
                "",
            ]
        lines += [
            "## Exit codes",
            "",
            "Every error class in `repro.errors` carries a stable "
            "`exit_code`; the CLI exits",
            "with it when that error escapes a verb "
            "(see docs/resilience.md for the recovery",
            "semantics behind each one).  One-shot query verbs additionally "
            "map response",
            "status to exit code: "
            + ", ".join(
                f"`{status}` → {code}"
                for status, code in sorted(
                    _STATUS_EXIT.items(), key=lambda kv: kv[1]
                )
            )
            + ".",
            "",
            "| code | error class | meaning |",
            "| --- | --- | --- |",
            "| 0 | — | success |",
        ]
        classes = sorted(
            (
                obj
                for name in dir(errors_mod)
                if inspect.isclass(obj := getattr(errors_mod, name))
                and issubclass(obj, errors_mod.ReproError)
                and obj is not errors_mod.ReproError
            ),
            key=lambda c: (c.exit_code, c.__name__),
        )
        for cls in classes:
            summary = (cls.__doc__ or "").strip().splitlines()[0].rstrip(".")
            summary = summary.replace("|", "\\|")  # keep the table well-formed
            lines.append(f"| {cls.exit_code} | `{cls.__name__}` | {summary} |")
        lines.append("")
        return "\n".join(lines)
    finally:
        if saved_columns is None:
            os.environ.pop("COLUMNS", None)
        else:
            os.environ["COLUMNS"] = saved_columns


def _cmd_list() -> int:
    from repro.graph.datasets import dataset_names

    print("commands:")
    for verb, help_text in command_help().items():
        print(f"  {verb:<16} {help_text}")
    print("experiments:", ", ".join(_EXPERIMENTS))
    print("datasets:   ", ", ".join(dataset_names()))
    return 0


def _cmd_datasets() -> int:
    from repro.bench.report import Table
    from repro.graph.datasets import DATASETS, load_dataset

    t = Table(
        "Replica datasets",
        ["name", "paper name", "replica n", "replica m",
         "paper n", "paper m", "class"],
    )
    for name, spec in DATASETS.items():
        g = load_dataset(name)
        t.add_row(
            name, spec.paper_name, g.num_vertices, g.num_edges,
            spec.paper_nodes, spec.paper_edges, spec.description,
        )
    t.print()
    return 0


def _cmd_experiment(exp_id: str, csv_dir: str | None = None) -> int:
    from repro.bench import experiments as X

    fns = {
        "table1": X.experiment_table1,
        "table2": X.experiment_table2,
        "table3": X.experiment_table3,
        "table4": X.experiment_table4,
        "fig1": X.experiment_fig1,
        "fig2": X.experiment_fig2,
        "fig5": X.experiment_fig5,
        "fig6": X.experiment_fig6,
        "fig7": X.experiment_fig7,
    }
    ids = list(fns) if exp_id == "all" else [exp_id]
    for eid in ids:
        t0 = time.perf_counter()
        table = fns[eid]()
        table.print()
        if csv_dir is not None:
            from pathlib import Path

            out = Path(csv_dir)
            out.mkdir(parents=True, exist_ok=True)
            path = out / f"{eid}.csv"
            table.to_csv(path)
            print(f"[csv written to {path}]")
        print(f"[{eid} regenerated in {time.perf_counter() - t0:.1f}s]")
    return 0


def _run_params_meta(args: argparse.Namespace) -> dict:
    return {
        "dataset": args.dataset, "model": args.model, "k": args.k,
        "epsilon": args.epsilon, "seed": args.seed,
        "theta_cap": args.theta_cap, "framework": args.framework,
    }


def _cmd_run(args: argparse.Namespace) -> int:
    from repro import EfficientIMM, IMMParams, RipplesIMM, load_dataset, telemetry
    from repro.errors import ParameterError

    graph = load_dataset(args.dataset, model=args.model, seed=args.seed)
    params = IMMParams(
        k=args.k, epsilon=args.epsilon, model=args.model,
        seed=args.seed, theta_cap=args.theta_cap,
        kernel=args.kernel, kernel_batch=args.kernel_batch,
    )
    algo = (
        EfficientIMM(graph) if args.framework == "efficientimm"
        else RipplesIMM(graph)
    )

    checkpointer = None
    if getattr(args, "checkpoint", None) is not None:
        from repro.resilience import SamplingCheckpointer, run_key

        checkpointer = SamplingCheckpointer(
            args.checkpoint,
            run_key(graph, params, framework=algo.name),
        )
    elif getattr(args, "resume", False):
        raise ParameterError("--resume requires --checkpoint DIR")
    fault_plan = None
    if getattr(args, "inject_faults", None) is not None:
        from repro.resilience import FaultPlan

        fault_plan = FaultPlan.parse(
            args.inject_faults, seed=getattr(args, "fault_seed", 0)
        )

    run_kwargs = dict(
        checkpointer=checkpointer,
        resume=getattr(args, "resume", False),
        fault_plan=fault_plan,
    )
    telemetry_dir = getattr(args, "telemetry", None)
    if telemetry_dir is not None:
        with telemetry.session() as tel:
            result = algo.run(params, **run_kwargs)
        paths = telemetry.write_report(telemetry_dir, tel, run=_run_params_meta(args))
        print(f"telemetry: {paths['metrics']} {paths['trace']}")
    else:
        result = algo.run(params, **run_kwargs)
    print(result.summary())
    print("seeds:", " ".join(map(str, result.seeds.tolist())))
    for stage, secs in result.times.stages.items():
        print(f"  {stage}: {secs:.3f}s")
    if args.estimate_spread:
        from repro import estimate_spread, get_model

        model = get_model(args.model, graph)
        est = estimate_spread(model, result.seeds, num_samples=100, seed=args.seed)
        lo, hi = est.confidence_interval()
        print(
            f"MC spread: {est.mean:.1f} +- {est.stderr:.1f} "
            f"(95% CI [{lo:.1f}, {hi:.1f}])"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import EfficientIMM, IMMParams, RipplesIMM, load_dataset, telemetry

    graph = load_dataset(args.dataset, model=args.model, seed=args.seed)
    params = IMMParams(
        k=args.k, epsilon=args.epsilon, model=args.model,
        seed=args.seed, theta_cap=args.theta_cap,
        kernel=args.kernel, kernel_batch=args.kernel_batch,
    )
    algo = (
        EfficientIMM(graph) if args.framework == "efficientimm"
        else RipplesIMM(graph)
    )
    with telemetry.session(memory=args.memory) as tel:
        result = algo.run(params)
    print(result.summary())
    paths = telemetry.write_report(args.out, tel, run=_run_params_meta(args))
    snap = tel.snapshot()
    spans = sum(1 for r in tel.tracer.roots for _ in r.iter_tree())
    print(
        f"{spans} spans, {len(snap['counters'])} counters, "
        f"{len(snap['gauges'])} gauges, {len(snap['histograms'])} histograms"
    )
    for name in sorted(snap["counters"]):
        print(f"  {name} = {snap['counters'][name]:g}")
    print(f"metrics: {paths['metrics']}")
    print(f"trace:   {paths['trace']}  (open in chrome://tracing)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.bench.sweep import run_sweep

    t0 = time.perf_counter()
    written = run_sweep(
        args.out,
        datasets=args.datasets,
        models=tuple(args.models),
        k=args.k,
        epsilon=args.epsilon,
        seed=args.seed,
    )
    print(
        f"wrote {len(written)} run logs under {args.out}/ "
        f"in {time.perf_counter() - t0:.1f}s"
    )
    print("next: repro extract-results --logs", args.out)
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    from repro.bench.sweep import extract_results

    paths = extract_results(args.logs, args.results)
    if not paths:
        print(f"no sweep logs found under {args.logs}/")
        return 1
    for model, path in paths.items():
        print(f"{model}: {path}")
        print(path.read_text().rstrip())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    import numpy as np

    from repro import EfficientIMM, IMMParams, estimate_spread, get_model, load_dataset
    from repro.core.parallel_sampling import parallel_generate
    from repro.core.sampling import RRRSampler, SamplingConfig
    from repro.runtime.backends import SerialBackend
    from repro.validate import (
        roots_are_uniform,
        same_size_distribution,
        spread_consistent,
    )

    graph = load_dataset(args.dataset, model=args.model, seed=args.seed)
    model = get_model(args.model, graph)
    rng = np.random.default_rng(args.seed)
    checks = []

    roots = np.array([model.random_root(rng) for _ in range(3000)])
    checks.append(roots_are_uniform(roots, graph.num_vertices))

    serial = RRRSampler(
        get_model(args.model, graph),
        SamplingConfig.efficientimm(num_threads=1),
        seed=args.seed,
    )
    serial.extend(200)
    par = parallel_generate(
        graph, args.model, 200, num_workers=3, seed=args.seed + 1,
        backend=SerialBackend(),
    )
    checks.append(same_size_distribution(serial.store.sizes(), par.sizes()))

    res = EfficientIMM(graph).run(
        IMMParams(k=8, model=args.model, theta_cap=1200, seed=args.seed)
    )
    est = estimate_spread(model, res.seeds, num_samples=120, seed=args.seed + 2)
    checks.append(spread_consistent(res.spread_estimate, est.mean, est.stderr))

    failed = 0
    for c in checks:
        status = "PASS" if c else "FAIL"
        failed += not c
        stat = f"stat={c.statistic:.3g}"
        pv = "" if c.p_value != c.p_value else f" p={c.p_value:.3g}"
        print(f"  [{status}] {c.name}: {stat}{pv} ({c.detail})")
    print(
        f"{len(checks) - failed}/{len(checks)} statistical checks passed "
        f"on {args.dataset} [{args.model}]"
    )
    return 1 if failed else 0


def _engine_config(args: argparse.Namespace, **overrides):
    from repro.service import EngineConfig

    kwargs: dict = {}
    if getattr(args, "cache_bytes", None) is not None:
        kwargs["cache_budget_bytes"] = args.cache_bytes
    if getattr(args, "artifacts", None) is not None:
        kwargs["artifact_dir"] = args.artifacts
    if getattr(args, "kernel", None) is not None:
        kwargs["kernel"] = args.kernel
        kwargs["kernel_batch"] = args.kernel_batch
    kwargs.update(overrides)
    return EngineConfig(**kwargs)


#: One-shot verbs map response status to exit code here; the codes line up
#: with the repro.errors table ("overloaded" is a transient backend push-back,
#: hence BackendError's 5).
_STATUS_EXIT = {"ok": 0, "error": 2, "timeout": 3, "overloaded": 5}


def _wire_query(args: argparse.Namespace, **overrides):
    """Build a one-shot :class:`IMQuery` via the canonical wire round-trip.

    The query is encoded with the gateway client's helpers and re-parsed
    with the protocol parser — the exact path a line takes over TCP — so
    the CLI verbs cannot drift from the wire format (docs/gateway.md).
    """
    from repro.gateway.client import encode_queries
    from repro.service import IMQuery, parse_request_line

    fields = dict(
        dataset=args.dataset, model=args.model, k=args.k,
        epsilon=args.epsilon, seed=args.seed,
        theta_cap=getattr(args, "theta_cap", None),
        deadline_s=getattr(args, "deadline", None),
    )
    fields.update(overrides)
    [query] = parse_request_line(encode_queries([IMQuery(**fields)]))
    return query


def _emit_response(resp, *, as_json: bool, headline: str, source: str) -> int:
    """Shared printing + exit-code mapping of the one-shot query verbs."""
    code = _STATUS_EXIT.get(resp.status, 2)
    if as_json:
        print(resp.to_json())
        return code
    if not resp.ok:
        print(f"error: {resp.error}", file=sys.stderr)
        return code
    print(
        f"{headline}: spread estimate {resp.spread_estimate:.1f} "
        f"({resp.coverage_fraction:.1%} of {resp.num_rrrsets} RRR sets), "
        f"{source} in {resp.latency_s:.3f}s"
    )
    print("seeds:", " ".join(map(str, resp.seeds)))
    return code


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.service import QueryEngine

    query = _wire_query(args)
    with QueryEngine(config=_engine_config(args)) as engine:
        resp = engine.query(query)
    if resp.degraded:
        source = "served from stale artifact (degraded)"
    elif resp.cached:
        source = "served from cache/artifact (warm)"
    else:
        source = "served from cold sampling"
    return _emit_response(
        resp, as_json=args.json,
        headline=f"{args.dataset} [{args.model}] k={args.k}",
        source=source,
    )


def _serve_loop(tel, shutdown, execute, control) -> int:
    """Shared JSON-lines loop of the ``serve`` verbs.

    ``execute(queries) -> responses`` handles a parsed batch; ``control(op
    dict) -> (payload | None, stop)`` handles control operations (``None``
    payload means unknown op).  Batches and control ops run inside the
    shutdown guard, so a SIGINT/SIGTERM drains the in-flight work before
    the loop exits; the return value is the number of queries served.
    """
    import json

    from repro.errors import ParameterError
    from repro.service import ShutdownRequested, parse_request_line

    served = 0
    try:
        for raw in sys.stdin:
            line = raw.strip()
            if not line:
                continue
            try:
                request = parse_request_line(line)
            except ParameterError as exc:
                print(
                    json.dumps({"status": "error", "error": str(exc)}),
                    flush=True,
                )
                continue
            if isinstance(request, dict):  # control operation
                with shutdown.guard():
                    payload, stop = control(request)
                if payload is None:
                    payload = {
                        "status": "error",
                        "error": f"unknown op {request.get('op')!r}",
                    }
                print(json.dumps(payload, default=float), flush=True)
                if stop:
                    break
            else:
                with shutdown.guard():
                    for resp in execute(request):
                        served += 1
                        print(resp.to_json(), flush=True)
            if shutdown.requested:
                break
    except ShutdownRequested:
        pass
    if shutdown.requested:
        print(
            f"shutdown: signal {shutdown.signum} received, in-flight work "
            "drained",
            file=sys.stderr,
        )
    return served


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro import telemetry
    from repro.service import GracefulShutdown, QueryEngine

    config = _engine_config(
        args,
        default_theta=args.default_theta,
        backend=args.backend,
        num_workers=args.num_workers,
    )
    with telemetry.session() as tel, QueryEngine(config=config) as engine, \
            GracefulShutdown() as shutdown:

        def control(request):
            op = request.get("op")
            if op == "stats":
                snap = tel.snapshot()
                return (
                    {
                        "status": "ok", "op": "stats",
                        **engine.stats_snapshot(),
                        "counters": snap["counters"],
                    },
                    False,
                )
            if op == "shutdown":
                return {"status": "ok", "op": "shutdown"}, True
            return None, False

        served = _serve_loop(tel, shutdown, engine.execute, control)
        # The flush runs inside the guard so a first signal arriving now
        # cannot cut the telemetry report in half (a repeated signal still
        # escalates past the guard, by design).
        with shutdown.guard():
            if args.telemetry is not None:
                paths = telemetry.write_report(
                    args.telemetry, tel,
                    run={"command": "serve", "queries": served},
                )
                print(
                    f"telemetry: {paths['metrics']} {paths['trace']}",
                    file=sys.stderr,
                )
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro import telemetry
    from repro.errors import ParameterError
    from repro.service import GracefulShutdown
    from repro.shard import RouterConfig, ShardCluster, ShardPlan, SketchSpec

    plan = ShardPlan(
        num_shards=args.shards,
        replication=args.replicas,
        strategy=args.strategy,
        virtual_nodes=args.virtual_nodes,
    )
    router_config = RouterConfig(
        default_theta=args.default_theta,
        worker_deadline_s=args.worker_deadline,
        allow_degraded=not args.no_degraded,
    )
    engine_config = _engine_config(args, default_theta=args.default_theta)

    def make_spec() -> SketchSpec:
        if args.dataset is None:
            raise ParameterError(
                f"'repro shard {args.action}' needs a dataset argument"
            )
        return SketchSpec(
            dataset=args.dataset.lower(),
            model=args.model,
            epsilon=args.epsilon,
            seed=args.seed,
            num_sets=args.theta_cap or args.default_theta,
        )

    with telemetry.session() as tel, ShardCluster(
        plan, engine_config=engine_config, router_config=router_config
    ) as cluster:
        if args.action == "build":
            import json

            summary = cluster.build(make_spec())
            print(json.dumps(summary, default=float))
            served = 0
        elif args.action == "query":
            spec = make_spec()
            resp = cluster.query(
                _wire_query(
                    args, dataset=spec.dataset, model=spec.model,
                    epsilon=spec.epsilon, seed=spec.seed,
                    theta_cap=spec.num_sets,
                )
            )
            source = (
                "degraded (shard down)" if resp.degraded
                else "warm" if resp.cached else "cold"
            )
            code = _emit_response(
                resp, as_json=args.json,
                headline=(
                    f"{spec.dataset} [{spec.model}] k={args.k} over "
                    f"{plan.num_shards} shard(s)"
                ),
                source=source,
            )
            if code:
                return code
            served = 1
        else:  # serve
            with GracefulShutdown() as shutdown:

                def control(request):
                    op = request.get("op")
                    if op == "stats":
                        snap = tel.snapshot()
                        return (
                            {
                                "status": "ok", "op": "stats",
                                **cluster.stats_snapshot(),
                                "counters": snap["counters"],
                            },
                            False,
                        )
                    if op == "shutdown":
                        return {"status": "ok", "op": "shutdown"}, True
                    if op in ("kill", "revive"):
                        if "shard" not in request:
                            return (
                                {"status": "error",
                                 "error": f"op {op!r} needs a 'shard' field"},
                                False,
                            )
                        fn = cluster.kill if op == "kill" else cluster.revive
                        names = fn(
                            int(request["shard"]),
                            (
                                int(request["replica"])
                                if request.get("replica") is not None
                                else None
                            ),
                        )
                        return (
                            {"status": "ok", "op": op, "workers": names},
                            False,
                        )
                    return None, False

                served = _serve_loop(
                    tel, shutdown, cluster.execute, control
                )
                with shutdown.guard():
                    if args.telemetry is not None:
                        paths = telemetry.write_report(
                            args.telemetry, tel,
                            run={
                                "command": "shard serve",
                                "queries": served,
                                **plan.describe(),
                            },
                        )
                        print(
                            f"telemetry: {paths['metrics']} {paths['trace']}",
                            file=sys.stderr,
                        )
            return 0
        if args.telemetry is not None:
            paths = telemetry.write_report(
                args.telemetry, tel,
                run={
                    "command": f"shard {args.action}", "queries": served,
                    **plan.describe(),
                },
            )
            print(
                f"telemetry: {paths['metrics']} {paths['trace']}",
                file=sys.stderr,
            )
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    if args.action == "serve":
        return _gateway_serve(args)
    if args.action == "query":
        return _gateway_query(args)
    return _gateway_loadgen(args)


def _gateway_serve(args: argparse.Namespace) -> int:
    import asyncio
    from contextlib import ExitStack

    from repro import telemetry
    from repro.gateway import GatewayConfig, GatewayServer
    from repro.service import GracefulShutdown, ShutdownRequested

    gkwargs: dict = dict(
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        idle_timeout_s=args.idle_timeout if args.idle_timeout > 0 else None,
        queue_depth=args.queue_depth,
        queue_deadline_s=args.queue_deadline,
        batch_window_s=args.batch_window,
        batch_max=args.batch_max,
        rate_limit_per_s=args.rate_limit,
        rate_limit_burst=args.rate_burst,
    )
    if args.max_line_bytes is not None:
        gkwargs["max_line_bytes"] = args.max_line_bytes
    gconfig = GatewayConfig(**gkwargs)

    with ExitStack() as stack:
        tel = stack.enter_context(telemetry.session())
        if args.shards > 0:
            from repro.shard import RouterConfig, ShardCluster, ShardPlan

            engine = stack.enter_context(
                ShardCluster(
                    ShardPlan(
                        num_shards=args.shards, replication=args.replicas
                    ),
                    engine_config=_engine_config(
                        args, default_theta=args.default_theta
                    ),
                    router_config=RouterConfig(
                        default_theta=args.default_theta
                    ),
                )
            )
        else:
            from repro.service import QueryEngine

            engine = stack.enter_context(
                QueryEngine(
                    config=_engine_config(
                        args,
                        default_theta=args.default_theta,
                        backend=args.backend,
                        num_workers=args.num_workers,
                    )
                )
            )
        server = GatewayServer(engine, config=gconfig)
        shutdown = stack.enter_context(GracefulShutdown())

        def on_started(srv: GatewayServer) -> None:
            print(
                f"gateway listening on {srv.host}:{srv.port}",
                file=sys.stderr, flush=True,
            )

        # Inside the guard a first SIGINT/SIGTERM only sets the drain flag,
        # which the serve loop polls through should_stop; a repeated signal
        # escalates to ShutdownRequested and unwinds asyncio.run itself.
        with shutdown.guard():
            try:
                asyncio.run(
                    server.serve(
                        should_stop=lambda: shutdown.requested,
                        on_started=on_started,
                    )
                )
            except ShutdownRequested:
                pass
        if shutdown.requested:
            print(
                f"shutdown: signal {shutdown.signum} received, "
                "connections drained",
                file=sys.stderr,
            )
        summary = server.stats.to_dict()
        print(
            "gateway served {ok} ok / {shed} shed / {timeouts} timeout(s) "
            "over {connections} connection(s)".format(**summary),
            file=sys.stderr,
        )
        with shutdown.guard():
            if args.telemetry is not None:
                paths = telemetry.write_report(
                    args.telemetry, tel,
                    run={"command": "gateway serve", **summary},
                )
                print(
                    f"telemetry: {paths['metrics']} {paths['trace']}",
                    file=sys.stderr,
                )
    return 0


def _gateway_query(args: argparse.Namespace) -> int:
    from repro.errors import ParameterError
    from repro.gateway import GatewayClient
    from repro.resilience.retry import RetryPolicy

    if args.dataset is None:
        raise ParameterError("'repro gateway query' needs a dataset argument")
    query = _wire_query(args)
    retry = RetryPolicy(
        max_attempts=max(1, args.retries), base_delay_s=0.2, max_delay_s=2.0
    )
    with GatewayClient(args.host, args.port, retry=retry) as client:
        resp = client.query(query)
    if resp.degraded:
        source = "served from stale sketch (degraded)"
    elif resp.cached:
        source = "served warm"
    else:
        source = "served cold"
    return _emit_response(
        resp, as_json=args.json,
        headline=(
            f"{args.dataset} [{args.model}] k={args.k} "
            f"via {args.host}:{args.port}"
        ),
        source=source,
    )


def _gateway_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.gateway import LoadGenConfig, run_loadgen

    config = LoadGenConfig(
        mode=args.mode,
        duration_s=args.duration,
        total_requests=args.requests,
        rate_per_s=args.rate,
        concurrency=args.concurrency,
        dataset=args.dataset or "amazon",
        model=args.model,
        theta_cap=args.theta_cap if args.theta_cap is not None else 300,
        epsilon=args.epsilon,
        sketch_seed=args.seed,
        deadline_s=args.deadline,
        zipf_s=args.zipf,
        seed=args.seed,
    )
    summary = run_loadgen(args.host, args.port, config)
    print(json.dumps(summary, indent=2, default=float))
    if summary["completed"] == 0:
        print(
            "error: no request completed (is the gateway up?)",
            file=sys.stderr,
        )
        return 5
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    import json
    from contextlib import ExitStack

    from repro import load_dataset, telemetry
    from repro.dynamic import DeltaGraph, DynamicService, IncrementalMaintainer
    from repro.dynamic.updates import parse_update_line
    from repro.errors import ParameterError
    from repro.service.artifacts import read_artifact_meta

    if args.resume and args.checkpoint is None:
        raise ParameterError("--resume requires --checkpoint DIR")

    graph = load_dataset(args.dataset, model=args.model, seed=args.seed)
    delta = DeltaGraph(graph)
    maintainer_kwargs = dict(
        model=args.model,
        num_sets=args.theta_cap,
        seed=args.seed,
        full_resample_threshold=args.threshold,
        repair=args.repair,
        kernel=args.kernel,
        kernel_batch=args.kernel_batch,
    )

    # With --resume, commits up to the checkpointed epoch are replayed
    # graph-only (no sampling); the maintainer is restored once the delta
    # graph reaches that epoch.  Queries inside the replayed prefix were
    # answered by the interrupted run, so they are skipped with a notice.
    resume_epoch = 0
    if args.resume:
        probe = IncrementalMaintainer(delta, build=False, **maintainer_kwargs)
        meta = read_artifact_meta(probe.checkpoint_path(args.checkpoint))
        if meta is not None:
            resume_epoch = int(meta.get("epoch", 0))

    def make_service() -> DynamicService:
        maintainer = None
        if args.resume and resume_epoch > 0:
            maintainer = IncrementalMaintainer.from_checkpoint(
                args.checkpoint, delta, **maintainer_kwargs
            )
        return DynamicService(
            args.dataset, delta=delta, maintainer=maintainer,
            epsilon=args.epsilon, **maintainer_kwargs,
        )

    commits = 0
    queries = 0
    with ExitStack() as stack:
        tel = stack.enter_context(telemetry.session())
        service: DynamicService | None = None
        if delta.epoch >= resume_epoch:
            service = stack.enter_context(make_service())
        stream = (
            sys.stdin if args.updates == "-"
            else stack.enter_context(open(args.updates))
        )
        for raw in stream:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            op = parse_update_line(line)
            if op.kind == "update":
                delta.stage(op.update)
            elif op.kind == "commit":
                if service is None:
                    # Replay prefix: advance the graph without repairing.
                    delta.commit()
                    if delta.epoch >= resume_epoch:
                        service = stack.enter_context(make_service())
                    print(
                        json.dumps(
                            {"op": "commit", "epoch": delta.epoch,
                             "mode": "replayed"}
                        ),
                        flush=True,
                    )
                else:
                    report = service.commit()
                    commits += 1
                    if args.checkpoint is not None:
                        service.maintainer.save_checkpoint(args.checkpoint)
                    print(
                        json.dumps({"op": "commit", **report.to_dict()},
                                   default=float),
                        flush=True,
                    )
            elif op.kind == "query":
                if service is None:
                    print(
                        json.dumps(
                            {"status": "skipped", "id": op.id,
                             "reason": "resume-replay"}
                        ),
                        flush=True,
                    )
                    continue
                resp = service.query(
                    op.k if op.k is not None else args.k,
                    deadline_s=op.deadline_s, id=op.id,
                )
                queries += 1
                print(resp.to_json(), flush=True)
            else:  # stats
                if service is None:
                    print(
                        json.dumps(
                            {"status": "skipped", "reason": "resume-replay"}
                        ),
                        flush=True,
                    )
                    continue
                print(
                    json.dumps(
                        {"status": "ok", "op": "stats",
                         **service.stats_snapshot()},
                        default=float,
                    ),
                    flush=True,
                )
        if delta.pending_count:
            print(
                f"warning: {delta.pending_count} staged update(s) were never "
                "committed and are discarded",
                file=sys.stderr,
            )
        if args.telemetry is not None:
            paths = telemetry.write_report(
                args.telemetry, tel,
                run={"command": "update", "dataset": args.dataset,
                     "commits": commits, "queries": queries},
            )
            print(
                f"telemetry: {paths['metrics']} {paths['trace']}",
                file=sys.stderr,
            )
    print(
        f"update stream done: epoch {delta.epoch}, {commits} commit(s), "
        f"{queries} query(ies)",
        file=sys.stderr,
    )
    return 0


def _cmd_shm(args: argparse.Namespace) -> int:
    import json

    from repro.shm.segments import list_segments, sweep_orphans

    if args.action == "sweep":
        removed = sweep_orphans(args.prefix)
        print(
            json.dumps(
                {"op": "sweep", "prefix": args.prefix,
                 "removed": removed, "count": len(removed)}
            )
        )
    else:  # list
        names = list_segments(args.prefix)
        print(
            json.dumps(
                {"op": "list", "prefix": args.prefix,
                 "segments": names, "count": len(names)}
            )
        )
    return 0


def _cmd_control(args: argparse.Namespace) -> int:
    import itertools
    import json

    from repro import telemetry
    from repro.control import (
        AdmissionPolicy,
        AutoscaleConfig,
        AutoscalePolicy,
        Controller,
        ControllerConfig,
        HealthProbe,
        HealthSample,
        SelfHealPolicy,
    )
    from repro.errors import ParameterError

    fault_plan = None
    if args.inject_faults is not None:
        from repro.resilience import FaultPlan

        fault_plan = FaultPlan.parse(args.inject_faults, seed=args.fault_seed)

    policies = [
        SelfHealPolicy(),
        AutoscalePolicy(
            AutoscaleConfig(
                p99_slo_s=args.p99_slo,
                shed_rate_slo=args.shed_slo,
                breach_ticks=args.breach_ticks,
                idle_ticks=args.idle_ticks,
                cooldown_ticks=args.cooldown,
                min_replicas=args.min_replicas,
                max_replicas=args.max_replicas,
                memory_budget_bytes=args.memory_budget,
            )
        ),
        AdmissionPolicy(),
    ]

    if args.fixture is not None:
        # Fixture mode: samples come from a JSON-lines file, the clock is a
        # deterministic tick counter, and actions are never applied — the
        # output is an exact, reproducible plan.
        with open(args.fixture) as fh:
            samples = [
                HealthSample.from_dict(json.loads(line))
                for line in fh
                if line.strip()
            ]
        if not samples:
            raise ParameterError(f"fixture {args.fixture!r} has no samples")
        if args.action == "status":
            print(json.dumps(samples[0].to_dict(), default=float))
            return 0
        ticks = len(samples) if args.ticks is None else min(
            args.ticks, len(samples)
        )
        feed = iter(samples)
        steps = itertools.count()
        controller = Controller(
            lambda: next(feed),
            policies,
            config=ControllerConfig(
                interval_s=args.interval, dry_run=True
            ),
            clock=lambda: float(next(steps)),
            sleep=lambda _s: None,
            fault_plan=fault_plan,
        )
        for report in controller.run(ticks=ticks):
            print(json.dumps(report.to_dict(), default=float), flush=True)
        return 0

    if args.action == "plan":
        raise ParameterError(
            "'repro control plan' needs --fixture FILE (a live plan would "
            "not be reproducible); use 'run --dry-run' against a live stack"
        )

    from repro.shard import RouterConfig, ShardCluster, ShardPlan, SketchSpec

    plan = ShardPlan(num_shards=args.shards, replication=args.replicas)
    with telemetry.session() as tel, ShardCluster(
        plan,
        router_config=RouterConfig(default_theta=args.theta_cap),
    ) as cluster:
        cluster.build(
            SketchSpec(
                dataset=args.dataset.lower(),
                model=args.model,
                epsilon=args.epsilon,
                seed=args.seed,
                num_sets=args.theta_cap,
            )
        )
        probe = HealthProbe(cluster=cluster)
        controller = Controller(
            probe,
            policies,
            cluster=cluster,
            config=ControllerConfig(
                interval_s=args.interval, dry_run=args.dry_run
            ),
            fault_plan=fault_plan,
        )
        if args.action == "status":
            print(
                json.dumps(
                    {
                        "sample": probe.sample().to_dict(),
                        "controller": controller.status(),
                    },
                    default=float,
                )
            )
            return 0
        ticks = 5 if args.ticks is None else args.ticks
        for report in controller.run(ticks=ticks):
            print(json.dumps(report.to_dict(), default=float), flush=True)
        print(
            json.dumps(
                {"op": "status", **controller.status()}, default=float
            ),
            flush=True,
        )
        if args.telemetry is not None:
            paths = telemetry.write_report(
                args.telemetry, tel,
                run={"command": "control run", "ticks": controller.ticks,
                     **plan.describe()},
            )
            print(
                f"telemetry: {paths['metrics']} {paths['trace']}",
                file=sys.stderr,
            )
    return 0


def main(argv: list[str] | None = None) -> int:
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    dispatch = {
        "list": lambda: _cmd_list(),
        "datasets": lambda: _cmd_datasets(),
        "experiment": lambda: _cmd_experiment(args.id, args.csv),
        "run": lambda: _cmd_run(args),
        "trace": lambda: _cmd_trace(args),
        "sweep": lambda: _cmd_sweep(args),
        "extract-results": lambda: _cmd_extract(args),
        "validate": lambda: _cmd_validate(args),
        "query": lambda: _cmd_query(args),
        "serve": lambda: _cmd_serve(args),
        "shard": lambda: _cmd_shard(args),
        "gateway": lambda: _cmd_gateway(args),
        "update": lambda: _cmd_update(args),
        "shm": lambda: _cmd_shm(args),
        "control": lambda: _cmd_control(args),
    }
    cmd = dispatch.get(args.command)
    if cmd is None:
        raise AssertionError("unreachable")
    try:
        return cmd()
    except ReproError as exc:
        # Every repro error carries its exit code (see repro.errors for the
        # table): bad parameters exit 2, backend failures 5, injected
        # faults 7, exhausted retries 8, ... — one clean line on stderr,
        # no traceback, and the class decides the code in exactly one place.
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
