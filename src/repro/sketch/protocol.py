"""The formal :class:`RRRStore` protocol and the :func:`make_store` factory.

Before this redesign every store grew its own surface ad hoc and call
sites constructed them directly; there was no single statement of what a
"store" *is*, so the selection kernels, the artifact layer, and the shard
workers each depended on a slightly different informal subset.  This
module is that statement:

- :class:`RRRStore` — the runtime-checkable protocol every implementation
  satisfies (:class:`~repro.sketch.store.FlatRRRStore`,
  :class:`~repro.sketch.store.AdaptiveRRRStore`,
  :class:`~repro.sketch.store.PartitionedRRRStore`,
  :class:`~repro.sketch.compressed_store.CompressedRRRStore`, and
  :class:`~repro.shm.views.SharedFlatRRRStore`);
- :data:`PROTOCOL_METHODS` / :data:`STORE_EXTRAS` — the drift-guard
  registry: a store may only expose a public method that is either in the
  protocol or declared here as a deliberate extra, so new surface area is
  an explicit decision, not an accident (tests/test_store_protocol.py);
- :func:`make_store` — one construction entry point mirroring
  :func:`~repro.runtime.backends.make_backend`; the pre-redesign positional
  form keeps working through a shim that emits :class:`DeprecationWarning`
  (messages start with ``"repro execution API: "`` so pyproject.toml's
  filterwarnings escalates in-repo use).
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import ParameterError
from repro.sketch.compressed_store import CompressedRRRStore
from repro.sketch.store import AdaptiveRRRStore, FlatRRRStore, PartitionedRRRStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = [
    "RRRStore",
    "PROTOCOL_METHODS",
    "STORE_EXTRAS",
    "STORE_KINDS",
    "make_store",
    "public_surface",
    "store_implementations",
]


@runtime_checkable
class RRRStore(Protocol):
    """What every RRR-set store exposes (docs/memory.md has the full table).

    The selection kernels additionally read ``num_vertices`` and iterate
    sets; both are part of the contract.  ``append``/``extend`` grow the
    store (``append`` returns the new set's index), ``replace_sets``
    splices repaired sets in place (the incremental maintainer's hook),
    ``trim`` drops any growth slack, and ``fingerprint`` is the
    layout-independent content hash
    (:func:`~repro.sketch.store.content_fingerprint`) — two stores holding
    the same sets in the same global order fingerprint identically.
    """

    num_vertices: int

    def append(self, vertices: np.ndarray) -> int: ...

    def extend(self, sets: Sequence[np.ndarray]) -> None: ...

    def get(self, i: int) -> np.ndarray: ...

    def trim(self) -> "RRRStore": ...

    def nbytes(self) -> int: ...

    def sets_containing(self, v: int) -> np.ndarray: ...

    def replace_sets(
        self, indices: np.ndarray, new_sets: Sequence[np.ndarray]
    ) -> "RRRStore": ...

    def fingerprint(self) -> str: ...

    def sizes(self) -> np.ndarray: ...

    def vertex_counts(self) -> np.ndarray: ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator: ...


#: Public method/property names the protocol grants every store.
PROTOCOL_METHODS: frozenset[str] = frozenset(
    {
        "append",
        "extend",
        "get",
        "trim",
        "nbytes",
        "sets_containing",
        "replace_sets",
        "fingerprint",
        "sizes",
        "vertex_counts",
    }
)

#: Deliberate per-class additions beyond the protocol.  The drift guard
#: fails when a store grows a public method listed in neither place, so
#: extending a store's surface requires touching this registry (and
#: thinking about whether the method belongs in the protocol instead).
#: :mod:`repro.shm.views` registers ``SharedFlatRRRStore`` on import.
STORE_EXTRAS: dict[type, frozenset[str]] = {
    FlatRRRStore: frozenset(
        {
            "from_arrays",
            "offsets",
            "vertices",
            "total_entries",
            "capacity_bytes",
            "memory_model_bytes_per_set_entry",
        }
    ),
    AdaptiveRRRStore: frozenset({"representation_histogram", "to_flat"}),
    PartitionedRRRStore: frozenset(
        {"merge", "total_entries", "capacity_bytes"}
    ),
    CompressedRRRStore: frozenset(
        {"finalize", "compression_ratio", "to_flat"}
    ),
}


def public_surface(cls: type) -> frozenset[str]:
    """Public (non-dunder) methods/properties a class defines or inherits.

    Scans the class dicts along the MRO (instance attributes are invisible
    here, by design: the guard polices *API*, not state).
    """
    names: set[str] = set()
    for klass in cls.__mro__:
        if klass is object:
            continue
        for name, value in vars(klass).items():
            if name.startswith("_"):
                continue
            if callable(value) or isinstance(
                value, (property, classmethod, staticmethod)
            ):
                names.add(name)
    return frozenset(names)


def allowed_surface(cls: type) -> frozenset[str]:
    """Protocol methods plus every registered extra along the MRO."""
    allowed = set(PROTOCOL_METHODS)
    for klass in cls.__mro__:
        allowed |= STORE_EXTRAS.get(klass, frozenset())
    return frozenset(allowed)


def store_implementations() -> list[type]:
    """Every registered concrete store class (conformance-test domain)."""
    return list(STORE_EXTRAS)


# -------------------------------------------------------------------- factory
#: Store kinds :func:`make_store` accepts.
STORE_KINDS = ("flat", "adaptive", "partitioned", "compressed", "shared")


def make_store(kind: str, *args, num_vertices: int | None = None, **opts):
    """Factory: build any RRR store by kind (mirrors ``make_backend``).

    Canonical, keyword-only forms::

        make_store("flat", num_vertices=n, sort_sets=True)
        make_store("flat", num_vertices=n, offsets=off, vertices=vs)  # rebuild
        make_store("adaptive", num_vertices=n, policy=p, budget_bytes=b)
        make_store("partitioned", num_vertices=n, num_workers=w)
        make_store("compressed", num_vertices=n, codec="delta-varint")
        make_store("shared", handle=h)        # attach a repro.shm segment
        make_store("shared", name="rs-...")   # ... by raw segment name

    The pre-redesign positional form ``make_store(kind, n, ...)`` keeps
    working through a shim that emits :class:`DeprecationWarning`.
    """
    if args:
        if len(args) > 1:
            raise ParameterError(
                f"make_store takes at most one positional option, got {args!r}"
            )
        if num_vertices is not None:
            raise ParameterError(
                "make_store got num_vertices both positionally and by keyword"
            )
        warnings.warn(
            "repro execution API: make_store(kind, num_vertices, ...) with a "
            "positional vertex count is deprecated; pass it as a keyword, "
            "e.g. make_store('flat', num_vertices=n)",
            DeprecationWarning,
            stacklevel=2,
        )
        num_vertices = args[0]

    if kind == "shared":
        # Lazy import: repro.shm imports this package's stores.
        from repro import shm

        handle = opts.pop("handle", None)
        name = opts.pop("name", None)
        manager = opts.pop("manager", None)
        if opts:
            raise ParameterError(
                f"unknown make_store options for 'shared': {sorted(opts)}"
            )
        if (handle is None) == (name is None):
            raise ParameterError(
                "make_store('shared', ...) needs exactly one of handle= or name="
            )
        target = handle if handle is not None else name
        if manager is not None:
            return manager.attach_store(target)
        return shm.attach_store(target)

    if num_vertices is None:
        raise ParameterError(f"make_store({kind!r}) requires num_vertices")
    num_vertices = int(num_vertices)

    if kind == "flat":
        offsets = opts.pop("offsets", None)
        vertices = opts.pop("vertices", None)
        if (offsets is None) != (vertices is None):
            raise ParameterError(
                "make_store('flat') needs offsets and vertices together"
            )
        if offsets is not None:
            return FlatRRRStore.from_arrays(
                num_vertices, offsets, vertices, **opts
            )
        return FlatRRRStore(num_vertices, **opts)
    if kind == "adaptive":
        return AdaptiveRRRStore(num_vertices, **opts)
    if kind == "partitioned":
        num_workers = opts.pop("num_workers", None)
        if num_workers is None:
            raise ParameterError(
                "make_store('partitioned') requires num_workers"
            )
        return PartitionedRRRStore(num_vertices, num_workers, **opts)
    if kind == "compressed":
        return CompressedRRRStore(num_vertices, **opts)
    raise ParameterError(
        f"unknown store kind {kind!r}; expected one of {STORE_KINDS}"
    )
