"""RRR-set collections: flat, adaptive (budgeted), and partitioned stores.

Three stores cover the designs the paper contrasts:

- :class:`FlatRRRStore` — the numpy workhorse: every set's vertices
  concatenated into one ``int32`` array with an ``int64`` offsets array
  (CSR-of-sets).  All selection kernels consume this layout because it
  vectorises counting (`bincount`) and per-set slicing.
- :class:`AdaptiveRRRStore` — per-set adaptive representations with *memory
  accounting*: every append charges the modelled footprint against an
  optional budget, raising :class:`OutOfMemoryModelError` when exceeded.
  This store reproduces the Table III "Ripples OOM on Twitter7" experiment:
  run it with ``policy=None`` (always lists, Ripples) versus an
  :class:`AdaptivePolicy` (EfficientIMM) under the same budget.
- :class:`PartitionedRRRStore` — one flat store per worker, the layout the
  RRRset-partitioning strategy (§IV-A) and NUMA-local placement (§IV-B)
  produce; provides a ``merge()`` modelling Ripples' gather step.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator, Sequence

import numpy as np

from repro import telemetry
from repro.errors import OutOfMemoryModelError, ParameterError
from repro.sketch.rrr import AdaptivePolicy, RRRSet, make_rrr

__all__ = ["FlatRRRStore", "AdaptiveRRRStore", "PartitionedRRRStore"]

_GROW = 1.5  # amortised growth factor for the flat arrays


def content_fingerprint(
    num_vertices: int, sizes: np.ndarray, vertices: np.ndarray
) -> str:
    """Content hash of a store: vertex space + per-set sizes + flat entries.

    Every :class:`~repro.sketch.protocol.RRRStore` implementation computes
    its ``fingerprint()`` through this one function over its *logical*
    content (global set order, concatenated vertices), so two stores holding
    the same sets in the same order fingerprint identically regardless of
    layout — flat, partitioned, compressed, or a shared-memory view.  The
    hex16 output matches the artifact/sketch fingerprint width and keys
    :mod:`repro.shm` segment names.
    """
    h = hashlib.sha256()
    h.update(b"rrr-store/1:")
    h.update(int(num_vertices).to_bytes(8, "little"))
    h.update(np.ascontiguousarray(sizes, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(vertices, dtype=np.int32).tobytes())
    return h.hexdigest()[:16]


class FlatRRRStore:
    """Concatenated RRR sets: ``offsets[i]:offsets[i+1]`` slices set ``i``.

    Vertices within each set are kept sorted if ``sort_sets`` is true; the
    Ripples baseline needs sorted sets (it binary-searches them), while the
    EfficientIMM kernels do not (they only ever scan sets forward), so the
    sorting cost is charged exactly where the paper charges it.
    """

    def __init__(self, num_vertices: int, *, sort_sets: bool = False):
        self.num_vertices = int(num_vertices)
        self.sort_sets = bool(sort_sets)
        self._offsets = np.zeros(16, dtype=np.int64)
        self._verts = np.empty(64, dtype=np.int32)
        self._num_sets = 0
        self._num_entries = 0
        # Lazily built inverted index (vertex -> set ids); see
        # :meth:`sets_containing`.  Any mutation drops it.
        self._index: tuple[np.ndarray, np.ndarray] | None = None

    # --------------------------------------------------------------- append
    def append(self, vertices: np.ndarray) -> int:
        """Add one set; returns its index.

        Precondition: ``vertices`` holds no duplicates (every sampler
        guarantees this — a BFS/walk visits each vertex at most once).  The
        store does not re-deduplicate; duplicate entries would double-count
        in :meth:`vertex_counts` and the selection kernels.
        """
        arr = np.asarray(vertices, dtype=np.int32).ravel()
        if self.sort_sets:
            arr = np.sort(arr)
        need = self._num_entries + arr.size
        if need > self._verts.size:
            new_cap = max(int(self._verts.size * _GROW), need)
            self._verts = np.resize(self._verts, new_cap)
        if self._num_sets + 2 > self._offsets.size:
            self._offsets = np.resize(
                self._offsets, int(self._offsets.size * _GROW) + 2
            )
        self._verts[self._num_entries : need] = arr
        self._num_entries = need
        self._num_sets += 1
        self._offsets[self._num_sets] = need
        self._index = None
        return self._num_sets - 1

    def extend(self, sets: Sequence[np.ndarray]) -> None:
        for s in sets:
            self.append(s)

    @classmethod
    def from_arrays(
        cls,
        num_vertices: int,
        offsets: np.ndarray,
        vertices: np.ndarray,
        *,
        sort_sets: bool = False,
    ) -> "FlatRRRStore":
        """Rebuild a store directly from its flat arrays (deserialisation).

        The arrays are adopted as-is — sets are **not** re-sorted, so a
        store saved with ``sort_sets=True`` round-trips bit-for-bit.
        """
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        vertices = np.ascontiguousarray(vertices, dtype=np.int32)
        if offsets.size < 1 or offsets[0] != 0:
            raise ParameterError("offsets must start with 0")
        if np.any(np.diff(offsets) < 0):
            raise ParameterError("offsets must be non-decreasing")
        if offsets[-1] != vertices.size:
            raise ParameterError(
                f"offsets end at {int(offsets[-1])} but there are "
                f"{vertices.size} vertices"
            )
        store = cls(num_vertices, sort_sets=sort_sets)
        store._offsets = offsets.copy()
        store._verts = vertices.copy()
        store._num_sets = offsets.size - 1
        store._num_entries = int(vertices.size)
        return store

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return self._num_sets

    def get(self, i: int) -> np.ndarray:
        """View of set ``i``'s vertices (no copy)."""
        if not (0 <= i < self._num_sets):
            raise IndexError(f"set index {i} out of range [0, {self._num_sets})")
        return self._verts[self._offsets[i] : self._offsets[i + 1]]

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(self._num_sets):
            yield self.get(i)

    @property
    def offsets(self) -> np.ndarray:
        """Offsets array view, length ``len(self) + 1``."""
        return self._offsets[: self._num_sets + 1]

    @property
    def vertices(self) -> np.ndarray:
        """Flat concatenated vertices view, length ``total_entries``."""
        return self._verts[: self._num_entries]

    @property
    def total_entries(self) -> int:
        return self._num_entries

    def sizes(self) -> np.ndarray:
        """Per-set sizes."""
        return np.diff(self.offsets)

    # ---------------------------------------------------------- bulk kernels
    def vertex_counts(self) -> np.ndarray:
        """Occurrences of each vertex across all sets (one ``bincount``).

        This is the "initialise global counter" loop of Algorithm 2 in its
        fully vectorised serial form.
        """
        return np.bincount(self.vertices, minlength=self.num_vertices).astype(
            np.int64
        )

    def sets_containing(self, v: int, *, use_index: bool = True) -> np.ndarray:
        """Indices of sets that contain vertex ``v``.

        With ``use_index=True`` (the default) the query is answered from a
        lazily built inverted index (vertex -> set ids, CSR layout): the
        first call after any mutation pays one ``argsort`` over the flat
        vertex array, and every subsequent call is an O(hits) slice.  The
        incremental maintainer issues one query per touched endpoint per
        update batch, which would otherwise re-scan the whole store each
        time.  ``use_index=False`` forces the original linear scan (used by
        tests and the microbench as the reference).
        """
        if not use_index:
            hits = np.flatnonzero(self.vertices == np.int32(v))
            return np.unique(
                np.searchsorted(self.offsets, hits, side="right") - 1
            )
        if not (0 <= v < self.num_vertices):
            return np.empty(0, dtype=np.int64)
        if self._index is None:
            self._build_index()
        assert self._index is not None
        ptr, set_ids = self._index
        return np.unique(set_ids[ptr[v] : ptr[v + 1]])

    def _build_index(self) -> None:
        """Build the inverted index: for each vertex, which sets hold it."""
        verts = self.vertices
        order = np.argsort(verts, kind="stable")
        set_ids = np.repeat(
            np.arange(self._num_sets, dtype=np.int64), self.sizes()
        )[order]
        ptr = np.searchsorted(
            verts[order], np.arange(self.num_vertices + 1, dtype=np.int32)
        ).astype(np.int64)
        self._index = (ptr, set_ids)

    # ------------------------------------------------------------- mutation
    def replace_sets(
        self, indices: np.ndarray, new_sets: Sequence[np.ndarray]
    ) -> "FlatRRRStore":
        """Splice new vertex lists into existing set slots, in place.

        ``indices`` must be strictly increasing set indices;``new_sets[j]``
        replaces set ``indices[j]``.  Replacement sets may have any size —
        the flat arrays are rebuilt in one concatenation pass, so the cost
        is O(total_entries) regardless of how many sets change.  Honours
        ``sort_sets`` and drops the inverted index.  Returns ``self``.
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return self
        if np.any(np.diff(idx) <= 0):
            raise ParameterError("replace_sets indices must be strictly increasing")
        if idx[0] < 0 or idx[-1] >= self._num_sets:
            raise ParameterError(
                f"replace_sets index out of range [0, {self._num_sets})"
            )
        if len(new_sets) != idx.size:
            raise ParameterError(
                f"got {idx.size} indices but {len(new_sets)} replacement sets"
            )
        offsets = self.offsets
        pieces: list[np.ndarray] = []
        sizes = np.diff(offsets)
        cursor = 0  # next unconsumed set index
        for j, i in enumerate(idx):
            if cursor < i:  # untouched run [cursor, i)
                pieces.append(self._verts[offsets[cursor] : offsets[i]])
            arr = np.asarray(new_sets[j], dtype=np.int32).ravel()
            if self.sort_sets:
                arr = np.sort(arr)
            pieces.append(arr)
            sizes[i] = arr.size
            cursor = int(i) + 1
        if cursor < self._num_sets:
            pieces.append(self._verts[offsets[cursor] :])
        self._verts = (
            np.concatenate(pieces)
            if pieces
            else np.empty(0, dtype=np.int32)
        )
        new_offsets = np.zeros(self._num_sets + 1, dtype=np.int64)
        np.cumsum(sizes, out=new_offsets[1:])
        self._offsets = new_offsets
        self._num_entries = int(new_offsets[-1])
        self._index = None
        return self

    def nbytes(self) -> int:
        """Modelled footprint: the *logical* arrays, not the growth slack."""
        return int(self._num_entries * 4 + (self._num_sets + 1) * 8)

    def capacity_bytes(self) -> int:
        """Physical footprint of the backing arrays, growth slack included."""
        return int(self._verts.nbytes + self._offsets.nbytes)

    def trim(self) -> "FlatRRRStore":
        """Drop the amortised growth slack so the physical footprint equals
        :meth:`nbytes`.  Call before caching or serialising a store that has
        stopped growing; appending afterwards re-grows normally.  Returns
        ``self`` for chaining."""
        if self._verts.size != self._num_entries:
            self._verts = self._verts[: self._num_entries].copy()
        if self._offsets.size != self._num_sets + 1:
            self._offsets = self._offsets[: self._num_sets + 1].copy()
        self._index = None
        return self

    def memory_model_bytes_per_set_entry(self) -> float:
        """Average modelled bytes per stored vertex (for OOM projection)."""
        return self.nbytes() / max(self._num_entries, 1)

    def fingerprint(self) -> str:
        """Layout-independent content hash (see :func:`content_fingerprint`)."""
        return content_fingerprint(self.num_vertices, self.sizes(), self.vertices)


class AdaptiveRRRStore:
    """Per-set representations with budget-checked memory accounting.

    ``policy=None`` forces sorted lists for every set (the Ripples layout);
    an :class:`AdaptivePolicy` enables EfficientIMM's per-set switching.
    ``budget_bytes`` models the machine's memory: exceeding it raises
    :class:`OutOfMemoryModelError` exactly where the real Ripples run dies.
    """

    def __init__(
        self,
        num_vertices: int,
        *,
        policy: AdaptivePolicy | None = None,
        budget_bytes: int | None = None,
    ):
        self.num_vertices = int(num_vertices)
        self.policy = policy
        self.budget_bytes = budget_bytes
        self._sets: list[RRRSet] = []
        self._bytes = 0

    def append(self, vertices: np.ndarray) -> int:
        """Add one set; returns its index (the RRRStore protocol contract)."""
        kind = "list" if self.policy is None else None
        rrr = make_rrr(vertices, self.num_vertices, policy=self.policy, kind=kind)
        new_total = self._bytes + rrr.nbytes()
        if self.budget_bytes is not None and new_total > self.budget_bytes:
            raise OutOfMemoryModelError(new_total, self.budget_bytes)
        self._sets.append(rrr)
        self._bytes = new_total
        tel = telemetry.get()
        if tel.enabled:
            # One counter per representation kind: the §IV-C list↔bitmap
            # decision stream (docs/observability.md, `sketch.adaptive.*`).
            tel.registry.counter(f"sketch.adaptive.{rrr.kind}_sets").inc()
            tel.registry.gauge("sketch.adaptive.bytes").set(new_total)
        return len(self._sets) - 1

    def extend(self, sets: Sequence[np.ndarray]) -> None:
        for s in sets:
            self.append(s)

    def __len__(self) -> int:
        return len(self._sets)

    def get(self, i: int) -> np.ndarray:
        """Set ``i``'s vertices as a sorted ``int32`` array."""
        if not (0 <= i < len(self._sets)):
            raise IndexError(f"set index {i} out of range [0, {len(self._sets)})")
        return np.asarray(self._sets[i].vertices(), dtype=np.int32)

    def __getitem__(self, i: int) -> RRRSet:
        return self._sets[i]

    def __iter__(self) -> Iterator[RRRSet]:
        return iter(self._sets)

    def sizes(self) -> np.ndarray:
        """Per-set sizes, in append order."""
        return np.asarray([s.size for s in self._sets], dtype=np.int64)

    def vertex_counts(self) -> np.ndarray:
        """Occurrences of each vertex across all sets."""
        total = np.zeros(self.num_vertices, dtype=np.int64)
        for s in self._sets:
            total += np.bincount(s.vertices(), minlength=self.num_vertices)
        return total

    def sets_containing(self, v: int) -> np.ndarray:
        """Indices of sets containing ``v`` — each representation answers
        with its own membership primitive (binary search / bit probe)."""
        return np.asarray(
            [i for i, s in enumerate(self._sets) if s.contains(int(v))],
            dtype=np.int64,
        )

    def replace_sets(
        self, indices: np.ndarray, new_sets: Sequence[np.ndarray]
    ) -> "AdaptiveRRRStore":
        """Rebuild the given set slots (re-running the adaptive policy and
        the budget accounting for each replacement); returns ``self``."""
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return self
        if np.any(np.diff(idx) <= 0):
            raise ParameterError("replace_sets indices must be strictly increasing")
        if idx[0] < 0 or idx[-1] >= len(self._sets):
            raise ParameterError(
                f"replace_sets index out of range [0, {len(self._sets)})"
            )
        if len(new_sets) != idx.size:
            raise ParameterError(
                f"got {idx.size} indices but {len(new_sets)} replacement sets"
            )
        kind = "list" if self.policy is None else None
        for j, i in enumerate(idx.tolist()):
            rrr = make_rrr(
                new_sets[j], self.num_vertices, policy=self.policy, kind=kind
            )
            new_total = self._bytes - self._sets[i].nbytes() + rrr.nbytes()
            if self.budget_bytes is not None and new_total > self.budget_bytes:
                raise OutOfMemoryModelError(new_total, self.budget_bytes)
            self._sets[i] = rrr
            self._bytes = new_total
        return self

    def trim(self) -> "AdaptiveRRRStore":
        """No-op (per-set representations carry no growth slack); returns
        ``self`` so protocol callers can chain it like the flat store's."""
        return self

    def nbytes(self) -> int:
        return self._bytes

    def fingerprint(self) -> str:
        """Layout-independent content hash (see :func:`content_fingerprint`)."""
        verts = (
            np.concatenate([self.get(i) for i in range(len(self._sets))])
            if self._sets
            else np.empty(0, dtype=np.int32)
        )
        return content_fingerprint(self.num_vertices, self.sizes(), verts)

    def representation_histogram(self) -> dict[str, int]:
        """Count of sets per representation kind ("list"/"bitmap")."""
        hist: dict[str, int] = {}
        for s in self._sets:
            hist[s.kind] = hist.get(s.kind, 0) + 1
        return hist

    def to_flat(self, *, sort_sets: bool = False) -> FlatRRRStore:
        """Materialise as a flat store (used when handing to kernels)."""
        flat = FlatRRRStore(self.num_vertices, sort_sets=sort_sets)
        for s in self._sets:
            flat.append(s.vertices())
        return flat


class PartitionedRRRStore:
    """One :class:`FlatRRRStore` per worker (the NUMA-local layout).

    Under EfficientIMM's partitioning each worker generates *and consumes*
    its own slice of the RRR sets, so the sets never move; Ripples instead
    gathers all sets into one global store before selection.  ``merge()``
    models that gather (it copies every vertex once).
    """

    def __init__(self, num_vertices: int, num_workers: int, *, sort_sets: bool = False):
        if num_workers <= 0:
            raise ParameterError(f"num_workers must be positive, got {num_workers}")
        self.num_vertices = int(num_vertices)
        self.num_workers = int(num_workers)
        self.sort_sets = bool(sort_sets)
        self.parts = [
            FlatRRRStore(num_vertices, sort_sets=sort_sets)
            for _ in range(num_workers)
        ]

    def append(self, worker, vertices: np.ndarray | None = None) -> int:
        """Add one set.

        Two forms: ``append(worker, vertices)`` files the set under a
        specific partition and returns its *partition-local* index (the
        NUMA-placement path); the protocol form ``append(vertices)`` files
        it under the last partition — preserving the global
        worker-concatenated order — and returns its *global* index.
        """
        if vertices is None:
            self.parts[-1].append(worker)
            return len(self) - 1
        # Explicit range check: Python's negative-index wraparound would
        # otherwise silently file the set under the *last* partition.
        if not (0 <= worker < self.num_workers):
            raise IndexError(
                f"worker {worker} out of range [0, {self.num_workers})"
            )
        return self.parts[worker].append(vertices)

    def extend(self, sets: Sequence[np.ndarray]) -> None:
        """Protocol-form bulk append (all sets go to the last partition)."""
        for s in sets:
            self.append(s)

    def __len__(self) -> int:
        return sum(len(p) for p in self.parts)

    def get(self, i: int) -> np.ndarray:
        """Set ``i`` in global (worker-concatenated) order — the same order
        :meth:`merge` lays the sets out in, so indices stay valid across a
        gather."""
        if i < 0:
            raise IndexError(f"set index {i} out of range [0, {len(self)})")
        for part in self.parts:
            if i < len(part):
                return part.get(i)
            i -= len(part)
        raise IndexError(f"set index out of range [0, {len(self)})")

    def __iter__(self) -> Iterator[np.ndarray]:
        for part in self.parts:
            yield from part

    def sizes(self) -> np.ndarray:
        """Per-set sizes in global order (matches :meth:`get`/:meth:`merge`)."""
        parts = [p.sizes() for p in self.parts]
        return (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )

    @property
    def total_entries(self) -> int:
        return sum(p.total_entries for p in self.parts)

    def merge(self) -> FlatRRRStore:
        """Gather all partitions into one store (Ripples' redistribution).

        The merged store preserves this store's ``sort_sets`` flag and the
        global iteration order, so ``len(merged) == len(self)`` and
        ``merged.get(i)`` equals ``self.get(i)`` for every ``i``.
        """
        out = FlatRRRStore(self.num_vertices, sort_sets=self.sort_sets)
        for part in self.parts:
            for s in part:
                out.append(s)
        return out

    def vertex_counts(self) -> np.ndarray:
        """Global counter built from per-partition counts (sum of bincounts),
        the serial equivalent of Algorithm 2's concurrent atomic updates."""
        total = np.zeros(self.num_vertices, dtype=np.int64)
        for part in self.parts:
            total += part.vertex_counts()
        return total

    def sets_containing(self, v: int) -> np.ndarray:
        """Global indices (worker-concatenated order) of sets containing
        ``v`` — each partition's hits shifted by the partitions before it."""
        out: list[np.ndarray] = []
        base = 0
        for part in self.parts:
            out.append(part.sets_containing(v) + base)
            base += len(part)
        return (
            np.concatenate(out) if out else np.empty(0, dtype=np.int64)
        )

    def replace_sets(
        self, indices: np.ndarray, new_sets: Sequence[np.ndarray]
    ) -> "PartitionedRRRStore":
        """Splice replacements by *global* index, routed to the owning
        partitions (same contract as :meth:`FlatRRRStore.replace_sets`);
        returns ``self``."""
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return self
        if np.any(np.diff(idx) <= 0):
            raise ParameterError("replace_sets indices must be strictly increasing")
        if idx[0] < 0 or idx[-1] >= len(self):
            raise ParameterError(
                f"replace_sets index out of range [0, {len(self)})"
            )
        if len(new_sets) != idx.size:
            raise ParameterError(
                f"got {idx.size} indices but {len(new_sets)} replacement sets"
            )
        base = 0
        cursor = 0
        for part in self.parts:
            hi = base + len(part)
            lo_cursor = cursor
            while cursor < idx.size and idx[cursor] < hi:
                cursor += 1
            if cursor > lo_cursor:
                part.replace_sets(
                    idx[lo_cursor:cursor] - base,
                    [new_sets[j] for j in range(lo_cursor, cursor)],
                )
            base = hi
        return self

    def fingerprint(self) -> str:
        """Layout-independent content hash over the *global* order (equal to
        the fingerprint of :meth:`merge`'s flat result)."""
        verts = [p.vertices for p in self.parts]
        return content_fingerprint(
            self.num_vertices,
            self.sizes(),
            np.concatenate(verts) if verts else np.empty(0, dtype=np.int32),
        )

    def nbytes(self) -> int:
        return sum(p.nbytes() for p in self.parts)

    def capacity_bytes(self) -> int:
        """Physical footprint across partitions, growth slack included."""
        return sum(p.capacity_bytes() for p in self.parts)

    def trim(self) -> "PartitionedRRRStore":
        """Trim every partition's growth slack (see
        :meth:`FlatRRRStore.trim`); returns ``self`` for chaining."""
        for part in self.parts:
            part.trim()
        return self
