"""Coverage statistics over RRR stores — Table I's measured columns."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sketch.store import FlatRRRStore

__all__ = ["CoverageStats", "coverage_stats"]


@dataclass(frozen=True)
class CoverageStats:
    """Average / maximum coverage fraction of a collection of RRR sets."""

    num_sets: int
    avg_size: float
    max_size: int
    avg_coverage: float
    max_coverage: float
    total_entries: int

    def format_row(self) -> str:
        return (
            f"{self.num_sets:>8d} sets  avg={self.avg_coverage:6.1%}  "
            f"max={self.max_coverage:6.1%}  entries={self.total_entries:,}"
        )


def coverage_stats(store: FlatRRRStore) -> CoverageStats:
    """Compute coverage statistics for every set in ``store``."""
    sizes = store.sizes()
    n = max(store.num_vertices, 1)
    if sizes.size == 0:
        return CoverageStats(0, 0.0, 0, 0.0, 0.0, 0)
    return CoverageStats(
        num_sets=int(sizes.size),
        avg_size=float(sizes.mean()),
        max_size=int(sizes.max()),
        avg_coverage=float(sizes.mean() / n),
        max_coverage=float(sizes.max() / n),
        total_entries=int(sizes.sum()),
    )
