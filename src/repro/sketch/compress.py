"""HBMax-style sketch compression baselines: Huffman and delta-varint codecs.

The related-work section contrasts EfficientIMM with HBMax (Chen et al.,
PACT'22), which compresses RRR sets with Huffman or bitmap coding to cut
memory at the price of codec overhead.  To make that comparison runnable,
this module implements both codecs from scratch:

- :class:`HuffmanCodec` — canonical Huffman over vertex-id frequencies
  (frequent hub vertices get short codes, exploiting the skew that makes
  hubs appear in almost every RRR set);
- :class:`DeltaVarintCodec` — sort + delta + LEB128 varint, the standard
  inverted-index compression for sorted id lists.

Both encode a vertex array to ``bytes`` and decode back losslessly; the
ablation benchmark measures bytes saved versus encode/decode time, which is
exactly the trade-off the paper cites as HBMax's weakness.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError

__all__ = ["HuffmanCodec", "DeltaVarintCodec", "CompressionReport", "compare_codecs"]


class HuffmanCodec:
    """Canonical Huffman codec over a fixed vertex-frequency table.

    The code table is built once from training counts (e.g. the global
    vertex-occurrence counter — data IMM already maintains), then reused for
    every set, mirroring HBMax's shared-codebook design.
    """

    def __init__(self, frequencies: np.ndarray):
        freq = np.asarray(frequencies, dtype=np.int64).ravel()
        if freq.size == 0:
            raise ParameterError("frequency table must be non-empty")
        if np.any(freq < 0):
            raise ParameterError("frequencies must be non-negative")
        self.num_symbols = freq.size
        # Laplace-smooth so every vertex is encodable even with zero count.
        lengths = _huffman_code_lengths(freq + 1)
        self._lengths, self._codes = _canonical_codes(lengths)
        # Decoding tables, grouped by code length.
        self._decode = _build_decoder(self._lengths, self._codes)

    def code_lengths(self) -> np.ndarray:
        """Per-symbol code lengths in bits (canonical form)."""
        return self._lengths.copy()

    def encode(self, vertices: np.ndarray) -> bytes:
        """Encode a vertex array into a packed bitstream (little header)."""
        vs = np.asarray(vertices, dtype=np.int64).ravel()
        if vs.size and (vs.min() < 0 or vs.max() >= self.num_symbols):
            raise ParameterError("vertex outside codec symbol range")
        lens = self._lengths[vs]
        codes = self._codes[vs]
        total_bits = int(lens.sum())
        # Emit each code MSB-first into a flat bit array.
        bits = np.zeros(total_bits, dtype=np.uint8)
        ends = np.cumsum(lens)
        starts = ends - lens
        for i in range(vs.size):  # per-symbol loop; codec cost is the point
            c, ln, st = int(codes[i]), int(lens[i]), int(starts[i])
            for b in range(ln):
                bits[st + b] = (c >> (ln - 1 - b)) & 1
        packed = np.packbits(bits)
        header = int(vs.size).to_bytes(4, "little")
        return header + packed.tobytes()

    def decode(self, blob: bytes) -> np.ndarray:
        """Decode a blob produced by :meth:`encode`."""
        count = int.from_bytes(blob[:4], "little")
        bits = np.unpackbits(np.frombuffer(blob[4:], dtype=np.uint8))
        out = np.empty(count, dtype=np.int32)
        by_len = self._decode
        pos = 0
        code = 0
        length = 0
        filled = 0
        for _ in range(count):
            code = 0
            length = 0
            while True:
                code = (code << 1) | int(bits[pos])
                pos += 1
                length += 1
                table = by_len.get(length)
                if table is not None and code in table:
                    out[filled] = table[code]
                    filled += 1
                    break
                if length > 64:
                    raise ParameterError("corrupt Huffman stream")
        return out

    def encoded_nbytes(self, vertices: np.ndarray) -> int:
        """Size the encoding without materialising it (fast accounting)."""
        vs = np.asarray(vertices, dtype=np.int64).ravel()
        return 4 + (int(self._lengths[vs].sum()) + 7) // 8


class DeltaVarintCodec:
    """Sort + delta + LEB128 varint codec for vertex-id lists."""

    def encode(self, vertices: np.ndarray) -> bytes:
        vs = np.sort(np.asarray(vertices, dtype=np.int64).ravel())
        if vs.size and vs.min() < 0:
            raise ParameterError("vertex ids must be non-negative")
        deltas = np.diff(vs, prepend=0)
        out = bytearray()
        out += int(vs.size).to_bytes(4, "little")
        for d in deltas.tolist():
            while True:
                byte = d & 0x7F
                d >>= 7
                if d:
                    out.append(byte | 0x80)
                else:
                    out.append(byte)
                    break
        return bytes(out)

    def decode(self, blob: bytes) -> np.ndarray:
        count = int.from_bytes(blob[:4], "little")
        out = np.empty(count, dtype=np.int64)
        pos = 4
        acc = 0
        for i in range(count):
            shift = 0
            val = 0
            while True:
                byte = blob[pos]
                pos += 1
                val |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
            acc += val
            out[i] = acc
        return out.astype(np.int32)


@dataclass(frozen=True)
class CompressionReport:
    """Outcome of compressing one set collection with one codec."""

    codec: str
    raw_bytes: int
    encoded_bytes: int
    encode_seconds: float
    decode_seconds: float

    @property
    def ratio(self) -> float:
        """Compression ratio (raw / encoded); > 1 means space was saved."""
        return self.raw_bytes / max(self.encoded_bytes, 1)


def compare_codecs(
    sets: list[np.ndarray], num_vertices: int
) -> list[CompressionReport]:
    """Run both codecs (plus raw) over ``sets`` and report size/time.

    The reproduction of the paper's HBMax argument: compression shrinks the
    store but pays per-set codec time that EfficientIMM's adaptive plain
    representations avoid.
    """
    import time

    counts = np.zeros(num_vertices, dtype=np.int64)
    for s in sets:
        np.add.at(counts, np.asarray(s, dtype=np.int64), 1)
    raw = sum(int(np.asarray(s).size) * 4 for s in sets)

    reports = [CompressionReport("raw-int32", raw, raw, 0.0, 0.0)]
    for name, codec in [
        ("huffman", HuffmanCodec(counts)),
        ("delta-varint", DeltaVarintCodec()),
    ]:
        t0 = time.perf_counter()
        blobs = [codec.encode(s) for s in sets]
        t1 = time.perf_counter()
        decoded = [codec.decode(b) for b in blobs]
        t2 = time.perf_counter()
        for orig, dec in zip(sets, decoded):
            if not np.array_equal(np.sort(np.asarray(orig, dtype=np.int32)), np.sort(dec)):
                raise AssertionError(f"{name} codec round-trip mismatch")
        reports.append(
            CompressionReport(
                name, raw, sum(len(b) for b in blobs), t1 - t0, t2 - t1
            )
        )
    return reports


# --------------------------------------------------------------- internals
def _huffman_code_lengths(freq: np.ndarray) -> np.ndarray:
    """Code length per symbol from a frequency table (heap agglomeration)."""
    n = freq.size
    if n == 1:
        return np.ones(1, dtype=np.int64)
    heap: list[tuple[int, int, list[int]]] = [
        (int(f), i, [i]) for i, f in enumerate(freq)
    ]
    heapq.heapify(heap)
    lengths = np.zeros(n, dtype=np.int64)
    tiebreak = n
    while len(heap) > 1:
        fa, _, syms_a = heapq.heappop(heap)
        fb, _, syms_b = heapq.heappop(heap)
        for s in syms_a:
            lengths[s] += 1
        for s in syms_b:
            lengths[s] += 1
        heapq.heappush(heap, (fa + fb, tiebreak, syms_a + syms_b))
        tiebreak += 1
    return lengths


def _canonical_codes(lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Assign canonical codes given per-symbol lengths (sorted by (len, id))."""
    order = np.lexsort((np.arange(lengths.size), lengths))
    codes = np.zeros(lengths.size, dtype=np.int64)
    code = 0
    prev_len = 0
    for sym in order:
        ln = int(lengths[sym])
        code <<= ln - prev_len
        codes[sym] = code
        code += 1
        prev_len = ln
    return lengths, codes


def _build_decoder(
    lengths: np.ndarray, codes: np.ndarray
) -> dict[int, dict[int, int]]:
    """length -> {code -> symbol} lookup tables."""
    table: dict[int, dict[int, int]] = {}
    for sym in range(lengths.size):
        table.setdefault(int(lengths[sym]), {})[int(codes[sym])] = sym
    return table
