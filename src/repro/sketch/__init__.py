"""RRR-sketch machinery: representations, stores, compression, statistics.

Reverse-reachable (RRR) sets are the sketches IMM samples; how they are
*stored* is one of the paper's contributions (§IV-C "Adaptive RRRset
Representation") and the axis of the HBMax comparison in related work.

- :mod:`repro.sketch.rrr` — single-set representations: sorted vertex list,
  packed bitmap, and the adaptive policy that switches between them;
- :mod:`repro.sketch.store` — collections: the flat CSR-style store the
  selection kernels operate on, the adaptive store with memory-budget
  accounting (the OOM experiment), and per-worker partitioned stores;
- :mod:`repro.sketch.compress` — HBMax-style Huffman and delta-varint codecs
  used as the compression baseline ablation;
- :mod:`repro.sketch.stats` — coverage statistics (Table I's columns).
"""

from repro.sketch.rrr import AdaptivePolicy, BitmapRRR, ListRRR, RRRSet, make_rrr
from repro.sketch.stats import CoverageStats, coverage_stats
from repro.sketch.store import AdaptiveRRRStore, FlatRRRStore, PartitionedRRRStore

__all__ = [
    "RRRSet",
    "ListRRR",
    "BitmapRRR",
    "AdaptivePolicy",
    "make_rrr",
    "FlatRRRStore",
    "AdaptiveRRRStore",
    "PartitionedRRRStore",
    "CoverageStats",
    "coverage_stats",
]
