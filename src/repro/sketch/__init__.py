"""RRR-sketch machinery: representations, stores, compression, statistics.

Reverse-reachable (RRR) sets are the sketches IMM samples; how they are
*stored* is one of the paper's contributions (§IV-C "Adaptive RRRset
Representation") and the axis of the HBMax comparison in related work.

- :mod:`repro.sketch.rrr` — single-set representations: sorted vertex list,
  packed bitmap, and the adaptive policy that switches between them;
- :mod:`repro.sketch.store` — collections: the flat CSR-style store the
  selection kernels operate on, the adaptive store with memory-budget
  accounting (the OOM experiment), and per-worker partitioned stores;
- :mod:`repro.sketch.compress` — HBMax-style Huffman and delta-varint codecs
  used as the compression baseline ablation;
- :mod:`repro.sketch.stats` — coverage statistics (Table I's columns).
"""

from repro.sketch.compressed_store import CompressedRRRStore
from repro.sketch.protocol import (
    PROTOCOL_METHODS,
    STORE_EXTRAS,
    STORE_KINDS,
    RRRStore,
    make_store,
)
from repro.sketch.rrr import AdaptivePolicy, BitmapRRR, ListRRR, RRRSet, make_rrr
from repro.sketch.stats import CoverageStats, coverage_stats
from repro.sketch.store import (
    AdaptiveRRRStore,
    FlatRRRStore,
    PartitionedRRRStore,
    content_fingerprint,
)

__all__ = [
    "RRRSet",
    "ListRRR",
    "BitmapRRR",
    "AdaptivePolicy",
    "make_rrr",
    "RRRStore",
    "make_store",
    "STORE_KINDS",
    "PROTOCOL_METHODS",
    "STORE_EXTRAS",
    "FlatRRRStore",
    "AdaptiveRRRStore",
    "PartitionedRRRStore",
    "CompressedRRRStore",
    "content_fingerprint",
    "CoverageStats",
    "coverage_stats",
]
