"""HBMax-style compressed RRR store: the §VI comparison made runnable.

HBMax (Chen et al., PACT'22) attacks IMM's memory footprint by compressing
RRR sets; the paper's critique is that the codec overhead taxes every
access, which EfficientIMM's plain adaptive representations avoid.  This
store makes both sides of the trade-off measurable:

- sets are held as encoded byte blobs (``"huffman"`` over a codebook
  trained on the first sets' vertex frequencies — hub vertices get short
  codes — or ``"delta-varint"``);
- every :meth:`get` decodes (charged to ``decode_seconds``); every append
  encodes (charged to ``encode_seconds``);
- :meth:`nbytes` is the compressed footprint, comparable against
  :func:`repro.core.sampling.modelled_store_bytes` for the other designs.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence

import numpy as np

from repro import telemetry
from repro.errors import OutOfMemoryModelError, ParameterError
from repro.sketch.compress import DeltaVarintCodec, HuffmanCodec
from repro.sketch.store import FlatRRRStore, content_fingerprint
from repro.telemetry.bridge import record_codec_stats

__all__ = ["CompressedRRRStore"]


class CompressedRRRStore:
    """RRR sets stored as compressed blobs, with codec-time accounting.

    Parameters
    ----------
    codec:
        ``"huffman"`` or ``"delta-varint"``.
    training_sets:
        Number of initial sets buffered uncompressed to train the Huffman
        codebook (hub frequencies stabilise quickly); they are encoded
        retroactively once the codebook exists.  Ignored by delta-varint.
    budget_bytes:
        Optional memory-model budget, enforced on the *compressed* size.
    """

    def __init__(
        self,
        num_vertices: int,
        *,
        codec: str = "huffman",
        training_sets: int = 32,
        budget_bytes: int | None = None,
    ):
        if codec not in ("huffman", "delta-varint"):
            raise ParameterError(f"unknown codec {codec!r}")
        self.num_vertices = int(num_vertices)
        self.codec_name = codec
        self.training_sets = int(training_sets)
        self.budget_bytes = budget_bytes
        self._codec = DeltaVarintCodec() if codec == "delta-varint" else None
        self._pending: list[np.ndarray] = []  # pre-codebook buffer
        self._blobs: list[bytes] = []
        self._sizes: list[int] = []
        self._bytes = 0
        self.encode_seconds = 0.0
        self.decode_seconds = 0.0

    # ---------------------------------------------------------------- write
    def append(self, vertices: np.ndarray) -> int:
        arr = np.asarray(vertices, dtype=np.int32).ravel()
        self._sizes.append(arr.size)
        if self._codec is None:
            # Huffman: buffer until the codebook can be trained.
            self._pending.append(arr)
            if len(self._pending) >= self.training_sets:
                self._train_and_flush()
            return len(self._sizes) - 1
        self._encode_one(arr)
        return len(self._sizes) - 1

    def extend(self, sets: Sequence[np.ndarray]) -> None:
        for s in sets:
            self.append(s)

    def _train_and_flush(self) -> None:
        counts = np.zeros(self.num_vertices, dtype=np.int64)
        for s in self._pending:
            np.add.at(counts, s.astype(np.int64), 1)
        self._codec = HuffmanCodec(counts)
        pending, self._pending = self._pending, []
        for s in pending:
            self._encode_one(s)

    def _encode_one(self, arr: np.ndarray) -> None:
        t0 = time.perf_counter()
        blob = self._codec.encode(arr)  # type: ignore[union-attr]
        self.encode_seconds += time.perf_counter() - t0
        new_total = self._bytes + len(blob)
        if self.budget_bytes is not None and new_total > self.budget_bytes:
            raise OutOfMemoryModelError(
                new_total, self.budget_bytes, what="compressed RRR store"
            )
        self._blobs.append(blob)
        self._bytes = new_total
        tel = telemetry.get()
        if tel.enabled:
            # Event counter stays here; the cumulative codec gauges go
            # through the shared bridge like the other stores' stats.
            tel.registry.counter("sketch.compressed.sets").inc()
            record_codec_stats(tel.registry, self)

    def finalize(self) -> None:
        """Force codebook training and flush any buffered sets."""
        if self._codec is None:
            if not self._pending:
                raise ParameterError("cannot finalize an empty huffman store")
            self._train_and_flush()

    # ----------------------------------------------------------------- read
    def __len__(self) -> int:
        return len(self._sizes)

    def get(self, i: int) -> np.ndarray:
        """Decode set ``i`` (sorted ``int32``); codec time is charged."""
        if self._codec is None:
            if i >= len(self._blobs) + len(self._pending):
                raise IndexError(i)
            if i >= len(self._blobs):
                return np.sort(self._pending[i - len(self._blobs)])
        t0 = time.perf_counter()
        out = self._codec.decode(self._blobs[i])
        self.decode_seconds += time.perf_counter() - t0
        tel = telemetry.get()
        if tel.enabled:
            record_codec_stats(tel.registry, self)
        return np.sort(out)

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(len(self)):
            yield self.get(i)

    def sizes(self) -> np.ndarray:
        return np.asarray(self._sizes, dtype=np.int64)

    def vertex_counts(self) -> np.ndarray:
        """Occurrences of each vertex across all sets (pays full decode)."""
        total = np.zeros(self.num_vertices, dtype=np.int64)
        for s in self:
            total += np.bincount(s, minlength=self.num_vertices)
        return total

    def sets_containing(self, v: int) -> np.ndarray:
        """Indices of sets containing ``v`` — a decode scan; this is
        exactly the per-access codec tax the §VI comparison charges."""
        v = np.int32(v)
        return np.asarray(
            [i for i in range(len(self)) if np.any(self.get(i) == v)],
            dtype=np.int64,
        )

    def replace_sets(
        self, indices: np.ndarray, new_sets: Sequence[np.ndarray]
    ) -> "CompressedRRRStore":
        """Decode everything, splice the replacements, re-encode through the
        normal append path (retraining the Huffman codebook on the new
        contents); returns ``self``.  O(total entries) in codec time — the
        compressed layout has no cheap in-place splice.
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return self
        if np.any(np.diff(idx) <= 0):
            raise ParameterError("replace_sets indices must be strictly increasing")
        if idx[0] < 0 or idx[-1] >= len(self):
            raise ParameterError(
                f"replace_sets index out of range [0, {len(self)})"
            )
        if len(new_sets) != idx.size:
            raise ParameterError(
                f"got {idx.size} indices but {len(new_sets)} replacement sets"
            )
        sets = [self.get(i) for i in range(len(self))]
        for j, i in enumerate(idx.tolist()):
            sets[i] = np.asarray(new_sets[j], dtype=np.int32).ravel()
        self._codec = (
            DeltaVarintCodec() if self.codec_name == "delta-varint" else None
        )
        self._pending = []
        self._blobs = []
        self._sizes = []
        self._bytes = 0
        for s in sets:
            self.append(s)
        return self

    def trim(self) -> "CompressedRRRStore":
        """No-op (blobs carry no growth slack); returns ``self`` so protocol
        callers can chain it like the flat store's."""
        return self

    def nbytes(self) -> int:
        """Compressed footprint (buffered training sets counted raw)."""
        return self._bytes + sum(4 * s.size for s in self._pending)

    @property
    def compression_ratio(self) -> float:
        """Raw-int32 bytes / compressed bytes (>1 means space saved)."""
        raw = 4 * int(self.sizes().sum())
        return raw / max(self.nbytes(), 1)

    def fingerprint(self) -> str:
        """Layout-independent content hash over the *decoded* sets (equal to
        the fingerprint of :meth:`to_flat`'s result)."""
        sets = [self.get(i) for i in range(len(self))]
        return content_fingerprint(
            self.num_vertices,
            self.sizes(),
            np.concatenate(sets) if sets else np.empty(0, dtype=np.int32),
        )

    def to_flat(self, *, sort_sets: bool = True) -> FlatRRRStore:
        """Decode everything into a flat store (pays full decode cost)."""
        self.finalize()
        flat = FlatRRRStore(self.num_vertices, sort_sets=sort_sets)
        for i in range(len(self)):
            flat.append(self.get(i))
        return flat
