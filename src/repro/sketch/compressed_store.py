"""HBMax-style compressed RRR store: the §VI comparison made runnable.

HBMax (Chen et al., PACT'22) attacks IMM's memory footprint by compressing
RRR sets; the paper's critique is that the codec overhead taxes every
access, which EfficientIMM's plain adaptive representations avoid.  This
store makes both sides of the trade-off measurable:

- sets are held as encoded byte blobs (``"huffman"`` over a codebook
  trained on the first sets' vertex frequencies — hub vertices get short
  codes — or ``"delta-varint"``);
- every :meth:`get` decodes (charged to ``decode_seconds``); every append
  encodes (charged to ``encode_seconds``);
- :meth:`nbytes` is the compressed footprint, comparable against
  :func:`repro.core.sampling.modelled_store_bytes` for the other designs.
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.errors import OutOfMemoryModelError, ParameterError
from repro.sketch.compress import DeltaVarintCodec, HuffmanCodec
from repro.sketch.store import FlatRRRStore

__all__ = ["CompressedRRRStore"]


class CompressedRRRStore:
    """RRR sets stored as compressed blobs, with codec-time accounting.

    Parameters
    ----------
    codec:
        ``"huffman"`` or ``"delta-varint"``.
    training_sets:
        Number of initial sets buffered uncompressed to train the Huffman
        codebook (hub frequencies stabilise quickly); they are encoded
        retroactively once the codebook exists.  Ignored by delta-varint.
    budget_bytes:
        Optional memory-model budget, enforced on the *compressed* size.
    """

    def __init__(
        self,
        num_vertices: int,
        *,
        codec: str = "huffman",
        training_sets: int = 32,
        budget_bytes: int | None = None,
    ):
        if codec not in ("huffman", "delta-varint"):
            raise ParameterError(f"unknown codec {codec!r}")
        self.num_vertices = int(num_vertices)
        self.codec_name = codec
        self.training_sets = int(training_sets)
        self.budget_bytes = budget_bytes
        self._codec = DeltaVarintCodec() if codec == "delta-varint" else None
        self._pending: list[np.ndarray] = []  # pre-codebook buffer
        self._blobs: list[bytes] = []
        self._sizes: list[int] = []
        self._bytes = 0
        self.encode_seconds = 0.0
        self.decode_seconds = 0.0

    # ---------------------------------------------------------------- write
    def append(self, vertices: np.ndarray) -> int:
        arr = np.asarray(vertices, dtype=np.int32).ravel()
        self._sizes.append(arr.size)
        if self._codec is None:
            # Huffman: buffer until the codebook can be trained.
            self._pending.append(arr)
            if len(self._pending) >= self.training_sets:
                self._train_and_flush()
            return len(self._sizes) - 1
        self._encode_one(arr)
        return len(self._sizes) - 1

    def _train_and_flush(self) -> None:
        counts = np.zeros(self.num_vertices, dtype=np.int64)
        for s in self._pending:
            np.add.at(counts, s.astype(np.int64), 1)
        self._codec = HuffmanCodec(counts)
        pending, self._pending = self._pending, []
        for s in pending:
            self._encode_one(s)

    def _encode_one(self, arr: np.ndarray) -> None:
        t0 = time.perf_counter()
        blob = self._codec.encode(arr)  # type: ignore[union-attr]
        self.encode_seconds += time.perf_counter() - t0
        new_total = self._bytes + len(blob)
        if self.budget_bytes is not None and new_total > self.budget_bytes:
            raise OutOfMemoryModelError(
                new_total, self.budget_bytes, what="compressed RRR store"
            )
        self._blobs.append(blob)
        self._bytes = new_total
        tel = telemetry.get()
        if tel.enabled:
            reg = tel.registry
            reg.counter("sketch.compressed.sets").inc()
            reg.gauge("sketch.compressed.bytes").set(self.nbytes())
            reg.gauge("sketch.compressed.ratio").set(self.compression_ratio)
            reg.gauge("sketch.compressed.encode_s").set(self.encode_seconds)

    def finalize(self) -> None:
        """Force codebook training and flush any buffered sets."""
        if self._codec is None:
            if not self._pending:
                raise ParameterError("cannot finalize an empty huffman store")
            self._train_and_flush()

    # ----------------------------------------------------------------- read
    def __len__(self) -> int:
        return len(self._sizes)

    def get(self, i: int) -> np.ndarray:
        """Decode set ``i`` (sorted ``int32``); codec time is charged."""
        if self._codec is None:
            if i >= len(self._blobs) + len(self._pending):
                raise IndexError(i)
            if i >= len(self._blobs):
                return np.sort(self._pending[i - len(self._blobs)])
        t0 = time.perf_counter()
        out = self._codec.decode(self._blobs[i])
        self.decode_seconds += time.perf_counter() - t0
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.gauge("sketch.compressed.decode_s").set(self.decode_seconds)
        return np.sort(out)

    def sizes(self) -> np.ndarray:
        return np.asarray(self._sizes, dtype=np.int64)

    def nbytes(self) -> int:
        """Compressed footprint (buffered training sets counted raw)."""
        return self._bytes + sum(4 * s.size for s in self._pending)

    @property
    def compression_ratio(self) -> float:
        """Raw-int32 bytes / compressed bytes (>1 means space saved)."""
        raw = 4 * int(self.sizes().sum())
        return raw / max(self.nbytes(), 1)

    def to_flat(self, *, sort_sets: bool = True) -> FlatRRRStore:
        """Decode everything into a flat store (pays full decode cost)."""
        self.finalize()
        flat = FlatRRRStore(self.num_vertices, sort_sets=sort_sets)
        for i in range(len(self)):
            flat.append(self.get(i))
        return flat
