"""Single RRR-set representations and the adaptive switching policy.

The paper (§IV-C) observes that a one-size-fits-all representation loses both
ways: sorted vertex lists make membership O(log s) and cost O(s log s) to
sort, while bitmaps of |V| bits waste memory on the many small sets.
EfficientIMM therefore switches per set:

- *small* sets  -> sorted ``int32`` vertex list (:class:`ListRRR`);
- *dense* sets  -> packed bitmap with O(1) membership (:class:`BitmapRRR`).

The crossover used by :class:`AdaptivePolicy` is the memory-equality point:
a list costs ``4 * s`` bytes, a bitmap ``n / 8`` bytes, so the bitmap wins
when ``s > n / 32``.  The policy exposes the threshold as a tunable fraction
so the ablation benchmarks can sweep it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError

__all__ = ["RRRSet", "ListRRR", "BitmapRRR", "AdaptivePolicy", "make_rrr"]


class RRRSet(ABC):
    """One reverse-reachable set over a vertex space of size ``num_vertices``."""

    __slots__ = ("num_vertices",)

    def __init__(self, num_vertices: int):
        self.num_vertices = int(num_vertices)

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of vertices in the set."""

    @abstractmethod
    def vertices(self) -> np.ndarray:
        """The member vertices as a sorted ``int32`` array."""

    @abstractmethod
    def contains(self, v: int) -> bool:
        """Membership test for a single vertex."""

    @abstractmethod
    def contains_many(self, vs: np.ndarray) -> np.ndarray:
        """Vectorised membership test; returns a boolean array."""

    @abstractmethod
    def nbytes(self) -> int:
        """Modelled storage footprint in bytes."""

    @property
    def coverage(self) -> float:
        """Fraction of the vertex space this set covers (Table I's metric)."""
        return self.size / self.num_vertices if self.num_vertices else 0.0

    #: Short representation tag used in reports ("list" / "bitmap").
    kind: str = "?"


class ListRRR(RRRSet):
    """Sorted ``int32`` vertex list; membership via binary search.

    This is the representation Ripples uses for *every* set — the paper's
    point is that its O(s log s) sort and O(log s) membership are wasteful
    for the large SCC-driven sets.
    """

    __slots__ = ("_verts",)
    kind = "list"

    def __init__(self, vertices: np.ndarray, num_vertices: int, *, presorted: bool = False):
        super().__init__(num_vertices)
        arr = np.asarray(vertices, dtype=np.int32).ravel()
        # The sort is charged to this representation by design: it is the
        # O(s log s) cost the paper attributes to Ripples' pipeline.
        self._verts = arr if presorted else np.sort(arr)

    @property
    def size(self) -> int:
        return int(self._verts.size)

    def vertices(self) -> np.ndarray:
        return self._verts

    def contains(self, v: int) -> bool:
        i = int(np.searchsorted(self._verts, v))
        return i < self._verts.size and int(self._verts[i]) == int(v)

    def contains_many(self, vs: np.ndarray) -> np.ndarray:
        vs = np.asarray(vs, dtype=np.int32)
        idx = np.searchsorted(self._verts, vs)
        idx_clipped = np.minimum(idx, max(self._verts.size - 1, 0))
        if self._verts.size == 0:
            return np.zeros(vs.shape, dtype=bool)
        return self._verts[idx_clipped] == vs

    def nbytes(self) -> int:
        return int(self._verts.nbytes)


class BitmapRRR(RRRSet):
    """Packed-bit membership array; O(1) membership, O(n/8) bytes.

    Used by EfficientIMM for the dense sets produced inside a giant SCC,
    where it is both smaller than the list *and* turns the selection phase's
    membership checks into single bit probes.
    """

    __slots__ = ("_bits", "_size")
    kind = "bitmap"

    def __init__(self, vertices: np.ndarray, num_vertices: int):
        super().__init__(num_vertices)
        arr = np.asarray(vertices, dtype=np.int64).ravel()
        if arr.size and (arr.min() < 0 or arr.max() >= num_vertices):
            raise ParameterError("vertex id outside bitmap universe")
        mask = np.zeros(num_vertices, dtype=bool)
        mask[arr] = True
        self._bits = np.packbits(mask)
        self._size = int(mask.sum())

    @property
    def size(self) -> int:
        return self._size

    def vertices(self) -> np.ndarray:
        mask = np.unpackbits(self._bits, count=self.num_vertices).astype(bool)
        return np.flatnonzero(mask).astype(np.int32)

    def contains(self, v: int) -> bool:
        v = int(v)
        if not (0 <= v < self.num_vertices):
            return False
        return bool((self._bits[v >> 3] >> (7 - (v & 7))) & 1)

    def contains_many(self, vs: np.ndarray) -> np.ndarray:
        vs = np.asarray(vs, dtype=np.int64)
        byte = self._bits[vs >> 3]
        return ((byte >> (7 - (vs & 7))) & 1).astype(bool)

    def nbytes(self) -> int:
        return int(self._bits.nbytes)


@dataclass(frozen=True)
class AdaptivePolicy:
    """Chooses a representation per set, per §IV-C.

    ``bitmap_fraction`` is the size threshold as a fraction of |V|: a set
    larger than ``bitmap_fraction * n`` becomes a bitmap.  The default 1/32
    is the memory-equality crossover for 4-byte ids; ``auto`` callers can
    sweep it (Figure 5-adjacent ablation).
    """

    bitmap_fraction: float = 1.0 / 32.0

    def __post_init__(self) -> None:
        if not (0.0 < self.bitmap_fraction <= 1.0):
            raise ParameterError(
                f"bitmap_fraction must be in (0, 1], got {self.bitmap_fraction}"
            )

    def threshold(self, num_vertices: int) -> int:
        """Set-size above which the bitmap representation is selected."""
        return int(self.bitmap_fraction * num_vertices)

    def choose(self, set_size: int, num_vertices: int) -> str:
        return "bitmap" if set_size > self.threshold(num_vertices) else "list"


def make_rrr(
    vertices: np.ndarray,
    num_vertices: int,
    *,
    policy: AdaptivePolicy | None = None,
    kind: str | None = None,
) -> RRRSet:
    """Build an RRR set with an explicit ``kind`` or an adaptive ``policy``.

    Exactly one selection mechanism applies: pass ``kind`` ("list" or
    "bitmap") to force a representation (the Ripples baseline always forces
    "list"), or rely on ``policy`` (defaults to :class:`AdaptivePolicy`).
    """
    arr = np.asarray(vertices, dtype=np.int32).ravel()
    if kind is None:
        kind = (policy or AdaptivePolicy()).choose(arr.size, num_vertices)
    if kind == "list":
        return ListRRR(arr, num_vertices)
    if kind == "bitmap":
        return BitmapRRR(arr, num_vertices)
    raise ParameterError(f"unknown RRR representation {kind!r}")
