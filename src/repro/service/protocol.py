"""Query/response records and the JSON-lines wire protocol of `repro serve`.

A client submits :class:`IMQuery` records — "give me the top-``k`` seeds on
``dataset`` under ``model`` at quality ``epsilon``" — and receives
:class:`IMResponse` records.  Queries that agree on everything except ``k``
share a *batch key*: the engine answers all of them from one sketch and one
incremental greedy selection pass (greedy seed sets are prefix-consistent,
so the first ``k`` seeds of a ``k_max`` selection are exactly the ``k``-seed
answer).

Wire format (one JSON document per line, both directions)::

    {"dataset": "amazon", "model": "IC", "k": 10, "epsilon": 0.5}
    {"queries": [{...}, {...}]}          # explicit batch
    {"op": "stats"}                      # server statistics snapshot

Responses mirror the query ``id`` (when given) and carry ``status`` of
``"ok"``, ``"timeout"`` (the per-query deadline expired — reported, never a
hang), ``"error"`` (typically a :class:`~repro.errors.ParameterError`), or
``"overloaded"`` (the gateway shed the request under load; ``retry_after_s``
suggests when to come back — docs/gateway.md).  An ``"ok"`` response
additionally carries ``degraded: true`` when the engine could not build the
exact sketch the query asked for and served the freshest compatible stale
artifact instead (docs/resilience.md).

Wire lines are bounded: :func:`parse_request_line` rejects lines longer
than ``MAX_LINE_BYTES`` (1 MiB by default) with a structured
:class:`~repro.errors.ParameterError` instead of attempting the decode, so
both the stdin loops and the TCP gateway share one oversized-input path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ParameterError

__all__ = ["IMQuery", "IMResponse", "parse_request_line", "MAX_LINE_BYTES"]

#: Default bound on one wire line (either direction).  Generous — a maximal
#: batch of a few thousand queries fits — but small enough that a malicious
#: or corrupted stream cannot balloon the parser.
MAX_LINE_BYTES = 1 << 20


@dataclass(frozen=True)
class IMQuery:
    """One influence-maximisation request.

    Attributes
    ----------
    dataset:
        Replica dataset name (see ``repro datasets``).
    model:
        Diffusion model, ``"IC"`` or ``"LT"``.
    k:
        Seed-set budget.
    epsilon:
        IMM approximation quality; part of the sketch fingerprint.
    seed:
        Sampling RNG seed; part of the sketch fingerprint.
    theta_cap:
        Number of RRR sets the serving sketch holds; ``None`` uses the
        engine's ``default_theta``.  Part of the sketch fingerprint.
    deadline_s:
        Per-query time budget in seconds, measured from submission; an
        expired deadline yields a ``"timeout"`` response instead of a hang.
    id:
        Opaque client correlation id, echoed in the response.
    """

    dataset: str
    model: str = "IC"
    k: int = 10
    epsilon: float = 0.5
    seed: int = 0
    theta_cap: int | None = None
    deadline_s: float | None = None
    id: str | None = None

    def validate(self) -> None:
        """Raise :class:`ParameterError` on out-of-domain fields.

        Mirrors :class:`~repro.core.params.IMMParams` validation so a bad
        query fails before any graph or sketch work happens.  ``k`` against
        the vertex count is checked later, once the graph is resolved.
        Every out-of-domain *or* wrong-typed field (a JSON string where a
        number belongs, say) raises :class:`ParameterError` — wire input
        must never surface a bare ``TypeError``/``ValueError``.
        """
        if not self.dataset or not isinstance(self.dataset, str):
            raise ParameterError(f"dataset must be a non-empty string, got {self.dataset!r}")
        if str(self.model).upper() not in ("IC", "LT"):
            raise ParameterError(f"model must be 'IC' or 'LT', got {self.model!r}")
        if not isinstance(self.k, int) or isinstance(self.k, bool) or self.k < 1:
            raise ParameterError(f"k must be a positive integer, got {self.k!r}")
        try:
            eps = float(self.epsilon)
        except (TypeError, ValueError):
            raise ParameterError(f"epsilon must be a number, got {self.epsilon!r}") from None
        if not 0.0 < eps < 1.0:
            raise ParameterError(f"epsilon must lie in (0, 1), got {self.epsilon!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ParameterError(f"seed must be an integer, got {self.seed!r}")
        if self.theta_cap is not None:
            if not isinstance(self.theta_cap, int) or isinstance(self.theta_cap, bool):
                raise ParameterError(f"theta_cap must be an integer, got {self.theta_cap!r}")
            if self.theta_cap < 1:
                raise ParameterError(f"theta_cap must be >= 1, got {self.theta_cap}")
        if self.deadline_s is not None:
            try:
                deadline = float(self.deadline_s)
            except (TypeError, ValueError):
                raise ParameterError(
                    f"deadline_s must be a number, got {self.deadline_s!r}"
                ) from None
            if deadline < 0:
                raise ParameterError(f"deadline_s must be >= 0, got {self.deadline_s}")
        if self.id is not None and not isinstance(self.id, str):
            raise ParameterError(f"id must be a string, got {self.id!r}")

    def batch_key(self) -> tuple:
        """Queries with equal batch keys are served from one sketch —
        everything that determines the sketch, i.e. all fields but ``k``,
        ``deadline_s``, and ``id``."""
        return (
            self.dataset.lower(),
            str(self.model).upper(),
            float(self.epsilon),
            int(self.seed),
            self.theta_cap,
        )

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "IMQuery":
        """Build a query from a decoded JSON object (unknown keys rejected)."""
        if not isinstance(doc, dict):
            raise ParameterError(f"query must be a JSON object, got {type(doc).__name__}")
        unknown = set(doc) - set(cls.__dataclass_fields__)
        if unknown:
            raise ParameterError(f"unknown query field(s): {', '.join(sorted(unknown))}")
        if "dataset" not in doc:
            raise ParameterError("query is missing the required 'dataset' field")
        q = cls(**doc)
        q.validate()
        return q

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "dataset": self.dataset, "model": self.model, "k": self.k,
            "epsilon": self.epsilon, "seed": self.seed,
        }
        if self.theta_cap is not None:
            doc["theta_cap"] = self.theta_cap
        if self.deadline_s is not None:
            doc["deadline_s"] = self.deadline_s
        if self.id is not None:
            doc["id"] = self.id
        return doc


@dataclass
class IMResponse:
    """The answer (or failure report) to one :class:`IMQuery`."""

    status: str  # "ok" | "timeout" | "error" | "overloaded"
    id: str | None = None
    seeds: list[int] = field(default_factory=list)
    spread_estimate: float = 0.0
    coverage_fraction: float = 0.0
    num_rrrsets: int = 0
    cached: bool = False
    degraded: bool = False
    latency_s: float = 0.0
    error: str | None = None
    #: Graph epoch the answer was computed against (dynamic serving only;
    #: ``None`` for static datasets).  See docs/dynamic.md.
    epoch: int | None = None
    #: Suggested client backoff on an ``"overloaded"`` response (gateway
    #: load shedding; docs/gateway.md).  ``None`` on every other status.
    retry_after_s: float | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"status": self.status}
        if self.id is not None:
            doc["id"] = self.id
        if self.status == "ok":
            doc.update(
                seeds=self.seeds,
                spread_estimate=self.spread_estimate,
                coverage_fraction=self.coverage_fraction,
                num_rrrsets=self.num_rrrsets,
                cached=self.cached,
                degraded=self.degraded,
            )
            if self.epoch is not None:
                doc["epoch"] = self.epoch
        else:
            doc["error"] = self.error
            if self.status == "overloaded" and self.retry_after_s is not None:
                doc["retry_after_s"] = self.retry_after_s
        doc["latency_s"] = self.latency_s
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "IMResponse":
        """Rebuild a response from its wire dict (the client-side decode).

        Inverse of :meth:`to_dict`; unknown keys are ignored so older
        clients keep working when the server grows new response fields.
        """
        if not isinstance(doc, dict) or "status" not in doc:
            raise ParameterError(
                f"response must be a JSON object with a 'status' field, got {doc!r}"
            )
        known = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in doc.items() if k in known})

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), default=float)


def parse_request_line(
    line: str | bytes, *, max_line_bytes: int = MAX_LINE_BYTES
) -> list[IMQuery] | dict[str, Any]:
    """Decode one wire line into a query batch or a control operation.

    Returns a list of :class:`IMQuery` for query lines (a bare object, a
    JSON array, or ``{"queries": [...]}``), or the raw dict for control
    lines carrying an ``"op"`` key (e.g. ``{"op": "stats"}``).  Raises
    :class:`ParameterError` on malformed input — oversized lines (beyond
    ``max_line_bytes``), undecodable bytes, non-object JSON scalars, and
    wrong-typed query fields all come back as this one structured error,
    never as an unhandled exception.  Both the stdin serving loops and the
    TCP gateway go through this same path.
    """
    if len(line) > max_line_bytes:
        raise ParameterError(
            f"request line of {len(line)} bytes exceeds the "
            f"{max_line_bytes}-byte limit"
        )
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ParameterError(f"request line is not valid UTF-8: {exc}") from exc
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ParameterError(f"bad JSON request: {exc}") from exc
    if isinstance(doc, dict) and "op" in doc:
        if not isinstance(doc["op"], str):
            raise ParameterError(f"op must be a string, got {doc['op']!r}")
        return doc
    if isinstance(doc, dict) and "queries" in doc:
        doc = doc["queries"]
    if isinstance(doc, dict):
        doc = [doc]
    if not isinstance(doc, list) or not doc:
        raise ParameterError("request must be a query object or a non-empty array")
    return [IMQuery.from_dict(d) for d in doc]
