"""Versioned ``.npz`` persistence for graphs and RRR-sketch stores.

Every artifact is keyed by a **content fingerprint** so a warm `repro
serve`/`repro query` process (or a later one) can skip sampling entirely:

- a *graph* fingerprint (:func:`repro.graph.io.graph_fingerprint`) hashes
  the CSR arrays;
- a *sketch* fingerprint (:func:`sketch_fingerprint`) combines the graph
  fingerprint with everything that determines the sampled sets: diffusion
  model, epsilon, RNG seed, and the sketch size.

Artifacts carry a schema version and a CRC-32 checksum over their payload
arrays; :func:`load_store` and :class:`ArtifactStore` verify both and raise
:class:`~repro.errors.ArtifactError` on any mismatch — a corrupt artifact is
reported (and treated as a cache miss by the engine), never silently served.

The store serializers cover all three RRR-store layouts
(:class:`~repro.sketch.store.FlatRRRStore`,
:class:`~repro.sketch.store.AdaptiveRRRStore`,
:class:`~repro.sketch.store.PartitionedRRRStore`): a loaded store is
selection-kernel-equivalent to the saved one (identical seeds out of
``efficient_select``/``ripples_select``).
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ArtifactError
from repro.graph.csr import CSRGraph
from repro.graph.io import graph_fingerprint, load_npz, save_npz
from repro.sketch.protocol import make_store
from repro.sketch.rrr import AdaptivePolicy
from repro.sketch.store import AdaptiveRRRStore, FlatRRRStore, PartitionedRRRStore

__all__ = [
    "SKETCH_SCHEMA_VERSION",
    "sketch_fingerprint",
    "save_store",
    "load_store",
    "read_artifact_meta",
    "ArtifactStore",
]

#: Version of the on-disk sketch artifact schema.
SKETCH_SCHEMA_VERSION = 1


def sketch_fingerprint(
    graph_fp: str,
    model: str,
    epsilon: float,
    seed: int,
    num_sets: int,
    *,
    kernel: str | None = None,
) -> str:
    """Content key of one sketch: graph hash + model + epsilon + seed + size.

    ``kernel`` joins the key only when set: the counter-stream kernels
    (:mod:`repro.kernels`) draw a different (equally valid) sketch than the
    legacy per-root path for the same parameters, so the two must never
    alias — while every fingerprint minted before kernels existed stays
    byte-for-byte stable.
    """
    key = f"{graph_fp}:{str(model).upper()}:{float(epsilon):.12g}:{int(seed)}:{int(num_sets)}"
    if kernel is not None:
        key += f":{kernel}"
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------- internals
def _payload_checksum(arrays: dict[str, np.ndarray]) -> int:
    """CRC-32 over the payload arrays in sorted-key order."""
    crc = 0
    for key in sorted(arrays):
        crc = zlib.crc32(key.encode("utf-8"), crc)
        # memoryview avoids materialising a bytes copy of multi-MB payloads
        crc = zlib.crc32(memoryview(np.ascontiguousarray(arrays[key])), crc)
    return crc & 0xFFFFFFFF


def _flat_arrays(store: FlatRRRStore, prefix: str = "") -> dict[str, np.ndarray]:
    return {
        f"{prefix}offsets": store.offsets,
        f"{prefix}vertices": store.vertices,
    }


def _store_payload(store) -> tuple[str, dict[str, np.ndarray], dict[str, Any]]:
    """(kind, payload arrays, json-able meta) for any supported store."""
    if isinstance(store, FlatRRRStore):
        return "flat", _flat_arrays(store), {"sort_sets": store.sort_sets}
    if isinstance(store, PartitionedRRRStore):
        arrays: dict[str, np.ndarray] = {}
        for w, part in enumerate(store.parts):
            arrays.update(_flat_arrays(part, prefix=f"part{w}_"))
        return (
            "partitioned",
            arrays,
            {"sort_sets": store.sort_sets, "num_workers": store.num_workers},
        )
    if isinstance(store, AdaptiveRRRStore):
        # Adaptive sets are persisted in the flat layout (each set's sorted
        # vertices); the policy/budget metadata rebuilds the per-set
        # representations on load.
        flat = store.to_flat(sort_sets=True)
        meta: dict[str, Any] = {
            "policy_bitmap_fraction": (
                store.policy.bitmap_fraction if store.policy is not None else None
            ),
            "budget_bytes": store.budget_bytes,
        }
        return "adaptive", _flat_arrays(flat), meta
    raise ArtifactError(f"cannot serialise store type {type(store).__name__}")


def save_store(
    store,
    path: str | os.PathLike,
    *,
    fingerprint: str = "",
    counter: np.ndarray | None = None,
    meta: dict[str, Any] | None = None,
    compress: bool = True,
) -> Path:
    """Persist any RRR store (plus optional fused counter) as a checksummed
    ``.npz`` artifact; returns the written path.

    ``fingerprint`` and ``meta`` are stored verbatim and verified/exposed by
    :func:`load_store`; ``counter`` is the fused occurrence counter so a warm
    load can feed ``efficient_select(initial_counter=...)`` directly.
    ``compress=False`` trades disk size for write speed — rolling sampling
    checkpoints use it because they are rewritten after every batch and the
    zlib pass dominates the write cost; ``load_store`` reads both forms.
    """
    kind, arrays, store_meta = _store_payload(store)
    if counter is not None:
        arrays = {**arrays, "counter": np.ascontiguousarray(counter, dtype=np.int64)}
    doc = {
        "schema_version": SKETCH_SCHEMA_VERSION,
        "kind": kind,
        "fingerprint": fingerprint,
        "num_vertices": int(store.num_vertices),
        "store_meta": store_meta,
        "meta": dict(meta or {}),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    writer = np.savez_compressed if compress else np.savez
    writer(
        path,
        header=np.frombuffer(
            json.dumps(doc, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
        checksum=np.uint32(_payload_checksum(arrays)),
        **arrays,
    )
    return path


def _rebuild_flat(
    num_vertices: int, arrays: dict[str, np.ndarray], prefix: str, sort_sets: bool
) -> FlatRRRStore:
    try:
        offsets = arrays[f"{prefix}offsets"]
        vertices = arrays[f"{prefix}vertices"]
    except KeyError as exc:
        raise ArtifactError(f"sketch artifact is missing array {exc}") from exc
    return make_store(
        "flat",
        num_vertices=num_vertices,
        offsets=offsets,
        vertices=vertices,
        sort_sets=sort_sets,
    )


def load_store(
    path: str | os.PathLike,
    *,
    expect_fingerprint: str | None = None,
):
    """Load an artifact written by :func:`save_store`.

    Returns ``(store, counter, meta)`` where ``counter`` is ``None`` when the
    artifact was saved without one.  Raises :class:`ArtifactError` on a
    missing file, unknown schema, checksum mismatch, or (when
    ``expect_fingerprint`` is given) a fingerprint mismatch.
    """
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"{path}: sketch artifact not found")
    try:
        with np.load(path) as data:
            files = set(data.files)
            if "header" not in files or "checksum" not in files:
                raise ArtifactError(f"{path}: not a repro sketch artifact")
            try:
                doc = json.loads(bytes(data["header"]).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ArtifactError(f"{path}: corrupt artifact header") from exc
            arrays = {
                k: data[k] for k in files if k not in ("header", "checksum")
            }
            stored_crc = int(data["checksum"])
    except (zlib.error, zipfile.BadZipFile, ValueError, OSError) as exc:
        raise ArtifactError(f"{path}: corrupt artifact archive ({exc})") from exc

    if doc.get("schema_version") != SKETCH_SCHEMA_VERSION:
        raise ArtifactError(
            f"{path}: unsupported sketch schema version {doc.get('schema_version')!r}"
        )
    actual_crc = _payload_checksum(arrays)
    if actual_crc != stored_crc:
        raise ArtifactError(
            f"{path}: checksum mismatch (stored {stored_crc:#010x}, computed "
            f"{actual_crc:#010x}); the artifact is corrupt"
        )
    if expect_fingerprint is not None and doc.get("fingerprint") != expect_fingerprint:
        raise ArtifactError(
            f"{path}: fingerprint mismatch (artifact "
            f"{doc.get('fingerprint')!r}, expected {expect_fingerprint!r})"
        )

    counter = arrays.pop("counter", None)
    if counter is not None:
        counter = counter.astype(np.int64, copy=False)
    n = int(doc["num_vertices"])
    kind = doc.get("kind")
    store_meta = doc.get("store_meta", {})
    if kind == "flat":
        store = _rebuild_flat(n, arrays, "", bool(store_meta.get("sort_sets")))
    elif kind == "partitioned":
        num_workers = int(store_meta["num_workers"])
        store = make_store(
            "partitioned",
            num_vertices=n,
            num_workers=num_workers,
            sort_sets=bool(store_meta.get("sort_sets")),
        )
        store.parts = [
            _rebuild_flat(n, arrays, f"part{w}_", bool(store_meta.get("sort_sets")))
            for w in range(num_workers)
        ]
    elif kind == "adaptive":
        frac = store_meta.get("policy_bitmap_fraction")
        policy = AdaptivePolicy(frac) if frac is not None else None
        store = make_store("adaptive", num_vertices=n, policy=policy, budget_bytes=None)
        flat = _rebuild_flat(n, arrays, "", sort_sets=True)
        for s in flat:
            store.append(s)
        # Restore the budget only after re-appending: the saved contents by
        # construction fit it, so reloading must not re-raise OOM.
        store.budget_bytes = store_meta.get("budget_bytes")
    else:
        raise ArtifactError(f"{path}: unknown store kind {kind!r}")
    return store, counter, doc.get("meta", {})


def read_artifact_meta(path: str | os.PathLike) -> dict[str, Any] | None:
    """Header-only peek at an artifact's ``meta`` dict (no payload checks).

    Reads just the JSON header — cheap even for large sketches — and returns
    ``None`` instead of raising when the file is missing, unreadable, or not
    a repro artifact, so directory scans can skip junk silently.  The
    returned dict additionally carries the header's ``fingerprint`` under
    ``"_fingerprint"``.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            if "header" not in data.files:
                return None
            doc = json.loads(bytes(data["header"]).decode("utf-8"))
    except Exception:
        return None
    if doc.get("schema_version") != SKETCH_SCHEMA_VERSION:
        return None
    meta = dict(doc.get("meta", {}))
    meta["_fingerprint"] = doc.get("fingerprint", "")
    return meta


class ArtifactStore:
    """A directory of fingerprint-keyed graph and sketch artifacts.

    Layout: ``<root>/graph-<gfp>.npz`` (CSR arrays, written through
    :func:`repro.graph.io.save_npz`) and ``<root>/sketch-<fp>.npz``
    (:func:`save_store` payloads).  All loads are integrity-checked; the
    engine treats :class:`ArtifactError` as a cache miss and falls back to
    cold sampling.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ----------------------------------------------------------------- paths
    def sketch_path(self, fingerprint: str) -> Path:
        return self.root / f"sketch-{fingerprint}.npz"

    def graph_path(self, graph_fp: str) -> Path:
        return self.root / f"graph-{graph_fp}.npz"

    def has_sketch(self, fingerprint: str) -> bool:
        return self.sketch_path(fingerprint).exists()

    def list_sketches(self) -> list[str]:
        """Fingerprints of every sketch artifact present, sorted."""
        return sorted(
            p.stem.removeprefix("sketch-")
            for p in self.root.glob("sketch-*.npz")
        )

    def newest_sketch(
        self, *, dataset: str | None = None, model: str | None = None
    ) -> str | None:
        """Fingerprint of the freshest sketch matching the filters, or ``None``.

        Scans sketch artifacts newest-first (by mtime) reading only their
        headers; ``dataset``/``model`` match the meta the engine persists
        with every sketch.  This is the graceful-degradation lookup
        (docs/resilience.md): when cold sampling fails, the engine serves
        the freshest *compatible* stale sketch rather than erroring.
        """
        candidates = sorted(
            self.root.glob("sketch-*.npz"),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )
        for path in candidates:
            meta = read_artifact_meta(path)
            if meta is None:
                continue
            if dataset is not None and str(meta.get("dataset", "")).lower() != dataset.lower():
                continue
            if model is not None and str(meta.get("model", "")).upper() != model.upper():
                continue
            return path.stem.removeprefix("sketch-")
        return None

    # ----------------------------------------------------------------- graphs
    def save_graph(self, graph: CSRGraph) -> str:
        """Persist a graph under its own fingerprint; returns the fingerprint."""
        gfp = graph_fingerprint(graph)
        path = self.graph_path(gfp)
        if not path.exists():
            save_npz(graph, path)
        return gfp

    def load_graph(self, graph_fp: str) -> CSRGraph:
        path = self.graph_path(graph_fp)
        if not path.exists():
            raise ArtifactError(f"{path}: graph artifact not found")
        return load_npz(path)

    # ---------------------------------------------------------------- sketches
    def save_sketch(
        self,
        fingerprint: str,
        store,
        *,
        counter: np.ndarray | None = None,
        meta: dict[str, Any] | None = None,
    ) -> Path:
        return save_store(
            store,
            self.sketch_path(fingerprint),
            fingerprint=fingerprint,
            counter=counter,
            meta=meta,
        )

    def load_sketch(self, fingerprint: str):
        """(store, counter, meta) for a fingerprint; :class:`ArtifactError`
        when absent or corrupt."""
        return load_store(
            self.sketch_path(fingerprint), expect_fingerprint=fingerprint
        )

    def publish_sketch(self, fingerprint: str, manager):
        """Load a sketch once and publish it into shared memory.

        Returns ``(handle, counter, meta)`` where ``handle`` is the
        :class:`~repro.shm.SegmentHandle` any process on the host can
        attach (``make_store("shared", handle=...)``).  The segment is
        keyed by the *sketch* fingerprint, so repeated publishes of the
        same fingerprint through the same manager reuse the existing
        segment — the disk load and the copy into shared memory happen at
        most once; on the fast path (already published, and the artifact
        carries no counter to re-read) the disk is not touched at all.
        Non-flat stores are flattened in global order, which preserves the
        selection answers and the content hash.
        """
        existing = manager.handle_for(fingerprint)
        path = self.sketch_path(fingerprint)
        if existing is not None:
            meta = read_artifact_meta(path) or {}
            meta.pop("_fingerprint", None)
            # The counter is payload, not header; re-read just that array.
            counter = None
            try:
                with np.load(path) as data:
                    if "counter" in data.files:
                        counter = data["counter"].astype(np.int64, copy=False)
            except Exception:
                counter = None
            return existing, counter, meta
        store, counter, meta = self.load_sketch(fingerprint)
        if isinstance(store, PartitionedRRRStore):
            store = store.merge()
        elif not isinstance(store, FlatRRRStore):
            store = store.to_flat(sort_sets=True)
        handle = manager.publish_store(store.trim(), fingerprint=fingerprint)
        return handle, counter, meta
