"""Byte-accounted LRU cache of warm sketches, keyed by fingerprint.

The cache follows the memory-accounting convention of
:class:`~repro.sketch.store.AdaptiveRRRStore` — every insert charges the
entry's modelled footprint against an optional byte budget — but degrades
gracefully instead of raising :class:`~repro.errors.OutOfMemoryModelError`:
least-recently-used entries are evicted until the newcomer fits, and an
entry larger than the whole budget is simply not cached (the engine then
serves that fingerprint cold every time).  Evicting never corrupts the
entry a caller already holds: entries are immutable after insertion and
eviction only drops the cache's reference.

The cache keeps plain-Python counters (:class:`CacheStats`) so it works
with telemetry disabled; the engine mirrors the events onto the
``service.cache.*`` metrics and :func:`repro.telemetry.record_service_stats`
projects the cumulative stats as gauges.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["CacheEntry", "CacheStats", "SketchCache"]


@dataclass(frozen=True)
class CacheEntry:
    """One warm sketch: the flat store, its fused counter, and metadata."""

    store: Any  # FlatRRRStore (trimmed)
    counter: np.ndarray
    meta: dict[str, Any] = field(default_factory=dict)

    def nbytes(self) -> int:
        """Charged footprint: store arrays + counter."""
        return int(self.store.nbytes() + self.counter.nbytes)


@dataclass
class CacheStats:
    """Cumulative cache behaviour (plain counters, telemetry-independent)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    rejected: int = 0  # entries larger than the whole budget
    bytes: int = 0
    entries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits, "misses": self.misses,
            "evictions": self.evictions, "rejected": self.rejected,
            "bytes": self.bytes, "entries": self.entries,
            "hit_rate": self.hit_rate,
        }


class SketchCache:
    """Fingerprint-keyed LRU with a modelled byte budget.

    ``budget_bytes=None`` means unbounded (no eviction); ``0`` caches
    nothing.  Not thread-safe — the engine serialises access.
    """

    def __init__(self, budget_bytes: int | None = None):
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def current_bytes(self) -> int:
        return self.stats.bytes

    def get(self, fingerprint: str) -> CacheEntry | None:
        """The entry for ``fingerprint`` (refreshing recency), or ``None``."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.stats.hits += 1
        return entry

    def put(self, fingerprint: str, entry: CacheEntry) -> bool:
        """Insert (or refresh) an entry, evicting LRU entries to fit.

        Returns ``True`` when the entry resides in the cache afterwards;
        ``False`` when it alone exceeds the budget and was rejected.  Never
        raises on memory pressure.
        """
        size = entry.nbytes()
        if self.budget_bytes is not None and size > self.budget_bytes:
            self.stats.rejected += 1
            return False
        old = self._entries.pop(fingerprint, None)
        if old is not None:
            self.stats.bytes -= old.nbytes()
        if self.budget_bytes is not None:
            while self._entries and self.stats.bytes + size > self.budget_bytes:
                _, evicted = self._entries.popitem(last=False)
                self.stats.bytes -= evicted.nbytes()
                self.stats.evictions += 1
        self._entries[fingerprint] = entry
        self.stats.bytes += size
        self.stats.entries = len(self._entries)
        return True

    def evict(self, fingerprint: str) -> bool:
        """Drop one entry by key; returns whether it was present."""
        entry = self._entries.pop(fingerprint, None)
        if entry is None:
            return False
        self.stats.bytes -= entry.nbytes()
        self.stats.evictions += 1
        self.stats.entries = len(self._entries)
        return True

    def clear(self) -> None:
        self._entries.clear()
        self.stats.bytes = 0
        self.stats.entries = 0
