"""The query engine: batched, cached, deadline-aware IM query serving.

One :class:`QueryEngine` owns the three warm layers a query can hit, in
order of decreasing speed:

1. the in-memory :class:`~repro.service.cache.SketchCache` (LRU, byte
   budget) — a hit skips graph loading *and* sampling;
2. the on-disk :class:`~repro.service.artifacts.ArtifactStore` — an
   integrity-checked load skips sampling (and survives process restarts);
3. cold sampling through :func:`repro.core.parallel_sampling.parallel_generate`
   on the existing :mod:`repro.runtime.backends` work-queue machinery.

Queries submitted together are grouped by sketch fingerprint; each group is
served by **one** selection pass at ``k_max`` — greedy selection is
prefix-consistent (round ``i`` never depends on later rounds), so the
``k``-seed answer for every query in the group is the first ``k`` seeds of
that single pass, with its coverage read off the per-round accounting.

Per-query deadlines are enforced at every stage boundary: an expired query
is answered with a ``"timeout"`` response (a reported ``TimeoutError``,
never a hang) while the rest of its batch proceeds.

Resilience (docs/resilience.md): the engine executes on an
:class:`~repro.runtime.api.ExecutionContext` (built from its config, or
passed in via ``context=``), whose retry policy and fault plan flow into
the cold sampling passes.  When a cold sample fails anyway, the engine
*degrades gracefully*: it serves the freshest compatible stale artifact —
same dataset and model, whatever sketch parameters — with ``degraded:
true`` on the response instead of an error, and never caches that entry
under the failed fingerprint (the next attempt retries the real sketch).

Telemetry (``service.*``, docs/observability.md): cache hits/misses/
evictions, batch sizes, queue wait, cold-sample and artifact counters, and
a query-latency histogram whose ``percentile(0.95)`` is the serving p95.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro import telemetry
from repro.core.parallel_sampling import parallel_generate
from repro.core.selection import efficient_select
from repro.errors import ArtifactError, ParameterError, ReproError
from repro.graph.datasets import load_dataset
from repro.graph.io import graph_fingerprint
from repro.runtime.api import BackendConfig, ExecutionContext
from repro.service.artifacts import ArtifactStore, sketch_fingerprint
from repro.service.cache import CacheEntry, SketchCache
from repro.service.protocol import IMQuery, IMResponse

__all__ = ["EngineConfig", "QueryEngine", "ServiceStats"]


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of one :class:`QueryEngine`.

    ``backend="serial"`` samples in-process through a shared
    :class:`~repro.runtime.backends.SerialBackend`; ``"multiprocess"``
    lets each cold sampling pass fork its own pool of ``num_workers``
    (the pool must be initialised per graph, so it cannot be shared).
    Note the sampled sets are deterministic in ``(seed, num_workers)``,
    so changing ``num_workers`` changes which (equally valid) sketch a
    fingerprint materialises to.

    ``kernel="batched"``/``"scalar"`` switches cold sampling to the
    counter-stream kernels (:mod:`repro.kernels`): the sketch becomes a
    pure function of the seed alone — independent of ``num_workers`` —
    and the kernel name joins the sketch fingerprint, so kernel-mode and
    legacy sketches never alias in the cache or the artifact store.
    """

    cache_budget_bytes: int | None = 256 * 1024 * 1024
    artifact_dir: str | Path | None = None
    default_theta: int = 2000
    backend: str = "serial"
    num_workers: int = 1
    dataset_scale: float = 1.0
    persist: bool = True  # write artifacts for newly sampled sketches
    kernel: str | None = None
    kernel_batch: int = 64


@dataclass
class ServiceStats:
    """Cumulative engine behaviour (plain counters, telemetry-independent)."""

    queries: int = 0
    ok: int = 0
    timeouts: int = 0
    errors: int = 0
    batches: int = 0
    cold_samples: int = 0
    artifact_loads: int = 0
    artifact_saves: int = 0
    artifact_corrupt: int = 0
    degraded: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "queries": self.queries, "ok": self.ok,
            "timeouts": self.timeouts, "errors": self.errors,
            "batches": self.batches, "cold_samples": self.cold_samples,
            "artifact_loads": self.artifact_loads,
            "artifact_saves": self.artifact_saves,
            "artifact_corrupt": self.artifact_corrupt,
            "degraded": self.degraded,
        }


@dataclass
class _Pending:
    """One in-flight query with its submission bookkeeping."""

    index: int
    query: IMQuery
    submitted_at: float

    def deadline(self) -> float | None:
        if self.query.deadline_s is None:
            return None
        return self.submitted_at + self.query.deadline_s


class QueryEngine:
    """Serves :class:`IMQuery` batches from cached sketches.

    Process-local and single-threaded by design (the CLI loop drives it);
    cold sampling parallelism comes from the runtime backend underneath.
    """

    def __init__(
        self,
        *args,
        config: EngineConfig | None = None,
        context: ExecutionContext | None = None,
    ):
        if args:
            warnings.warn(
                "repro execution API: QueryEngine(config) positional form "
                "is deprecated; use QueryEngine(config=...) — and pass "
                "context=ExecutionContext(...) to control execution",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > 1 or config is not None:
                raise ParameterError(
                    "QueryEngine takes at most one EngineConfig"
                )
            config = args[0]
        self.config = config or EngineConfig()
        self.cache = SketchCache(self.config.cache_budget_bytes)
        self.artifacts = (
            ArtifactStore(self.config.artifact_dir)
            if self.config.artifact_dir is not None
            else None
        )
        if self.config.backend not in ("serial", "multiprocess"):
            raise ParameterError(
                f"unknown engine backend {self.config.backend!r}"
            )
        if context is None:
            context = ExecutionContext(
                BackendConfig(
                    backend=self.config.backend,
                    num_workers=self.config.num_workers,
                    telemetry_label="service",
                )
            )
        self.context = context
        # A shared serial backend is reused across cold passes; the
        # multiprocess path hands backend=None to parallel_generate, which
        # builds a properly initialised fork pool per (graph, pass) — the
        # context's retry policy and fault plan ride along either way.
        self._backend = (
            self.context.backend
            if self.context.config.backend == "serial"
            else None
        )
        self._graphs: dict[tuple, Any] = {}
        self._graph_fps: dict[tuple, str] = {}
        # Installed graphs (repro.dynamic): dataset name -> (graph, fp).
        # An installed graph overrides replica-dataset resolution for every
        # query naming that dataset, whatever its model/seed.
        self._installed: dict[str, tuple[Any, str]] = {}
        self.stats = ServiceStats()

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self.context.close()
        self._backend = None

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ----------------------------------------------------------------- public
    def query(self, query: IMQuery) -> IMResponse:
        """Serve a single query (a one-element :meth:`execute` batch)."""
        return self.execute([query])[0]

    def execute(self, queries: Sequence[IMQuery]) -> list[IMResponse]:
        """Serve a batch; responses come back in submission order.

        Never raises for a per-query failure — bad parameters, expired
        deadlines, and unknown datasets become ``"error"``/``"timeout"``
        responses so one poisoned query cannot take down its batch.
        """
        submitted_at = time.monotonic()
        responses: list[IMResponse | None] = [None] * len(queries)
        groups: dict[tuple, list[_Pending]] = {}
        for i, q in enumerate(queries):
            try:
                q.validate()
            except ParameterError as exc:
                responses[i] = self._finish_error(q, exc, submitted_at)
                continue
            groups.setdefault(q.batch_key(), []).append(
                _Pending(i, q, submitted_at)
            )

        for key, pending in groups.items():
            for p, resp in self._serve_group(key, pending):
                responses[p.index] = resp

        self._project_stats()
        # Every query index is answered exactly once: invalid queries above,
        # everything else by its group.
        return [
            r if r is not None
            else IMResponse(status="error", error="internal: query dropped")
            for r in responses
        ]

    def stats_snapshot(self) -> dict[str, Any]:
        """Engine + cache counters as one JSON-able dict (the `stats` op)."""
        return {"service": self.stats.to_dict(), "cache": self.cache.stats.to_dict()}

    def install_graph(self, dataset: str, graph: Any) -> str:
        """Serve ``dataset`` from an in-memory graph instead of the replica
        loader; returns the graph's fingerprint.

        This is the dynamic-serving hook (docs/dynamic.md): each committed
        epoch re-installs the compacted graph, and because sketch
        fingerprints hash the graph fingerprint, all downstream caching
        re-keys itself automatically.  Memoised resolutions of the same
        dataset name are dropped so no query can see the previous epoch's
        graph.
        """
        ds = str(dataset).lower()
        fp = graph_fingerprint(graph)
        self._installed[ds] = (graph, fp)
        for key in [k for k in self._graphs if k[0] == ds]:
            del self._graphs[key]
            del self._graph_fps[key]
        return fp

    def warm(
        self,
        fingerprint: str,
        store: Any,
        *,
        counter: np.ndarray | None = None,
        meta: dict[str, Any] | None = None,
    ) -> bool:
        """Pre-seed the in-memory cache with an externally built sketch.

        Returns whether the entry fit the cache budget.  Used by
        :class:`~repro.dynamic.serving.DynamicService` to publish each
        repaired epoch without a cold sampling pass.
        """
        if counter is None:
            counter = store.vertex_counts()
        entry = CacheEntry(store=store, counter=counter, meta=dict(meta or {}))
        ok = self.cache.put(fingerprint, entry)
        self._sync_cache_telemetry()
        return ok

    # --------------------------------------------------------------- internals
    def _tel_inc(self, name: str, amount: float = 1) -> None:
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter(name).inc(amount)

    def _finish_error(
        self, query: IMQuery, exc: Exception, submitted_at: float
    ) -> IMResponse:
        self.stats.queries += 1
        self.stats.errors += 1
        self._tel_inc("service.queries")
        self._tel_inc("service.errors")
        return IMResponse(
            status="error",
            id=query.id,
            error=f"{type(exc).__name__}: {exc}",
            latency_s=time.monotonic() - submitted_at,
        )

    def _finish_timeout(self, p: _Pending) -> IMResponse:
        self.stats.queries += 1
        self.stats.timeouts += 1
        self._tel_inc("service.queries")
        self._tel_inc("service.timeouts")
        return IMResponse(
            status="timeout",
            id=p.query.id,
            error=(
                f"TimeoutError: deadline of {p.query.deadline_s}s exceeded "
                f"after {time.monotonic() - p.submitted_at:.3f}s"
            ),
            latency_s=time.monotonic() - p.submitted_at,
        )

    def _finish_ok(
        self,
        p: _Pending,
        seeds: np.ndarray,
        coverage: float,
        num_vertices: int,
        num_sets: int,
        cached: bool,
        degraded: bool = False,
    ) -> IMResponse:
        latency = time.monotonic() - p.submitted_at
        self.stats.queries += 1
        self.stats.ok += 1
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter("service.queries").inc()
            tel.registry.histogram("service.query_latency_s").observe(latency)
        if degraded:
            self.stats.degraded += 1
            self._tel_inc("service.degraded")
            self._tel_inc("resilience.degraded_responses")
        return IMResponse(
            status="ok",
            id=p.query.id,
            seeds=[int(v) for v in seeds],
            spread_estimate=num_vertices * coverage,
            coverage_fraction=coverage,
            num_rrrsets=num_sets,
            cached=cached,
            degraded=degraded,
            latency_s=latency,
        )

    def _expired(self, p: _Pending) -> bool:
        deadline = p.deadline()
        return deadline is not None and time.monotonic() > deadline

    def _split_expired(
        self, pending: list[_Pending], out: list
    ) -> list[_Pending]:
        """Move expired queries into timeout responses; return the live rest."""
        live: list[_Pending] = []
        for p in pending:
            if self._expired(p):
                out.append((p, self._finish_timeout(p)))
            else:
                live.append(p)
        return live

    def _resolve_graph(self, query: IMQuery) -> tuple[Any, str]:
        """(graph, graph fingerprint) for a query, memoised per engine."""
        installed = self._installed.get(query.dataset.lower())
        if installed is not None:
            return installed
        key = (query.dataset.lower(), str(query.model).upper(), int(query.seed))
        graph = self._graphs.get(key)
        if graph is None:
            tel = telemetry.get()
            with tel.span("service.graph_load", dataset=key[0], model=key[1]):
                graph = load_dataset(
                    key[0], model=key[1], seed=key[2],
                    scale=self.config.dataset_scale,
                )
            self._graphs[key] = graph
            self._graph_fps[key] = graph_fingerprint(graph)
        return graph, self._graph_fps[key]

    def _serve_group(
        self, key: tuple, pending: list[_Pending]
    ) -> list[tuple[_Pending, IMResponse]]:
        """Serve one fingerprint-group; returns (pending, response) pairs."""
        tel = telemetry.get()
        out: list[tuple[_Pending, IMResponse]] = []
        self.stats.batches += 1
        if tel.enabled:
            tel.registry.counter("service.batches").inc()
            tel.registry.histogram("service.batch_size").observe(len(pending))
            wait = time.monotonic() - pending[0].submitted_at
            tel.registry.histogram("service.queue_wait_s").observe(wait)

        pending = self._split_expired(pending, out)
        if not pending:
            return out

        q0 = pending[0].query
        try:
            graph, graph_fp = self._resolve_graph(q0)
        except ReproError as exc:
            for p in pending:
                out.append((p, self._finish_error(p.query, exc, p.submitted_at)))
            return out

        # k is validated against the vertex count only now that we know it.
        live: list[_Pending] = []
        for p in pending:
            if p.query.k > graph.num_vertices:
                exc = ParameterError(
                    f"k={p.query.k} exceeds the vertex count {graph.num_vertices}"
                )
                out.append((p, self._finish_error(p.query, exc, p.submitted_at)))
            else:
                live.append(p)
        if not live:
            return out

        num_sets = q0.theta_cap or self.config.default_theta
        fp = sketch_fingerprint(
            graph_fp, q0.model, q0.epsilon, q0.seed, num_sets,
            kernel=self.config.kernel,
        )
        with tel.span("service.batch", fingerprint=fp, size=len(live)):
            try:
                entry, cached, degraded = self._acquire_sketch(
                    fp, graph, q0, num_sets
                )
            except (ReproError, OSError) as exc:
                # Cold sampling failed and no stale artifact could stand in:
                # the whole group gets error responses, nothing raises out.
                for p in live:
                    out.append(
                        (p, self._finish_error(p.query, exc, p.submitted_at))
                    )
                return out

            live = self._split_expired(live, out)
            if not live:
                return out

            k_max = max(p.query.k for p in live)
            with tel.span("service.selection", k=k_max, num_sets=len(entry.store)):
                selection = efficient_select(
                    entry.store, k_max, 1, initial_counter=entry.counter
                )
            covered = np.cumsum(
                [r["new_covered_sets"] for r in selection.rounds]
            )
            num_store_sets = len(entry.store)

        for p in live:
            if self._expired(p):
                out.append((p, self._finish_timeout(p)))
                continue
            k = p.query.k
            coverage = float(covered[k - 1]) / num_store_sets if num_store_sets else 0.0
            out.append(
                (
                    p,
                    self._finish_ok(
                        p, selection.seeds[:k], coverage,
                        graph.num_vertices, num_store_sets, cached,
                        degraded=degraded,
                    ),
                )
            )
        return out

    def _acquire_sketch(
        self, fp: str, graph, query: IMQuery, num_sets: int
    ) -> tuple[CacheEntry, bool, bool]:
        """Memory cache -> artifact -> cold sampling -> stale fallback.

        Returns ``(entry, warm, degraded)``.  When cold sampling fails and
        a compatible stale artifact exists, that entry is returned with
        ``degraded=True`` and is *not* cached under ``fp`` — the next query
        for this fingerprint attempts the real sketch again.
        """
        tel = telemetry.get()
        entry = self.cache.get(fp)
        if entry is not None:
            self._tel_inc("service.cache.hits")
            return entry, True, False
        self._tel_inc("service.cache.misses")

        if self.artifacts is not None and self.artifacts.has_sketch(fp):
            try:
                with tel.span("service.artifact_load", fingerprint=fp):
                    store, counter, meta = self.artifacts.load_sketch(fp)
                if counter is None:
                    counter = store.vertex_counts()
                entry = CacheEntry(store=store, counter=counter, meta=meta)
                self.stats.artifact_loads += 1
                self._tel_inc("service.artifacts.loads")
                self.cache.put(fp, entry)
                self._sync_cache_telemetry()
                return entry, True, False
            except ArtifactError:
                # Corrupt artifact: report, fall back to cold sampling.
                self.stats.artifact_corrupt += 1
                self._tel_inc("service.artifacts.corrupt")

        # Cold path: sample on the runtime backend work queue, under the
        # context's retry policy and fault plan (docs/resilience.md).
        try:
            store = parallel_generate(
                graph,
                str(query.model).upper(),
                num_sets,
                num_workers=self.config.num_workers,
                seed=int(query.seed),
                backend=self._backend,
                retry=self.context.retry,
                faults=self.context.faults,
                kernel=self.config.kernel,
                kernel_batch=self.config.kernel_batch,
            )
        except (ReproError, OSError) as exc:
            stale = self._stale_fallback(query)
            if stale is not None:
                return stale, False, True
            raise
        store.trim()
        counter = store.vertex_counts()
        entry = CacheEntry(
            store=store,
            counter=counter,
            meta={
                "dataset": query.dataset, "model": str(query.model).upper(),
                "epsilon": float(query.epsilon), "seed": int(query.seed),
                "num_sets": num_sets, "num_workers": self.config.num_workers,
            },
        )
        self.stats.cold_samples += 1
        self._tel_inc("service.cold_samples")
        if self.artifacts is not None and self.config.persist:
            self.artifacts.save_sketch(
                fp, store, counter=counter, meta=entry.meta
            )
            self.stats.artifact_saves += 1
            self._tel_inc("service.artifacts.saves")
        self.cache.put(fp, entry)
        self._sync_cache_telemetry()
        return entry, False, False

    def _stale_fallback(self, query: IMQuery) -> CacheEntry | None:
        """The freshest stale sketch compatible with a failed query, if any.

        Compatible means same dataset and diffusion model; the sketch
        parameters (epsilon, seed, size) may differ — that imprecision is
        exactly what the response's ``degraded: true`` flag discloses.
        """
        if self.artifacts is None:
            return None
        stale_fp = self.artifacts.newest_sketch(
            dataset=query.dataset, model=str(query.model).upper()
        )
        if stale_fp is None:
            return None
        try:
            store, counter, meta = self.artifacts.load_sketch(stale_fp)
        except ArtifactError:
            self.stats.artifact_corrupt += 1
            self._tel_inc("service.artifacts.corrupt")
            return None
        if counter is None:
            counter = store.vertex_counts()
        self.stats.artifact_loads += 1
        self._tel_inc("service.artifacts.loads")
        return CacheEntry(store=store, counter=counter, meta=meta)

    def _sync_cache_telemetry(self) -> None:
        tel = telemetry.get()
        if tel.enabled:
            st = self.cache.stats
            reg = tel.registry
            # Evictions/rejections are maintained by the cache itself, so
            # mirror the cumulative values as gauges (idempotent).
            reg.gauge("service.cache.bytes").set(st.bytes)
            reg.gauge("service.cache.entries").set(st.entries)
            reg.gauge("service.cache.evictions").set(st.evictions)
            reg.gauge("service.cache.rejected").set(st.rejected)

    def _project_stats(self) -> None:
        tel = telemetry.get()
        if tel.enabled:
            telemetry.record_service_stats(
                tel.registry, self.stats, self.cache.stats
            )
