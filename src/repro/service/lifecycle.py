"""Graceful server shutdown: drain in-flight work, then flush, then exit.

``repro serve`` and ``repro shard serve`` are long-running JSON-lines
loops; a plain SIGINT/SIGTERM would kill them mid-batch, dropping
responses the client already sent queries for and losing the telemetry
report.  :class:`GracefulShutdown` turns those signals into a *drain*:

- **inside** a :meth:`guard` block (a batch being executed, a report being
  written) the signal only sets :attr:`requested` — the work in flight
  finishes and its responses are printed;
- **outside** any guard (typically blocked in ``sys.stdin`` readline) the
  handler raises :class:`ShutdownRequested`, which — per PEP 475 — breaks
  the blocking read so the loop can fall through to its flush path.

The second signal is never deferred: if a drain hangs, a repeated Ctrl-C
raises immediately, even inside a guard.  Handlers are installed on
``__enter__`` and always restored on ``__exit__``; installation degrades
to a no-op off the main thread (tests can still exercise the flag logic
via :meth:`request`).
"""

from __future__ import annotations

import contextlib
import signal
import threading
from types import FrameType
from typing import Iterator

__all__ = ["GracefulShutdown", "ShutdownRequested"]

#: Signals a server drains on, by default.
DEFAULT_SIGNALS = (signal.SIGINT, signal.SIGTERM)


class ShutdownRequested(Exception):
    """Raised (out of a blocking read) when a shutdown signal arrives."""

    def __init__(self, signum: int):
        super().__init__(f"shutdown requested by signal {signum}")
        self.signum = signum


class GracefulShutdown:
    """Context manager converting termination signals into a drain flag."""

    def __init__(self, signals: tuple[signal.Signals, ...] = DEFAULT_SIGNALS):
        self._signals = tuple(signals)
        self._previous: dict[int, object] = {}
        self._depth = 0
        self.requested = False
        self.signum: int | None = None

    # ---------------------------------------------------------------- install
    def __enter__(self) -> "GracefulShutdown":
        if threading.current_thread() is threading.main_thread():
            for sig in self._signals:
                self._previous[sig] = signal.signal(sig, self._handle)
        return self

    def __exit__(self, *exc) -> None:
        for sig, prev in self._previous.items():
            signal.signal(sig, prev)
        self._previous.clear()

    # ----------------------------------------------------------------- handler
    def _handle(self, signum: int, frame: FrameType | None) -> None:
        repeated = self.requested
        self.request(signum)
        if self._depth == 0 or repeated:
            raise ShutdownRequested(signum)

    def request(self, signum: int = signal.SIGTERM) -> None:
        """Set the drain flag as if ``signum`` had been received (the
        thread-safe, signal-free path tests and embedders use)."""
        self.requested = True
        if self.signum is None:
            self.signum = int(signum)

    @contextlib.contextmanager
    def guard(self) -> Iterator[None]:
        """Defer first signals for the duration of the block.

        Work wrapped in ``guard()`` runs to completion even if a signal
        arrives; the caller checks :attr:`requested` afterwards and exits
        its loop cleanly.  Guards nest.
        """
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
