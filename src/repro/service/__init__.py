"""repro.service — persistent sketch store + cached, batched query serving.

The serving layer turns the per-query cost of influence maximisation from
"full IMM" (graph build + RRR sampling + selection) into "selection kernel
only" for warm traffic, the way a production deployment would sit in front
of the algorithm:

- :mod:`repro.service.protocol` — :class:`IMQuery`/:class:`IMResponse`
  records and the JSON-lines wire format of ``repro serve``;
- :mod:`repro.service.artifacts` — fingerprint-keyed, checksummed ``.npz``
  persistence for graphs and all three RRR-store layouts;
- :mod:`repro.service.cache` — the byte-accounted LRU of warm sketches;
- :mod:`repro.service.engine` — the batching, deadline-enforcing
  :class:`QueryEngine` on top of :mod:`repro.runtime.backends`;
- :mod:`repro.service.lifecycle` — :class:`GracefulShutdown`, the
  SIGINT/SIGTERM drain used by the ``repro serve`` family (finish the
  in-flight batch, flush telemetry, then exit).

Typical use::

    from repro.service import EngineConfig, IMQuery, QueryEngine

    with QueryEngine(config=EngineConfig(artifact_dir="artifacts/")) as engine:
        cold = engine.query(IMQuery(dataset="amazon", k=10))
        warm = engine.query(IMQuery(dataset="amazon", k=25))  # cache hit
        assert warm.cached

Execution (backend choice, retry policy, fault plan) can be controlled by
passing ``context=ExecutionContext(BackendConfig(...))`` — see
:mod:`repro.runtime.api` and docs/resilience.md.  When a cold sampling
pass fails, the engine degrades gracefully to the freshest compatible
stale artifact (response flag ``degraded: true``) instead of erroring.

From the shell: ``repro query amazon --k 10`` (one-shot) and
``repro serve`` (JSON-lines request loop on stdin/stdout); see
docs/serving.md.
"""

from repro.service.artifacts import (
    SKETCH_SCHEMA_VERSION,
    ArtifactStore,
    load_store,
    read_artifact_meta,
    save_store,
    sketch_fingerprint,
)
from repro.service.cache import CacheEntry, CacheStats, SketchCache
from repro.service.engine import EngineConfig, QueryEngine, ServiceStats
from repro.service.lifecycle import GracefulShutdown, ShutdownRequested
from repro.service.protocol import (
    MAX_LINE_BYTES,
    IMQuery,
    IMResponse,
    parse_request_line,
)

__all__ = [
    "IMQuery",
    "IMResponse",
    "parse_request_line",
    "MAX_LINE_BYTES",
    "ArtifactStore",
    "save_store",
    "load_store",
    "sketch_fingerprint",
    "read_artifact_meta",
    "SKETCH_SCHEMA_VERSION",
    "SketchCache",
    "CacheEntry",
    "CacheStats",
    "EngineConfig",
    "QueryEngine",
    "ServiceStats",
    "GracefulShutdown",
    "ShutdownRequested",
]
