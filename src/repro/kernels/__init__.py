"""``repro.kernels`` — batched multi-root reverse-sampling kernels.

The per-root samplers in ``repro.diffusion`` pay full numpy dispatch
overhead for every frontier of every individual RRR set.  This package
draws **B sets per vectorised pass** instead: a ``(set_id, vertex)``
pair-frontier BFS over the reverse CSR graph (IC) and a lock-step batch of
reverse weighted walks (LT), with one fused coin-flip array per level
across all active sets and per-set edge-cost accounting.

Determinism is the load-bearing property.  Randomness comes from
counter-based per-set streams (:mod:`repro.kernels.rng`): each global set
index owns a key derived from ``(seed, set_index)`` and consumes uniforms
``u(key, 0), u(key, 1), ...`` in a canonical traversal order.  Because no
stream state is shared between sets, the output bytes are identical
regardless of batch size, worker count, process start method, or whether
the batched or the scalar reference kernel ran — the equivalence suite in
``tests/test_kernels.py`` proves it.

Entry points:

- :func:`sample_indexed` — sample sets for global indices ``start..start+count``
  under a ``(seed, index)`` keying (sampler / parallel / shard paths).
- :func:`sample_for_roots` — sample sets for explicit roots and explicit
  per-set keys (the dynamic maintainer's root-preserving resample path).
- :func:`roots_for_indices` — the deterministic root stream.

``kernel="batched"`` selects the vectorised kernel, ``kernel="scalar"``
the independent per-root reference implementation; both share only the
RNG layer, which is what makes their byte-identity a meaningful test.
"""

from __future__ import annotations

from repro.kernels.batched import BatchedSampler, sample_batched
from repro.kernels.dispatch import (
    KERNEL_NAMES,
    KernelSampler,
    check_kernel,
    sample_for_roots,
    sample_indexed,
)
from repro.kernels.rng import (
    coin_key,
    counter_uniforms,
    derive_key,
    derive_keys,
    roots_for_indices,
)
from repro.kernels.scalar import sample_scalar

__all__ = [
    "BatchedSampler",
    "KERNEL_NAMES",
    "KernelSampler",
    "check_kernel",
    "coin_key",
    "counter_uniforms",
    "derive_key",
    "derive_keys",
    "roots_for_indices",
    "sample_batched",
    "sample_for_roots",
    "sample_indexed",
    "sample_scalar",
]
