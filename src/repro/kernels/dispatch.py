"""Kernel selection, the indexed sampling entry points, and telemetry.

Every integration point (``RRRSampler``, ``parallel_generate``, the shard
cold build, the dynamic resample path) funnels through here: pick a kernel
by name, hand it ``(roots, keys)`` or global set indices, get CSR-style
``(flat, sizes, edges)`` back, and emit the ``kernels.*`` metric family
(docs/observability.md) when a telemetry session is active.
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.diffusion.base import DiffusionModel
from repro.errors import ParameterError
from repro.kernels.batched import BatchedSampler
from repro.kernels.rng import coin_key, derive_keys, roots_for_indices
from repro.kernels.scalar import sample_scalar

__all__ = [
    "KERNEL_NAMES",
    "KernelSampler",
    "check_kernel",
    "sample_for_roots",
    "sample_indexed",
]

KERNEL_NAMES = ("batched", "scalar")


def check_kernel(kernel: str | None) -> str | None:
    """Validate a kernel name (``None`` = legacy per-root Generator path)."""
    if kernel is not None and kernel not in KERNEL_NAMES:
        raise ParameterError(
            f"unknown kernel {kernel!r}; expected one of {KERNEL_NAMES}"
        )
    return kernel


class KernelSampler:
    """A kernel bound to a model, reusable across calls.

    Keeps the batched kernel's epoch-stamp scratch alive between calls and
    owns the ``kernels.*`` telemetry so both kernels report identically.
    """

    def __init__(
        self,
        model: DiffusionModel,
        kernel: str = "batched",
        batch_size: int = 64,
    ):
        if check_kernel(kernel) is None:
            raise ParameterError("KernelSampler needs an explicit kernel name")
        if batch_size < 1:
            raise ParameterError("batch_size must be >= 1")
        self.model = model
        self.kernel = kernel
        self.batch_size = int(batch_size)
        self._batched = (
            BatchedSampler(model, batch_size) if kernel == "batched" else None
        )

    def sample_for_roots(
        self, roots: np.ndarray, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw one set per ``(root, key)``: ``(flat, sizes, edges)``."""
        tel = telemetry.get()
        t0 = time.perf_counter() if tel.enabled else 0.0
        if self._batched is not None:
            self._batched.collect_occupancy = tel.enabled
            out = self._batched.sample(roots, keys)
        else:
            out = sample_scalar(self.model, roots, keys)
        if tel.enabled:
            self._record(tel, out, time.perf_counter() - t0)
        return out

    def sample_indexed(
        self, seed: int, start: int, count: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample the sets with global indices ``start .. start+count``.

        Roots and coin streams are pure functions of ``(seed, index)``, so
        any partition of the index space into calls — across batches,
        workers, or processes — yields the same bytes per set.
        """
        indices = np.arange(start, start + count, dtype=np.int64)
        n = self.model.graph.num_vertices
        roots = roots_for_indices(seed, indices, n)
        keys = derive_keys(coin_key(seed), indices)
        return self.sample_for_roots(roots, keys)

    def _record(self, tel, out, elapsed: float) -> None:
        flat, sizes, edges = out
        reg = tel.registry
        reg.counter("kernels.sets").inc(sizes.size)
        reg.counter("kernels.edges").inc(int(edges.sum()))
        reg.counter(f"kernels.calls.{self.kernel}").inc()
        if elapsed > 0:
            reg.gauge("kernels.sets_per_sec").set(sizes.size / elapsed)
            reg.gauge("kernels.edges_per_sec").set(int(edges.sum()) / elapsed)
        if self._batched is not None:
            reg.counter("kernels.levels").inc(len(self._batched.occupancy))
            hist = reg.histogram("kernels.batch_occupancy")
            for frac in self._batched.occupancy:
                hist.observe(frac)
            self._batched.occupancy.clear()


def sample_indexed(
    model: DiffusionModel,
    seed: int,
    start: int,
    count: int,
    *,
    kernel: str = "batched",
    batch_size: int = 64,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One-shot :meth:`KernelSampler.sample_indexed`."""
    return KernelSampler(model, kernel, batch_size).sample_indexed(
        seed, start, count
    )


def sample_for_roots(
    model: DiffusionModel,
    roots: np.ndarray,
    keys: np.ndarray,
    *,
    kernel: str = "batched",
    batch_size: int = 64,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One-shot :meth:`KernelSampler.sample_for_roots`."""
    return KernelSampler(model, kernel, batch_size).sample_for_roots(roots, keys)
