"""Counter-based per-set random streams for the sampling kernels.

``numpy.random.Generator`` streams are *stateful*: the i-th draw depends on
how many draws came before it, so any change to batching or work division
changes every subsequent sample.  The kernels instead use a **counter-based**
construction (the property that makes Philox/Threefry reproducible on GPUs):

    u = uniform(key, counter)

is a pure function of a 64-bit per-set ``key`` and a 64-bit draw ``counter``.
A set's key is derived from ``(seed, set_index)``; its draws are consumed in
a canonical traversal order.  Nothing depends on which batch, worker, or
process evaluated the set, so output is byte-identical across all of them.

The bijective mixer is splitmix64 (Steele et al., *Fast Splittable
Pseudorandom Number Generators*) — two xor-shift-multiply rounds, which pass
BigCrush when used as a stream generator and vectorise to a handful of
uint64 numpy ops.  Floats use the standard 53-bit mantissa construction
``(x >> 11) * 2**-53``, giving uniforms in ``[0, 1)``.

All arithmetic is modulo 2**64 (numpy uint64 wraps silently); the explicit
``errstate`` guards silence the scalar-overflow RuntimeWarnings some numpy
versions emit for 0-d operands.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "coin_key",
    "counter_uniforms",
    "derive_key",
    "derive_keys",
    "root_key",
    "roots_for_indices",
]

_GAMMA = np.uint64(0x9E3779B97F4A7C15)  # splitmix64 stream increment
_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_S1 = np.uint64(30)
_S2 = np.uint64(27)
_S3 = np.uint64(31)
_SEED0 = np.uint64(0x243F6A8885A308D3)  # pi digits: arbitrary non-zero start
_INV53 = np.float64(2.0**-53)
_SH11 = np.uint64(11)

# Domain tags keep the root stream, the coin stream, and the dynamic
# layer's resample streams disjoint even for identical (seed, index) pairs.
DOMAIN_ROOT = 0x01
DOMAIN_COIN = 0x02
DOMAIN_RESAMPLE = 0x03


def _mix64(x: np.ndarray | np.uint64) -> np.ndarray | np.uint64:
    """splitmix64 finalizer: a bijective avalanche mix on uint64."""
    x = x ^ (x >> _S1)
    x = x * _M1
    x = x ^ (x >> _S2)
    x = x * _M2
    return x ^ (x >> _S3)


def derive_key(*components: int) -> int:
    """Fold integer components into one 64-bit stream key.

    Order-sensitive and collision-resistant in practice: each component is
    pre-mixed before being absorbed so ``derive_key(a, b) != derive_key(b, a)``
    for almost all pairs.
    """
    with np.errstate(over="ignore"):
        x = _SEED0
        for part in components:
            p = np.uint64(int(part) & 0xFFFFFFFFFFFFFFFF)
            x = _mix64(x ^ _mix64(p + _GAMMA))
        return int(x)


def derive_keys(base_key: int, indices: np.ndarray) -> np.ndarray:
    """Vectorised per-index keys: one independent stream per set index."""
    idx = np.asarray(indices).astype(np.uint64)
    with np.errstate(over="ignore"):
        return _mix64(np.uint64(base_key) ^ _mix64(idx + _GAMMA))


def counter_uniforms(
    keys: np.ndarray | int, counters: np.ndarray
) -> np.ndarray:
    """``uniform(key, counter)`` in ``[0, 1)``, elementwise over arrays.

    ``keys`` may be a scalar (one stream, many counters) or an array aligned
    with ``counters`` (one draw from each of many streams).
    """
    ctr = np.asarray(counters).astype(np.uint64)
    if isinstance(keys, np.ndarray):
        k = keys.astype(np.uint64)
    else:
        k = np.uint64(keys)
    with np.errstate(over="ignore"):
        x = _mix64((ctr * _GAMMA) ^ k)
        return ((x >> _SH11).astype(np.float64)) * _INV53


def root_key(seed: int) -> int:
    """Key of the root stream for a sampling run."""
    return derive_key(seed, DOMAIN_ROOT)


def coin_key(seed: int) -> int:
    """Base key the per-set coin streams are derived from."""
    return derive_key(seed, DOMAIN_COIN)


def roots_for_indices(
    seed: int, indices: np.ndarray, num_vertices: int
) -> np.ndarray:
    """Deterministic uniform roots for global set indices.

    ``floor(u * n)`` over the root stream: set *i* gets the same root no
    matter which batch or worker asks for it.
    """
    u = counter_uniforms(root_key(seed), np.asarray(indices, dtype=np.int64))
    roots = (u * num_vertices).astype(np.int64)
    # floor(u * n) can only hit n through float rounding at u -> 1-ulp.
    np.clip(roots, 0, num_vertices - 1, out=roots)
    return roots
