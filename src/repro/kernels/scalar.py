"""Per-root reference kernel over the counter-based RNG streams.

This is the *semantic specification* the batched kernel must match: one RRR
set at a time, consuming its stream ``u(key, 0), u(key, 1), ...`` in the
canonical traversal order —

IC (reverse probabilistic BFS):
    level by level; within a level, frontier vertices ascending; within a
    frontier vertex, in-edges in reverse-CSR row order.  One counter tick
    per examined edge.

LT (reverse weighted walk):
    one counter tick per step, drawn only when the current vertex has at
    least one in-edge (matching :meth:`LTModel.reverse_sample`, which
    checks ``hi == lo`` before consuming randomness).

It shares only :mod:`repro.kernels.rng` with the batched implementation,
so their byte-identity (``tests/test_kernels.py``) is a real cross-check
rather than two calls into common code.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.diffusion.ic import gather_frontier_edges
from repro.errors import ParameterError
from repro.kernels.rng import counter_uniforms

__all__ = ["sample_scalar", "scalar_one_set"]


def scalar_one_set(
    model: DiffusionModel, root: int, key: int
) -> tuple[np.ndarray, int]:
    """Draw one RRR set from one counter stream: ``(vertices, edges)``."""
    kind = getattr(model, "name", "?")
    if kind == "IC":
        return _ic_one(model, root, key)
    if kind == "LT":
        return _lt_one(model, root, key)
    raise ParameterError(f"kernel sampling supports IC/LT, not {kind!r}")


def sample_scalar(
    model: DiffusionModel, roots: np.ndarray, keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample one set per ``(root, key)`` pair, independently.

    Returns CSR-style ``(flat_vertices int32, sizes int64, edges int64)``.
    """
    flats: list[np.ndarray] = []
    sizes = np.zeros(len(roots), dtype=np.int64)
    edges = np.zeros(len(roots), dtype=np.int64)
    for i, (root, key) in enumerate(zip(roots, keys)):
        verts, cost = scalar_one_set(model, int(root), int(key))
        flats.append(verts)
        sizes[i] = verts.size
        edges[i] = cost
    flat = (
        np.concatenate(flats) if flats else np.empty(0, dtype=np.int32)
    )
    return flat, sizes, edges


def _ic_one(model, root: int, key: int) -> tuple[np.ndarray, int]:
    rev = model.reverse_graph
    stamp = model._stamp
    epoch = model._next_epoch()
    stamp[root] = epoch
    out = [np.array([root], dtype=np.int32)]
    frontier = np.array([root], dtype=np.int64)
    edges = 0
    ctr = 0
    while frontier.size:
        nbrs, probs = gather_frontier_edges(rev, frontier)
        edges += nbrs.size
        if nbrs.size == 0:
            break
        u = counter_uniforms(key, np.arange(ctr, ctr + nbrs.size, dtype=np.int64))
        ctr += nbrs.size
        cand = nbrs[u < probs]
        if cand.size == 0:
            break
        cand = np.unique(cand)
        fresh = cand[stamp[cand] != epoch]
        if fresh.size == 0:
            break
        stamp[fresh] = epoch
        out.append(fresh.astype(np.int32))
        frontier = fresh.astype(np.int64)
    return np.concatenate(out), edges


def _lt_one(model, root: int, key: int) -> tuple[np.ndarray, int]:
    rev = model.reverse_graph
    indptr, indices, cum = rev.indptr, rev.indices, model._cum
    stamp = model._stamp
    epoch = model._next_epoch()
    out = [root]
    stamp[root] = epoch
    v = root
    ctr = 0
    one = np.ones(1, dtype=np.int64)
    while True:
        lo, hi = indptr[v], indptr[v + 1]
        if hi == lo:
            break
        r = float(counter_uniforms(key, ctr * one)[0])
        ctr += 1
        row = cum[lo:hi]
        if r >= row[-1]:
            break
        u = int(indices[lo + np.searchsorted(row, r, side="right")])
        if stamp[u] == epoch:
            break  # walked into the existing path: live-edge cycle
        stamp[u] = epoch
        out.append(u)
        v = u
    verts = np.asarray(out, dtype=np.int32)
    return verts, int(verts.size)  # LT cost convention: path length
