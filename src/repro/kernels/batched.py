"""Batched multi-root reverse sampling: B RRR sets per vectorised pass.

The per-root path pays numpy dispatch overhead per frontier *per set*; here
one pass advances every active set one level.  The working state is a
``(set_slot, vertex)`` **pair frontier** encoded as flat keys
``slot * n + vertex``:

- IC: all in-edges of all frontier pairs are gathered with one CSR row
  gather, one fused coin array covers every edge of every active set, and
  ``np.unique`` over pair keys deduplicates per set while producing exactly
  the canonical (slot-ascending, vertex-ascending) order the scalar
  reference consumes.
- LT: all active walks advance in lock step — one uniform per walk per
  level, a vectorised bisection over the per-row cumulative weights picks
  each walk's in-neighbour.

Visited tracking is a flat epoch-stamped array of ``batch_size * n`` cells
reused across calls (memory is O(B·n); keep B modest on huge graphs).

Per-set randomness comes from counter streams keyed by the *global* set
index (:mod:`repro.kernels.rng`), and each set's counter advances by
exactly the number of edges it examined at each level — the same schedule
the scalar reference follows — so the produced bytes are independent of
batch size, batch boundaries, worker count, and start method.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.errors import ParameterError
from repro.kernels.rng import counter_uniforms

__all__ = ["BatchedSampler", "sample_batched"]


class BatchedSampler:
    """Reusable batched kernel bound to one diffusion model.

    Holds the ``B * n`` epoch-stamp scratch so repeated calls (the sampler's
    extend loop, a shard's streaming build) do not reallocate it.
    """

    def __init__(self, model: DiffusionModel, batch_size: int = 64):
        if batch_size < 1:
            raise ParameterError("batch_size must be >= 1")
        kind = getattr(model, "name", "?")
        if kind not in ("IC", "LT"):
            raise ParameterError(f"kernel sampling supports IC/LT, not {kind!r}")
        self.model = model
        self.batch_size = int(batch_size)
        self._n = model.graph.num_vertices
        self._stamp = np.zeros(0, dtype=np.int32)
        self._epoch = 0
        self.levels = 0  # vectorised passes executed (across calls)
        self.collect_occupancy = False  # set by KernelSampler under telemetry
        self.occupancy: list[float] = []  # active-slot fraction per pass

    # ------------------------------------------------------------- plumbing
    def _scratch(self, b: int) -> tuple[np.ndarray, int]:
        need = b * self._n
        if self._stamp.size < need:
            self._stamp = np.zeros(need, dtype=np.int32)
            self._epoch = 0
        self._epoch += 1
        return self._stamp, self._epoch

    def sample(
        self, roots: np.ndarray, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw one set per ``(root, key)`` pair, all in lock step.

        Returns CSR-style ``(flat_vertices int32, sizes int64, edges int64)``
        with set *i*'s vertices in its canonical discovery order.
        """
        roots = np.asarray(roots, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.uint64)
        if roots.size == 0:
            z = np.empty(0, dtype=np.int64)
            return np.empty(0, dtype=np.int32), z, z
        out: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for lo in range(0, roots.size, self.batch_size):
            hi = min(lo + self.batch_size, roots.size)
            out.append(self._one_batch(roots[lo:hi], keys[lo:hi]))
        if len(out) == 1:
            return out[0]
        return (
            np.concatenate([o[0] for o in out]),
            np.concatenate([o[1] for o in out]),
            np.concatenate([o[2] for o in out]),
        )

    def _one_batch(self, roots, keys):
        if self.model.name == "IC":
            return self._ic_batch(roots, keys)
        return self._lt_batch(roots, keys)

    @staticmethod
    def _split(pairs: np.ndarray, b: int, n: int):
        """Flat level-major pair keys -> per-set CSR ``(flat, sizes)``."""
        slots = pairs // n
        order = np.argsort(slots, kind="stable")  # keeps per-set level order
        flat = (pairs % n).astype(np.int32)[order]
        sizes = np.bincount(slots, minlength=b)
        return flat, sizes

    # ------------------------------------------------------------------- IC
    def _ic_batch(self, roots, keys):
        rev = self.model.reverse_graph
        n = self._n
        b = roots.size
        stamp, epoch = self._scratch(b)
        slot_base = np.arange(b, dtype=np.int64) * n
        level0 = slot_base + roots
        stamp[level0] = epoch
        pairs = [level0]
        fslot = np.arange(b, dtype=np.int64)
        fvert = roots
        counters = np.zeros(b, dtype=np.uint64)
        edges = np.zeros(b, dtype=np.int64)
        indptr = rev.indptr
        while fslot.size:
            self.levels += 1
            if self.collect_occupancy:
                # fslot is sorted, so distinct runs count the active sets.
                self.occupancy.append(
                    (np.count_nonzero(np.diff(fslot)) + 1) / b
                )
            starts = indptr[fvert].astype(np.int64)
            lengths = indptr[fvert + 1] - starts
            total = int(lengths.sum())
            if total == 0:
                break
            # One flat gather addresses every in-edge of every frontier pair.
            row_of = np.repeat(np.arange(fvert.size), lengths)
            within_row = np.arange(total, dtype=np.int64) - np.repeat(
                np.concatenate(([0], np.cumsum(lengths[:-1]))), lengths
            )
            flat_idx = starts[row_of] + within_row
            nbrs = rev.indices[flat_idx]
            probs = rev.probs[flat_idx]
            eslot = fslot[row_of]
            # Per-edge draw counter: this set's running counter plus the
            # edge's position within the set's slice of this level (eslot is
            # sorted, so a cumsum gives each run's start).
            counts = np.bincount(fslot, weights=lengths, minlength=b).astype(
                np.int64
            )
            run_start = np.cumsum(counts) - counts
            within = np.arange(total, dtype=np.int64) - run_start[eslot]
            with np.errstate(over="ignore"):
                base = counters[eslot] + within.astype(np.uint64)
            u = counter_uniforms(keys[eslot], base)
            with np.errstate(over="ignore"):
                counters += counts.astype(np.uint64)
            edges += counts
            live = u < probs
            pk = eslot[live] * n + nbrs[live].astype(np.int64)
            pk = np.unique(pk)  # dedup per set; canonical slot/vertex order
            fresh = pk[stamp[pk] != epoch]
            if fresh.size == 0:
                break
            stamp[fresh] = epoch
            pairs.append(fresh)
            fslot, fvert = np.divmod(fresh, n)
        flat, sizes = self._split(np.concatenate(pairs), b, n)
        return flat, sizes, edges

    # ------------------------------------------------------------------- LT
    def _lt_batch(self, roots, keys):
        model = self.model
        rev = model.reverse_graph
        indptr, indices, cum = rev.indptr, rev.indices, model._cum
        n = self._n
        b = roots.size
        stamp, epoch = self._scratch(b)
        slot_base = np.arange(b, dtype=np.int64) * n
        level0 = slot_base + roots
        stamp[level0] = epoch
        pairs = [level0]
        aslot = np.arange(b, dtype=np.int64)
        avert = roots
        counters = np.zeros(b, dtype=np.uint64)
        while aslot.size:
            self.levels += 1
            if self.collect_occupancy:
                self.occupancy.append(aslot.size / b)
            lo = indptr[avert].astype(np.int64)
            hi = indptr[avert + 1].astype(np.int64)
            has = hi > lo  # walks at an in-degree-0 vertex stop, no draw
            if not has.all():
                aslot, lo, hi = aslot[has], lo[has], hi[has]
            if aslot.size == 0:
                break
            r = counter_uniforms(keys[aslot], counters[aslot])
            with np.errstate(over="ignore"):
                counters[aslot] += np.uint64(1)
            go = r < cum[hi - 1]  # beyond total weight: no in-edge selected
            if not go.all():
                aslot, lo, hi, r = aslot[go], lo[go], hi[go], r[go]
            if aslot.size == 0:
                break
            idx = _vector_bisect_right(cum, lo, hi, r)
            u = indices[idx].astype(np.int64)
            pk = aslot * n + u
            fresh = stamp[pk] != epoch  # revisit = live-edge cycle: stop
            if not fresh.all():
                aslot, u, pk = aslot[fresh], u[fresh], pk[fresh]
            if aslot.size == 0:
                break
            stamp[pk] = epoch
            pairs.append(pk)
            avert = u
        flat, sizes = self._split(np.concatenate(pairs), b, n)
        return flat, sizes, sizes.copy()  # LT cost convention: path length


def _vector_bisect_right(
    cum: np.ndarray, lo: np.ndarray, hi: np.ndarray, r: np.ndarray
) -> np.ndarray:
    """Per-lane ``lo + searchsorted(cum[lo:hi], r, side="right")``.

    Bisection over all lanes at once: finds the first index in ``[lo, hi)``
    whose cumulative weight exceeds ``r``.  Callers guarantee
    ``r < cum[hi - 1]``, so the answer exists in-range for every lane.
    """
    left = lo.copy()
    right = hi.copy()
    top = cum.size - 1
    while True:
        active = left < right
        if not active.any():
            return left
        mid = np.minimum((left + right) >> 1, top)
        le = cum[mid] <= r
        step = active & le
        left = np.where(step, mid + 1, left)
        right = np.where(active & ~le, mid, right)


def sample_batched(
    model: DiffusionModel,
    roots: np.ndarray,
    keys: np.ndarray,
    *,
    batch_size: int = 64,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One-shot convenience wrapper around :class:`BatchedSampler`."""
    return BatchedSampler(model, batch_size).sample(roots, keys)
