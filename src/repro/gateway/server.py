"""Asyncio TCP gateway: admission control, coalescing, load shedding.

:class:`GatewayServer` puts a network front-end on any serving engine that
speaks ``execute(queries) -> responses`` — the local
:class:`~repro.service.engine.QueryEngine`, a
:class:`~repro.shard.cluster.ShardCluster` (scatter-gather
:class:`~repro.shard.router.Router`), or a
:class:`~repro.dynamic.serving.DynamicService`.  The wire format is the
existing :mod:`repro.service.protocol` JSON-lines protocol, now over a
socket instead of stdin/stdout, so everything that already talks to
``repro serve`` talks to the gateway unchanged.

The point of the layer is *overload behaviour* (docs/gateway.md).  The
engines themselves keep parallel hardware saturated per query batch; the
gateway decides which traffic reaches them so those per-core wins survive
concurrent load:

- **connection lifecycle** — at most ``max_connections`` concurrent
  clients (excess connections get one ``"overloaded"`` line and a close),
  an idle read timeout, and a bound on line length enforced both by the
  stream reader and by :func:`~repro.service.protocol.parse_request_line`;
- **bounded admission queue** — admitted queries wait in a fixed-depth
  queue; a full queue sheds new arrivals with ``status: "overloaded"``
  and a ``retry_after_s`` hint (never a hang, never an unbounded buffer);
- **deadline-aware shedding** — a query whose own deadline is already
  smaller than the predicted queue wait is shed at admission (kinder than
  a guaranteed timeout); a query that waited past ``queue_deadline_s`` is
  shed at dispatch rather than served stale; a query whose *client*
  deadline expired while queued is answered ``"timeout"``, never silently
  served late;
- **per-client rate limiting** — a token bucket per client address
  (``rate_limit_per_s`` / ``rate_limit_burst``) rejects the excess with
  ``"overloaded"`` before it can occupy queue space;
- **micro-batch coalescing** — the single dispatcher drains the queue in
  windows of ``batch_window_s`` (up to ``batch_max`` queries) and hands
  the whole batch to the engine, whose own fingerprint grouping then
  serves every compatible in-flight client from **one** selection pass.

The engine runs on a dedicated single-thread executor: the event loop
stays free to accept, parse, and shed while a batch computes, and the
engine keeps the single-threaded discipline it was built under.  Telemetry
lands under ``gateway.*`` (docs/observability.md).
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro import telemetry
from repro.errors import ParameterError
from repro.service.protocol import (
    MAX_LINE_BYTES,
    IMQuery,
    IMResponse,
    parse_request_line,
)

__all__ = ["GatewayConfig", "GatewayServer", "GatewayStats", "serve_in_thread"]


@dataclass(frozen=True)
class GatewayConfig:
    """Admission-control knobs of one :class:`GatewayServer`.

    Attributes
    ----------
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it off
        :attr:`GatewayServer.port` after start).
    max_connections:
        Concurrent client cap; excess connections receive one
        ``"overloaded"`` response line and are closed.
    max_line_bytes:
        Bound on one request line, enforced by the stream reader and by
        :func:`~repro.service.protocol.parse_request_line`.
    idle_timeout_s:
        Close a connection that sends nothing for this long (``None``
        disables).
    queue_depth:
        Admission queue capacity; a full queue sheds new arrivals.
    queue_deadline_s:
        Maximum time a query may wait in the queue.  Waiting longer means
        the gateway is overloaded and the work is stale: the query is shed
        with ``"overloaded"`` at dispatch.  This bounds the queue-wait
        component of every accepted query's latency.
    batch_window_s / batch_max:
        Micro-batch coalescing: after the first query is popped, the
        dispatcher keeps collecting for up to ``batch_window_s`` (or until
        ``batch_max`` queries), then executes the whole batch at once.
        ``0`` still coalesces whatever is already queued, without waiting.
    rate_limit_per_s / rate_limit_burst:
        Per-client-address token bucket; ``None`` disables rate limiting.
    retry_after_floor_s:
        Minimum ``retry_after_s`` hint on shed responses.
    drain_timeout_s:
        Upper bound on waiting for admitted queries during shutdown.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_connections: int = 64
    max_line_bytes: int = MAX_LINE_BYTES
    idle_timeout_s: float | None = 300.0
    queue_depth: int = 256
    queue_deadline_s: float = 2.0
    batch_window_s: float = 0.002
    batch_max: int = 64
    rate_limit_per_s: float | None = None
    rate_limit_burst: float = 10.0
    retry_after_floor_s: float = 0.05
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ParameterError(
                f"max_connections must be >= 1, got {self.max_connections}"
            )
        if self.max_line_bytes < 64:
            raise ParameterError(
                f"max_line_bytes must be >= 64, got {self.max_line_bytes}"
            )
        if self.queue_depth < 1:
            raise ParameterError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.queue_deadline_s <= 0:
            raise ParameterError(
                f"queue_deadline_s must be positive, got {self.queue_deadline_s}"
            )
        if self.batch_window_s < 0:
            raise ParameterError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}"
            )
        if self.batch_max < 1:
            raise ParameterError(f"batch_max must be >= 1, got {self.batch_max}")
        if self.rate_limit_per_s is not None and self.rate_limit_per_s <= 0:
            raise ParameterError(
                f"rate_limit_per_s must be positive, got {self.rate_limit_per_s}"
            )
        if self.idle_timeout_s is not None and self.idle_timeout_s <= 0:
            raise ParameterError(
                f"idle_timeout_s must be positive, got {self.idle_timeout_s}"
            )


@dataclass
class GatewayStats:
    """Cumulative gateway behaviour, mirrored to ``gateway.*`` telemetry."""

    connections: int = 0
    rejected_connections: int = 0
    accepted: int = 0
    shed_queue_full: int = 0
    shed_deadline: int = 0
    shed_stale: int = 0
    shed_rate_limited: int = 0
    bad_requests: int = 0
    batches: int = 0
    ok: int = 0
    timeouts: int = 0
    errors: int = 0

    @property
    def shed(self) -> int:
        return (
            self.shed_queue_full + self.shed_deadline
            + self.shed_stale + self.shed_rate_limited
        )

    def to_dict(self) -> dict[str, int]:
        return {
            "connections": self.connections,
            "rejected_connections": self.rejected_connections,
            "accepted": self.accepted,
            "shed": self.shed,
            "shed_queue_full": self.shed_queue_full,
            "shed_deadline": self.shed_deadline,
            "shed_stale": self.shed_stale,
            "shed_rate_limited": self.shed_rate_limited,
            "bad_requests": self.bad_requests,
            "batches": self.batches,
            "ok": self.ok,
            "timeouts": self.timeouts,
            "errors": self.errors,
        }


class _TokenBucket:
    """Classic token bucket; ``now`` is injected so refills are testable."""

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = max(1.0, burst)
        self.tokens = self.burst
        self.last = now

    def take(self, now: float) -> bool:
        self.tokens = min(self.burst, self.tokens + (now - self.last) * self.rate)
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        return (1.0 - self.tokens) / self.rate


class _Connection:
    """One client connection; writes are serialised through a lock."""

    __slots__ = ("writer", "lock", "closed")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.lock = asyncio.Lock()
        self.closed = False

    async def send(self, doc: dict[str, Any]) -> None:
        data = (json.dumps(doc, default=float) + "\n").encode()
        async with self.lock:
            if self.closed:
                return
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionError, OSError):
                self.closed = True

    async def close(self) -> None:
        async with self.lock:
            if self.closed:
                return
            self.closed = True
            with contextlib.suppress(ConnectionError, OSError):
                self.writer.close()
                await self.writer.wait_closed()


@dataclass
class _Pending:
    """One admitted query waiting in the queue."""

    query: IMQuery
    conn: _Connection
    enqueued_at: float


class GatewayServer:
    """The async TCP front-end over one serving engine.

    ``engine`` is either an object exposing ``execute(queries) ->
    responses`` (and optionally ``stats_snapshot()``) or a bare callable
    with that signature.  All engine work runs on a private single-thread
    executor so the engine stays single-threaded while the event loop
    keeps accepting and shedding.
    """

    def __init__(self, engine: Any, *, config: GatewayConfig | None = None):
        self.config = config or GatewayConfig()
        if callable(getattr(engine, "execute", None)):
            self._execute: Callable = engine.execute
        elif callable(engine):
            self._execute = engine
        else:
            raise ParameterError(
                "gateway engine must expose execute(queries) or be callable"
            )
        self._engine = engine
        self.stats = GatewayStats()
        # Queue capacity is enforced here, not by the asyncio.Queue itself,
        # so the control plane can retune admission depth at runtime
        # (asyncio.Queue fixes maxsize at construction).
        self._queue_capacity = self.config.queue_depth
        self.host: str | None = None
        self.port: int | None = None
        self._active = 0
        self._draining = False
        self._stopped = False
        self._buckets: dict[str, _TokenBucket] = {}
        self._connections: set[_Connection] = set()
        # EMA of per-query engine service time, feeding the predicted-wait
        # shed decision and the retry_after_s hints.  None until the first
        # batch completes.
        self._ema_query_s: float | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="gateway-engine"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._dispatcher: asyncio.Task | None = None
        self._queue: asyncio.Queue[_Pending] | None = None
        self._stop_event: asyncio.Event | None = None

    # ----------------------------------------------------------------- start
    async def start(self) -> None:
        """Bind, start the dispatcher, and begin accepting connections."""
        self._loop = asyncio.get_running_loop()
        # Unbounded queue object; depth is bounded by _admit against
        # _queue_capacity so set_admission can shrink/grow it live.
        self._queue = asyncio.Queue()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_line_bytes + 2,
        )
        addr = self._server.sockets[0].getsockname()
        self.host, self.port = addr[0], addr[1]
        self._dispatcher = self._loop.create_task(self._dispatch_loop())

    async def serve(
        self,
        *,
        should_stop: Callable[[], bool] | None = None,
        poll_s: float = 0.05,
        on_started: Callable[["GatewayServer"], None] | None = None,
    ) -> GatewayStats:
        """Start, run until stopped, then drain and shut down.

        The server stops when a ``{"op": "shutdown"}`` control line
        arrives, :meth:`request_stop` is called, or ``should_stop()``
        returns true (polled every ``poll_s`` — the hook a
        :class:`~repro.service.lifecycle.GracefulShutdown` drain flag
        plugs into).
        """
        await self.start()
        if on_started is not None:
            on_started(self)
        try:
            while not self._stop_event.is_set():
                if should_stop is not None and should_stop():
                    break
                timeout = poll_s if should_stop is not None else None
                with contextlib.suppress(asyncio.TimeoutError, TimeoutError):
                    await asyncio.wait_for(self._stop_event.wait(), timeout)
        finally:
            await self.stop()
        return self.stats

    def request_stop(self) -> None:
        """Thread-safe stop request (drain, then exit)."""
        if self._loop is not None and self._stop_event is not None:
            # The loop may already be gone (e.g. a shutdown control op beat
            # us to it); a second stop request is then simply a no-op.
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_event.set)

    async def stop(self, *, drain: bool = True) -> None:
        """Stop accepting, optionally drain admitted queries, close up."""
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._queue is not None:
            with contextlib.suppress(asyncio.TimeoutError, TimeoutError):
                await asyncio.wait_for(
                    self._queue.join(), self.config.drain_timeout_s
                )
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
        for conn in list(self._connections):
            await conn.close()
        self._executor.shutdown(wait=True)
        if self._stop_event is not None:
            self._stop_event.set()

    # ------------------------------------------------------------ connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        if self._draining or self._active >= self.config.max_connections:
            self.stats.rejected_connections += 1
            self._tel_inc("gateway.rejected_connections")
            await conn.send(
                self._overloaded(
                    None, "connection limit reached", self._retry_after()
                ).to_dict()
            )
            await conn.close()
            return
        self._active += 1
        self.stats.connections += 1
        self._connections.add(conn)
        self._tel_inc("gateway.connections")
        self._tel_gauge("gateway.active_connections", self._active)
        peer = writer.get_extra_info("peername")
        client_key = str(peer[0]) if isinstance(peer, tuple) and peer else "local"
        try:
            while not self._draining:
                try:
                    if self.config.idle_timeout_s is not None:
                        line = await asyncio.wait_for(
                            reader.readline(), self.config.idle_timeout_s
                        )
                    else:
                        line = await reader.readline()
                except (asyncio.TimeoutError, TimeoutError):
                    await conn.send(
                        {"status": "error",
                         "error": "idle timeout exceeded, closing connection"}
                    )
                    break
                except ValueError:
                    # StreamReader limit overrun: the line never terminated
                    # inside max_line_bytes.  Report and close — the stream
                    # cannot be resynchronised reliably.
                    self.stats.bad_requests += 1
                    self._tel_inc("gateway.bad_requests")
                    await conn.send(
                        {"status": "error",
                         "error": (
                             "request line exceeds the "
                             f"{self.config.max_line_bytes}-byte limit"
                         )}
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._handle_line(line.strip(), conn, client_key)
        finally:
            self._active -= 1
            self._connections.discard(conn)
            self._tel_gauge("gateway.active_connections", self._active)
            await conn.close()

    async def _handle_line(
        self, line: bytes, conn: _Connection, client_key: str
    ) -> None:
        try:
            request = parse_request_line(
                line, max_line_bytes=self.config.max_line_bytes
            )
        except ParameterError as exc:
            self.stats.bad_requests += 1
            self._tel_inc("gateway.bad_requests")
            await conn.send({"status": "error", "error": str(exc)})
            return
        if isinstance(request, dict):
            await self._handle_control(request, conn)
            return
        now = time.monotonic()
        bucket = self._bucket_for(client_key, now)
        for query in request:
            if bucket is not None and not bucket.take(now):
                self.stats.shed_rate_limited += 1
                self._tel_inc("gateway.shed")
                self._tel_inc("gateway.shed_rate_limited")
                await conn.send(
                    self._overloaded(
                        query.id,
                        f"rate limit of {self.config.rate_limit_per_s:g}/s "
                        "exceeded",
                        max(
                            bucket.retry_after(),
                            self.config.retry_after_floor_s,
                        ),
                    ).to_dict()
                )
                continue
            await self._admit(query, conn, now)

    def _bucket_for(self, client_key: str, now: float) -> _TokenBucket | None:
        if self.config.rate_limit_per_s is None:
            return None
        bucket = self._buckets.get(client_key)
        if bucket is None:
            bucket = _TokenBucket(
                self.config.rate_limit_per_s, self.config.rate_limit_burst, now
            )
            self._buckets[client_key] = bucket
        return bucket

    # -------------------------------------------------------------- admission
    async def _admit(self, query: IMQuery, conn: _Connection, now: float) -> None:
        predicted = self._predicted_wait_s()
        if query.deadline_s is not None and predicted > query.deadline_s:
            # The queue alone is predicted to eat the whole deadline:
            # shedding now beats queueing into a guaranteed timeout.
            self.stats.shed_deadline += 1
            self._tel_inc("gateway.shed")
            self._tel_inc("gateway.shed_deadline")
            await conn.send(
                self._overloaded(
                    query.id,
                    f"predicted queue wait {predicted:.3f}s exceeds the "
                    f"query deadline of {query.deadline_s:g}s",
                    max(predicted, self.config.retry_after_floor_s),
                ).to_dict()
            )
            return
        if self._queue.qsize() >= self._queue_capacity:
            self.stats.shed_queue_full += 1
            self._tel_inc("gateway.shed")
            self._tel_inc("gateway.shed_queue_full")
            await conn.send(
                self._overloaded(
                    query.id,
                    f"admission queue of depth {self._queue_capacity} "
                    "is full",
                    self._retry_after(),
                ).to_dict()
            )
            return
        self._queue.put_nowait(_Pending(query, conn, now))
        self.stats.accepted += 1
        self._tel_inc("gateway.accepted")
        self._tel_gauge("gateway.queue_depth", self._queue.qsize())

    def set_admission(
        self,
        *,
        queue_depth: int | None = None,
        rate_limit_per_s: float | None = None,
        queue_deadline_s: float | None = None,
    ) -> dict[str, Any]:
        """Retune admission control live (the control-plane knob).

        Only the supplied knobs change; the new config is validated by
        :class:`GatewayConfig` itself (``dataclasses.replace`` re-runs
        ``__post_init__``).  Existing per-client token buckets are updated
        in place so a rate change applies to connected clients too.
        Returns the effective admission settings.
        """
        updates: dict[str, Any] = {}
        if queue_depth is not None:
            updates["queue_depth"] = int(queue_depth)
        if rate_limit_per_s is not None:
            updates["rate_limit_per_s"] = float(rate_limit_per_s)
        if queue_deadline_s is not None:
            updates["queue_deadline_s"] = float(queue_deadline_s)
        if updates:
            self.config = dataclasses.replace(self.config, **updates)
            self._queue_capacity = self.config.queue_depth
            if rate_limit_per_s is not None:
                for bucket in self._buckets.values():
                    bucket.rate = self.config.rate_limit_per_s
            self._tel_gauge("gateway.queue_capacity", self._queue_capacity)
            if self.config.rate_limit_per_s is not None:
                self._tel_gauge(
                    "gateway.rate_limit_per_s", self.config.rate_limit_per_s
                )
        return {
            "queue_depth": self._queue_capacity,
            "rate_limit_per_s": self.config.rate_limit_per_s,
            "queue_deadline_s": self.config.queue_deadline_s,
        }

    def _predicted_wait_s(self) -> float:
        if self._ema_query_s is None or self._queue is None:
            return 0.0
        return self._queue.qsize() * self._ema_query_s

    def _retry_after(self) -> float:
        return max(self._predicted_wait_s(), self.config.retry_after_floor_s)

    @staticmethod
    def _overloaded(
        query_id: str | None, reason: str, retry_after_s: float
    ) -> IMResponse:
        return IMResponse(
            status="overloaded",
            id=query_id,
            error=f"overloaded: {reason}",
            retry_after_s=round(float(retry_after_s), 6),
        )

    # --------------------------------------------------------------- dispatch
    async def _dispatch_loop(self) -> None:
        while True:
            batch = [await self._queue.get()]
            batch.extend(await self._coalesce())
            try:
                await self._serve_batch(batch)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # dispatcher must never die silently
                self.stats.errors += len(batch)
                self._tel_inc("gateway.errors", len(batch))
                for p in batch:
                    with contextlib.suppress(Exception):
                        await p.conn.send(
                            IMResponse(
                                status="error",
                                id=p.query.id,
                                error=f"internal: {type(exc).__name__}: {exc}",
                            ).to_dict()
                        )
            finally:
                for _ in batch:
                    self._queue.task_done()
                self._tel_gauge("gateway.queue_depth", self._queue.qsize())

    async def _coalesce(self) -> list[_Pending]:
        """Collect more queued queries for up to one batch window."""
        extra: list[_Pending] = []
        cfg = self.config
        if cfg.batch_window_s > 0 and cfg.batch_max > 1:
            deadline = self._loop.time() + cfg.batch_window_s
            while len(extra) < cfg.batch_max - 1:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    extra.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    break
        else:
            while len(extra) < cfg.batch_max - 1:
                try:
                    extra.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
        return extra

    async def _serve_batch(self, batch: list[_Pending]) -> None:
        tel = telemetry.get()
        now = time.monotonic()
        live: list[tuple[_Pending, IMQuery]] = []
        for p in batch:
            wait = now - p.enqueued_at
            if tel.enabled:
                tel.registry.histogram("gateway.queue_wait_s").observe(wait)
            if wait > self.config.queue_deadline_s:
                # Stale work: the queue deadline bounds how old a query may
                # be when it reaches the engine, which in turn bounds the
                # queue-wait component of every accepted query's latency.
                self.stats.shed_stale += 1
                self._tel_inc("gateway.shed")
                self._tel_inc("gateway.shed_stale")
                await p.conn.send(
                    self._overloaded(
                        p.query.id,
                        f"queued for {wait:.3f}s, beyond the "
                        f"{self.config.queue_deadline_s:g}s queue deadline",
                        self._retry_after(),
                    ).to_dict()
                )
                continue
            query = p.query
            if query.deadline_s is not None:
                remaining = query.deadline_s - wait
                if remaining <= 0:
                    self.stats.timeouts += 1
                    self._tel_inc("gateway.timeouts")
                    await p.conn.send(
                        IMResponse(
                            status="timeout",
                            id=query.id,
                            error=(
                                f"TimeoutError: deadline of {query.deadline_s}s "
                                f"expired after {wait:.3f}s in the gateway queue"
                            ),
                            latency_s=wait,
                        ).to_dict()
                    )
                    continue
                # The engine measures deadlines from *its* submission time,
                # so hand it only what the queue has not already spent.
                query = dataclasses.replace(query, deadline_s=remaining)
            live.append((p, query))
        if not live:
            return

        t0 = time.perf_counter()
        try:
            responses = await self._loop.run_in_executor(
                self._executor, self._execute, [q for _, q in live]
            )
        except Exception as exc:  # engine blew up: report, keep serving
            self.stats.errors += len(live)
            self._tel_inc("gateway.errors", len(live))
            for p, q in live:
                await p.conn.send(
                    IMResponse(
                        status="error",
                        id=q.id,
                        error=f"{type(exc).__name__}: {exc}",
                        latency_s=time.monotonic() - p.enqueued_at,
                    ).to_dict()
                )
            return
        elapsed = time.perf_counter() - t0
        per_query = elapsed / len(live)
        self._ema_query_s = (
            per_query if self._ema_query_s is None
            else 0.8 * self._ema_query_s + 0.2 * per_query
        )
        self.stats.batches += 1
        if tel.enabled:
            tel.registry.counter("gateway.batches").inc()
            tel.registry.histogram("gateway.batch_size").observe(len(live))
        for (p, _), resp in zip(live, responses):
            latency = time.monotonic() - p.enqueued_at
            resp.latency_s = latency  # end-to-end, queue wait included
            if resp.ok:
                self.stats.ok += 1
            elif resp.status == "timeout":
                self.stats.timeouts += 1
                self._tel_inc("gateway.timeouts")
            else:
                self.stats.errors += 1
                self._tel_inc("gateway.errors")
            if tel.enabled:
                tel.registry.counter("gateway.responses").inc()
                tel.registry.histogram("gateway.request_latency_s").observe(
                    latency
                )
            await p.conn.send(resp.to_dict())

    # ---------------------------------------------------------------- control
    async def _handle_control(
        self, request: dict[str, Any], conn: _Connection
    ) -> None:
        op = request.get("op")
        if op == "ping":
            await conn.send({"status": "ok", "op": "ping"})
            return
        if op == "stats":
            await conn.send(self.stats_snapshot())
            return
        if op == "shutdown":
            await conn.send({"status": "ok", "op": "shutdown"})
            if self._stop_event is not None:
                self._stop_event.set()
            return
        await conn.send({"status": "error", "error": f"unknown op {op!r}"})

    def stats_snapshot(self) -> dict[str, Any]:
        """Gateway + fronted-engine counters as one JSON-able dict."""
        doc: dict[str, Any] = {
            "status": "ok",
            "op": "stats",
            "gateway": {
                **self.stats.to_dict(),
                "active_connections": self._active,
                "queue_depth": self._queue.qsize() if self._queue else 0,
                "queue_capacity": self._queue_capacity,
                "queue_deadline_s": self.config.queue_deadline_s,
                "ema_query_s": self._ema_query_s,
                "predicted_wait_s": self._predicted_wait_s(),
                "rate_limit_per_s": self.config.rate_limit_per_s,
                "rate_buckets": self._bucket_snapshot(),
            },
        }
        snapshot = getattr(self._engine, "stats_snapshot", None)
        if callable(snapshot):
            doc.update(snapshot())
        tel = telemetry.get()
        if tel.enabled:
            doc["counters"] = tel.snapshot()["counters"]
        return doc

    def _bucket_snapshot(self) -> dict[str, Any]:
        """Token-bucket fill summary: how close clients are to rate sheds.

        ``min_fill`` is the lowest tokens/burst fraction over all known
        clients — 0.0 means at least one client is fully throttled, 1.0
        means nobody has spent a token.  Fill is read as-of the last
        ``take``; buckets refill lazily, so an idle bucket under-reports
        until its owner's next request.
        """
        buckets = list(self._buckets.values())
        if not buckets:
            return {"clients": 0, "min_fill": 1.0, "tokens": 0.0}
        fills = [b.tokens / b.burst for b in buckets]
        return {
            "clients": len(buckets),
            "min_fill": round(min(fills), 6),
            "tokens": round(sum(b.tokens for b in buckets), 6),
        }

    # -------------------------------------------------------------- telemetry
    @staticmethod
    def _tel_inc(name: str, amount: float = 1) -> None:
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.counter(name).inc(amount)

    @staticmethod
    def _tel_gauge(name: str, value: float) -> None:
        tel = telemetry.get()
        if tel.enabled:
            tel.registry.gauge(name).set(value)


@contextlib.contextmanager
def serve_in_thread(
    engine: Any, *, config: GatewayConfig | None = None
) -> Iterator[GatewayServer]:
    """Run a gateway on a background thread (tests, benchmarks, loadgen).

    Yields the started :class:`GatewayServer` (``server.host`` /
    ``server.port`` carry the bound address); the server is drained and
    stopped when the block exits.
    """
    server = GatewayServer(engine, config=config)
    started = threading.Event()
    failures: list[BaseException] = []

    def _run() -> None:
        async def _main() -> None:
            try:
                await server.start()
            finally:
                started.set()
            await server._stop_event.wait()
            await server.stop()

        try:
            asyncio.run(_main())
        except BaseException as exc:  # surface bind errors to the caller
            failures.append(exc)
            started.set()

    thread = threading.Thread(target=_run, name="gateway-server", daemon=True)
    thread.start()
    if not started.wait(timeout=10):
        raise TimeoutError("gateway server failed to start within 10s")
    if failures:
        raise failures[0]
    try:
        yield server
    finally:
        server.request_stop()
        thread.join(timeout=15)
